file(REMOVE_RECURSE
  "CMakeFiles/hashtable_contention.dir/hashtable_contention.cpp.o"
  "CMakeFiles/hashtable_contention.dir/hashtable_contention.cpp.o.d"
  "hashtable_contention"
  "hashtable_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtable_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
