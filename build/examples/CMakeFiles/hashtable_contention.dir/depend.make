# Empty dependencies file for hashtable_contention.
# This may be replaced when dependencies are built.
