# Empty compiler generated dependencies file for custom_kernel.
# This may be replaced when dependencies are built.
