file(REMOVE_RECURSE
  "CMakeFiles/spin_detection.dir/spin_detection.cpp.o"
  "CMakeFiles/spin_detection.dir/spin_detection.cpp.o.d"
  "spin_detection"
  "spin_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spin_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
