# Empty compiler generated dependencies file for spin_detection.
# This may be replaced when dependencies are built.
