file(REMOVE_RECURSE
  "CMakeFiles/fig10_delay_sweep.dir/fig10_delay_sweep.cpp.o"
  "CMakeFiles/fig10_delay_sweep.dir/fig10_delay_sweep.cpp.o.d"
  "fig10_delay_sweep"
  "fig10_delay_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_delay_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
