# Empty compiler generated dependencies file for fig10_delay_sweep.
# This may be replaced when dependencies are built.
