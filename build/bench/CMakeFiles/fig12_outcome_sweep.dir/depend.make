# Empty dependencies file for fig12_outcome_sweep.
# This may be replaced when dependencies are built.
