file(REMOVE_RECURSE
  "CMakeFiles/fig12_outcome_sweep.dir/fig12_outcome_sweep.cpp.o"
  "CMakeFiles/fig12_outcome_sweep.dir/fig12_outcome_sweep.cpp.o.d"
  "fig12_outcome_sweep"
  "fig12_outcome_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_outcome_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
