file(REMOVE_RECURSE
  "CMakeFiles/fig16_contention.dir/fig16_contention.cpp.o"
  "CMakeFiles/fig16_contention.dir/fig16_contention.cpp.o.d"
  "fig16_contention"
  "fig16_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
