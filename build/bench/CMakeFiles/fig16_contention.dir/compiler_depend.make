# Empty compiler generated dependencies file for fig16_contention.
# This may be replaced when dependencies are built.
