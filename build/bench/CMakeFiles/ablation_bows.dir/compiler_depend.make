# Empty compiler generated dependencies file for ablation_bows.
# This may be replaced when dependencies are built.
