file(REMOVE_RECURSE
  "CMakeFiles/ablation_bows.dir/ablation_bows.cpp.o"
  "CMakeFiles/ablation_bows.dir/ablation_bows.cpp.o.d"
  "ablation_bows"
  "ablation_bows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
