# Empty compiler generated dependencies file for fig11_warp_distribution.
# This may be replaced when dependencies are built.
