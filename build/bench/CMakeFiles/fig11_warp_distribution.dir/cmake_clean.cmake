file(REMOVE_RECURSE
  "CMakeFiles/fig11_warp_distribution.dir/fig11_warp_distribution.cpp.o"
  "CMakeFiles/fig11_warp_distribution.dir/fig11_warp_distribution.cpp.o.d"
  "fig11_warp_distribution"
  "fig11_warp_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_warp_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
