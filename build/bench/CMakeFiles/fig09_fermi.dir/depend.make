# Empty dependencies file for fig09_fermi.
# This may be replaced when dependencies are built.
