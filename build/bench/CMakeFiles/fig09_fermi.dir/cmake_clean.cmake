file(REMOVE_RECURSE
  "CMakeFiles/fig09_fermi.dir/fig09_fermi.cpp.o"
  "CMakeFiles/fig09_fermi.dir/fig09_fermi.cpp.o.d"
  "fig09_fermi"
  "fig09_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
