# Empty dependencies file for fig03_sw_backoff.
# This may be replaced when dependencies are built.
