file(REMOVE_RECURSE
  "CMakeFiles/fig03_sw_backoff.dir/fig03_sw_backoff.cpp.o"
  "CMakeFiles/fig03_sw_backoff.dir/fig03_sw_backoff.cpp.o.d"
  "fig03_sw_backoff"
  "fig03_sw_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sw_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
