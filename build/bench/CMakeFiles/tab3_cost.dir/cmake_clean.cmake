file(REMOVE_RECURSE
  "CMakeFiles/tab3_cost.dir/tab3_cost.cpp.o"
  "CMakeFiles/tab3_cost.dir/tab3_cost.cpp.o.d"
  "tab3_cost"
  "tab3_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
