# Empty compiler generated dependencies file for tab3_cost.
# This may be replaced when dependencies are built.
