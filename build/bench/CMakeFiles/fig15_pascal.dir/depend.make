# Empty dependencies file for fig15_pascal.
# This may be replaced when dependencies are built.
