file(REMOVE_RECURSE
  "CMakeFiles/fig15_pascal.dir/fig15_pascal.cpp.o"
  "CMakeFiles/fig15_pascal.dir/fig15_pascal.cpp.o.d"
  "fig15_pascal"
  "fig15_pascal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pascal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
