file(REMOVE_RECURSE
  "CMakeFiles/tab1_ddos_sensitivity.dir/tab1_ddos_sensitivity.cpp.o"
  "CMakeFiles/tab1_ddos_sensitivity.dir/tab1_ddos_sensitivity.cpp.o.d"
  "tab1_ddos_sensitivity"
  "tab1_ddos_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_ddos_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
