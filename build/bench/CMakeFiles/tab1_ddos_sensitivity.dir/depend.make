# Empty dependencies file for tab1_ddos_sensitivity.
# This may be replaced when dependencies are built.
