# Empty dependencies file for fig01_hashtable.
# This may be replaced when dependencies are built.
