file(REMOVE_RECURSE
  "CMakeFiles/fig01_hashtable.dir/fig01_hashtable.cpp.o"
  "CMakeFiles/fig01_hashtable.dir/fig01_hashtable.cpp.o.d"
  "fig01_hashtable"
  "fig01_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
