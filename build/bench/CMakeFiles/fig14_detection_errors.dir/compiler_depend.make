# Empty compiler generated dependencies file for fig14_detection_errors.
# This may be replaced when dependencies are built.
