file(REMOVE_RECURSE
  "CMakeFiles/fig14_detection_errors.dir/fig14_detection_errors.cpp.o"
  "CMakeFiles/fig14_detection_errors.dir/fig14_detection_errors.cpp.o.d"
  "fig14_detection_errors"
  "fig14_detection_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_detection_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
