# Empty compiler generated dependencies file for fig02_sync_distribution.
# This may be replaced when dependencies are built.
