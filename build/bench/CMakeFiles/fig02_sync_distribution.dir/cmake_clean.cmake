file(REMOVE_RECURSE
  "CMakeFiles/fig02_sync_distribution.dir/fig02_sync_distribution.cpp.o"
  "CMakeFiles/fig02_sync_distribution.dir/fig02_sync_distribution.cpp.o.d"
  "fig02_sync_distribution"
  "fig02_sync_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_sync_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
