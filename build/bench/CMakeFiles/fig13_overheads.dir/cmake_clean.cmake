file(REMOVE_RECURSE
  "CMakeFiles/fig13_overheads.dir/fig13_overheads.cpp.o"
  "CMakeFiles/fig13_overheads.dir/fig13_overheads.cpp.o.d"
  "fig13_overheads"
  "fig13_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
