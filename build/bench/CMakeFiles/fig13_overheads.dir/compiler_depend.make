# Empty compiler generated dependencies file for fig13_overheads.
# This may be replaced when dependencies are built.
