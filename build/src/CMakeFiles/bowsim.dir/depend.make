# Empty dependencies file for bowsim.
# This may be replaced when dependencies are built.
