file(REMOVE_RECURSE
  "libbowsim.a"
)
