
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/register_file.cpp" "src/CMakeFiles/bowsim.dir/arch/register_file.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/arch/register_file.cpp.o.d"
  "/root/repo/src/arch/scoreboard.cpp" "src/CMakeFiles/bowsim.dir/arch/scoreboard.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/arch/scoreboard.cpp.o.d"
  "/root/repo/src/arch/simt_stack.cpp" "src/CMakeFiles/bowsim.dir/arch/simt_stack.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/arch/simt_stack.cpp.o.d"
  "/root/repo/src/arch/warp.cpp" "src/CMakeFiles/bowsim.dir/arch/warp.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/arch/warp.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/bowsim.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/common/config.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/bowsim.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/common/log.cpp.o.d"
  "/root/repo/src/core/bows/adaptive_delay.cpp" "src/CMakeFiles/bowsim.dir/core/bows/adaptive_delay.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/core/bows/adaptive_delay.cpp.o.d"
  "/root/repo/src/core/bows/backoff.cpp" "src/CMakeFiles/bowsim.dir/core/bows/backoff.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/core/bows/backoff.cpp.o.d"
  "/root/repo/src/core/ddos/ddos_unit.cpp" "src/CMakeFiles/bowsim.dir/core/ddos/ddos_unit.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/core/ddos/ddos_unit.cpp.o.d"
  "/root/repo/src/core/ddos/hashing.cpp" "src/CMakeFiles/bowsim.dir/core/ddos/hashing.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/core/ddos/hashing.cpp.o.d"
  "/root/repo/src/core/ddos/history.cpp" "src/CMakeFiles/bowsim.dir/core/ddos/history.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/core/ddos/history.cpp.o.d"
  "/root/repo/src/core/ddos/sib_table.cpp" "src/CMakeFiles/bowsim.dir/core/ddos/sib_table.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/core/ddos/sib_table.cpp.o.d"
  "/root/repo/src/cpuref/hashtable_cpu.cpp" "src/CMakeFiles/bowsim.dir/cpuref/hashtable_cpu.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/cpuref/hashtable_cpu.cpp.o.d"
  "/root/repo/src/cpuref/nw_cpu.cpp" "src/CMakeFiles/bowsim.dir/cpuref/nw_cpu.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/cpuref/nw_cpu.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/bowsim.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/CMakeFiles/bowsim.dir/isa/assembler.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/isa/assembler.cpp.o.d"
  "/root/repo/src/isa/cfg.cpp" "src/CMakeFiles/bowsim.dir/isa/cfg.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/isa/cfg.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/CMakeFiles/bowsim.dir/isa/instruction.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/isa/instruction.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/CMakeFiles/bowsim.dir/isa/program.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/isa/program.cpp.o.d"
  "/root/repo/src/isa/verifier.cpp" "src/CMakeFiles/bowsim.dir/isa/verifier.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/isa/verifier.cpp.o.d"
  "/root/repo/src/kernels/atm.cpp" "src/CMakeFiles/bowsim.dir/kernels/atm.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/atm.cpp.o.d"
  "/root/repo/src/kernels/bh_sort.cpp" "src/CMakeFiles/bowsim.dir/kernels/bh_sort.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/bh_sort.cpp.o.d"
  "/root/repo/src/kernels/bh_tree.cpp" "src/CMakeFiles/bowsim.dir/kernels/bh_tree.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/bh_tree.cpp.o.d"
  "/root/repo/src/kernels/cp_ds.cpp" "src/CMakeFiles/bowsim.dir/kernels/cp_ds.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/cp_ds.cpp.o.d"
  "/root/repo/src/kernels/hashtable.cpp" "src/CMakeFiles/bowsim.dir/kernels/hashtable.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/hashtable.cpp.o.d"
  "/root/repo/src/kernels/kernel_harness.cpp" "src/CMakeFiles/bowsim.dir/kernels/kernel_harness.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/kernel_harness.cpp.o.d"
  "/root/repo/src/kernels/nw.cpp" "src/CMakeFiles/bowsim.dir/kernels/nw.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/nw.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/bowsim.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/syncfree.cpp" "src/CMakeFiles/bowsim.dir/kernels/syncfree.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/syncfree.cpp.o.d"
  "/root/repo/src/kernels/tsp.cpp" "src/CMakeFiles/bowsim.dir/kernels/tsp.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/kernels/tsp.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/bowsim.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/coalescer.cpp" "src/CMakeFiles/bowsim.dir/mem/coalescer.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/mem/coalescer.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/bowsim.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/mem/dram.cpp.o.d"
  "/root/repo/src/mem/interconnect.cpp" "src/CMakeFiles/bowsim.dir/mem/interconnect.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/mem/interconnect.cpp.o.d"
  "/root/repo/src/mem/l2_bank.cpp" "src/CMakeFiles/bowsim.dir/mem/l2_bank.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/mem/l2_bank.cpp.o.d"
  "/root/repo/src/mem/lock_tracker.cpp" "src/CMakeFiles/bowsim.dir/mem/lock_tracker.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/mem/lock_tracker.cpp.o.d"
  "/root/repo/src/mem/memory_space.cpp" "src/CMakeFiles/bowsim.dir/mem/memory_space.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/mem/memory_space.cpp.o.d"
  "/root/repo/src/sched/cawa.cpp" "src/CMakeFiles/bowsim.dir/sched/cawa.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sched/cawa.cpp.o.d"
  "/root/repo/src/sched/gto.cpp" "src/CMakeFiles/bowsim.dir/sched/gto.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sched/gto.cpp.o.d"
  "/root/repo/src/sched/lrr.cpp" "src/CMakeFiles/bowsim.dir/sched/lrr.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sched/lrr.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/bowsim.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sched/two_level.cpp" "src/CMakeFiles/bowsim.dir/sched/two_level.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sched/two_level.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/CMakeFiles/bowsim.dir/sim/gpu.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sim/gpu.cpp.o.d"
  "/root/repo/src/sim/ldst_unit.cpp" "src/CMakeFiles/bowsim.dir/sim/ldst_unit.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sim/ldst_unit.cpp.o.d"
  "/root/repo/src/sim/sm_core.cpp" "src/CMakeFiles/bowsim.dir/sim/sm_core.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/sim/sm_core.cpp.o.d"
  "/root/repo/src/stats/ddos_accuracy.cpp" "src/CMakeFiles/bowsim.dir/stats/ddos_accuracy.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/stats/ddos_accuracy.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/bowsim.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/bowsim.dir/stats/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
