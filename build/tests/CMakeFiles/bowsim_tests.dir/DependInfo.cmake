
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_bows.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_bows.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_bows.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cfg.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_cfg.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_cfg.cpp.o.d"
  "/root/repo/tests/test_coalescer.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_coalescer.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_coalescer.cpp.o.d"
  "/root/repo/tests/test_ddos_history.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_ddos_history.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_ddos_history.cpp.o.d"
  "/root/repo/tests/test_ddos_unit.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_ddos_unit.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_ddos_unit.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_gpu_api.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_gpu_api.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_gpu_api.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_ldst_timing.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_ldst_timing.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_ldst_timing.cpp.o.d"
  "/root/repo/tests/test_lock_tracker.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_lock_tracker.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_lock_tracker.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_property_random.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_property_random.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_property_random.cpp.o.d"
  "/root/repo/tests/test_schedulers.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_schedulers.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_schedulers.cpp.o.d"
  "/root/repo/tests/test_scoreboard.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_scoreboard.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_scoreboard.cpp.o.d"
  "/root/repo/tests/test_sib_table.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_sib_table.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_sib_table.cpp.o.d"
  "/root/repo/tests/test_sim_basic.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_sim_basic.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_sim_basic.cpp.o.d"
  "/root/repo/tests/test_sim_sync.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_sim_sync.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_sim_sync.cpp.o.d"
  "/root/repo/tests/test_simt_stack.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_simt_stack.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_simt_stack.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_verifier.cpp" "tests/CMakeFiles/bowsim_tests.dir/test_verifier.cpp.o" "gcc" "tests/CMakeFiles/bowsim_tests.dir/test_verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bowsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
