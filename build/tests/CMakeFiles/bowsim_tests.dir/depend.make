# Empty dependencies file for bowsim_tests.
# This may be replaced when dependencies are built.
