/**
 * Figure 3: software back-off delay on GPUs. The HT kernel is augmented
 * with the clock()-polling delay code of Fig. 3a (delay grows with the
 * CTA index). On real GPUs — and here — the delay code itself burns
 * issue slots, so it only pays off at very high contention, if at all.
 */
#include "bench/bench_common.hpp"
#include "bench/ht_salt.hpp"

#include "src/kernels/hashtable.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("Figure 3: HT execution time (ms) with software back-off "
                "delays (Pascal)");
    const std::vector<unsigned> factors = {0, 50, 100, 500, 1000};
    const std::vector<unsigned> buckets = {128, 256, 512, 1024, 2048,
                                           4096};
    std::printf("%-8s", "buckets");
    for (unsigned f : factors)
        std::printf("  delay=%-6u", f);
    std::printf("\n");

    Sweep sweep;
    sweep.name = "fig03_sw_backoff";
    for (unsigned b : buckets) {
        for (unsigned f : factors) {
            GpuConfig cfg = makeGtx1080TiConfig();
            applyCores(opts, cfg);
            cfg.bows.enabled = false;
            HashtableParams p;
            p.insertions = static_cast<unsigned>(16384 * opts.scale);
            p.buckets = b;
            p.ctas = 30;
            p.threadsPerCta = 256;
            p.delayFactor = f;
            sweep.add("HT/" + std::to_string(b) + "/d" +
                          std::to_string(f),
                      cfg,
                      std::function<KernelStats(Gpu &)>([p](Gpu &gpu) {
                          auto h = makeHashtable(p);
                          return h->run(gpu);
                      }),
                      htSalt(p));
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);
    const double clock_mhz = makeGtx1080TiConfig().coreClockMhz;
    for (size_t i = 0; i < buckets.size(); ++i) {
        std::printf("%-8u", buckets[i]);
        for (size_t j = 0; j < factors.size(); ++j)
            std::printf("  %-12.4f",
                        results[i * factors.size() + j]
                            .stats.milliseconds(clock_mhz));
        std::printf("\n");
    }
    return 0;
}
