/**
 * Figure 3: software back-off delay on GPUs. The HT kernel is augmented
 * with the clock()-polling delay code of Fig. 3a (delay grows with the
 * CTA index). On real GPUs — and here — the delay code itself burns
 * issue slots, so it only pays off at very high contention, if at all.
 */
#include "bench/bench_common.hpp"

#include "src/kernels/hashtable.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    printHeader("Figure 3: HT execution time (ms) with software back-off "
                "delays (Pascal)");
    const std::vector<unsigned> factors = {0, 50, 100, 500, 1000};
    std::printf("%-8s", "buckets");
    for (unsigned f : factors)
        std::printf("  delay=%-6u", f);
    std::printf("\n");

    for (unsigned buckets : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
        std::printf("%-8u", buckets);
        for (unsigned f : factors) {
            GpuConfig cfg = makeGtx1080TiConfig();
            cfg.bows.enabled = false;
            Gpu gpu(cfg);
            HashtableParams p;
            p.insertions = static_cast<unsigned>(16384 * scale);
            p.buckets = buckets;
            p.ctas = 30;
            p.threadsPerCta = 256;
            p.delayFactor = f;
            auto h = makeHashtable(p);
            KernelStats s = h->run(gpu);
            std::printf("  %-12.4f", s.milliseconds(cfg.coreClockMhz));
        }
        std::printf("\n");
    }
    return 0;
}
