/**
 * Execution-mode microbenchmark (docs/PERF.md, "Execution modes"): one
 * long-spin kernel — every thread increments a single global counter K
 * times inside a spin-lock critical section, the worst case for
 * cycle-accurate simulation speed — run under all three execution
 * modes:
 *
 *   cycle       ground truth; burns a simulated cycle per spin retry
 *   functional  ISA semantics only; bounded-fairness rotation caps spin
 *   sampled     functional fast-forward + detailed IPC windows
 *
 * Printed per mode: wall-clock, simulated cycles, IPC (exact or
 * estimated ± CI95), the memory digest and the counter value. The
 * kernel's final memory is schedule-invariant, so functional and
 * sampled digests must equal the cycle digest byte for byte; the bench
 * fails loudly when they do not. The headline number is the functional
 * wall-clock speedup — the more contended the lock, the larger it gets
 * (spin retries are free in functional mode and ruinous in cycle mode).
 *
 * Points run with --jobs=1 by default so the wall-clock comparison is
 * not skewed by the sweep pool.
 */
#include "bench/bench_common.hpp"

#include <array>
#include <chrono>

#include "src/isa/assembler.hpp"

using namespace bowsim;
using namespace bowsim::bench;

namespace {

/** Spin-counter kernel: K serialized increments per thread. */
constexpr const char *kSpinLoopSource = R"(
.kernel spin_loop
.param 3
  ld.param.u64 %r1, [0];         // mutex
  ld.param.u64 %r2, [8];         // counter
  ld.param.u64 %r10, [16];       // iterations per thread
OUTER:
  setp.eq.s64 %p3, %r10, 0;
  @%p3 bra DONE;
  mov %r20, 0;
.annot sync_begin
LOOP:
  .annot acquire
  atom.global.cas.b64 %r3, [%r1], 0, 1;
  setp.ne.s64 %p1, %r3, 0;
  @%p1 bra SKIP;
.annot sync_end
  ld.global.u64 %r4, [%r2];
  add %r4, %r4, 1;
  st.global.u64 [%r2], %r4;
  mov %r20, 1;
  membar;
.annot sync_begin
  atom.global.exch.b64 %r5, [%r1], 0;
SKIP:
  setp.eq.s64 %p2, %r20, 0;
  .annot spin
  @%p2 bra LOOP;
.annot sync_end
  sub %r10, %r10, 1;
  bra.uni OUTER;
DONE:
  exit;
)";

struct ModeResult {
    double wallMs = 0.0;
    std::uint64_t digest = 0;
    Word counter = 0;
};

struct SpinParams {
    unsigned ctas = 0;
    unsigned threadsPerCta = 0;
    Word iters = 0;
};

/** One launch on the runner-provided Gpu, wall-clock timed. */
std::function<KernelStats(Gpu &)>
spinBody(const Program *prog, SpinParams p, ModeResult *out)
{
    return [prog, p, out](Gpu &gpu) {
        const auto t0 = std::chrono::steady_clock::now();
        Addr mutex = gpu.malloc(8);
        Addr counter = gpu.malloc(8);
        KernelStats s = gpu.launch(
            *prog, Dim3{p.ctas, 1, 1}, Dim3{p.threadsPerCta, 1, 1},
            {static_cast<Word>(mutex), static_cast<Word>(counter),
             p.iters});
        out->wallMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        out->digest = gpu.mem().digest();
        gpu.memcpyFromDevice(&out->counter, counter, 8);
        return s;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    if (opts.jobs == 0)
        opts.jobs = 1;  // sequential by default: wall-clock fidelity

    SpinParams p;
    p.ctas = 15;
    p.threadsPerCta = 128;
    p.iters = static_cast<Word>(
        std::max(1.0, std::round(4 * opts.scale)));
    const Program prog = assemble(kSpinLoopSource);
    const Word expect =
        static_cast<Word>(p.ctas) * p.threadsPerCta * p.iters;

    const std::array<const char *, 3> modes = {"cycle", "functional",
                                               "sampled"};
    std::array<ModeResult, 3> mode_results;
    Sweep sweep;
    sweep.name = "micro_functional";
    for (std::size_t m = 0; m < modes.size(); ++m) {
        GpuConfig cfg = makeGtx480Config();
        applyCores(opts, cfg);
        parseExecMode(modes[m], &cfg.execMode);
        sweep.add(std::string("SPIN/") + modes[m], cfg,
                  spinBody(&prog, p, &mode_results[m]));
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);

    printHeader("Execution modes: long-spin counter microbenchmark");
    std::printf("# ctas=%u threads=%u iters=%llu (%llu critical sections)\n",
                p.ctas, p.threadsPerCta,
                static_cast<unsigned long long>(p.iters),
                static_cast<unsigned long long>(expect));
    std::printf("%-12s %10s %12s %18s %10s\n", "mode", "wall_ms",
                "sim_cycles", "ipc", "speedup");
    const double cycle_ms = mode_results[0].wallMs;
    for (std::size_t m = 0; m < modes.size(); ++m) {
        const KernelStats &s = results[m].stats;
        char ipc[64];
        if (s.hasSampledIpc()) {
            std::snprintf(ipc, sizeof ipc, "%.3f±%.3f (%llu win)",
                          s.ipcEst, s.ipcCi95,
                          static_cast<unsigned long long>(
                              s.sampledWindows));
        } else if (s.cycles > 0) {
            std::snprintf(ipc, sizeof ipc, "%.3f", s.ipc());
        } else {
            std::snprintf(ipc, sizeof ipc, "-");
        }
        const double wall = mode_results[m].wallMs;
        std::printf("%-12s %10.1f %12llu %18s %9.1fx\n", modes[m], wall,
                    static_cast<unsigned long long>(s.cycles), ipc,
                    wall > 0.0 ? cycle_ms / wall : 0.0);
    }

    // Correctness gate: the kernel is schedule-invariant, so every mode
    // must produce the cycle-mode memory image and the exact count.
    bool ok = true;
    for (std::size_t m = 0; m < modes.size(); ++m) {
        if (mode_results[m].counter != expect) {
            std::fprintf(stderr, "error: %s counter %llu != %llu\n",
                         modes[m],
                         static_cast<unsigned long long>(
                             mode_results[m].counter),
                         static_cast<unsigned long long>(expect));
            ok = false;
        }
        if (mode_results[m].digest != mode_results[0].digest) {
            std::fprintf(stderr,
                         "error: %s memory digest diverged from cycle "
                         "mode\n",
                         modes[m]);
            ok = false;
        }
    }
    if (!ok)
        return 1;
    std::printf("# digests byte-identical across modes: 0x%016llx\n",
                static_cast<unsigned long long>(mode_results[0].digest));
    return 0;
}
