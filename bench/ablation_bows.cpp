/**
 * Ablation: BOWS combines two mechanisms — (1) pushing spinning warps to
 * the back of the priority queue ("deprioritize") and (2) enforcing a
 * minimum spacing between spin iterations ("throttle"). Section VI-D of
 * the paper argues both matter: deprioritization helps when schedulers
 * have many warps to choose from; throttling helps when they do not.
 * This harness measures each in isolation (adaptive delay, DDOS
 * detection, GTO baseline), plus the cost of DDOS vs an oracle that
 * knows the SIBs up front.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    printHeader("BOWS ablation: exec time normalized to GTO");
    std::printf("%-6s %10s %10s %10s %10s %10s\n", "kernel", "GTO",
                "deprio", "throttle", "both", "both+orcl");

    struct Mode {
        bool bows;
        bool deprioritize;
        bool throttle;  // adaptive delay on/off (off = limit 0)
        SpinDetect detect;
    };
    const std::vector<Mode> modes = {
        {false, false, false, SpinDetect::Ddos},
        {true, true, false, SpinDetect::Ddos},   // deprioritize only
        {true, false, true, SpinDetect::Ddos},   // throttle only
        {true, true, true, SpinDetect::Ddos},    // full BOWS
        {true, true, true, SpinDetect::Oracle},  // full BOWS, oracle SIBs
    };

    std::vector<double> gmean(modes.size(), 1.0);
    unsigned count = 0;
    for (const std::string &name : syncKernelNames()) {
        std::printf("%-6s", name.c_str());
        double base = 0.0;
        for (size_t m = 0; m < modes.size(); ++m) {
            GpuConfig cfg = makeGtx480Config();
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = modes[m].bows;
            cfg.bows.deprioritize = modes[m].deprioritize;
            cfg.bows.adaptive = modes[m].throttle;
            cfg.bows.delayLimit = 0;
            cfg.spinDetect = modes[m].detect;
            double cycles = static_cast<double>(
                runBenchmark(cfg, name, scale).cycles);
            if (m == 0)
                base = cycles;
            gmean[m] *= cycles / base;
            std::printf(" %10.3f", cycles / base);
        }
        std::printf("\n");
        ++count;
    }
    std::printf("%-6s", "Gmean");
    for (size_t m = 0; m < modes.size(); ++m)
        std::printf(" %10.3f", std::pow(gmean[m], 1.0 / count));
    std::printf("\n");
    return 0;
}
