/**
 * Ablation: BOWS combines two mechanisms — (1) pushing spinning warps to
 * the back of the priority queue ("deprioritize") and (2) enforcing a
 * minimum spacing between spin iterations ("throttle"). Section VI-D of
 * the paper argues both matter: deprioritization helps when schedulers
 * have many warps to choose from; throttling helps when they do not.
 * This harness measures each in isolation (adaptive delay, DDOS
 * detection, GTO baseline), plus the cost of DDOS vs an oracle that
 * knows the SIBs up front.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("BOWS ablation: exec time normalized to GTO");
    std::printf("%-6s %10s %10s %10s %10s %10s\n", "kernel", "GTO",
                "deprio", "throttle", "both", "both+orcl");

    struct Mode {
        const char *label;
        bool bows;
        bool deprioritize;
        bool throttle;  // adaptive delay on/off (off = limit 0)
        SpinDetect detect;
    };
    const std::vector<Mode> modes = {
        {"GTO", false, false, false, SpinDetect::Ddos},
        {"deprio", true, true, false, SpinDetect::Ddos},
        {"throttle", true, false, true, SpinDetect::Ddos},
        {"both", true, true, true, SpinDetect::Ddos},
        {"both-oracle", true, true, true, SpinDetect::Oracle},
    };

    const std::vector<std::string> kernels = syncKernelNames();
    Sweep sweep;
    sweep.name = "ablation_bows";
    for (const std::string &name : kernels) {
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.deprioritize = m.deprioritize;
            cfg.bows.adaptive = m.throttle;
            cfg.bows.delayLimit = 0;
            cfg.spinDetect = m.detect;
            sweep.add(name + "/" + m.label, name, cfg, opts.scale);
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);

    std::vector<double> gmean(modes.size(), 1.0);
    unsigned count = 0;
    for (size_t k = 0; k < kernels.size(); ++k) {
        std::printf("%-6s", kernels[k].c_str());
        const double base = static_cast<double>(
            results[k * modes.size()].stats.cycles);
        for (size_t m = 0; m < modes.size(); ++m) {
            double cycles = static_cast<double>(
                results[k * modes.size() + m].stats.cycles);
            gmean[m] *= cycles / base;
            std::printf(" %10.3f", cycles / base);
        }
        std::printf("\n");
        ++count;
    }
    std::printf("%-6s", "Gmean");
    for (size_t m = 0; m < modes.size(); ++m)
        std::printf(" %10.3f", std::pow(gmean[m], 1.0 / count));
    std::printf("\n");
    return 0;
}
