/**
 * Table III: DDOS and BOWS implementation costs per SM, computed from
 * the configured design parameters (defaults reproduce the paper's
 * numbers: 560-bit SIB-PT, 192 bits of history per warp, 14-bit pending
 * delay counters).
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    // No simulations here — the table is computed from the config — but
    // the shared flags (and an empty --json artifact) are still honored
    // so every bench binary speaks the same interface.
    BenchOptions opts = parseOptions(argc, argv);
    Sweep sweep;
    sweep.name = "tab3_cost";
    runSweep(opts, sweep);

    GpuConfig cfg = makeGtx480Config();
    applyCores(opts, cfg);
    const DdosConfig &d = cfg.ddos;
    unsigned warps = cfg.maxWarpsPerCore();

    printHeader("Table III: DDOS and BOWS implementation costs per SM");

    // SIB-PT entry: PC tag (26b in the paper's accounting), confidence
    // bits, prediction bit -> 35 bits per entry.
    unsigned conf_bits = 0;
    for (unsigned v = d.confidenceThreshold; v > 0; v >>= 1)
        ++conf_bits;
    unsigned entry_bits = 26 + conf_bits + 1;
    std::printf("DDOS SIB-PT:           %u entries x %u bits = %u bits\n",
                d.sibTableEntries, entry_bits,
                d.sibTableEntries * entry_bits);

    // History registers: path (l x m) + value (2 x l x k) per warp.
    unsigned per_warp =
        d.historyLength * d.hashBits + 2 * d.historyLength * d.hashBits;
    unsigned sets = d.timeShare ? 1 : warps;
    std::printf("DDOS history regs:     %u sets x %u bits = %u bits%s\n",
                sets, per_warp, sets * per_warp,
                d.timeShare ? " (time-shared)" : "");
    std::printf("DDOS comparison:       %u-bit comparator + %u:1 %u-bit "
                "mux\n",
                d.hashBits, d.historyLength, d.hashBits);
    std::printf("DDOS hashing (XOR):    %u %u-bit XOR trees\n",
                64 / d.hashBits, d.hashBits);
    std::printf("DDOS FSM:              %u x 4-state FSMs\n", sets);

    // BOWS: pending delay counters sized for the max delay limit.
    unsigned delay_bits = 0;
    for (Cycle v = cfg.bows.maxLimit; v > 0; v >>= 1)
        ++delay_bits;
    unsigned queue_bits = 0;
    for (unsigned v = warps; v > 1; v >>= 1)
        ++queue_bits;
    std::printf("BOWS pending delay:    %u warps x %u bits = %u bits\n",
                warps, delay_bits, warps * delay_bits);
    std::printf("BOWS backed-off queue: %u warps x %u bits = %u bits\n",
                warps, queue_bits, warps * queue_bits);
    std::printf("BOWS adaptive logic:   2 instruction counters + 1 "
                "division per %llu-cycle window\n",
                static_cast<unsigned long long>(cfg.bows.window));

    unsigned total = d.sibTableEntries * entry_bits + sets * per_warp +
                     warps * delay_bits + warps * queue_bits;
    std::printf("Total storage:         %u bits (%.2f KiB) per SM\n",
                total, total / 8192.0);
    return 0;
}
