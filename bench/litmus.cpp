/**
 * Synchronization litmus matrix (docs/SYNC.md): every generated
 * primitive under every (scheduler x BOWS x occupancy) combination,
 * classified as completed / livelocked / deadlocked / watchdog_killed.
 *
 * Beyond the shared bench flags, the matrix can be cut down for smoke
 * runs:
 *
 *   --primitives=tas,ticket,...   subset of tas,backoff,ticket,array,
 *                                 barrier,system-barrier (default: all)
 *   --schedulers=LRR,GTO,CAWA,TwoLevel  subset (default: all four)
 *   --occupancies=under,exact,over  subset (default: all three)
 *   --bows=base|bows|both         BOWS axis (default: both)
 *   --devices=1,2                 device-count axis (default: 1,2)
 *   --iters=N                     rounds per warp / barrier rounds
 *   --watchdog=N                  watchdog budget in cycles
 *
 * --scale multiplies the round count like every other bench. The JSON
 * artifact (--json) is the litmus outcome-matrix document validated by
 * json_check --litmus; it deliberately omits execution knobs (--jobs,
 * --sm-threads, idle-skip, metrics interval), so artifacts are
 * byte-identical across them.
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/harness/litmus.hpp"

using namespace bowsim;
using namespace bowsim::bench;
using harness::LitmusCell;
using harness::LitmusCellResult;
using harness::LitmusOptions;
using harness::OccupancyLevel;
using harness::SyncOutcome;

namespace {

std::vector<std::string>
splitList(const char *text)
{
    std::vector<std::string> out;
    std::string item;
    for (const char *c = text; *c != '\0'; ++c) {
        if (*c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item += *c;
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

bool
parseScheduler(const std::string &text, SchedulerKind *out)
{
    static const SchedulerKind all[] = {
        SchedulerKind::LRR,
        SchedulerKind::GTO,
        SchedulerKind::CAWA,
        SchedulerKind::TwoLevel,
    };
    for (SchedulerKind kind : all) {
        if (text == toString(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

[[noreturn]] void
badFlag(const char *flag, const std::string &value)
{
    std::fprintf(stderr, "error: bad %s value '%s'\n", flag,
                 value.c_str());
    std::exit(2);
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv);
    LitmusOptions lo = harness::defaultLitmusOptions();
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--primitives=", 13) == 0) {
            lo.primitives.clear();
            for (const std::string &name : splitList(argv[i] + 13)) {
                sync::Primitive p;
                if (!sync::parsePrimitive(name, &p))
                    badFlag("--primitives", name);
                lo.primitives.push_back(p);
            }
        } else if (std::strncmp(argv[i], "--schedulers=", 13) == 0) {
            lo.schedulers.clear();
            for (const std::string &name : splitList(argv[i] + 13)) {
                SchedulerKind kind;
                if (!parseScheduler(name, &kind))
                    badFlag("--schedulers", name);
                lo.schedulers.push_back(kind);
            }
        } else if (std::strncmp(argv[i], "--occupancies=", 14) == 0) {
            lo.occupancies.clear();
            for (const std::string &name : splitList(argv[i] + 14)) {
                OccupancyLevel level;
                if (!harness::parseOccupancy(name, &level))
                    badFlag("--occupancies", name);
                lo.occupancies.push_back(level);
            }
        } else if (std::strncmp(argv[i], "--devices=", 10) == 0) {
            lo.devices.clear();
            for (const std::string &name : splitList(argv[i] + 10)) {
                const int dev = std::atoi(name.c_str());
                if (dev <= 0)
                    badFlag("--devices", name);
                lo.devices.push_back(static_cast<unsigned>(dev));
            }
        } else if (std::strncmp(argv[i], "--bows=", 7) == 0) {
            const std::string value = argv[i] + 7;
            if (value == "base")
                lo.bowsModes = {false};
            else if (value == "bows")
                lo.bowsModes = {true};
            else if (value == "both")
                lo.bowsModes = {false, true};
            else
                badFlag("--bows", value);
        } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
            lo.iters = static_cast<unsigned>(std::atoi(argv[i] + 8));
        } else if (std::strncmp(argv[i], "--watchdog=", 11) == 0) {
            lo.base.watchdogCycles =
                static_cast<Cycle>(std::atoll(argv[i] + 11));
        } else if (std::strncmp(argv[i], "--atomic-service=", 17) == 0) {
            lo.base.atomicServicePeriod =
                static_cast<unsigned>(std::atoi(argv[i] + 17));
        }
    }
    if (lo.iters == 0) {
        std::fprintf(stderr, "error: --iters must be positive\n");
        return 2;
    }
    // The shared knobs that change *what* is simulated are applied to
    // the base config before cells are built, so the artifact records
    // them; execution-only knobs (--sm-threads, --no-skip, --jobs) are
    // left to runSweep and deliberately never reach the artifact.
    applyCores(opts, lo.base);
    if (opts.hasExecMode)
        lo.base.execMode = opts.execMode;
    lo.iters = std::max(
        1u, static_cast<unsigned>(std::lround(lo.iters * opts.scale)));

    const std::vector<LitmusCell> cells = harness::buildLitmusCells(lo);
    std::vector<LitmusCellResult> results(cells.size());

    Sweep sweep;
    sweep.name = "litmus";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // Each closure writes its own exclusive results slot; the
        // runner's workers never share one.
        sweep.add(cells[i].id, cells[i].cfg,
                  std::function<KernelStats(Gpu &)>(
                      [&cells, &results, i](Gpu &gpu) {
                          results[i] =
                              harness::runLitmusCell(cells[i], gpu);
                          return results[i].stats;
                      }));
    }
    // runSweep would emit the generic sweep artifact; the litmus
    // document replaces it, so keep the path for ourselves. --devices
    // is a matrix axis here, not a per-point override: each cell's
    // device count is already baked into its config.
    BenchOptions run_opts = opts;
    run_opts.jsonPath.clear();
    run_opts.devices = 0;
    runSweep(run_opts, sweep);

    if (!opts.jsonPath.empty()) {
        std::ofstream out(opts.jsonPath);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opts.jsonPath.c_str());
            return 1;
        }
        out << harness::litmusToJson("litmus", lo, cells, results).dump()
            << "\n";
    }

    printHeader("litmus: sync-primitive outcome matrix");
    std::printf("cell");
    for (SchedulerKind sched : lo.schedulers)
        for (bool bows : lo.bowsModes)
            std::printf("\t%s/%s", toString(sched),
                        bows ? "bows" : "base");
    std::printf("\n");
    std::map<std::string, const LitmusCellResult *> by_id;
    for (std::size_t i = 0; i < cells.size(); ++i)
        by_id[cells[i].id] = &results[i];
    std::map<std::string, unsigned> totals;
    for (sync::Primitive p : lo.primitives) {
        for (OccupancyLevel level : lo.occupancies) {
            for (unsigned dev : lo.devices) {
                std::printf("%s/%s/d%u", sync::toString(p),
                            harness::toString(level), dev);
                for (SchedulerKind sched : lo.schedulers) {
                    for (bool bows : lo.bowsModes) {
                        std::string id =
                            std::string(sync::toString(p)) + "/" +
                            toString(sched) + "/" +
                            (bows ? "bows" : "base") + "/" +
                            harness::toString(level) + "/d" +
                            std::to_string(dev);
                        const LitmusCellResult *r = by_id.at(id);
                        std::printf("\t%s",
                                    harness::toString(r->outcome));
                        ++totals[harness::toString(r->outcome)];
                    }
                }
                std::printf("\n");
            }
        }
    }
    std::printf("#");
    for (const auto &[name, count] : totals)
        std::printf(" %s=%u", name.c_str(), count);
    std::printf("\n");
    return 0;
}
