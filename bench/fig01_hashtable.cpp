/**
 * Figure 1 (b-e): fine-grained synchronization on "current GPUs".
 *
 *  1b: hashtable insertion time, GPU (simulated Pascal + Fermi) vs a real
 *      serial CPU run, sweeping bucket counts (fewer buckets = more
 *      contention).
 *  1c: fraction of dynamic instructions that are synchronization
 *      overhead.
 *  1d: fraction of memory transactions due to synchronization.
 *  1e: SIMD efficiency with a single warp vs many warps (inter-warp lock
 *      conflicts cause the drop).
 */
#include "bench/bench_common.hpp"
#include "bench/ht_salt.hpp"

#include "src/cpuref/hashtable_cpu.hpp"
#include "src/kernels/hashtable.hpp"

using namespace bowsim;
using namespace bowsim::bench;

namespace {

HashtableParams
htForBuckets(unsigned buckets, double scale)
{
    HashtableParams p;
    p.insertions = static_cast<unsigned>(24576 * scale);
    p.buckets = buckets;
    p.ctas = 30;
    p.threadsPerCta = 256;
    return p;
}

/** Sweep body: one hashtable run with explicit parameters. The runner
 *  provides the Gpu, so --trace/--metrics/--no-skip all apply. */
std::function<KernelStats(Gpu &)>
htBody(const HashtableParams &p)
{
    return [p](Gpu &gpu) {
        auto h = makeHashtable(p);
        return h->run(gpu);
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    const std::vector<unsigned> buckets = {128, 256, 512, 1024, 2048,
                                           4096};

    // Three GPU points per bucket count: Fermi (reused for both 1b and
    // the 1c/1d/1e multi-warp columns — same config, same inputs),
    // Pascal, and the single-warp variant for 1e. The CPU reference is
    // a real natively-timed serial run and stays on this thread.
    Sweep sweep;
    sweep.name = "fig01_hashtable";
    for (unsigned b : buckets) {
        HashtableParams p = htForBuckets(b, opts.scale);
        GpuConfig fermi = makeGtx480Config();
        applyCores(opts, fermi);
        GpuConfig pascal = makeGtx1080TiConfig();
        applyCores(opts, pascal);
        sweep.add("HT/fermi/" + std::to_string(b), fermi, htBody(p),
                  htSalt(p));
        sweep.add("HT/pascal/" + std::to_string(b), pascal, htBody(p),
                  htSalt(p));
        HashtableParams single = p;
        single.ctas = 1;
        single.threadsPerCta = 32;
        single.insertions = 2048;
        sweep.add("HT/single/" + std::to_string(b), fermi,
                  htBody(single), htSalt(single));
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);
    auto fermiStats = [&](size_t i) -> const KernelStats & {
        return results[i * 3].stats;
    };

    printHeader("Figure 1b: HT execution time (ms), CPU vs GPU");
    std::printf("%-8s %12s %12s %12s\n", "buckets", "cpu_ms",
                "fermi_ms", "pascal_ms");
    for (size_t i = 0; i < buckets.size(); ++i) {
        HashtableParams p = htForBuckets(buckets[i], opts.scale);
        // Real, natively-timed serial CPU insertion of the same keys.
        std::vector<Word> keys(p.insertions);
        std::uint64_t x = p.seed;
        for (auto &k : keys) {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            k = static_cast<Word>((x * 0x2545F4914F6CDD1Dull) >> 16 &
                                  0x7fffffff);
        }
        CpuHashtableResult cpu = cpuHashtableInsert(keys, buckets[i], 20);

        GpuConfig fermi = makeGtx480Config();
        GpuConfig pascal = makeGtx1080TiConfig();
        std::printf("%-8u %12.4f %12.4f %12.4f\n", buckets[i],
                    cpu.milliseconds,
                    fermiStats(i).milliseconds(fermi.coreClockMhz),
                    results[i * 3 + 1].stats.milliseconds(
                        pascal.coreClockMhz));
    }

    printHeader("Figure 1c/1d: synchronization overheads (Fermi, GTO)");
    std::printf("%-8s %14s %14s %16s\n", "buckets", "sync_inst_frac",
                "sync_mem_frac", "thread_insts");
    for (size_t i = 0; i < buckets.size(); ++i) {
        const KernelStats &s = fermiStats(i);
        double mem_frac =
            s.l1Accesses == 0
                ? 0.0
                : static_cast<double>(s.syncMemTransactions) /
                      s.l1Accesses;
        std::printf("%-8u %14.3f %14.3f %16llu\n", buckets[i],
                    s.syncInstructionFraction(), mem_frac,
                    static_cast<unsigned long long>(s.threadInstructions));
    }

    printHeader("Figure 1e: SIMD efficiency, single warp vs many warps");
    std::printf("%-8s %14s %14s\n", "buckets", "single_warp",
                "multi_warp");
    for (size_t i = 0; i < buckets.size(); ++i) {
        std::printf("%-8u %14.3f %14.3f\n", buckets[i],
                    results[i * 3 + 2].stats.simdEfficiency(),
                    fermiStats(i).simdEfficiency());
    }
    return 0;
}
