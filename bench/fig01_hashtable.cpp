/**
 * Figure 1 (b-e): fine-grained synchronization on "current GPUs".
 *
 *  1b: hashtable insertion time, GPU (simulated Pascal + Fermi) vs a real
 *      serial CPU run, sweeping bucket counts (fewer buckets = more
 *      contention).
 *  1c: fraction of dynamic instructions that are synchronization
 *      overhead.
 *  1d: fraction of memory transactions due to synchronization.
 *  1e: SIMD efficiency with a single warp vs many warps (inter-warp lock
 *      conflicts cause the drop).
 */
#include "bench/bench_common.hpp"

#include "src/cpuref/hashtable_cpu.hpp"
#include "src/kernels/hashtable.hpp"

using namespace bowsim;
using namespace bowsim::bench;

namespace {

HashtableParams
htForBuckets(unsigned buckets, double scale)
{
    HashtableParams p;
    p.insertions = static_cast<unsigned>(24576 * scale);
    p.buckets = buckets;
    p.ctas = 30;
    p.threadsPerCta = 256;
    return p;
}

KernelStats
runHt(const GpuConfig &cfg, const HashtableParams &p)
{
    Gpu gpu(cfg);
    auto h = makeHashtable(p);
    return h->run(gpu);
}

}  // namespace

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    const std::vector<unsigned> buckets = {128, 256, 512, 1024, 2048,
                                           4096};

    printHeader("Figure 1b: HT execution time (ms), CPU vs GPU");
    std::printf("%-8s %12s %12s %12s\n", "buckets", "cpu_ms",
                "fermi_ms", "pascal_ms");
    for (unsigned b : buckets) {
        HashtableParams p = htForBuckets(b, scale);
        // Real, natively-timed serial CPU insertion of the same keys.
        std::vector<Word> keys(p.insertions);
        std::uint64_t x = p.seed;
        for (auto &k : keys) {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            k = static_cast<Word>((x * 0x2545F4914F6CDD1Dull) >> 16 &
                                  0x7fffffff);
        }
        CpuHashtableResult cpu = cpuHashtableInsert(keys, b, 20);

        GpuConfig fermi = makeGtx480Config();
        KernelStats fs = runHt(fermi, p);
        GpuConfig pascal = makeGtx1080TiConfig();
        KernelStats ps = runHt(pascal, p);
        std::printf("%-8u %12.4f %12.4f %12.4f\n", b, cpu.milliseconds,
                    fs.milliseconds(fermi.coreClockMhz),
                    ps.milliseconds(pascal.coreClockMhz));
    }

    printHeader("Figure 1c/1d: synchronization overheads (Fermi, GTO)");
    std::printf("%-8s %14s %14s %16s\n", "buckets", "sync_inst_frac",
                "sync_mem_frac", "thread_insts");
    std::vector<KernelStats> sweep;
    for (unsigned b : buckets) {
        KernelStats s = runHt(makeGtx480Config(), htForBuckets(b, scale));
        sweep.push_back(s);
        double mem_frac =
            s.l1Accesses == 0
                ? 0.0
                : static_cast<double>(s.syncMemTransactions) /
                      s.l1Accesses;
        std::printf("%-8u %14.3f %14.3f %16llu\n", b,
                    s.syncInstructionFraction(), mem_frac,
                    static_cast<unsigned long long>(s.threadInstructions));
    }

    printHeader("Figure 1e: SIMD efficiency, single warp vs many warps");
    std::printf("%-8s %14s %14s\n", "buckets", "single_warp",
                "multi_warp");
    for (size_t i = 0; i < buckets.size(); ++i) {
        HashtableParams p = htForBuckets(buckets[i], scale);
        p.ctas = 1;
        p.threadsPerCta = 32;
        p.insertions = 2048;
        KernelStats single = runHt(makeGtx480Config(), p);
        std::printf("%-8u %14.3f %14.3f\n", buckets[i],
                    single.simdEfficiency(), sweep[i].simdEfficiency());
    }
    return 0;
}
