#ifndef BOWSIM_BENCH_HT_SALT_HPP
#define BOWSIM_BENCH_HT_SALT_HPP

#include <string>

#include "src/harness/fingerprint.hpp"
#include "src/kernels/hashtable.hpp"

namespace bowsim::bench {

/**
 * Cache salt for a hashtable gpuBody sweep point
 * (SweepPoint::cacheSalt): the assembled ISA of the parameterized
 * kernel plus every HashtableParams field the closure bakes in.
 * Editing the hashtable kernel source or any parameter changes the
 * salt and invalidates the cached result. Shared by every bench that
 * sweeps makeHashtable closures (fig01, fig03, fig16).
 */
inline std::string
htSalt(const HashtableParams &p)
{
    return harness::fingerprintPrograms(*makeHashtable(p)) + "/i" +
           std::to_string(p.insertions) + "/b" +
           std::to_string(p.buckets) + "/c" + std::to_string(p.ctas) +
           "/t" + std::to_string(p.threadsPerCta) + "/d" +
           std::to_string(p.delayFactor) + "/s" +
           std::to_string(p.seed);
}

}  // namespace bowsim::bench

#endif  // BOWSIM_BENCH_HT_SALT_HPP
