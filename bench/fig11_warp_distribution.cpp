/**
 * Figure 11: average fraction of resident warps sitting in the
 * backed-off state, as the back-off delay limit grows. The delay has no
 * visible effect until it exceeds the natural spin-iteration latency of
 * each benchmark, then the backed-off population climbs.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    printHeader("Figure 11: backed-off warp fraction vs delay limit "
                "(GTO+BOWS, DDOS)");
    std::printf("%-6s %8s %8s %8s %8s %8s %8s %8s\n", "kernel", "GTO",
                "B(0)", "B(500)", "B(1000)", "B(3000)", "B(5000)",
                "B(adapt)");
    struct Mode {
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {false, false, 0},  {true, false, 0},    {true, false, 500},
        {true, false, 1000}, {true, false, 3000}, {true, false, 5000},
        {true, true, 0},
    };
    for (const std::string &name : syncKernelNames()) {
        std::printf("%-6s", name.c_str());
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            KernelStats s = runBenchmark(cfg, name, scale);
            std::printf(" %8.3f", s.backedOffFraction());
        }
        std::printf("\n");
    }
    return 0;
}
