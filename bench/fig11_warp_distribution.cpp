/**
 * Figure 11: average fraction of resident warps sitting in the
 * backed-off state, as the back-off delay limit grows. The delay has no
 * visible effect until it exceeds the natural spin-iteration latency of
 * each benchmark, then the backed-off population climbs.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("Figure 11: backed-off warp fraction vs delay limit "
                "(GTO+BOWS, DDOS)");
    std::printf("%-6s %8s %8s %8s %8s %8s %8s %8s\n", "kernel", "GTO",
                "B(0)", "B(500)", "B(1000)", "B(3000)", "B(5000)",
                "B(adapt)");
    struct Mode {
        const char *label;
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {"GTO", false, false, 0},     {"B0", true, false, 0},
        {"B500", true, false, 500},   {"B1000", true, false, 1000},
        {"B3000", true, false, 3000}, {"B5000", true, false, 5000},
        {"Badapt", true, true, 0},
    };

    const std::vector<std::string> kernels = syncKernelNames();
    Sweep sweep;
    sweep.name = "fig11_warp_distribution";
    for (const std::string &name : kernels) {
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            sweep.add(name + "/" + m.label, name, cfg, opts.scale);
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);
    for (size_t k = 0; k < kernels.size(); ++k) {
        std::printf("%-6s", kernels[k].c_str());
        for (size_t m = 0; m < modes.size(); ++m)
            std::printf(" %8.3f",
                        results[k * modes.size() + m]
                            .stats.backedOffFraction());
        std::printf("\n");
    }
    return 0;
}
