/**
 * Microbenchmarks of the simulator's hot components (google-benchmark).
 * These gate performance regressions in the per-cycle machinery: DDOS
 * hashing/history updates run on every setp, the SIB-PT on every
 * backward branch, the cache and coalescer on every memory transaction.
 */
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/arch/simt_stack.hpp"
#include "src/core/ddos/hashing.hpp"
#include "src/core/ddos/history.hpp"
#include "src/core/ddos/sib_table.hpp"
#include "src/isa/assembler.hpp"
#include "src/kernels/atm.hpp"
#include "src/kernels/registry.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/coalescer.hpp"
#include "src/metrics/sampler.hpp"
#include "src/sim/gpu.hpp"

namespace {

using namespace bowsim;

void
BM_HashXor(benchmark::State &state)
{
    std::uint64_t v = 0x123456789abcdef0ull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hashHistory(HashKind::Xor, 8, v));
        v += 0x9e3779b9;
    }
}
BENCHMARK(BM_HashXor);

void
BM_HistoryInsertSpinning(benchmark::State &state)
{
    DdosConfig cfg;
    HistoryRegisters h(cfg);
    std::uint32_t i = 0;
    for (auto _ : state) {
        h.insert(i & 1 ? 0x7 : 0x2, 0x1, 0x0);
        ++i;
    }
    benchmark::DoNotOptimize(h.spinning());
}
BENCHMARK(BM_HistoryInsertSpinning);

void
BM_SibTableLookup(benchmark::State &state)
{
    DdosConfig cfg;
    SibTable t(cfg);
    for (Pc pc = 0; pc < 8; ++pc) {
        for (unsigned i = 0; i < 4; ++i)
            t.onSpinningBranch(pc);
    }
    Pc pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.isConfirmed(pc));
        pc = (pc + 1) % 16;
    }
}
BENCHMARK(BM_SibTableLookup);

void
BM_CacheAccessHit(benchmark::State &state)
{
    CacheConfig cfg{16 * 1024, 4, 128, 32};
    Cache c(cfg);
    for (Addr a = 0; a < 16 * 1024; a += 128)
        c.fill(a, false, nullptr);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false));
        a = (a + 128) % (16 * 1024);
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CoalesceUnitStride(benchmark::State &state)
{
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned l = 0; l < kWarpSize; ++l)
        addrs[l] = 0x1000 + 8 * l;
    for (auto _ : state)
        benchmark::DoNotOptimize(coalesce(addrs, kFullMask));
}
BENCHMARK(BM_CoalesceUnitStride);

void
BM_SimtStackDivergeReconverge(benchmark::State &state)
{
    Instruction bra;
    bra.op = Opcode::Bra;
    bra.guard = 0;
    bra.target = 10;
    bra.reconvergence = 20;
    for (auto _ : state) {
        SimtStack s;
        s.reset(kFullMask);
        s.branch(bra, 0xffff);
        for (Pc pc = 10; pc < 20; ++pc)
            s.advance();
        for (Pc pc = 1; pc < 20; ++pc)
            s.advance();
        benchmark::DoNotOptimize(s.activeMask());
    }
}
BENCHMARK(BM_SimtStackDivergeReconverge);

void
BM_AssembleSpinKernel(benchmark::State &state)
{
    const std::string src = R"(
.kernel spin
.param 2
  ld.param.u64 %r1, [0];
  ld.param.u64 %r2, [8];
LOOP:
  atom.global.cas.b64 %r3, [%r1], 0, 1;
  setp.ne.s64 %p1, %r3, 0;
  @%p1 bra LOOP;
  atom.global.exch.b64 %r4, [%r1], 0;
  exit;
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(assemble(src));
}
BENCHMARK(BM_AssembleSpinKernel);

/**
 * End-to-end cycle loop: one tiny single-SM kernel run per iteration.
 * This is the macro guard on SmCore::cycle / arbitration / LD-ST
 * regressions that the component benchmarks above cannot see.
 */
void
BM_MicroCycleLoop(benchmark::State &state)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 1;
    const std::string name = syncKernelNames().front();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Gpu gpu(cfg);
        auto h = makeBenchmark(name, 0.05);
        cycles += h->run(gpu).cycles;
    }
    benchmark::DoNotOptimize(cycles);
    state.counters["sim_cycles_per_iter"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MicroCycleLoop)->Name("micro_cycle_loop")
    ->Unit(benchmark::kMillisecond);

/**
 * Idle-dominated counterpart to micro_cycle_loop: two accounts mean a
 * single serialized critical section, and an adaptive BOWS limit floored
 * at 4000 cycles parks every loser warp for thousands of cycles while
 * the one lock holder drains its critical section. Most cycles have no
 * issue on the (single) SM, which is exactly the shape the idle-cycle
 * fast-forward targets (docs/PERF.md). Set BOWSIM_NO_SKIP=1 to measure
 * the cycle-by-cycle baseline; results are bit-identical either way.
 */
void
BM_MicroBackoffIdle(benchmark::State &state)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 1;
    cfg.spinDetect = SpinDetect::Ddos;
    cfg.bows.enabled = true;
    cfg.bows.adaptive = true;
    cfg.bows.minLimit = 4000;
    cfg.bows.maxLimit = 16000;
    if (const char *env = std::getenv("BOWSIM_NO_SKIP"))
        cfg.idleSkip = !(env[0] != '\0' && env[0] != '0');
    AtmParams p;
    p.transactions = 1024;
    p.accounts = 2;
    p.ctas = 2;
    p.threadsPerCta = 256;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Gpu gpu(cfg);
        auto h = makeAtm(p);
        cycles += h->run(gpu).cycles;
    }
    benchmark::DoNotOptimize(cycles);
    state.counters["sim_cycles_per_iter"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MicroBackoffIdle)->Name("micro_backoff_idle")
    ->Unit(benchmark::kMillisecond);

/**
 * micro_cycle_loop with a metrics sampler attached (interval 1000,
 * in-memory only). Compare against micro_cycle_loop, which runs the
 * identical workload with the sampler detached: the difference is the
 * full metrics cost (per-cycle compare + per-sample collection), and
 * micro_cycle_loop itself guards the detached null path, which must
 * stay within noise of the pre-metrics baseline.
 */
void
BM_MicroMetrics(benchmark::State &state)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 1;
    cfg.metricsInterval = 1000;
    const std::string name = syncKernelNames().front();
    std::uint64_t cycles = 0;
    std::uint64_t rows = 0;
    for (auto _ : state) {
        Gpu gpu(cfg);
        metrics::MetricsSampler sampler(cfg.metricsInterval);
        gpu.setMetrics(&sampler);
        auto h = makeBenchmark(name, 0.05);
        cycles += h->run(gpu).cycles;
        rows += sampler.registry().rows().size();
    }
    benchmark::DoNotOptimize(cycles);
    benchmark::DoNotOptimize(rows);
    state.counters["sim_cycles_per_iter"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
    state.counters["rows_per_iter"] = benchmark::Counter(
        static_cast<double>(rows), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MicroMetrics)->Name("micro_metrics")
    ->Unit(benchmark::kMillisecond);

}  // namespace

/**
 * Custom main instead of BENCHMARK_MAIN(): the shared bench flags
 * (--scale/--cores/--jobs/--sm-threads/--json) are stripped before
 * google-benchmark sees argv, so driver scripts can pass one flag set
 * to every binary.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> kept;
    kept.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const bool shared =
            std::strncmp(argv[i], "--scale=", 8) == 0 ||
            std::strncmp(argv[i], "--cores=", 8) == 0 ||
            std::strncmp(argv[i], "--jobs=", 7) == 0 ||
            std::strncmp(argv[i], "--sm-threads=", 13) == 0 ||
            std::strncmp(argv[i], "--json=", 7) == 0 ||
            std::strncmp(argv[i], "--metrics=", 10) == 0 ||
            std::strncmp(argv[i], "--metrics-interval=", 19) == 0 ||
            std::strcmp(argv[i], "--profile") == 0 ||
            std::strcmp(argv[i], "--progress") == 0;
        if (!shared)
            kept.push_back(argv[i]);
    }
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
