/**
 * Microbenchmarks of the simulator's hot components (google-benchmark).
 * These gate performance regressions in the per-cycle machinery: DDOS
 * hashing/history updates run on every setp, the SIB-PT on every
 * backward branch, the cache and coalescer on every memory transaction.
 */
#include <benchmark/benchmark.h>

#include "src/arch/simt_stack.hpp"
#include "src/core/ddos/hashing.hpp"
#include "src/core/ddos/history.hpp"
#include "src/core/ddos/sib_table.hpp"
#include "src/isa/assembler.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/coalescer.hpp"

namespace {

using namespace bowsim;

void
BM_HashXor(benchmark::State &state)
{
    std::uint64_t v = 0x123456789abcdef0ull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hashHistory(HashKind::Xor, 8, v));
        v += 0x9e3779b9;
    }
}
BENCHMARK(BM_HashXor);

void
BM_HistoryInsertSpinning(benchmark::State &state)
{
    DdosConfig cfg;
    HistoryRegisters h(cfg);
    std::uint32_t i = 0;
    for (auto _ : state) {
        h.insert(i & 1 ? 0x7 : 0x2, 0x1, 0x0);
        ++i;
    }
    benchmark::DoNotOptimize(h.spinning());
}
BENCHMARK(BM_HistoryInsertSpinning);

void
BM_SibTableLookup(benchmark::State &state)
{
    DdosConfig cfg;
    SibTable t(cfg);
    for (Pc pc = 0; pc < 8; ++pc) {
        for (unsigned i = 0; i < 4; ++i)
            t.onSpinningBranch(pc);
    }
    Pc pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.isConfirmed(pc));
        pc = (pc + 1) % 16;
    }
}
BENCHMARK(BM_SibTableLookup);

void
BM_CacheAccessHit(benchmark::State &state)
{
    CacheConfig cfg{16 * 1024, 4, 128, 32};
    Cache c(cfg);
    for (Addr a = 0; a < 16 * 1024; a += 128)
        c.fill(a, false, nullptr);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false));
        a = (a + 128) % (16 * 1024);
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CoalesceUnitStride(benchmark::State &state)
{
    std::array<Addr, kWarpSize> addrs{};
    for (unsigned l = 0; l < kWarpSize; ++l)
        addrs[l] = 0x1000 + 8 * l;
    for (auto _ : state)
        benchmark::DoNotOptimize(coalesce(addrs, kFullMask));
}
BENCHMARK(BM_CoalesceUnitStride);

void
BM_SimtStackDivergeReconverge(benchmark::State &state)
{
    Instruction bra;
    bra.op = Opcode::Bra;
    bra.guard = 0;
    bra.target = 10;
    bra.reconvergence = 20;
    for (auto _ : state) {
        SimtStack s;
        s.reset(kFullMask);
        s.branch(bra, 0xffff);
        for (Pc pc = 10; pc < 20; ++pc)
            s.advance();
        for (Pc pc = 1; pc < 20; ++pc)
            s.advance();
        benchmark::DoNotOptimize(s.activeMask());
    }
}
BENCHMARK(BM_SimtStackDivergeReconverge);

void
BM_AssembleSpinKernel(benchmark::State &state)
{
    const std::string src = R"(
.kernel spin
.param 2
  ld.param.u64 %r1, [0];
  ld.param.u64 %r2, [8];
LOOP:
  atom.global.cas.b64 %r3, [%r1], 0, 1;
  setp.ne.s64 %p1, %r3, 0;
  @%p1 bra LOOP;
  atom.global.exch.b64 %r4, [%r1], 0;
  exit;
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(assemble(src));
}
BENCHMARK(BM_AssembleSpinKernel);

}  // namespace

BENCHMARK_MAIN();
