/**
 * Figure 13: BOWS impact on dynamic overheads across back-off delay
 * limits — (a) dynamic thread-instruction count, (b) memory (L1D)
 * transactions, (c) SIMD efficiency. Instruction counts and memory
 * transactions are normalized to plain GTO.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    struct Mode {
        const char *label;
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {"GTO", false, false, 0},    {"B0", true, false, 0},
        {"B500", true, false, 500},  {"B1000", true, false, 1000},
        {"B3000", true, false, 3000}, {"B5000", true, false, 5000},
        {"Badapt", true, true, 0},
    };

    std::vector<std::vector<KernelStats>> all;
    for (const std::string &name : syncKernelNames()) {
        std::vector<KernelStats> row;
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            row.push_back(runBenchmark(cfg, name, scale));
        }
        all.push_back(std::move(row));
    }

    auto table = [&](const char *title, auto metric, bool normalize) {
        printHeader(title);
        std::printf("%-6s", "kernel");
        for (const Mode &m : modes)
            std::printf(" %8s", m.label);
        std::printf("\n");
        std::vector<double> gmean(modes.size(), 1.0);
        for (size_t k = 0; k < all.size(); ++k) {
            std::printf("%-6s", syncKernelNames()[k].c_str());
            double base = metric(all[k][0]);
            for (size_t m = 0; m < modes.size(); ++m) {
                double v = metric(all[k][m]);
                double out = normalize && base != 0 ? v / base : v;
                gmean[m] *= out;
                std::printf(" %8.3f", out);
            }
            std::printf("\n");
        }
        std::printf("%-6s", "Gmean");
        for (size_t m = 0; m < modes.size(); ++m)
            std::printf(" %8.3f", std::pow(gmean[m], 1.0 / all.size()));
        std::printf("\n\n");
    };

    table("Figure 13a: dynamic instruction count (normalized to GTO)",
          [](const KernelStats &s) {
              return static_cast<double>(s.threadInstructions);
          },
          true);
    table("Figure 13b: L1D memory transactions (normalized to GTO)",
          [](const KernelStats &s) {
              return static_cast<double>(s.l1Accesses);
          },
          true);
    table("Figure 13c: SIMD efficiency (absolute)",
          [](const KernelStats &s) { return s.simdEfficiency(); }, false);
    return 0;
}
