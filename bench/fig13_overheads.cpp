/**
 * Figure 13: BOWS impact on dynamic overheads across back-off delay
 * limits — (a) dynamic thread-instruction count, (b) memory (L1D)
 * transactions, (c) SIMD efficiency. Instruction counts and memory
 * transactions are normalized to plain GTO.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    struct Mode {
        const char *label;
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {"GTO", false, false, 0},    {"B0", true, false, 0},
        {"B500", true, false, 500},  {"B1000", true, false, 1000},
        {"B3000", true, false, 3000}, {"B5000", true, false, 5000},
        {"Badapt", true, true, 0},
    };

    const std::vector<std::string> kernels = syncKernelNames();
    Sweep sweep;
    sweep.name = "fig13_overheads";
    for (const std::string &name : kernels) {
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            sweep.add(name + "/" + m.label, name, cfg, opts.scale);
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);

    auto table = [&](const char *title, auto metric, bool normalize) {
        printHeader(title);
        std::printf("%-6s", "kernel");
        for (const Mode &m : modes)
            std::printf(" %8s", m.label);
        std::printf("\n");
        std::vector<double> gmean(modes.size(), 1.0);
        for (size_t k = 0; k < kernels.size(); ++k) {
            std::printf("%-6s", kernels[k].c_str());
            double base = metric(results[k * modes.size()].stats);
            for (size_t m = 0; m < modes.size(); ++m) {
                double v = metric(results[k * modes.size() + m].stats);
                double out = normalize && base != 0 ? v / base : v;
                gmean[m] *= out;
                std::printf(" %8.3f", out);
            }
            std::printf("\n");
        }
        std::printf("%-6s", "Gmean");
        for (size_t m = 0; m < modes.size(); ++m)
            std::printf(" %8.3f",
                        std::pow(gmean[m], 1.0 / kernels.size()));
        std::printf("\n\n");
    };

    table("Figure 13a: dynamic instruction count (normalized to GTO)",
          [](const KernelStats &s) {
              return static_cast<double>(s.threadInstructions);
          },
          true);
    table("Figure 13b: L1D memory transactions (normalized to GTO)",
          [](const KernelStats &s) {
              return static_cast<double>(s.l1Accesses);
          },
          true);
    table("Figure 13c: SIMD efficiency (absolute)",
          [](const KernelStats &s) { return s.simdEfficiency(); }, false);
    return 0;
}
