/**
 * Figure 9: normalized execution time (a) and dynamic energy (b) of
 * {LRR, GTO, CAWA} x {base, +BOWS} on the busy-wait synchronization
 * kernels, GTX480 (Fermi) configuration. Everything is normalized to
 * LRR, as in the paper. BOWS uses the adaptive delay limit and DDOS
 * detection.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    printHeader("Figure 9a/9b: exec time and energy normalized to LRR "
                "(GTX480)");
    std::printf("%-6s | %7s %7s %7s %7s %7s %7s | %7s %7s %7s %7s %7s "
                "%7s\n",
                "kernel", "LRR", "LRR+B", "GTO", "GTO+B", "CAWA",
                "CAWA+B", "eLRR", "eLRR+B", "eGTO", "eGTO+B", "eCAWA",
                "eCAWA+B");

    double time_gmean[6] = {1, 1, 1, 1, 1, 1};
    double energy_gmean[6] = {1, 1, 1, 1, 1, 1};
    unsigned count = 0;

    for (const std::string &name : syncKernelNames()) {
        double cycles[6];
        double energy[6];
        unsigned i = 0;
        for (SchedulerKind sched : {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA}) {
            for (bool bows : {false, true}) {
                GpuConfig cfg = makeGtx480Config();
                cfg.scheduler = sched;
                cfg.bows.enabled = bows;
                KernelStats s = runBenchmark(cfg, name, scale);
                cycles[i] = static_cast<double>(s.cycles);
                energy[i] = s.energyNj;
                ++i;
            }
        }
        // Reorder to LRR, LRR+B, GTO, GTO+B, CAWA, CAWA+B and normalize
        // to plain LRR.
        std::printf("%-6s |", name.c_str());
        for (unsigned k = 0; k < 6; ++k)
            std::printf(" %7.3f", cycles[k] / cycles[0]);
        std::printf(" |");
        for (unsigned k = 0; k < 6; ++k)
            std::printf(" %7.3f", energy[k] / energy[0]);
        std::printf("\n");
        for (unsigned k = 0; k < 6; ++k) {
            time_gmean[k] *= cycles[k] / cycles[0];
            energy_gmean[k] *= energy[k] / energy[0];
        }
        ++count;
    }
    std::printf("%-6s |", "Gmean");
    for (unsigned k = 0; k < 6; ++k)
        std::printf(" %7.3f", std::pow(time_gmean[k], 1.0 / count));
    std::printf(" |");
    for (unsigned k = 0; k < 6; ++k)
        std::printf(" %7.3f", std::pow(energy_gmean[k], 1.0 / count));
    std::printf("\n");

    std::printf("\n# BOWS speedup vs its own baseline (gmean): "
                "LRR %.2fx, GTO %.2fx, CAWA %.2fx\n",
                std::pow(time_gmean[0] / time_gmean[1], 1.0 / count),
                std::pow(time_gmean[2] / time_gmean[3], 1.0 / count),
                std::pow(time_gmean[4] / time_gmean[5], 1.0 / count));
    return 0;
}
