/**
 * Figure 9: normalized execution time (a) and dynamic energy (b) of
 * {LRR, GTO, CAWA} x {base, +BOWS} on the busy-wait synchronization
 * kernels, GTX480 (Fermi) configuration. Everything is normalized to
 * LRR, as in the paper. BOWS uses the adaptive delay limit and DDOS
 * detection.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("Figure 9a/9b: exec time and energy normalized to LRR "
                "(GTX480)");
    std::printf("%-6s | %7s %7s %7s %7s %7s %7s | %7s %7s %7s %7s %7s "
                "%7s\n",
                "kernel", "LRR", "LRR+B", "GTO", "GTO+B", "CAWA",
                "CAWA+B", "eLRR", "eLRR+B", "eGTO", "eGTO+B", "eCAWA",
                "eCAWA+B");

    const char *labels[6] = {"LRR",  "LRR+B",  "GTO",
                             "GTO+B", "CAWA", "CAWA+B"};
    const std::vector<std::string> kernels = syncKernelNames();
    Sweep sweep;
    sweep.name = "fig09_fermi";
    for (const std::string &name : kernels) {
        unsigned i = 0;
        for (SchedulerKind sched : {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA}) {
            for (bool bows : {false, true}) {
                GpuConfig cfg = makeGtx480Config();
                applyCores(opts, cfg);
                cfg.scheduler = sched;
                cfg.bows.enabled = bows;
                sweep.add(name + "/" + labels[i], name, cfg, opts.scale);
                ++i;
            }
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);

    double time_gmean[6] = {1, 1, 1, 1, 1, 1};
    double energy_gmean[6] = {1, 1, 1, 1, 1, 1};
    unsigned count = 0;
    for (size_t k = 0; k < kernels.size(); ++k) {
        double cycles[6];
        double energy[6];
        for (unsigned i = 0; i < 6; ++i) {
            const KernelStats &s = results[k * 6 + i].stats;
            cycles[i] = static_cast<double>(s.cycles);
            energy[i] = s.energyNj;
        }
        // Columns are already LRR, LRR+B, GTO, GTO+B, CAWA, CAWA+B;
        // normalize to plain LRR.
        std::printf("%-6s |", kernels[k].c_str());
        for (unsigned i = 0; i < 6; ++i)
            std::printf(" %7.3f", cycles[i] / cycles[0]);
        std::printf(" |");
        for (unsigned i = 0; i < 6; ++i)
            std::printf(" %7.3f", energy[i] / energy[0]);
        std::printf("\n");
        for (unsigned i = 0; i < 6; ++i) {
            time_gmean[i] *= cycles[i] / cycles[0];
            energy_gmean[i] *= energy[i] / energy[0];
        }
        ++count;
    }
    std::printf("%-6s |", "Gmean");
    for (unsigned k = 0; k < 6; ++k)
        std::printf(" %7.3f", std::pow(time_gmean[k], 1.0 / count));
    std::printf(" |");
    for (unsigned k = 0; k < 6; ++k)
        std::printf(" %7.3f", std::pow(energy_gmean[k], 1.0 / count));
    std::printf("\n");

    std::printf("\n# BOWS speedup vs its own baseline (gmean): "
                "LRR %.2fx, GTO %.2fx, CAWA %.2fx\n",
                std::pow(time_gmean[0] / time_gmean[1], 1.0 / count),
                std::pow(time_gmean[2] / time_gmean[3], 1.0 / count),
                std::pow(time_gmean[4] / time_gmean[5], 1.0 / count));
    return 0;
}
