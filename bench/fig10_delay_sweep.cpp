/**
 * Figure 10: normalized execution time of GTO+BOWS at back-off delay
 * limits {none, 0, 500, 1000, 3000, 5000, adaptive}, using DDOS for spin
 * detection, across the busy-wait synchronization kernels. Values are
 * normalized to plain GTO (first column == 1.0 by construction).
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 0.5);
    unsigned cores = benchCores(argc, argv);

    printHeader("Figure 10: execution time vs back-off delay limit "
                "(normalized to GTO)");
    std::printf("%-6s %8s %8s %8s %8s %8s %8s %10s\n", "kernel", "GTO",
                "BOWS(0)", "B(500)", "B(1000)", "B(3000)", "B(5000)",
                "B(adapt)");

    struct Mode {
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {false, false, 0}, {true, false, 0},    {true, false, 500},
        {true, false, 1000}, {true, false, 3000}, {true, false, 5000},
        {true, true, 0},
    };

    for (const std::string &name : syncKernelNames()) {
        std::vector<double> cycles;
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            cfg.numCores = cores;
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            cfg.spinDetect = SpinDetect::Ddos;
            cycles.push_back(static_cast<double>(
                runBenchmark(cfg, name, scale).cycles));
        }
        std::printf("%-6s", name.c_str());
        for (double c : cycles)
            std::printf(" %8.3f", c / cycles[0]);
        std::printf("\n");
    }
    return 0;
}
