/**
 * Figure 10: normalized execution time of GTO+BOWS at back-off delay
 * limits {none, 0, 500, 1000, 3000, 5000, adaptive}, using DDOS for spin
 * detection, across the busy-wait synchronization kernels. Values are
 * normalized to plain GTO (first column == 1.0 by construction).
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 0.5, 8);

    printHeader("Figure 10: execution time vs back-off delay limit "
                "(normalized to GTO)");
    std::printf("%-6s %8s %8s %8s %8s %8s %8s %10s\n", "kernel", "GTO",
                "BOWS(0)", "B(500)", "B(1000)", "B(3000)", "B(5000)",
                "B(adapt)");

    struct Mode {
        const char *label;
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {"GTO", false, false, 0},     {"B0", true, false, 0},
        {"B500", true, false, 500},   {"B1000", true, false, 1000},
        {"B3000", true, false, 3000}, {"B5000", true, false, 5000},
        {"Badapt", true, true, 0},
    };

    const std::vector<std::string> kernels = syncKernelNames();
    Sweep sweep;
    sweep.name = "fig10_delay_sweep";
    for (const std::string &name : kernels) {
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            cfg.spinDetect = SpinDetect::Ddos;
            sweep.add(name + "/" + m.label, name, cfg, opts.scale);
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);
    for (size_t k = 0; k < kernels.size(); ++k) {
        const double base = static_cast<double>(
            results[k * modes.size()].stats.cycles);
        std::printf("%-6s", kernels[k].c_str());
        for (size_t m = 0; m < modes.size(); ++m)
            std::printf(" %8.3f",
                        static_cast<double>(
                            results[k * modes.size() + m].stats.cycles) /
                            base);
        std::printf("\n");
    }
    return 0;
}
