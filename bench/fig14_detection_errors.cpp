/**
 * Figure 14: overheads due to DDOS detection errors. With XOR hashing
 * there are no false detections and synchronization-free kernels run
 * identically to the baseline. With MODULO hashing, kernels whose loop
 * induction variables advance by large powers of two (MS, HL) are
 * falsely classified as spinning; under BOWS with a large fixed back-off
 * delay this throttles productive loops and degrades performance.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("Figure 14: sync-free kernels, exec time normalized to "
                "GTO (BOWS(5000) under MODULO vs XOR hashing)");
    std::printf("%-6s %10s %12s %10s %10s\n", "kernel", "modulo",
                "modulo_fsdr", "xor", "xor_fsdr");

    const std::vector<std::string> kernels = syncFreeKernelNames();
    Sweep sweep;
    sweep.name = "fig14_detection_errors";
    for (const std::string &name : kernels) {
        GpuConfig base = makeGtx480Config();
        applyCores(opts, base);
        base.scheduler = SchedulerKind::GTO;
        base.bows.enabled = false;
        sweep.add(name + "/GTO", name, base, opts.scale);

        for (HashKind hash : {HashKind::Modulo, HashKind::Xor}) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = true;
            cfg.bows.adaptive = false;
            cfg.bows.delayLimit = 5000;
            cfg.ddos.hash = hash;
            sweep.add(name + "/B5000-" + toString(hash), name, cfg,
                      opts.scale);
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);

    double gmean_mod = 1.0;
    double gmean_xor = 1.0;
    unsigned count = 0;
    for (size_t k = 0; k < kernels.size(); ++k) {
        double base_cycles =
            static_cast<double>(results[k * 3].stats.cycles);
        const KernelStats &mod = results[k * 3 + 1].stats;
        const KernelStats &xr = results[k * 3 + 2].stats;
        std::printf("%-6s %10.3f %12.3f %10.3f %10.3f\n",
                    kernels[k].c_str(), mod.cycles / base_cycles,
                    mod.ddos.fsdr(), xr.cycles / base_cycles,
                    xr.ddos.fsdr());
        gmean_mod *= mod.cycles / base_cycles;
        gmean_xor *= xr.cycles / base_cycles;
        ++count;
    }
    std::printf("%-6s %10.3f %12s %10.3f\n", "Gmean",
                std::pow(gmean_mod, 1.0 / count), "",
                std::pow(gmean_xor, 1.0 / count));
    return 0;
}
