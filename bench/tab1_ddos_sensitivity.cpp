/**
 * Table I: DDOS sensitivity to design parameters. Each sub-table varies
 * one parameter and reports, averaged over the benchmark suite (the
 * busy-wait kernels provide true spin-inducing branches; they and the
 * sync-free kernels provide the non-spin backward branches that can be
 * falsely detected):
 *
 *   TSDR — true spin detection rate
 *   FSDR — false spin detection rate
 *   DPR  — detection phase ratio (confirmation time / branch lifetime)
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

namespace {

struct Row {
    double tsdr = 0.0;
    double dprTrue = 0.0;
    double fsdr = 0.0;
    double dprFalse = 0.0;
};

Row
runSuite(const DdosConfig &ddos, double scale)
{
    Row row;
    unsigned n = 0;
    std::vector<std::string> names = syncKernelNames();
    for (const std::string &s : syncFreeKernelNames())
        names.push_back(s);
    for (const std::string &name : names) {
        GpuConfig cfg = makeGtx480Config();
        cfg.scheduler = SchedulerKind::GTO;
        cfg.bows.enabled = false;  // measure detection, not scheduling
        cfg.ddos = ddos;
        KernelStats s = runBenchmark(cfg, name, scale);
        row.tsdr += s.ddos.tsdr();
        row.dprTrue += s.ddos.dprTrue();
        row.fsdr += s.ddos.fsdr();
        row.dprFalse += s.ddos.dprFalse();
        ++n;
    }
    row.tsdr /= n;
    row.dprTrue /= n;
    row.fsdr /= n;
    row.dprFalse /= n;
    return row;
}

void
print(const char *label, const Row &r)
{
    std::printf("%-24s %8.3f %8.3f %8.3f %8.3f\n", label, r.tsdr,
                r.dprTrue, r.fsdr, r.dprFalse);
}

}  // namespace

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 0.25);
    printHeader("Table I: DDOS sensitivity (averages over the suite)");
    std::printf("%-24s %8s %8s %8s %8s\n", "config", "TSDR", "DPR(T)",
                "FSDR", "DPR(F)");

    DdosConfig base;  // h=XOR, m=k=8, l=8, t=4, no time sharing

    std::printf("# hashing function (t=4, l=8)\n");
    for (HashKind h : {HashKind::Xor, HashKind::Modulo}) {
        for (unsigned bits : {4u, 8u}) {
            DdosConfig d = base;
            d.hash = h;
            d.hashBits = bits;
            char label[64];
            std::snprintf(label, sizeof label, "%s, m=k=%u", toString(h),
                          bits);
            print(label, runSuite(d, scale));
        }
    }

    std::printf("# hashed width m=k (t=4, l=8, XOR)\n");
    for (unsigned bits : {2u, 3u, 4u, 8u}) {
        DdosConfig d = base;
        d.hashBits = bits;
        char label[64];
        std::snprintf(label, sizeof label, "m=k=%u", bits);
        print(label, runSuite(d, scale));
    }

    std::printf("# confidence threshold t (m=k=8, l=8, XOR)\n");
    for (unsigned t : {2u, 4u, 8u, 12u}) {
        DdosConfig d = base;
        d.confidenceThreshold = t;
        char label[64];
        std::snprintf(label, sizeof label, "t=%u", t);
        print(label, runSuite(d, scale));
    }

    std::printf("# history length l (t=4, m=k=8, XOR)\n");
    for (unsigned l : {1u, 2u, 4u, 8u}) {
        DdosConfig d = base;
        d.historyLength = l;
        char label[64];
        std::snprintf(label, sizeof label, "l=%u", l);
        print(label, runSuite(d, scale));
    }

    std::printf("# time sharing (l=8, t=4, XOR, epoch=1000)\n");
    for (bool sh : {false, true}) {
        for (unsigned bits : {4u, 8u}) {
            DdosConfig d = base;
            d.timeShare = sh;
            d.hashBits = bits;
            char label[64];
            std::snprintf(label, sizeof label, "sh=%d, m=k=%u", sh ? 1 : 0,
                          bits);
            print(label, runSuite(d, scale));
        }
    }
    return 0;
}
