/**
 * Table I: DDOS sensitivity to design parameters. Each sub-table varies
 * one parameter and reports, averaged over the benchmark suite (the
 * busy-wait kernels provide true spin-inducing branches; they and the
 * sync-free kernels provide the non-spin backward branches that can be
 * falsely detected):
 *
 *   TSDR — true spin detection rate
 *   FSDR — false spin detection rate
 *   DPR  — detection phase ratio (confirmation time / branch lifetime)
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

namespace {

/** One labeled DDOS parameterization, run over the whole suite. */
struct Entry {
    std::string label;
    DdosConfig ddos;
};

/** A sub-table: a header comment plus its entries. */
struct Section {
    const char *header;
    std::vector<Entry> entries;
};

struct Row {
    double tsdr = 0.0;
    double dprTrue = 0.0;
    double fsdr = 0.0;
    double dprFalse = 0.0;
};

void
print(const std::string &label, const Row &r)
{
    std::printf("%-24s %8.3f %8.3f %8.3f %8.3f\n", label.c_str(), r.tsdr,
                r.dprTrue, r.fsdr, r.dprFalse);
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 0.25);
    printHeader("Table I: DDOS sensitivity (averages over the suite)");
    std::printf("%-24s %8s %8s %8s %8s\n", "config", "TSDR", "DPR(T)",
                "FSDR", "DPR(F)");

    DdosConfig base;  // h=XOR, m=k=8, l=8, t=4, no time sharing
    char label[64];

    std::vector<Section> sections;
    {
        Section s{"# hashing function (t=4, l=8)", {}};
        for (HashKind h : {HashKind::Xor, HashKind::Modulo}) {
            for (unsigned bits : {4u, 8u}) {
                DdosConfig d = base;
                d.hash = h;
                d.hashBits = bits;
                std::snprintf(label, sizeof label, "%s, m=k=%u",
                              toString(h), bits);
                s.entries.push_back({label, d});
            }
        }
        sections.push_back(std::move(s));
    }
    {
        Section s{"# hashed width m=k (t=4, l=8, XOR)", {}};
        for (unsigned bits : {2u, 3u, 4u, 8u}) {
            DdosConfig d = base;
            d.hashBits = bits;
            std::snprintf(label, sizeof label, "m=k=%u", bits);
            s.entries.push_back({label, d});
        }
        sections.push_back(std::move(s));
    }
    {
        Section s{"# confidence threshold t (m=k=8, l=8, XOR)", {}};
        for (unsigned t : {2u, 4u, 8u, 12u}) {
            DdosConfig d = base;
            d.confidenceThreshold = t;
            std::snprintf(label, sizeof label, "t=%u", t);
            s.entries.push_back({label, d});
        }
        sections.push_back(std::move(s));
    }
    {
        Section s{"# history length l (t=4, m=k=8, XOR)", {}};
        for (unsigned l : {1u, 2u, 4u, 8u}) {
            DdosConfig d = base;
            d.historyLength = l;
            std::snprintf(label, sizeof label, "l=%u", l);
            s.entries.push_back({label, d});
        }
        sections.push_back(std::move(s));
    }
    {
        Section s{"# time sharing (l=8, t=4, XOR, epoch=1000)", {}};
        for (bool sh : {false, true}) {
            for (unsigned bits : {4u, 8u}) {
                DdosConfig d = base;
                d.timeShare = sh;
                d.hashBits = bits;
                std::snprintf(label, sizeof label, "sh=%d, m=k=%u",
                              sh ? 1 : 0, bits);
                s.entries.push_back({label, d});
            }
        }
        sections.push_back(std::move(s));
    }

    std::vector<std::string> names = syncKernelNames();
    for (const std::string &s : syncFreeKernelNames())
        names.push_back(s);

    Sweep sweep;
    sweep.name = "tab1_ddos_sensitivity";
    for (const Section &sec : sections) {
        for (const Entry &e : sec.entries) {
            for (const std::string &name : names) {
                GpuConfig cfg = makeGtx480Config();
                applyCores(opts, cfg);
                cfg.scheduler = SchedulerKind::GTO;
                cfg.bows.enabled = false;  // detection, not scheduling
                cfg.ddos = e.ddos;
                sweep.add(e.label + "/" + name, name, cfg, opts.scale);
            }
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);

    size_t idx = 0;
    for (const Section &sec : sections) {
        std::printf("%s\n", sec.header);
        for (const Entry &e : sec.entries) {
            Row row;
            for (size_t n = 0; n < names.size(); ++n, ++idx) {
                const KernelStats &s = results[idx].stats;
                row.tsdr += s.ddos.tsdr();
                row.dprTrue += s.ddos.dprTrue();
                row.fsdr += s.ddos.fsdr();
                row.dprFalse += s.ddos.dprFalse();
            }
            row.tsdr /= names.size();
            row.dprTrue /= names.size();
            row.fsdr /= names.size();
            row.dprFalse /= names.size();
            print(e.label, row);
        }
    }
    return 0;
}
