/**
 * Validates a BENCH_*.json sweep artifact: the file must parse, carry a
 * "points" array of the expected size (when a count is given), and every
 * point must have ok == true. Used by the bench_smoke ctest target.
 *
 * Usage: json_check FILE [EXPECTED_POINT_COUNT]
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/log.hpp"
#include "src/harness/json.hpp"

using bowsim::harness::Json;

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr, "usage: %s FILE [EXPECTED_POINT_COUNT]\n",
                     argv[0]);
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    try {
        const Json doc = Json::parse(buf.str());
        const Json &points = doc.at("points");
        if (argc == 3) {
            const std::size_t expected =
                static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10));
            if (points.size() != expected) {
                std::fprintf(stderr,
                             "json_check: %s has %zu points, expected %zu\n",
                             argv[1], points.size(), expected);
                return 1;
            }
        }
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Json &p = points.at(i);
            if (!p.at("ok").asBool()) {
                std::fprintf(stderr, "json_check: point %s failed: %s\n",
                             p.at("id").asString().c_str(),
                             p.at("error").asString().c_str());
                return 1;
            }
        }
        std::printf("json_check: %s OK (bench=%s, %zu points)\n", argv[1],
                    doc.at("bench").asString().c_str(), points.size());
    } catch (const bowsim::FatalError &e) {
        std::fprintf(stderr, "json_check: %s invalid: %s\n", argv[1],
                     e.what());
        return 1;
    }
    return 0;
}
