/**
 * Validates bench artifacts (used by the bench_smoke ctest targets):
 *
 *   json_check FILE [EXPECTED_POINT_COUNT [EXPECTED_CACHE_HITS]]
 *                                             BENCH_*.json sweep artifact;
 *                                             the third argument asserts
 *                                             the cache block reports
 *                                             exactly that many hits
 *                                             (CI warm-run gate)
 *   json_check --compare-points A B           two sweep artifacts whose
 *                                             "points" arrays must be
 *                                             byte-identical (cache
 *                                             determinism gate; only the
 *                                             "cache" blocks may differ)
 *   json_check --trace FILE                   Chrome trace_event document
 *   json_check --metrics FILE [SWEEP POINT]   metrics time series; with a
 *                                             sweep artifact and point id,
 *                                             cross-checks the final row
 *                                             against that point's stats
 *   json_check --litmus FILE [EXPECTED_CELLS] litmus outcome matrix
 *                                             (docs/SYNC.md)
 *   json_check --sync-report FILE             sync-contention report
 *                                             (--sync-report, docs/SYNC.md)
 *
 * Sweep artifacts must parse, carry a "points" array of the expected
 * size (when a count is given), and every point must report ok == true.
 * Trace documents get the structural/property checks of
 * harness::checkChromeTrace (monotone per-track timestamps, balanced
 * B/E intervals). Metrics series get harness::checkMetricsSeries
 * (monotone cycles, grid-aligned samples, non-decreasing counters,
 * final-row/KernelStats consistency). The validation logic lives in
 * src/harness/json_check so the unit tests exercise exactly what this
 * tool runs.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/log.hpp"
#include "src/harness/json_check.hpp"

using bowsim::harness::CheckResult;
using bowsim::harness::Json;

namespace {

int
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s FILE [EXPECTED_POINT_COUNT "
                 "[EXPECTED_CACHE_HITS]]\n"
                 "       %s --compare-points A B\n"
                 "       %s --trace FILE\n"
                 "       %s --metrics FILE [SWEEP_JSON POINT_ID]\n"
                 "       %s --litmus FILE [EXPECTED_CELLS]\n"
                 "       %s --sync-report FILE\n",
                 prog, prog, prog, prog, prog, prog);
    return 2;
}

/** Finds the "stats" object of the point with @p id in @p sweep. */
const Json *
findPointStats(const Json &sweep, const std::string &id)
{
    if (!sweep.has("points"))
        bowsim::fatal("sweep artifact has no \"points\" array");
    const Json &points = sweep.at("points");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Json &p = points.at(i);
        if (p.has("id") && p.at("id").asString() == id) {
            if (!p.has("stats"))
                bowsim::fatal("point '", id, "' has no stats (failed?)");
            return &p.at("stats");
        }
    }
    bowsim::fatal("sweep artifact has no point with id '", id, "'");
}

}  // namespace

int
main(int argc, char **argv)
{
    bool trace_mode = argc >= 2 && std::strcmp(argv[1], "--trace") == 0;
    bool metrics_mode =
        argc >= 2 && std::strcmp(argv[1], "--metrics") == 0;
    bool litmus_mode =
        argc >= 2 && std::strcmp(argv[1], "--litmus") == 0;
    bool compare_mode =
        argc >= 2 && std::strcmp(argv[1], "--compare-points") == 0;
    bool sync_mode =
        argc >= 2 && std::strcmp(argv[1], "--sync-report") == 0;
    int first_file = trace_mode || metrics_mode || litmus_mode ||
                             compare_mode || sync_mode
                         ? 2
                         : 1;
    bool args_ok;
    if (trace_mode || sync_mode)
        args_ok = argc == 3;
    else if (metrics_mode)
        args_ok = argc == 3 || argc == 5;
    else if (litmus_mode)
        args_ok = argc == 3 || argc == 4;
    else if (compare_mode)
        args_ok = argc == 4;
    else
        args_ok = argc == 2 || argc == 3 || argc == 4;
    if (!args_ok)
        return usage(argv[0]);
    const char *path = argv[first_file];

    try {
        const Json doc = bowsim::harness::loadJsonFile(path);
        CheckResult res;
        if (trace_mode) {
            res = bowsim::harness::checkChromeTrace(doc);
        } else if (sync_mode) {
            res = bowsim::harness::checkSyncReport(doc);
        } else if (compare_mode) {
            const Json other = bowsim::harness::loadJsonFile(argv[3]);
            res = bowsim::harness::compareSweepPoints(doc, other);
        } else if (litmus_mode) {
            std::int64_t expected = -1;
            if (argc == 4)
                expected = std::strtol(argv[3], nullptr, 10);
            res = bowsim::harness::checkLitmusMatrix(doc, expected);
        } else if (metrics_mode) {
            Json sweep;
            const Json *stats = nullptr;
            if (argc == 5) {
                sweep = bowsim::harness::loadJsonFile(argv[3]);
                stats = findPointStats(sweep, argv[4]);
            }
            res = bowsim::harness::checkMetricsSeries(doc, stats);
        } else {
            std::int64_t expected = -1;
            std::int64_t expected_hits = -1;
            if (argc >= 3)
                expected = std::strtol(argv[2], nullptr, 10);
            if (argc == 4)
                expected_hits = std::strtol(argv[3], nullptr, 10);
            res = bowsim::harness::checkSweepArtifact(doc, expected,
                                                      expected_hits);
        }
        if (!res.ok) {
            std::fprintf(stderr, "json_check: %s: %s\n", path,
                         res.message.c_str());
            return 1;
        }
        std::printf("json_check: %s %s\n", path, res.message.c_str());
    } catch (const bowsim::FatalError &e) {
        std::fprintf(stderr, "json_check: %s invalid: %s\n", path,
                     e.what());
        return 1;
    }
    return 0;
}
