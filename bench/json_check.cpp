/**
 * Validates bench artifacts (used by the bench_smoke ctest targets):
 *
 *   json_check FILE [EXPECTED_POINT_COUNT]   BENCH_*.json sweep artifact
 *   json_check --trace FILE                  Chrome trace_event document
 *
 * Sweep artifacts must parse, carry a "points" array of the expected
 * size (when a count is given), and every point must report ok == true.
 * Trace documents get the structural/property checks of
 * harness::checkChromeTrace (monotone per-track timestamps, balanced
 * B/E intervals). The validation logic lives in src/harness/json_check
 * so the unit tests exercise exactly what this tool runs.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/log.hpp"
#include "src/harness/json_check.hpp"

using bowsim::harness::CheckResult;
using bowsim::harness::Json;

int
main(int argc, char **argv)
{
    bool trace_mode = argc >= 2 && std::strcmp(argv[1], "--trace") == 0;
    int first_file = trace_mode ? 2 : 1;
    if (argc <= first_file || argc > first_file + 2 ||
        (trace_mode && argc != 3)) {
        std::fprintf(stderr,
                     "usage: %s FILE [EXPECTED_POINT_COUNT]\n"
                     "       %s --trace FILE\n",
                     argv[0], argv[0]);
        return 2;
    }
    const char *path = argv[first_file];

    try {
        const Json doc = bowsim::harness::loadJsonFile(path);
        CheckResult res;
        if (trace_mode) {
            res = bowsim::harness::checkChromeTrace(doc);
        } else {
            std::int64_t expected = -1;
            if (argc == first_file + 2)
                expected = std::strtol(argv[first_file + 1], nullptr, 10);
            res = bowsim::harness::checkSweepArtifact(doc, expected);
        }
        if (!res.ok) {
            std::fprintf(stderr, "json_check: %s: %s\n", path,
                         res.message.c_str());
            return 1;
        }
        std::printf("json_check: %s %s\n", path, res.message.c_str());
    } catch (const bowsim::FatalError &e) {
        std::fprintf(stderr, "json_check: %s invalid: %s\n", path,
                     e.what());
        return 1;
    }
    return 0;
}
