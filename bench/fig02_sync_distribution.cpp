/**
 * Figure 2: distribution of lock-acquire attempts (lock-based kernels)
 * and wait-exit attempts (wait-and-signal kernels) under LRR, GTO and
 * CAWA. Shows that most failures are inter-warp and that the scheduling
 * policy strongly influences them.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    printHeader("Figure 2: synchronization status distribution "
                "(fractions of all attempts)");
    std::printf("%-6s %-5s %9s %9s %9s %9s %9s\n", "kernel", "sched",
                "lock_ok", "interFail", "intraFail", "wait_ok",
                "wait_fail");
    for (const std::string &name : syncKernelNames()) {
        for (SchedulerKind sched : {SchedulerKind::LRR, SchedulerKind::GTO,
                                    SchedulerKind::CAWA}) {
            GpuConfig cfg = makeGtx480Config();
            cfg.scheduler = sched;
            cfg.bows.enabled = false;
            KernelStats s = runBenchmark(cfg, name, scale);
            double total = static_cast<double>(s.outcomes.total());
            if (total == 0)
                total = 1;
            std::printf("%-6s %-5s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                        name.c_str(), toString(sched),
                        s.outcomes.lockSuccess / total,
                        s.outcomes.interWarpFail / total,
                        s.outcomes.intraWarpFail / total,
                        s.outcomes.waitExitSuccess / total,
                        s.outcomes.waitExitFail / total);
        }
    }
    return 0;
}
