/**
 * Figure 2: distribution of lock-acquire attempts (lock-based kernels)
 * and wait-exit attempts (wait-and-signal kernels) under LRR, GTO and
 * CAWA. Shows that most failures are inter-warp and that the scheduling
 * policy strongly influences them.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("Figure 2: synchronization status distribution "
                "(fractions of all attempts)");
    std::printf("%-6s %-5s %9s %9s %9s %9s %9s\n", "kernel", "sched",
                "lock_ok", "interFail", "intraFail", "wait_ok",
                "wait_fail");

    const std::vector<SchedulerKind> scheds = {
        SchedulerKind::LRR, SchedulerKind::GTO, SchedulerKind::CAWA};
    const std::vector<std::string> kernels = syncKernelNames();
    Sweep sweep;
    sweep.name = "fig02_sync_distribution";
    for (const std::string &name : kernels) {
        for (SchedulerKind sched : scheds) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = sched;
            cfg.bows.enabled = false;
            sweep.add(name + "/" + toString(sched), name, cfg,
                      opts.scale);
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);
    for (size_t k = 0; k < kernels.size(); ++k) {
        for (size_t m = 0; m < scheds.size(); ++m) {
            const KernelStats &s = results[k * scheds.size() + m].stats;
            double total = static_cast<double>(s.outcomes.total());
            if (total == 0)
                total = 1;
            std::printf("%-6s %-5s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                        kernels[k].c_str(), toString(scheds[m]),
                        s.outcomes.lockSuccess / total,
                        s.outcomes.interWarpFail / total,
                        s.outcomes.intraWarpFail / total,
                        s.outcomes.waitExitSuccess / total,
                        s.outcomes.waitExitFail / total);
        }
    }
    return 0;
}
