/**
 * Figure 16: BOWS sensitivity to contention on the hashtable — (a)
 * speedup of GTO+BOWS over GTO as bucket count varies, (b) dynamic
 * instruction count normalized to GTO, alongside an "ideal blocking"
 * instruction count: what a perfect queuing lock (an idealized HQL [36])
 * would execute, i.e., every acquire succeeds on its first attempt.
 * The gap between BOWS and ideal-blocking shrinks as buckets grow.
 */
#include "bench/bench_common.hpp"
#include "bench/ht_salt.hpp"

#include "src/kernels/hashtable.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("Figure 16: HT contention sweep (GTO vs GTO+BOWS "
                "adaptive)");
    std::printf("%-8s %9s %12s %14s %16s\n", "buckets", "speedup",
                "bows_insts", "ideal_insts", "bows_fail_per_ok");

    const std::vector<unsigned> buckets = {128, 256, 512, 1024, 2048,
                                           4096};
    Sweep sweep;
    sweep.name = "fig16_contention";
    for (unsigned b : buckets) {
        for (int bows = 0; bows < 2; ++bows) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = bows != 0;
            HashtableParams p;
            p.insertions = static_cast<unsigned>(24576 * opts.scale);
            p.buckets = b;
            p.ctas = 30;
            p.threadsPerCta = 256;
            sweep.add("HT/" + std::to_string(b) +
                          (bows ? "/BOWS" : "/GTO"),
                      cfg,
                      std::function<KernelStats(Gpu &)>([p](Gpu &gpu) {
                          auto h = makeHashtable(p);
                          return h->run(gpu);
                      }),
                      htSalt(p));
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);
    for (size_t i = 0; i < buckets.size(); ++i) {
        const KernelStats &base = results[i * 2].stats;
        const KernelStats &bows = results[i * 2 + 1].stats;
        // Ideal blocking: each successful acquire costs exactly one
        // sync-region iteration; all retry iterations disappear.
        double sync_per_success =
            base.outcomes.total() == 0
                ? 0.0
                : static_cast<double>(base.syncThreadInstructions) /
                      base.outcomes.total();
        double ideal = static_cast<double>(base.threadInstructions) -
                       static_cast<double>(base.syncThreadInstructions) +
                       sync_per_success * base.outcomes.lockSuccess;
        double fails = static_cast<double>(bows.outcomes.interWarpFail +
                                           bows.outcomes.intraWarpFail);
        std::printf("%-8u %9.3f %12.3f %14.3f %16.2f\n", buckets[i],
                    static_cast<double>(base.cycles) / bows.cycles,
                    static_cast<double>(bows.threadInstructions) /
                        base.threadInstructions,
                    ideal / base.threadInstructions,
                    bows.outcomes.lockSuccess
                        ? fails / bows.outcomes.lockSuccess
                        : 0.0);
    }
    return 0;
}
