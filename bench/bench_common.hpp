#ifndef BOWSIM_BENCH_BENCH_COMMON_HPP
#define BOWSIM_BENCH_BENCH_COMMON_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/result_cache.hpp"
#include "src/harness/sweep.hpp"
#include "src/kernels/registry.hpp"
#include "src/metrics/kernel_profile.hpp"
#include "src/metrics/progress.hpp"
#include "src/sim/gpu.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses. Each bench
 * binary regenerates one table or figure of the paper; rows print as
 * tab-separated text so results can be diffed and plotted directly.
 *
 * Every binary declares its simulations as a Sweep — an ordered list of
 * independent (kernel, GpuConfig) points — and executes it through
 * runSweep(), which runs the points on a worker pool (--jobs=N /
 * BOWSIM_JOBS) and optionally writes a machine-readable artifact
 * (--json=FILE). Results come back in declaration order, so the printed
 * tables are byte-identical regardless of the worker count.
 */

namespace bowsim::bench {

using harness::SweepPoint;
using harness::SweepResult;

/** Command-line options shared by every bench binary (see docs/BENCH.md). */
struct BenchOptions {
    /** Workload scale factor (--scale / BOWSIM_SCALE). */
    double scale = 1.0;
    /** Simulated core count override; 0 leaves each config untouched
     *  (--cores / BOWSIM_CORES). */
    unsigned cores = 0;
    /**
     * Simulated device (GPU) count override; 0 leaves each config
     * untouched (--devices / BOWSIM_DEVICES). Values above 1 shard the
     * launch across that many devices joined by the modeled
     * inter-device link (docs/PERF.md, "Device sharding"). Recorded per
     * point as config.num_devices when it differs from 1.
     */
    unsigned devices = 0;
    /** Sweep worker threads; 0 resolves via BOWSIM_JOBS, then the
     *  hardware concurrency (--jobs / BOWSIM_JOBS). */
    unsigned jobs = 0;
    /**
     * Per-simulation SM worker threads (--sm-threads / BOWSIM_SM_THREADS):
     * forces GpuConfig::smThreads on every point. 0 leaves each config
     * untouched (the default of 1 means sequential). Unlike --jobs, which
     * parallelizes across independent sweep points, this parallelizes the
     * compute phase inside one simulation; results are bit-identical for
     * any value (docs/PERF.md). Recorded per point as config.sm_threads.
     */
    unsigned smThreads = 0;
    /** When set, runSweep() writes the sweep artifact here (--json). */
    std::string jsonPath;
    /**
     * When set, every registry-kernel point records a Chrome trace to a
     * per-point file derived from this base path (--trace /
     * BOWSIM_TRACE): "out.json" becomes "out.HT_B500.json" for point
     * "HT/B500". Per-point files keep tracing safe under --jobs > 1.
     */
    std::string tracePath;
    /**
     * Trace category filter (--trace-filter / BOWSIM_TRACE_FILTER):
     * comma-separated category tokens (pipe, mem, ddos, bows, barrier,
     * or the alias sync = ddos|bows|barrier; docs/TRACING.md) applied to
     * every point's trace recorder. Only meaningful with --trace.
     */
    std::string traceFilter;
    /**
     * Escape hatch for the idle-cycle fast-forward (--no-skip /
     * BOWSIM_NO_SKIP): forces GpuConfig::idleSkip off on every point.
     * Results are bit-identical either way (that is tested); the flag
     * exists for wall-clock comparisons and for ruling the skip logic
     * out when debugging. Recorded per point in the JSON artifact as
     * config.idle_skip.
     */
    bool noSkip = false;
    /**
     * When set, every runner-constructed point records a sampled metrics
     * time series to a per-point file derived from this base path
     * (--metrics / BOWSIM_METRICS), named like --trace fan-out. A ".csv"
     * suffix selects CSV output, anything else JSON (docs/METRICS.md).
     */
    std::string metricsPath;
    /**
     * When set, every runner-constructed point runs with the
     * sync-contention profiler attached and writes its JSON report to a
     * per-point file derived from this base path (--sync-report /
     * BOWSIM_SYNC_REPORT), named like --trace fan-out and validated by
     * `json_check --sync-report` (docs/SYNC.md).
     */
    std::string syncReportPath;
    /**
     * Sample spacing in simulated cycles (--metrics-interval /
     * BOWSIM_METRICS_INTERVAL). 0 defers to each point's config, which
     * defaults to 1000 when --metrics is on. Recorded per point as
     * config.metrics_interval.
     */
    Cycle metricsInterval = 0;
    /**
     * Per-kernel profile reports (--profile / BOWSIM_PROFILE): turns on
     * GpuConfig::collectStallBreakdown for every point and prints
     * metrics::profileReport after the sweep — per-scheduler-unit issue
     * distribution, peak-vs-mean occupancy, ranked stall causes, and
     * the top warps by back-off residency.
     */
    bool profile = false;
    /**
     * Sweep heartbeat (--progress / BOWSIM_PROGRESS): one stderr status
     * line rewritten after every finished point with done/total counts,
     * aggregate sim-cycles/s, and an ETA. stdout is untouched.
     */
    bool progress = false;
    /**
     * Execution mode override (--exec-mode=cycle|functional|sampled /
     * BOWSIM_EXEC_MODE): forces GpuConfig::execMode on every point.
     * hasExecMode distinguishes "not given" from an explicit cycle.
     * Recorded per point as config.exec_mode (docs/PERF.md, "Execution
     * modes").
     */
    bool hasExecMode = false;
    ExecMode execMode = ExecMode::Cycle;
    /** Sampled-mode detailed window length in cycles (--sample-window /
     *  BOWSIM_SAMPLE_WINDOW); 0 leaves each config's default. */
    Cycle sampleWindow = 0;
    /** Sampled-mode fast-forward distance in warp instructions
     *  (--sample-period / BOWSIM_SAMPLE_PERIOD); 0 leaves the default. */
    std::uint64_t samplePeriod = 0;
    /**
     * Persistent result cache (--cache=off|ro|rw / BOWSIM_CACHE; see
     * docs/BENCH.md, "Result cache & resume"). Off by default: caching
     * is opt-in so a default invocation always re-simulates.
     */
    harness::CacheMode cacheMode = harness::CacheMode::Off;
    /** Cache directory (--cache-dir= / BOWSIM_CACHE_DIR); defaults to
     *  .bowsim-cache in the working directory. */
    std::string cacheDir = ".bowsim-cache";
    /**
     * Resume an interrupted sweep from its journal (--resume /
     * BOWSIM_RESUME): journaled points are served without simulation,
     * everything else runs. Requires the cache to be on (the journal
     * lives in the cache directory); --cache=off with --resume is a
     * usage error.
     */
    bool resume = false;
};

/** Sanitizes a point id into a filename fragment (slashes etc. -> '_'). */
inline std::string
sanitizeId(const std::string &id)
{
    std::string out = id;
    for (char &c : out) {
        bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
        if (!keep)
            c = '_';
    }
    return out;
}

/** Derives the per-point trace file: BASE.POINT.json next to BASE. */
inline std::string
tracePathFor(const std::string &base, const std::string &id)
{
    std::string stem = base;
    std::string ext = ".json";
    std::size_t slash = stem.find_last_of('/');
    std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        ext = stem.substr(dot);
        stem.resize(dot);
    }
    return stem + "." + sanitizeId(id) + ext;
}

/**
 * Parses --scale= / --cores= / --devices= / --jobs= / --sm-threads= / --json= /
 * --trace= / --trace-filter= / --no-skip / --metrics= /
 * --metrics-interval= / --sync-report= / --profile /
 * --progress / --exec-mode= / --sample-window= / --sample-period= /
 * --cache= / --cache-dir= / --resume
 * plus the corresponding
 * BOWSIM_* environment variables (flags win over the environment, the
 * environment wins over the bench's defaults). Unknown arguments are
 * ignored so binaries with their own flags can share the parser.
 */
inline BenchOptions
parseOptions(int argc, char **argv, double default_scale = 1.0,
             unsigned default_cores = 0)
{
    BenchOptions o;
    o.scale = default_scale;
    o.cores = default_cores;
    if (const char *env = std::getenv("BOWSIM_SCALE"))
        o.scale = std::atof(env);
    if (const char *env = std::getenv("BOWSIM_CORES"))
        o.cores = static_cast<unsigned>(std::atoi(env));
    if (const char *env = std::getenv("BOWSIM_DEVICES"))
        o.devices = static_cast<unsigned>(std::atoi(env));
    if (const char *env = std::getenv("BOWSIM_TRACE"))
        o.tracePath = env;
    if (const char *env = std::getenv("BOWSIM_TRACE_FILTER"))
        o.traceFilter = env;
    if (const char *env = std::getenv("BOWSIM_SYNC_REPORT"))
        o.syncReportPath = env;
    if (const char *env = std::getenv("BOWSIM_NO_SKIP"))
        o.noSkip = env[0] != '\0' && env[0] != '0';
    if (const char *env = std::getenv("BOWSIM_SM_THREADS"))
        o.smThreads = static_cast<unsigned>(std::atoi(env));
    if (const char *env = std::getenv("BOWSIM_METRICS"))
        o.metricsPath = env;
    if (const char *env = std::getenv("BOWSIM_METRICS_INTERVAL"))
        o.metricsInterval = static_cast<Cycle>(std::atoll(env));
    if (const char *env = std::getenv("BOWSIM_PROFILE"))
        o.profile = env[0] != '\0' && env[0] != '0';
    if (const char *env = std::getenv("BOWSIM_PROGRESS"))
        o.progress = env[0] != '\0' && env[0] != '0';
    auto setExecMode = [&o](const char *text) {
        if (!parseExecMode(text, &o.execMode)) {
            std::fprintf(stderr,
                         "error: unknown exec mode '%s' (expected "
                         "cycle, functional or sampled)\n",
                         text);
            std::exit(2);
        }
        o.hasExecMode = true;
    };
    if (const char *env = std::getenv("BOWSIM_EXEC_MODE"))
        setExecMode(env);
    if (const char *env = std::getenv("BOWSIM_SAMPLE_WINDOW"))
        o.sampleWindow = static_cast<Cycle>(std::atoll(env));
    if (const char *env = std::getenv("BOWSIM_SAMPLE_PERIOD"))
        o.samplePeriod = static_cast<std::uint64_t>(std::atoll(env));
    auto setCacheMode = [&o](const char *text) {
        if (!harness::parseCacheMode(text, &o.cacheMode)) {
            std::fprintf(stderr,
                         "error: unknown cache mode '%s' (expected "
                         "off, ro or rw)\n",
                         text);
            std::exit(2);
        }
    };
    if (const char *env = std::getenv("BOWSIM_CACHE"))
        setCacheMode(env);
    if (const char *env = std::getenv("BOWSIM_CACHE_DIR"))
        o.cacheDir = env;
    if (const char *env = std::getenv("BOWSIM_RESUME"))
        o.resume = env[0] != '\0' && env[0] != '0';
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            o.scale = std::atof(argv[i] + 8);
        else if (std::strncmp(argv[i], "--cores=", 8) == 0)
            o.cores = static_cast<unsigned>(std::atoi(argv[i] + 8));
        else if (std::strncmp(argv[i], "--devices=", 10) == 0)
            o.devices = static_cast<unsigned>(std::atoi(argv[i] + 10));
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            o.jobs = static_cast<unsigned>(std::atoi(argv[i] + 7));
        else if (std::strncmp(argv[i], "--json=", 7) == 0)
            o.jsonPath = argv[i] + 7;
        else if (std::strncmp(argv[i], "--trace=", 8) == 0)
            o.tracePath = argv[i] + 8;
        else if (std::strncmp(argv[i], "--trace-filter=", 15) == 0)
            o.traceFilter = argv[i] + 15;
        else if (std::strncmp(argv[i], "--sync-report=", 14) == 0)
            o.syncReportPath = argv[i] + 14;
        else if (std::strncmp(argv[i], "--sm-threads=", 13) == 0)
            o.smThreads = static_cast<unsigned>(std::atoi(argv[i] + 13));
        else if (std::strcmp(argv[i], "--no-skip") == 0)
            o.noSkip = true;
        else if (std::strncmp(argv[i], "--metrics-interval=", 19) == 0)
            o.metricsInterval = static_cast<Cycle>(std::atoll(argv[i] + 19));
        else if (std::strncmp(argv[i], "--metrics=", 10) == 0)
            o.metricsPath = argv[i] + 10;
        else if (std::strcmp(argv[i], "--profile") == 0)
            o.profile = true;
        else if (std::strcmp(argv[i], "--progress") == 0)
            o.progress = true;
        else if (std::strncmp(argv[i], "--exec-mode=", 12) == 0)
            setExecMode(argv[i] + 12);
        else if (std::strncmp(argv[i], "--sample-window=", 16) == 0)
            o.sampleWindow = static_cast<Cycle>(std::atoll(argv[i] + 16));
        else if (std::strncmp(argv[i], "--sample-period=", 16) == 0)
            o.samplePeriod =
                static_cast<std::uint64_t>(std::atoll(argv[i] + 16));
        else if (std::strncmp(argv[i], "--cache=", 8) == 0)
            setCacheMode(argv[i] + 8);
        else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0)
            o.cacheDir = argv[i] + 12;
        else if (std::strcmp(argv[i], "--resume") == 0)
            o.resume = true;
    }
    if (!o.traceFilter.empty()) {
        std::uint32_t mask = 0;
        if (!trace::parseCategoryFilter(o.traceFilter, &mask)) {
            std::fprintf(stderr,
                         "error: bad --trace-filter '%s' (expected a "
                         "comma list of pipe, mem, ddos, bows, barrier "
                         "or sync)\n",
                         o.traceFilter.c_str());
            std::exit(2);
        }
    }
    if (o.resume && o.cacheMode == harness::CacheMode::Off) {
        std::fprintf(stderr,
                     "error: --resume requires --cache=ro or rw (the "
                     "resume journal lives in the cache directory)\n");
        std::exit(2);
    }
    return o;
}

/** Applies the --cores override, when one was given. */
inline void
applyCores(const BenchOptions &opts, GpuConfig &cfg)
{
    if (opts.cores != 0)
        cfg.numCores = opts.cores;
}

/** Declarative sweep: the simulations one bench binary performs. */
struct Sweep {
    /** Bench name recorded in the JSON artifact, e.g. "fig10_delay_sweep". */
    std::string name;
    std::vector<SweepPoint> points;

    /** Adds a registry-kernel point; returns its index. */
    size_t
    add(std::string id, std::string kernel, GpuConfig cfg, double scale)
    {
        SweepPoint p;
        p.id = std::move(id);
        p.kernel = std::move(kernel);
        p.cfg = cfg;
        p.scale = scale;
        points.push_back(std::move(p));
        return points.size() - 1;
    }

    /** Adds a custom-body point (non-registry parameterizations). */
    size_t
    add(std::string id, GpuConfig cfg, std::function<KernelStats()> body)
    {
        SweepPoint p;
        p.id = std::move(id);
        p.cfg = cfg;
        p.body = std::move(body);
        points.push_back(std::move(p));
        return points.size() - 1;
    }

    /**
     * Adds a custom point that runs on a runner-provided Gpu. Prefer
     * this over the body overload: the runner owns Gpu construction, so
     * --trace/--metrics/--no-skip/--sm-threads/--profile all apply.
     * @p cache_salt opts the point into the result cache: it must cover
     * everything the closure's behavior depends on beyond the config —
     * at minimum fingerprintPrograms() of the harness it runs plus all
     * baked-in parameters (see SweepPoint::cacheSalt). Empty (the
     * default) keeps the point uncacheable.
     */
    size_t
    add(std::string id, GpuConfig cfg,
        std::function<KernelStats(Gpu &)> gpu_body,
        std::string cache_salt = std::string())
    {
        SweepPoint p;
        p.id = std::move(id);
        p.cfg = cfg;
        p.gpuBody = std::move(gpu_body);
        p.cacheSalt = std::move(cache_salt);
        points.push_back(std::move(p));
        return points.size() - 1;
    }
};

/**
 * Runs @p sweep on a SweepRunner(opts.jobs) pool, writes the JSON
 * artifact when opts.jsonPath is set, and returns the per-point results
 * in declaration order. A failed point (e.g. a deadlock-watchdog
 * SimError) is reported on stderr and aborts the bench with exit(1) —
 * after the artifact is written, so partial results are preserved.
 */
inline std::vector<SweepResult>
runSweep(const BenchOptions &opts, const Sweep &sweep)
{
    harness::SweepRunner runner(opts.jobs);
    // Per-point overrides (--trace file fan-out, --no-skip) operate on
    // a copy; the artifact then records the configs that actually ran.
    std::vector<SweepPoint> points = sweep.points;
    if (!opts.tracePath.empty() || opts.noSkip || opts.smThreads != 0 ||
        opts.devices != 0 || !opts.metricsPath.empty() ||
        opts.metricsInterval != 0 || !opts.syncReportPath.empty() ||
        opts.profile || opts.hasExecMode ||
        opts.sampleWindow != 0 || opts.samplePeriod != 0) {
        for (SweepPoint &p : points) {
            if (p.body) {
                // Custom bodies construct their own Gpu from a config
                // captured at declaration time, out of the runner's
                // reach.
                std::fprintf(stderr,
                             "warning: point '%s' has a custom body; "
                             "%s is not supported for it\n",
                             p.id.c_str(),
                             opts.noSkip        ? "--no-skip"
                             : opts.smThreads   ? "--sm-threads"
                             : opts.devices     ? "--devices"
                             : opts.profile     ? "--profile"
                             : opts.hasExecMode ? "--exec-mode"
                             : !opts.metricsPath.empty()
                                 ? "--metrics"
                             : opts.metricsInterval != 0
                                 ? "--metrics-interval"
                             : !opts.syncReportPath.empty()
                                 ? "--sync-report"
                                 : "--trace");
                continue;
            }
            if (opts.noSkip)
                p.cfg.idleSkip = false;
            if (opts.smThreads != 0)
                p.cfg.smThreads = opts.smThreads;
            if (opts.devices != 0)
                p.cfg.numDevices = opts.devices;
            if (!opts.tracePath.empty()) {
                p.tracePath = tracePathFor(opts.tracePath, p.id);
                p.traceFilter = opts.traceFilter;
            }
            if (!opts.syncReportPath.empty())
                p.syncReportPath = tracePathFor(opts.syncReportPath, p.id);
            if (opts.metricsInterval != 0)
                p.cfg.metricsInterval = opts.metricsInterval;
            if (!opts.metricsPath.empty()) {
                p.metricsPath = tracePathFor(opts.metricsPath, p.id);
                if (p.cfg.metricsInterval == 0)
                    p.cfg.metricsInterval = 1000;
            }
            if (opts.profile) {
                p.cfg.collectStallBreakdown = true;
                // The profile report's "hot sync objects" section needs
                // the profiler attached even without a --sync-report.
                p.syncProfile = true;
            }
            if (opts.hasExecMode)
                p.cfg.execMode = opts.execMode;
            if (opts.sampleWindow != 0)
                p.cfg.sampleWindow = opts.sampleWindow;
            if (opts.samplePeriod != 0)
                p.cfg.samplePeriod = opts.samplePeriod;
        }
    }
    // Result cache & resume (docs/BENCH.md): the runner serves
    // fingerprint hits and journal replays without dispatching to a
    // worker. Both objects must outlive runner.run().
    std::unique_ptr<harness::ResultCache> cache;
    std::unique_ptr<harness::ResumeJournal> journal;
    if (opts.cacheMode != harness::CacheMode::Off) {
        cache = std::make_unique<harness::ResultCache>(opts.cacheDir,
                                                       opts.cacheMode);
        journal = std::make_unique<harness::ResumeJournal>(
            cache->journalPath(sweep.name), opts.resume,
            opts.cacheMode == harness::CacheMode::ReadWrite);
        runner.setCache(cache.get());
        runner.setJournal(journal.get());
    }
    metrics::ProgressMeter meter;
    if (opts.progress) {
        meter.start(sweep.name, points.size());
        if (cache)
            meter.enableCacheDisplay();
        runner.setPointCallback(
            [&meter](std::size_t, const SweepResult &r) {
                meter.pointDone(r.stats.cycles,
                                r.source !=
                                    SweepResult::Source::Simulated);
            });
    }
    std::vector<SweepResult> results = runner.run(points);
    if (opts.progress)
        meter.finish();
    if (!opts.jsonPath.empty()) {
        std::ofstream out(opts.jsonPath);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opts.jsonPath.c_str());
            std::exit(1);
        }
        out << harness::sweepToJson(sweep.name, runner.jobs(), points,
                                    results, cache.get())
                   .dump()
            << "\n";
    }
    bool failed = false;
    for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok) {
            std::fprintf(stderr, "error: sweep point '%s' failed: %s\n",
                         sweep.points[i].id.c_str(),
                         results[i].error.c_str());
            failed = true;
        }
    }
    if (failed)
        std::exit(1);
    if (opts.profile) {
        for (size_t i = 0; i < results.size(); ++i) {
            std::printf("\n[%s]\n%s", points[i].id.c_str(),
                        metrics::profileReport(results[i].stats).c_str());
            if (!results[i].syncProfileText.empty())
                std::printf("%s", results[i].syncProfileText.c_str());
        }
        std::printf("\n");
    }
    return results;
}

/** Runs one named benchmark on @p cfg and returns its statistics. */
inline KernelStats
runBenchmark(const GpuConfig &cfg, const std::string &name, double scale)
{
    Gpu gpu(cfg);
    auto harness = makeBenchmark(name, scale);
    return harness->run(gpu);
}

inline void
printHeader(const char *title)
{
    std::printf("# %s\n", title);
}

}  // namespace bowsim::bench

#endif  // BOWSIM_BENCH_BENCH_COMMON_HPP
