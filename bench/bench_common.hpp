#ifndef BOWSIM_BENCH_BENCH_COMMON_HPP
#define BOWSIM_BENCH_BENCH_COMMON_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"

/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses. Each bench
 * binary regenerates one table or figure of the paper; rows print as
 * tab-separated text so results can be diffed and plotted directly.
 */

namespace bowsim::bench {

/** Scale factor for all workloads; override with --scale or BOWSIM_SCALE. */
inline double
workloadScale(int argc, char **argv, double fallback = 1.0)
{
    if (const char *env = std::getenv("BOWSIM_SCALE"))
        fallback = std::atof(env);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            fallback = std::atof(argv[i] + 8);
    }
    return fallback;
}

/** Number of simulated cores; scaled down so sweeps finish in seconds. */
inline unsigned
benchCores(int argc, char **argv, unsigned fallback = 8)
{
    if (const char *env = std::getenv("BOWSIM_CORES"))
        fallback = static_cast<unsigned>(std::atoi(env));
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--cores=", 8) == 0)
            fallback = static_cast<unsigned>(std::atoi(argv[i] + 8));
    }
    return fallback;
}

/** Runs one named benchmark on @p cfg and returns its statistics. */
inline KernelStats
runBenchmark(const GpuConfig &cfg, const std::string &name, double scale)
{
    Gpu gpu(cfg);
    auto harness = makeBenchmark(name, scale);
    return harness->run(gpu);
}

inline void
printHeader(const char *title)
{
    std::printf("# %s\n", title);
}

}  // namespace bowsim::bench

#endif  // BOWSIM_BENCH_BENCH_COMMON_HPP
