/**
 * Figure 12: lock-acquire / wait-exit outcome distribution as the BOWS
 * back-off delay limit grows (GTO baseline first). Throttled spinning
 * converts failed acquire attempts into successes per attempt — e.g.,
 * the paper reports a 10.8x lock-failure-rate reduction on HT.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv, 1.0);
    printHeader("Figure 12: outcome distribution vs delay limit "
                "(fractions; rows: kernel x mode)");
    std::printf("%-6s %-8s %9s %9s %9s %9s %9s %12s\n", "kernel", "mode",
                "lock_ok", "interFail", "intraFail", "wait_ok",
                "wait_fail", "fail_per_ok");
    struct Mode {
        const char *label;
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {"GTO", false, false, 0},    {"B0", true, false, 0},
        {"B500", true, false, 500},  {"B1000", true, false, 1000},
        {"B3000", true, false, 3000}, {"B5000", true, false, 5000},
        {"Badapt", true, true, 0},
    };

    const std::vector<std::string> kernels = syncKernelNames();
    Sweep sweep;
    sweep.name = "fig12_outcome_sweep";
    for (const std::string &name : kernels) {
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            applyCores(opts, cfg);
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            sweep.add(name + "/" + m.label, name, cfg, opts.scale);
        }
    }

    const std::vector<SweepResult> results = runSweep(opts, sweep);
    for (size_t k = 0; k < kernels.size(); ++k) {
        for (size_t m = 0; m < modes.size(); ++m) {
            const KernelStats &s = results[k * modes.size() + m].stats;
            double total = static_cast<double>(s.outcomes.total());
            if (total == 0)
                total = 1;
            double fails = static_cast<double>(s.outcomes.interWarpFail +
                                               s.outcomes.intraWarpFail);
            double per_ok = s.outcomes.lockSuccess == 0
                                ? 0.0
                                : fails / s.outcomes.lockSuccess;
            std::printf("%-6s %-8s %9.3f %9.3f %9.3f %9.3f %9.3f %12.2f\n",
                        kernels[k].c_str(), modes[m].label,
                        s.outcomes.lockSuccess / total,
                        s.outcomes.interWarpFail / total,
                        s.outcomes.intraWarpFail / total,
                        s.outcomes.waitExitSuccess / total,
                        s.outcomes.waitExitFail / total, per_ok);
        }
    }
    return 0;
}
