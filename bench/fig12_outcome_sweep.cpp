/**
 * Figure 12: lock-acquire / wait-exit outcome distribution as the BOWS
 * back-off delay limit grows (GTO baseline first). Throttled spinning
 * converts failed acquire attempts into successes per attempt — e.g.,
 * the paper reports a 10.8x lock-failure-rate reduction on HT.
 */
#include "bench/bench_common.hpp"

using namespace bowsim;
using namespace bowsim::bench;

int
main(int argc, char **argv)
{
    double scale = workloadScale(argc, argv, 1.0);
    printHeader("Figure 12: outcome distribution vs delay limit "
                "(fractions; rows: kernel x mode)");
    std::printf("%-6s %-8s %9s %9s %9s %9s %9s %12s\n", "kernel", "mode",
                "lock_ok", "interFail", "intraFail", "wait_ok",
                "wait_fail", "fail_per_ok");
    struct Mode {
        const char *label;
        bool bows;
        bool adaptive;
        Cycle limit;
    };
    const std::vector<Mode> modes = {
        {"GTO", false, false, 0},    {"B0", true, false, 0},
        {"B500", true, false, 500},  {"B1000", true, false, 1000},
        {"B3000", true, false, 3000}, {"B5000", true, false, 5000},
        {"Badapt", true, true, 0},
    };
    for (const std::string &name : syncKernelNames()) {
        for (const Mode &m : modes) {
            GpuConfig cfg = makeGtx480Config();
            cfg.scheduler = SchedulerKind::GTO;
            cfg.bows.enabled = m.bows;
            cfg.bows.adaptive = m.adaptive;
            cfg.bows.delayLimit = m.limit;
            KernelStats s = runBenchmark(cfg, name, scale);
            double total = static_cast<double>(s.outcomes.total());
            if (total == 0)
                total = 1;
            double fails = static_cast<double>(s.outcomes.interWarpFail +
                                               s.outcomes.intraWarpFail);
            double per_ok = s.outcomes.lockSuccess == 0
                                ? 0.0
                                : fails / s.outcomes.lockSuccess;
            std::printf("%-6s %-8s %9.3f %9.3f %9.3f %9.3f %9.3f %12.2f\n",
                        name.c_str(), m.label,
                        s.outcomes.lockSuccess / total,
                        s.outcomes.interWarpFail / total,
                        s.outcomes.intraWarpFail / total,
                        s.outcomes.waitExitSuccess / total,
                        s.outcomes.waitExitFail / total, per_ok);
        }
    }
    return 0;
}
