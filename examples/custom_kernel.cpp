/**
 * Scenario: bring your own synchronization pattern. Implements a small
 * producer/consumer pipeline through global memory: producer warps fill
 * a ring buffer of work items, consumer warps spin (wait-and-signal,
 * Fig. 6c style) until their slot is published, then process it. Shows
 * the full public API surface: assembling a kernel with sync
 * annotations, configuring BOWS/DDOS, launching, and reading both
 * results and the per-class synchronization statistics.
 *
 *   $ ./custom_kernel
 */
#include <cstdio>
#include <vector>

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"

int
main()
{
    using namespace bowsim;

    // Producer warp (warpid 0 of each CTA) publishes items; the other
    // warps consume: consumer lane waits for ready[i] != 0, then
    // computes out[i] = 2 * item[i].
    Program prog = assemble(R"(
.kernel pipeline
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;       // global thread id
  ld.param.u64 %r10, [0];        // items
  ld.param.u64 %r11, [8];        // ready flags
  ld.param.u64 %r12, [16];       // out
  ld.param.u64 %r13, [24];       // items per CTA chunk
  mov %r2, %warpid;
  setp.eq.s64 %p0, %r2, 0;
  @%p0 bra PRODUCER;

  // ---- consumer: one item per thread (offset by the producer warp) --
  sub %r3, %r0, 32;              // consumer index within the grid
  mov %r4, %ctaid;
  mul %r4, %r4, 32;
  sub %r3, %r3, %r4;             // skip one producer warp per CTA
  shl %r5, %r3, 3;
  add %r6, %r11, %r5;            // &ready[i]
WAIT:
  ld.volatile.global.u64 %r7, [%r6];
  .annot wait
  setp.ne.s64 %p1, %r7, 0;
  .annot spin
  @!%p1 bra WAIT;
  add %r8, %r10, %r5;
  ld.global.u64 %r8, [%r8];
  shl %r8, %r8, 1;               // process: double it
  add %r9, %r12, %r5;
  st.global.u64 [%r9], %r8;
  exit;

PRODUCER:
  // Lane l of the producer warp publishes items [base + l * chunk,
  // base + (l+1) * chunk).
  mov %r3, %laneid;
  mul %r3, %r3, %r13;
  mov %r4, %ctaid;
  mov %r5, %ntid;
  sub %r5, %r5, 32;              // consumers per CTA
  mul %r4, %r4, %r5;
  add %r3, %r3, %r4;             // first item this lane publishes
  mov %r6, 0;
PLOOP:
  setp.ge.s64 %p2, %r6, %r13;
  @%p2 exit;
  // "Produce" the item: a compute delay stands in for real work and
  // keeps the consumers spinning long enough to matter.
  mov %r16, 0;
WORK:
  add %r16, %r16, 1;
  setp.lt.s64 %p3, %r16, 400;
  @%p3 bra WORK;
  add %r7, %r3, %r6;
  shl %r8, %r7, 3;
  add %r9, %r10, %r8;
  mul %r15, %r7, 7;
  st.global.u64 [%r9], %r15;     // item value = 7 * i
  membar;
  add %r14, %r11, %r8;
  st.global.u64 [%r14], 1;       // publish
  add %r6, %r6, 1;
  bra.uni PLOOP;
)");

    // Geometry: each CTA = 1 producer warp + 7 consumer warps
    // (256 threads - 32 producers = 224 consumers/CTA).
    const unsigned ctas = 8;
    const unsigned consumers_per_cta = 224;
    const unsigned items = ctas * consumers_per_cta;
    const unsigned chunk = consumers_per_cta / 32;

    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    cfg.bows.enabled = true;  // throttle the consumers' wait loops
    Gpu gpu(cfg);

    Addr d_items = gpu.malloc(items * 8);
    Addr d_ready = gpu.malloc(items * 8);
    Addr d_out = gpu.malloc(items * 8);

    KernelStats s = gpu.launch(
        prog, Dim3{ctas, 1, 1}, Dim3{256, 1, 1},
        {static_cast<Word>(d_items), static_cast<Word>(d_ready),
         static_cast<Word>(d_out), static_cast<Word>(chunk)});

    std::vector<Word> out(items);
    gpu.memcpyFromDevice(out.data(), d_out, items * 8);
    unsigned errors = 0;
    for (unsigned i = 0; i < items; ++i) {
        if (out[i] != 14 * static_cast<Word>(i))
            ++errors;
    }

    std::printf("producer/consumer pipeline: %s (%u items)\n",
                errors == 0 ? "PASS" : "FAIL", items);
    std::printf("  cycles %llu, wait-exit ok/fail = %llu/%llu, "
                "backed-off fraction %.2f\n",
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(
                    s.outcomes.waitExitSuccess),
                static_cast<unsigned long long>(s.outcomes.waitExitFail),
                s.backedOffFraction());
    std::printf("  DDOS: TSDR %.2f FSDR %.2f — the consumers' wait loop "
                "was %s\n",
                s.ddos.tsdr(), s.ddos.fsdr(),
                s.ddos.trueDetected ? "detected" : "not detected");
    return errors == 0 ? 0 : 1;
}
