/**
 * Scenario: watch DDOS decide what is and is not a spin loop. Runs two
 * kernels — a lock-based spin loop and a plain counted loop over the
 * same code shape — and dumps the SIB prediction table and accuracy
 * metrics for both XOR and MODULO hashing, including the classic MODULO
 * failure (a loop whose induction variable advances by 256).
 *
 *   $ ./spin_detection
 */
#include <cstdio>

#include "src/isa/assembler.hpp"
#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"

namespace {

using namespace bowsim;

void
report(const char *what, const KernelStats &s)
{
    std::printf("%-34s TSDR %.2f  FSDR %.2f  DPR %.3f\n", what,
                s.ddos.tsdr(), s.ddos.fsdr(), s.ddos.dprTrue());
}

}  // namespace

int
main()
{
    using namespace bowsim;

    // A genuine busy-wait loop (the paper's Fig. 7a shape).
    Program spin = assemble(R"(
.kernel spin_loop
.param 2
  ld.param.u64 %r1, [0];
  ld.param.u64 %r2, [8];
  mov %r20, 0;
LOOP:
  .annot acquire
  atom.global.cas.b64 %r3, [%r1], 0, 1;
  setp.ne.s64 %p1, %r3, 0;
  @%p1 bra SKIP;
  ld.global.u64 %r4, [%r2];
  add %r4, %r4, 1;
  st.global.u64 [%r2], %r4;
  mov %r20, 1;
  atom.global.exch.b64 %r5, [%r1], 0;
SKIP:
  setp.eq.s64 %p2, %r20, 0;
  .annot spin
  @%p2 bra LOOP;
  exit;
)");

    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    Gpu gpu(cfg);
    Addr mutex = gpu.malloc(8);
    Addr counter = gpu.malloc(8);
    KernelStats s = gpu.launch(spin, Dim3{4, 1, 1}, Dim3{256, 1, 1},
                               {static_cast<Word>(mutex),
                                static_cast<Word>(counter)});
    std::printf("== spin-lock kernel (XOR hashing) ==\n");
    report("spin_loop", s);
    std::printf("   spin branch dynamic executions: %llu\n",
                static_cast<unsigned long long>(s.sibInstructions));

    // The kmeans-style normal loop (Fig. 7c): must NOT be detected.
    {
        Gpu g2(cfg);
        auto km = makeBenchmark("KM", 0.25);
        KernelStats k = km->run(g2);
        report("KM (normal loop, XOR)", k);
    }

    // The MODULO hashing failure: a loop stepping by 256 looks frozen to
    // an 8-bit modulo hash.
    for (HashKind h : {HashKind::Xor, HashKind::Modulo}) {
        GpuConfig c2 = cfg;
        c2.ddos.hash = h;
        Gpu g3(c2);
        auto ms = makeBenchmark("MS", 0.25);
        KernelStats k = ms->run(g3);
        char label[64];
        std::snprintf(label, sizeof label, "MS (stride-256 loop, %s)",
                      toString(h));
        report(label, k);
    }

    std::printf("\nA false detection under MODULO is exactly what the "
                "paper's Fig. 14 measures;\nXOR hashing folds the high "
                "bits in and stays clean (Table I).\n");
    return 0;
}
