/**
 * Scenario: concurrent hashtable insertion under lock contention — the
 * paper's motivating workload (Fig. 1a). Runs the HT benchmark across
 * schedulers with and without BOWS and reports how back-off warp
 * spinning changes execution time, wasted lock-acquire attempts, memory
 * traffic and energy.
 *
 *   $ ./hashtable_contention [buckets]
 */
#include <cstdio>
#include <cstdlib>

#include "src/kernels/hashtable.hpp"
#include "src/sim/gpu.hpp"

int
main(int argc, char **argv)
{
    using namespace bowsim;

    unsigned buckets = argc > 1 ? std::atoi(argv[1]) : 128;
    std::printf("Chained hashtable, 12288 insertions, %u buckets, "
                "7680 threads\n\n",
                buckets);
    std::printf("%-12s %10s %10s %12s %12s %10s\n", "config", "cycles",
                "speedup", "lock_fails", "atomics", "energy_mJ");

    double baseline = 0.0;
    for (SchedulerKind sched : {SchedulerKind::LRR, SchedulerKind::GTO,
                                SchedulerKind::CAWA}) {
        for (bool bows : {false, true}) {
            GpuConfig cfg = makeGtx480Config();
            cfg.scheduler = sched;
            cfg.bows.enabled = bows;
            Gpu gpu(cfg);

            HashtableParams p;
            p.insertions = 12288;
            p.buckets = buckets;
            p.ctas = 30;
            p.threadsPerCta = 256;
            auto harness = makeHashtable(p);
            KernelStats s = harness->run(gpu);

            if (baseline == 0.0)
                baseline = static_cast<double>(s.cycles);
            char label[32];
            std::snprintf(label, sizeof label, "%s%s", toString(sched),
                          bows ? "+BOWS" : "");
            std::printf("%-12s %10llu %9.2fx %12llu %12llu %10.3f\n",
                        label,
                        static_cast<unsigned long long>(s.cycles),
                        baseline / s.cycles,
                        static_cast<unsigned long long>(
                            s.outcomes.interWarpFail +
                            s.outcomes.intraWarpFail),
                        static_cast<unsigned long long>(s.mem.atomics),
                        s.energyNj / 1e6);
        }
    }
    std::printf("\nLower lock_fails under BOWS = throttled spinning; the "
                "speedup grows as\nbuckets shrink (more threads per "
                "lock). Try: ./hashtable_contention 64\n");
    return 0;
}
