/**
 * Quickstart: assemble a tiny kernel, run it on the simulated GPU, and
 * read back the results and statistics.
 *
 *   $ ./quickstart
 */
#include <cstdio>
#include <vector>

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"

int
main()
{
    using namespace bowsim;

    // 1. Configure a GPU. Table II's GTX480 (Fermi) baseline with the
    //    GTO warp scheduler; BOWS off for now.
    GpuConfig cfg = makeGtx480Config();
    cfg.scheduler = SchedulerKind::GTO;
    Gpu gpu(cfg);

    // 2. Assemble a kernel in the PTX-like mini-ISA: a grid-stride SAXPY
    //    (integer variant): y[i] = a * x[i] + y[i].
    Program prog = assemble(R"(
.kernel saxpy
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;       // global thread id
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;             // grid stride
  ld.param.u64 %r10, [0];        // x
  ld.param.u64 %r11, [8];        // y
  ld.param.u64 %r12, [16];       // a
  ld.param.u64 %r13, [24];       // n
LOOP:
  setp.ge.s64 %p0, %r0, %r13;
  @%p0 exit;
  shl %r3, %r0, 3;
  add %r4, %r10, %r3;
  ld.global.u64 %r4, [%r4];
  add %r5, %r11, %r3;
  ld.global.u64 %r6, [%r5];
  mad %r6, %r4, %r12, %r6;
  st.global.u64 [%r5], %r6;
  add %r0, %r0, %r2;
  bra.uni LOOP;
)");

    // 3. Allocate and fill device memory.
    const unsigned n = 65536;
    std::vector<Word> x(n), y(n);
    for (unsigned i = 0; i < n; ++i) {
        x[i] = i % 100;
        y[i] = 1;
    }
    Addr dx = gpu.malloc(n * 8);
    Addr dy = gpu.malloc(n * 8);
    gpu.memcpyToDevice(dx, x.data(), n * 8);
    gpu.memcpyToDevice(dy, y.data(), n * 8);

    // 4. Launch: 60 CTAs x 256 threads.
    KernelStats stats = gpu.launch(prog, Dim3{60, 1, 1}, Dim3{256, 1, 1},
                                   {static_cast<Word>(dx),
                                    static_cast<Word>(dy), 3,
                                    static_cast<Word>(n)});

    // 5. Read back and verify.
    gpu.memcpyFromDevice(y.data(), dy, n * 8);
    unsigned errors = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (y[i] != 3 * (i % 100) + 1)
            ++errors;
    }

    std::printf("saxpy on %s: %s\n", gpu.config().name.c_str(),
                errors == 0 ? "PASS" : "FAIL");
    std::printf("  cycles            %llu (%.3f ms at %.0f MHz)\n",
                static_cast<unsigned long long>(stats.cycles),
                stats.milliseconds(cfg.coreClockMhz), cfg.coreClockMhz);
    std::printf("  warp instructions %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(stats.warpInstructions),
                stats.ipc());
    std::printf("  SIMD efficiency   %.1f%%\n",
                stats.simdEfficiency() * 100.0);
    std::printf("  L1D accesses      %llu (%.1f%% hit)\n",
                static_cast<unsigned long long>(stats.l1Accesses),
                stats.l1Accesses
                    ? 100.0 * stats.l1Hits / stats.l1Accesses
                    : 0.0);
    std::printf("  DRAM accesses     %llu\n",
                static_cast<unsigned long long>(stats.mem.dramAccesses));
    std::printf("  dynamic energy    %.3f mJ\n", stats.energyNj / 1e6);
    return errors == 0 ? 0 : 1;
}
