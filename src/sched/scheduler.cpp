#include "src/sched/scheduler.hpp"

#include "src/common/log.hpp"
#include "src/sched/cawa.hpp"
#include "src/sched/gto.hpp"
#include "src/sched/lrr.hpp"
#include "src/sched/two_level.hpp"

namespace bowsim {

std::unique_ptr<Scheduler>
makeScheduler(const GpuConfig &cfg)
{
    switch (cfg.scheduler) {
      case SchedulerKind::LRR:
        return std::make_unique<LrrScheduler>();
      case SchedulerKind::GTO:
        return std::make_unique<GtoScheduler>(cfg.gtoRotatePeriod);
      case SchedulerKind::CAWA:
        return std::make_unique<CawaScheduler>();
      case SchedulerKind::TwoLevel:
        return std::make_unique<TwoLevelScheduler>(cfg.twoLevelGroupSize);
    }
    fatal("unknown scheduler kind");
}

}  // namespace bowsim
