#ifndef BOWSIM_SCHED_LRR_HPP
#define BOWSIM_SCHED_LRR_HPP

#include "src/sched/scheduler.hpp"

/**
 * @file
 * Loose round-robin: priority rotates so the warp after the last-issued
 * one (by warp id) comes first each cycle.
 */

namespace bowsim {

class LrrScheduler : public Scheduler {
  public:
    void order(std::vector<Warp *> &warps, Cycle now) override;
    bool supportsPick() const override { return true; }
    Warp *pick(const std::vector<Warp *> &warps, const UnitMask &mask,
               Cycle now, bool deprioritize,
               const IssueGate &gate) override;
    const char *name() const override { return "LRR"; }
};

}  // namespace bowsim

#endif  // BOWSIM_SCHED_LRR_HPP
