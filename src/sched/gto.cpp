#include "src/sched/gto.hpp"

#include <algorithm>

namespace bowsim {

void
GtoScheduler::order(std::vector<Warp *> &warps, Cycle now)
{
    std::sort(warps.begin(), warps.end(),
              [](const Warp *a, const Warp *b) {
                  if (a->age() != b->age())
                      return a->age() < b->age();
                  return a->id() < b->id();
              });
    // Periodic age rotation (livelock avoidance): shift which resident
    // warp currently counts as oldest.
    if (rotatePeriod_ > 0 && !warps.empty()) {
        size_t rot = static_cast<size_t>(now / rotatePeriod_) % warps.size();
        std::rotate(warps.begin(), warps.begin() + rot, warps.end());
    }
    // Greedy: the last-issued warp keeps top priority.
    if (lastIssued_) {
        auto it = std::find(warps.begin(), warps.end(), lastIssued_);
        if (it != warps.end()) {
            Warp *w = *it;
            warps.erase(it);
            warps.insert(warps.begin(), w);
        }
    }
}

}  // namespace bowsim
