#include "src/sched/gto.hpp"

#include <algorithm>
#include <bit>

namespace bowsim {

void
GtoScheduler::order(std::vector<Warp *> &warps, Cycle now)
{
    // Ages are fixed at warp launch and (age, id) pairs are unique, so
    // the sorted order is unique. The core hands us warps in residency
    // (= age) order, making the input already sorted almost always;
    // checking first turns the per-cycle sort into a linear scan.
    const auto by_age = [](const Warp *a, const Warp *b) {
        if (a->age() != b->age())
            return a->age() < b->age();
        return a->id() < b->id();
    };
    if (!std::is_sorted(warps.begin(), warps.end(), by_age))
        std::sort(warps.begin(), warps.end(), by_age);
    // Periodic age rotation (livelock avoidance): shift which resident
    // warp currently counts as oldest.
    if (rotatePeriod_ > 0 && !warps.empty()) {
        size_t rot = static_cast<size_t>(now / rotatePeriod_) % warps.size();
        std::rotate(warps.begin(), warps.begin() + rot, warps.end());
    }
    // Greedy: the last-issued warp keeps top priority.
    if (lastIssued_) {
        auto it = std::find(warps.begin(), warps.end(), lastIssued_);
        if (it != warps.end()) {
            Warp *w = *it;
            warps.erase(it);
            warps.insert(warps.begin(), w);
        }
    }
}

Warp *
GtoScheduler::pick(const std::vector<Warp *> &warps, const UnitMask &mask,
                   Cycle now, bool deprioritize, const IssueGate &gate)
{
    const std::size_t n = warps.size();
    if (n == 0)
        return nullptr;
    // The ordered list order() would build is: lastIssued_ first, then
    // the remaining warps in age order rotated by the livelock-avoidance
    // offset; with deprioritization the backed-off warps drop behind all
    // of that, FIFO by their (unique, per-core) backoffSeq ticket. The
    // first eligible warp of that list can be found by scanning the
    // age-ordered residents directly, without copying or sorting.
    std::size_t rot = 0;
    if (rotatePeriod_ > 0)
        rot = static_cast<std::size_t>(now / rotatePeriod_) % n;

    Warp *li = lastIssued_;
    if (li && !(deprioritize && li->bows().backedOff) && gate.eligible(*li))
        return li;
    if (mask.valid) {
        // Same circular scan over the set bits only: positions >= rot
        // in ascending order, then the wrapped positions below rot.
        std::uint64_t cand = mask.issuable;
        if (deprioritize)
            cand &= ~mask.backedOff;
        const std::uint64_t low =
            rot > 0 ? cand & ((std::uint64_t{1} << rot) - 1) : 0;
        for (std::uint64_t bits : {cand ^ low, low}) {
            for (; bits != 0; bits &= bits - 1) {
                Warp *w =
                    warps[static_cast<unsigned>(std::countr_zero(bits))];
                if (w == li)
                    continue;
                if (gate.eligible(*w))
                    return w;
            }
        }
    } else {
        for (std::size_t k = 0; k < n; ++k) {
            Warp *w = warps[rot + k < n ? rot + k : rot + k - n];
            if (w == li || (deprioritize && w->bows().backedOff))
                continue;
            if (gate.eligible(*w))
                return w;
        }
    }
    if (!deprioritize)
        return nullptr;
    // Backed-off queue: first eligible in FIFO order = the eligible warp
    // with the smallest backoffSeq.
    Warp *best = nullptr;
    if (mask.valid) {
        for (std::uint64_t boff = mask.backedOff & mask.issuable;
             boff != 0; boff &= boff - 1) {
            Warp *w = warps[static_cast<unsigned>(std::countr_zero(boff))];
            if (best && w->bows().backoffSeq >= best->bows().backoffSeq)
                continue;
            if (gate.eligible(*w))
                best = w;
        }
        return best;
    }
    for (Warp *w : warps) {
        if (!w->bows().backedOff)
            continue;
        if (best && w->bows().backoffSeq >= best->bows().backoffSeq)
            continue;
        if (gate.eligible(*w))
            best = w;
    }
    return best;
}

}  // namespace bowsim
