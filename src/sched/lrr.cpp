#include "src/sched/lrr.hpp"

#include <algorithm>

namespace bowsim {

void
LrrScheduler::order(std::vector<Warp *> &warps, Cycle now)
{
    (void)now;
    std::sort(warps.begin(), warps.end(),
              [](const Warp *a, const Warp *b) { return a->id() < b->id(); });
    if (!lastIssued_)
        return;
    // Rotate so the warp following the last-issued one leads.
    auto it = std::find(warps.begin(), warps.end(), lastIssued_);
    if (it != warps.end())
        std::rotate(warps.begin(), it + 1, warps.end());
}

}  // namespace bowsim
