#include "src/sched/lrr.hpp"

#include <algorithm>
#include <bit>

namespace bowsim {

void
LrrScheduler::order(std::vector<Warp *> &warps, Cycle now)
{
    (void)now;
    // Warp ids are unique and static; skip the sort when the core's
    // residency order is already id-ordered (the common case).
    const auto by_id = [](const Warp *a, const Warp *b) {
        return a->id() < b->id();
    };
    if (!std::is_sorted(warps.begin(), warps.end(), by_id))
        std::sort(warps.begin(), warps.end(), by_id);
    if (!lastIssued_)
        return;
    // Rotate so the warp following the last-issued one leads.
    auto it = std::find(warps.begin(), warps.end(), lastIssued_);
    if (it != warps.end())
        std::rotate(warps.begin(), it + 1, warps.end());
}

Warp *
LrrScheduler::pick(const std::vector<Warp *> &warps, const UnitMask &mask,
                   Cycle now, bool deprioritize, const IssueGate &gate)
{
    (void)now;
    // order() yields ascending warp ids rotated to start just after the
    // last-issued warp's id. The first eligible warp of that circular
    // order is the eligible warp with the smallest id above the pivot,
    // else the smallest eligible id overall (ids are unique per unit).
    // With deprioritization the backed-off warps drop behind, FIFO by
    // backoffSeq, exactly as in the generic path.
    //
    // The pivot only applies when lastIssued_ is still in @p warps:
    // a warp whose final issue was its Exit stays recorded as
    // lastIssued_ until its CTA retires, and order()'s find() treats
    // that as "no rotation" (plain ascending ids). Match that exactly.
    //
    // The id-minimum bookkeeping is order-independent and eligible() is
    // side-effect free, so scanning the set bits of the mask (barrier-
    // parked warps pre-filtered) selects the same warp as the full
    // vector scan below.
    const bool have_pivot = lastIssued_ != nullptr;
    const unsigned pivot = have_pivot ? lastIssued_->id() : 0;
    bool pivot_present = false;
    Warp *best_above = nullptr;
    Warp *best_any = nullptr;
    if (mask.valid) {
        std::uint64_t cand = mask.issuable;
        if (deprioritize)
            cand &= ~mask.backedOff;
        for (; cand != 0; cand &= cand - 1) {
            Warp *w = warps[static_cast<unsigned>(std::countr_zero(cand))];
            const unsigned id = w->id();
            const bool improves_above =
                have_pivot && id > pivot &&
                (!best_above || id < best_above->id());
            const bool improves_any = !best_any || id < best_any->id();
            if (!improves_above && !improves_any)
                continue;
            if (!gate.eligible(*w))
                continue;
            if (improves_above)
                best_above = w;
            if (improves_any)
                best_any = w;
        }
        // Membership only decides above-pivot vs wraparound, so the
        // pointer scan is deferred until that distinction matters.
        if (best_above &&
            std::find(warps.begin(), warps.end(), lastIssued_) !=
                warps.end()) {
            pivot_present = true;
        }
    } else {
        for (Warp *w : warps) {
            if (w == lastIssued_)
                pivot_present = true;
            if (deprioritize && w->bows().backedOff)
                continue;
            const unsigned id = w->id();
            const bool improves_above =
                have_pivot && id > pivot &&
                (!best_above || id < best_above->id());
            const bool improves_any = !best_any || id < best_any->id();
            if (!improves_above && !improves_any)
                continue;
            if (!gate.eligible(*w))
                continue;
            if (improves_above)
                best_above = w;
            if (improves_any)
                best_any = w;
        }
    }
    if (pivot_present && best_above)
        return best_above;
    if (best_any)
        return best_any;
    if (!deprioritize)
        return nullptr;
    if (mask.valid) {
        Warp *best = nullptr;
        // Barrier-parked warps are never backed off (issuing the bar
        // cleared the state), so masking with issuable loses nothing.
        for (std::uint64_t boff = mask.backedOff & mask.issuable;
             boff != 0; boff &= boff - 1) {
            Warp *w = warps[static_cast<unsigned>(std::countr_zero(boff))];
            if (best && w->bows().backoffSeq >= best->bows().backoffSeq)
                continue;
            if (gate.eligible(*w))
                best = w;
        }
        return best;
    }
    Warp *best = nullptr;
    for (Warp *w : warps) {
        if (!w->bows().backedOff)
            continue;
        if (best && w->bows().backoffSeq >= best->bows().backoffSeq)
            continue;
        if (gate.eligible(*w))
            best = w;
    }
    return best;
}

}  // namespace bowsim
