#ifndef BOWSIM_SCHED_CAWA_HPP
#define BOWSIM_SCHED_CAWA_HPP

#include "src/sched/scheduler.hpp"

/**
 * @file
 * CAWA criticality-aware scheduling [Lee et al., ISCA'15], as characterized
 * in Section II of the paper: per-warp criticality is estimated as
 * nInst × CPIavg + nStall and the most critical warp is prioritized.
 * The nInst estimate grows when a warp takes a backward branch (it will
 * run the loop body again) — which is exactly why CAWA misclassifies
 * spinning warps as critical and accelerates them.
 */

namespace bowsim {

class CawaScheduler : public Scheduler {
  public:
    void order(std::vector<Warp *> &warps, Cycle now) override;
    /** The (criticality, age) comparator is element-wise and age makes
     *  it a total order, so a pre-filtered subset sorts into the same
     *  relative order it would have inside the full sort — the core may
     *  drop masked-out warps before ordering. */
    bool supportsFilteredOrder() const override { return true; }
    const char *name() const override { return "CAWA"; }
};

}  // namespace bowsim

#endif  // BOWSIM_SCHED_CAWA_HPP
