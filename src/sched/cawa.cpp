#include "src/sched/cawa.hpp"

#include <algorithm>

namespace bowsim {

void
CawaScheduler::order(std::vector<Warp *> &warps, Cycle now)
{
    (void)now;
    std::stable_sort(warps.begin(), warps.end(),
                     [](const Warp *a, const Warp *b) {
                         double ca = a->cawa().criticality();
                         double cb = b->cawa().criticality();
                         if (ca != cb)
                             return ca > cb;
                         return a->age() < b->age();
                     });
    // CAWA keeps GTO's greedy component: stick with the last-issued warp
    // while it remains schedulable.
    if (lastIssued_) {
        auto it = std::find(warps.begin(), warps.end(), lastIssued_);
        if (it != warps.end()) {
            Warp *w = *it;
            warps.erase(it);
            warps.insert(warps.begin(), w);
        }
    }
}

}  // namespace bowsim
