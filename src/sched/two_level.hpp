#ifndef BOWSIM_SCHED_TWO_LEVEL_HPP
#define BOWSIM_SCHED_TWO_LEVEL_HPP

#include "src/sched/scheduler.hpp"

/**
 * @file
 * Two-level warp scheduling [Narasiman et al., MICRO'11], provided as an
 * additional baseline beyond the paper's LRR/GTO/CAWA set. Warps are
 * partitioned into fixed fetch groups; the scheduler issues round-robin
 * within the active group and only falls over to other groups when the
 * active group cannot issue — so groups drift apart in time and
 * long-latency stalls of one group hide under the execution of another.
 */

namespace bowsim {

class TwoLevelScheduler : public Scheduler {
  public:
    explicit TwoLevelScheduler(unsigned group_size)
        : groupSize_(group_size ? group_size : 8)
    {
    }

    void order(std::vector<Warp *> &warps, Cycle now) override;

    void
    notifyIssued(Warp *warp, Cycle now) override
    {
        Scheduler::notifyIssued(warp, now);
        activeGroup_ = warp->id() / groupSize_;
    }

    const char *name() const override { return "TwoLevel"; }

    unsigned groupSize() const { return groupSize_; }

  private:
    unsigned groupSize_;
    unsigned activeGroup_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_SCHED_TWO_LEVEL_HPP
