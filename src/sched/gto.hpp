#ifndef BOWSIM_SCHED_GTO_HPP
#define BOWSIM_SCHED_GTO_HPP

#include "src/sched/scheduler.hpp"

/**
 * @file
 * Greedy-then-oldest: keep issuing from the last warp until it stalls,
 * then fall back to the oldest (lowest launch age) ready warp. Following
 * Section IV-C of the paper, the age order rotates periodically (every
 * gtoRotatePeriod cycles) — strict GTO can livelock HT and ATM when the
 * greedy warp spins on a lock held by a never-scheduled warp.
 */

namespace bowsim {

class GtoScheduler : public Scheduler {
  public:
    explicit GtoScheduler(Cycle rotate_period)
        : rotatePeriod_(rotate_period)
    {
    }

    void order(std::vector<Warp *> &warps, Cycle now) override;
    bool supportsPick() const override { return true; }
    Warp *pick(const std::vector<Warp *> &warps, const UnitMask &mask,
               Cycle now, bool deprioritize,
               const IssueGate &gate) override;
    const char *name() const override { return "GTO"; }

  private:
    Cycle rotatePeriod_;
};

}  // namespace bowsim

#endif  // BOWSIM_SCHED_GTO_HPP
