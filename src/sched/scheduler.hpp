#ifndef BOWSIM_SCHED_SCHEDULER_HPP
#define BOWSIM_SCHED_SCHEDULER_HPP

#include <memory>
#include <vector>

#include "src/arch/warp.hpp"
#include "src/common/config.hpp"

/**
 * @file
 * Warp-scheduler policies. Each SM scheduler unit owns one Scheduler
 * instance; every cycle the core asks it to order the unit's resident
 * warps by descending priority and issues the first *eligible* one (the
 * eligibility test — scoreboard, barrier, BOWS back-off — stays in the
 * core so policies remain pure priority functions).
 */

namespace bowsim {

/**
 * Eligibility oracle the core hands to pick(): wraps the per-warp checks
 * that stay core-side (scoreboard, barrier, back-off delay, memory-port
 * availability). eligible() must be side-effect free — fast-path
 * arbitration may probe warps in a different order than a linear scan.
 */
class IssueGate {
  public:
    virtual bool eligible(Warp &w) const = 0;

  protected:
    ~IssueGate() = default;
};

class Scheduler {
  public:
    virtual ~Scheduler() = default;

    /** Sorts @p warps into descending scheduling priority. */
    virtual void order(std::vector<Warp *> &warps, Cycle now) = 0;

    /**
     * Optional O(n) arbitration fast path. Returns exactly the warp that
     * order() + the core's back-off deprioritization (non-backed-off
     * warps first, backed-off ones FIFO by backoffSeq when
     * @p deprioritize) + a first-eligible scan would select, or nullptr
     * when no warp is eligible — without materializing the ordered list.
     * @p warps must be the unit's residents in launch-age order (the
     * order the core maintains). Policies whose priority cannot be
     * evaluated positionally keep the generic path.
     */
    virtual bool supportsPick() const { return false; }
    virtual Warp *
    pick(const std::vector<Warp *> &warps, Cycle now, bool deprioritize,
         const IssueGate &gate)
    {
        (void)warps;
        (void)now;
        (void)deprioritize;
        (void)gate;
        return nullptr;
    }

    /** Called when @p warp wins arbitration this cycle. */
    virtual void
    notifyIssued(Warp *warp, Cycle now)
    {
        (void)now;
        lastIssued_ = warp;
    }

    /** Called when @p warp retires so stale pointers are dropped. */
    virtual void
    notifyFinished(Warp *warp)
    {
        if (lastIssued_ == warp)
            lastIssued_ = nullptr;
    }

    virtual const char *name() const = 0;

  protected:
    Warp *lastIssued_ = nullptr;
};

/** Creates the configured base policy. */
std::unique_ptr<Scheduler> makeScheduler(const GpuConfig &cfg);

}  // namespace bowsim

#endif  // BOWSIM_SCHED_SCHEDULER_HPP
