#ifndef BOWSIM_SCHED_SCHEDULER_HPP
#define BOWSIM_SCHED_SCHEDULER_HPP

#include <memory>
#include <vector>

#include "src/arch/warp.hpp"
#include "src/common/config.hpp"

/**
 * @file
 * Warp-scheduler policies. Each SM scheduler unit owns one Scheduler
 * instance; every cycle the core asks it to order the unit's resident
 * warps by descending priority and issues the first *eligible* one (the
 * eligibility test — scoreboard, barrier, BOWS back-off — stays in the
 * core so policies remain pure priority functions).
 */

namespace bowsim {

class Scheduler {
  public:
    virtual ~Scheduler() = default;

    /** Sorts @p warps into descending scheduling priority. */
    virtual void order(std::vector<Warp *> &warps, Cycle now) = 0;

    /** Called when @p warp wins arbitration this cycle. */
    virtual void
    notifyIssued(Warp *warp, Cycle now)
    {
        (void)now;
        lastIssued_ = warp;
    }

    /** Called when @p warp retires so stale pointers are dropped. */
    virtual void
    notifyFinished(Warp *warp)
    {
        if (lastIssued_ == warp)
            lastIssued_ = nullptr;
    }

    virtual const char *name() const = 0;

  protected:
    Warp *lastIssued_ = nullptr;
};

/** Creates the configured base policy. */
std::unique_ptr<Scheduler> makeScheduler(const GpuConfig &cfg);

}  // namespace bowsim

#endif  // BOWSIM_SCHED_SCHEDULER_HPP
