#ifndef BOWSIM_SCHED_SCHEDULER_HPP
#define BOWSIM_SCHED_SCHEDULER_HPP

#include <memory>
#include <vector>

#include "src/arch/warp.hpp"
#include "src/common/config.hpp"

/**
 * @file
 * Warp-scheduler policies. Each SM scheduler unit owns one Scheduler
 * instance; every cycle the core asks it to order the unit's resident
 * warps by descending priority and issues the first *eligible* one (the
 * eligibility test — scoreboard, barrier, BOWS back-off — stays in the
 * core so policies remain pure priority functions).
 */

namespace bowsim {

/**
 * Eligibility oracle the core hands to pick(): wraps the per-warp checks
 * that stay core-side (scoreboard, barrier, back-off delay, memory-port
 * availability). eligible() must be side-effect free — fast-path
 * arbitration may probe warps in a different order than a linear scan.
 */
class IssueGate {
  public:
    virtual bool eligible(Warp &w) const = 0;

  protected:
    ~IssueGate() = default;
};

/**
 * Per-unit active-warp bitmasks maintained incrementally by the core:
 * bit k describes warps[k] of the unit's resident vector. Policies use
 * them to iterate set bits instead of scanning (and dereferencing)
 * every warp slot. When valid is false (unit wider than 64 warp slots,
 * or mask maintenance disabled) the masks carry no information and
 * policies must fall back to scanning the vector.
 */
struct UnitMask {
    /** Warp is not parked at a barrier (finished warps leave the
     *  vector immediately, so every resident warp is live). */
    std::uint64_t issuable = 0;
    /** Warp is in the BOWS backed-off state. */
    std::uint64_t backedOff = 0;
    bool valid = false;
};

class Scheduler {
  public:
    virtual ~Scheduler() = default;

    /** Sorts @p warps into descending scheduling priority. */
    virtual void order(std::vector<Warp *> &warps, Cycle now) = 0;

    /**
     * Optional O(n) arbitration fast path. Returns exactly the warp that
     * order() + the core's back-off deprioritization (non-backed-off
     * warps first, backed-off ones FIFO by backoffSeq when
     * @p deprioritize) + a first-eligible scan would select, or nullptr
     * when no warp is eligible — without materializing the ordered list.
     * @p warps must be the unit's residents in launch-age order (the
     * order the core maintains). Policies whose priority cannot be
     * evaluated positionally keep the generic path.
     */
    virtual bool supportsPick() const { return false; }
    virtual Warp *
    pick(const std::vector<Warp *> &warps, const UnitMask &mask, Cycle now,
         bool deprioritize, const IssueGate &gate)
    {
        (void)warps;
        (void)mask;
        (void)now;
        (void)deprioritize;
        (void)gate;
        return nullptr;
    }

    /**
     * True when order() evaluates warps element-wise (its result for a
     * subset is the subset of its result), so the core may pre-filter
     * the input by the UnitMask before ordering. Policies whose
     * priority depends on the whole resident set (e.g. TwoLevel's
     * group count) must leave this false.
     */
    virtual bool supportsFilteredOrder() const { return false; }

    /** Called when @p warp wins arbitration this cycle. */
    virtual void
    notifyIssued(Warp *warp, Cycle now)
    {
        (void)now;
        lastIssued_ = warp;
    }

    /** Called when @p warp retires so stale pointers are dropped. */
    virtual void
    notifyFinished(Warp *warp)
    {
        if (lastIssued_ == warp)
            lastIssued_ = nullptr;
    }

    virtual const char *name() const = 0;

  protected:
    Warp *lastIssued_ = nullptr;
};

/** Creates the configured base policy. */
std::unique_ptr<Scheduler> makeScheduler(const GpuConfig &cfg);

}  // namespace bowsim

#endif  // BOWSIM_SCHED_SCHEDULER_HPP
