#include "src/sched/two_level.hpp"

#include <algorithm>

namespace bowsim {

void
TwoLevelScheduler::order(std::vector<Warp *> &warps, Cycle now)
{
    (void)now;
    // Sort by (group distance from the active group, LRR order inside
    // the group). Group ids wrap so "next" groups follow the active one.
    unsigned max_group = 0;
    for (const Warp *w : warps)
        max_group = std::max(max_group, w->id() / groupSize_);
    const unsigned num_groups = max_group + 1;

    unsigned last_id =
        lastIssued_ ? lastIssued_->id() % groupSize_ : groupSize_ - 1;
    std::sort(warps.begin(), warps.end(), [&](const Warp *a,
                                              const Warp *b) {
        unsigned ga = (a->id() / groupSize_ + num_groups - activeGroup_) %
                      num_groups;
        unsigned gb = (b->id() / groupSize_ + num_groups - activeGroup_) %
                      num_groups;
        if (ga != gb)
            return ga < gb;
        // Round-robin within the group, starting after the last-issued
        // warp's slot.
        unsigned ra =
            (a->id() % groupSize_ + groupSize_ - 1 - last_id) % groupSize_;
        unsigned rb =
            (b->id() % groupSize_ + groupSize_ - 1 - last_id) % groupSize_;
        return ra < rb;
    });
}

}  // namespace bowsim
