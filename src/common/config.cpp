#include "src/common/config.hpp"

namespace bowsim {

const char *
toString(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::LRR: return "LRR";
      case SchedulerKind::GTO: return "GTO";
      case SchedulerKind::CAWA: return "CAWA";
      case SchedulerKind::TwoLevel: return "TwoLevel";
    }
    return "?";
}

const char *
toString(SpinDetect kind)
{
    switch (kind) {
      case SpinDetect::None: return "none";
      case SpinDetect::Oracle: return "oracle";
      case SpinDetect::Ddos: return "ddos";
    }
    return "?";
}

const char *
toString(HashKind kind)
{
    switch (kind) {
      case HashKind::Xor: return "XOR";
      case HashKind::Modulo: return "MODULO";
    }
    return "?";
}

const char *
toString(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Cycle: return "cycle";
      case ExecMode::Functional: return "functional";
      case ExecMode::Sampled: return "sampled";
    }
    return "?";
}

bool
parseExecMode(const std::string &text, ExecMode *out)
{
    if (text == "cycle")
        *out = ExecMode::Cycle;
    else if (text == "functional")
        *out = ExecMode::Functional;
    else if (text == "sampled")
        *out = ExecMode::Sampled;
    else
        return false;
    return true;
}

GpuConfig
makeGtx480Config()
{
    GpuConfig cfg;
    cfg.name = "GTX480";
    cfg.numCores = 15;
    cfg.maxThreadsPerCore = 1536;
    cfg.numRegsPerCore = 32768;
    cfg.numSchedulersPerCore = 2;
    cfg.l1d = CacheConfig{16 * 1024, 4, kLineBytes, 32};
    cfg.l2 = CacheConfig{64 * 1024, 8, kLineBytes, 64};
    cfg.numL2Banks = 6;
    cfg.atomicServicePeriod = 4;
    cfg.coreClockMhz = 700.0;
    return cfg;
}

GpuConfig
makeGtx1080TiConfig()
{
    GpuConfig cfg;
    cfg.name = "GTX1080Ti";
    cfg.numCores = 28;
    cfg.maxThreadsPerCore = 2048;
    cfg.numRegsPerCore = 65536;
    cfg.numSchedulersPerCore = 4;
    cfg.l1d = CacheConfig{48 * 1024, 6, kLineBytes, 64};
    cfg.l2 = CacheConfig{128 * 1024, 16, kLineBytes, 64};
    cfg.numL2Banks = 11;
    cfg.atomicServicePeriod = 4;
    cfg.coreClockMhz = 1481.0;
    // Pascal's memory system is both faster and wider.
    cfg.l2HitLatency = 100;
    cfg.dramLatency = 180;
    cfg.dramServicePeriod = 2;
    return cfg;
}

}  // namespace bowsim
