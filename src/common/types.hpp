#ifndef BOWSIM_COMMON_TYPES_HPP
#define BOWSIM_COMMON_TYPES_HPP

#include <cstdint>

/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

namespace bowsim {

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/**
 * "No scheduled event" sentinel for next-event horizons (idle-cycle
 * fast-forward). Components with nothing pending report this; the skip
 * logic treats it as +infinity.
 */
constexpr Cycle kNeverCycle = ~Cycle{0};

/** Byte address in the simulated (flat) global address space. */
using Addr = std::uint64_t;

/** 64-bit machine word; all architectural registers hold one of these. */
using Word = std::int64_t;

/** Number of lanes (threads) per warp. Fixed at 32, as on NVIDIA parts. */
constexpr unsigned kWarpSize = 32;

/** Active-lane bit mask for one warp (bit i set = lane i active). */
using LaneMask = std::uint32_t;

/** Mask with all kWarpSize lanes active. */
constexpr LaneMask kFullMask = 0xffffffffu;

/** 1-D kernel launch geometry (grids in this simulator are linearized). */
struct Dim3 {
    unsigned x = 1;
    unsigned y = 1;
    unsigned z = 1;

    unsigned count() const { return x * y * z; }
};

/** Cache line size in bytes; shared by L1 and L2 (Table II of the paper). */
constexpr unsigned kLineBytes = 128;

/** Returns the line-aligned base of @p a. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

}  // namespace bowsim

#endif  // BOWSIM_COMMON_TYPES_HPP
