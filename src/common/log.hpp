#ifndef BOWSIM_COMMON_LOG_HPP
#define BOWSIM_COMMON_LOG_HPP

#include <sstream>
#include <stdexcept>
#include <string>

/**
 * @file
 * Error-reporting helpers, following the gem5 fatal/panic distinction:
 * fatal() is a user error (bad configuration, malformed assembly), panic()
 * is a simulator bug (broken invariant). Both throw so tests can assert on
 * them; the CLI tools let the exception terminate the process.
 */

namespace bowsim {

/** Thrown on user-caused errors (bad config, malformed kernel assembly). */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Thrown on internal invariant violations (simulator bugs). */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

}  // namespace detail

/** Report an unrecoverable user error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Report a simulator bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Emit a non-fatal warning to stderr. */
void warn(const std::string &message);

}  // namespace bowsim

#endif  // BOWSIM_COMMON_LOG_HPP
