#ifndef BOWSIM_COMMON_LOG_HPP
#define BOWSIM_COMMON_LOG_HPP

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

/**
 * @file
 * Error-reporting helpers, following the gem5 fatal/panic distinction:
 * fatal() is a user error (bad configuration, malformed assembly), panic()
 * is a simulator bug (broken invariant). Both throw so tests can assert on
 * them; the CLI tools let the exception terminate the process.
 *
 * simFatal() marks the subset of fatal conditions raised *while a kernel
 * is being simulated* (watchdog timeout, out-of-bounds device access).
 * These throw SimError, which derives from FatalError, so existing
 * catch sites keep working while sweep harnesses can catch a diverging
 * simulation point and keep the rest of the sweep alive.
 *
 * The warning sink is mutex-guarded: sweep harnesses run many
 * simulations on worker threads concurrently.
 */

namespace bowsim {

/** Thrown on user-caused errors (bad config, malformed kernel assembly). */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/**
 * Thrown when one *simulated run* goes wrong: deadlock watchdog,
 * out-of-bounds device access, a kernel that does not fit on an SM.
 * Catchable per sweep point without aborting the whole process.
 */
class SimError : public FatalError {
  public:
    explicit SimError(const std::string &what) : FatalError(what) {}
};

/** Thrown on internal invariant violations (simulator bugs). */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

}  // namespace detail

/** Report an unrecoverable user error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::format(args...));
}

/** Report an unrecoverable error inside a simulated run. Never returns. */
template <typename... Args>
[[noreturn]] void
simFatal(const Args &...args)
{
    throw SimError(detail::format(args...));
}

/** Report a simulator bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::format(args...));
}

/** Emit a non-fatal warning to the log sink (thread-safe). */
void warn(const std::string &message);

/** Emit an informational message to the log sink (thread-safe). */
void logInfo(const std::string &message);

/**
 * Redirect warn()/logInfo() output (default: std::cerr). Pass nullptr to
 * restore the default. Returns the previous sink. Intended for tests and
 * harnesses; the sink itself must outlive its installation.
 */
std::ostream *setLogSink(std::ostream *sink);

}  // namespace bowsim

#endif  // BOWSIM_COMMON_LOG_HPP
