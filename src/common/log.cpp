#include "src/common/log.hpp"

#include <iostream>
#include <mutex>

namespace bowsim {

namespace {

/** Serializes writes from concurrent sweep workers. */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

std::ostream *&
sinkRef()
{
    static std::ostream *sink = nullptr;  // nullptr -> std::cerr
    return sink;
}

void
emit(const char *prefix, const std::string &message)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::ostream &os = sinkRef() ? *sinkRef() : std::cerr;
    os << prefix << message << "\n";
}

}  // namespace

void
warn(const std::string &message)
{
    emit("warn: ", message);
}

void
logInfo(const std::string &message)
{
    emit("info: ", message);
}

std::ostream *
setLogSink(std::ostream *sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::ostream *prev = sinkRef();
    sinkRef() = sink;
    return prev;
}

}  // namespace bowsim
