#include "src/common/log.hpp"

#include <iostream>

namespace bowsim {

void
warn(const std::string &message)
{
    std::cerr << "warn: " << message << "\n";
}

}  // namespace bowsim
