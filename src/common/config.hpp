#ifndef BOWSIM_COMMON_CONFIG_HPP
#define BOWSIM_COMMON_CONFIG_HPP

#include <cstdint>
#include <string>

#include "src/common/types.hpp"

/**
 * @file
 * Simulator configuration. GpuConfig mirrors Table II of the paper
 * (GTX480 "Fermi" and GTX1080Ti "Pascal" baselines); DdosConfig and
 * BowsConfig mirror the DDOS/BOWS-specific rows of the same table.
 */

namespace bowsim {

/** Baseline warp scheduling policy (Section II of the paper). */
enum class SchedulerKind {
    LRR,      ///< Loose round-robin.
    GTO,      ///< Greedy-then-oldest, with periodic age rotation.
    CAWA,     ///< Criticality-aware warp acceleration [Lee, ISCA'15].
    TwoLevel, ///< Two-level scheduling [Narasiman, MICRO'11] (extension).
};

/** How spin-inducing branches are identified for BOWS. */
enum class SpinDetect {
    None,    ///< No SIB information; BOWS degenerates to the base policy.
    Oracle,  ///< Use the kernel's ground-truth SIB annotations.
    Ddos,    ///< Dynamic detection (Section IV of the paper).
};

/** Hashing scheme used by DDOS history registers (Section IV-B). */
enum class HashKind {
    Xor,     ///< Fold all value bits with XOR (paper default).
    Modulo,  ///< Keep only the least-significant bits.
};

/**
 * How a kernel launch is executed (docs/PERF.md, "Execution modes").
 */
enum class ExecMode {
    /** Full cycle-accurate simulation (the default). */
    Cycle,
    /**
     * ISA semantics only: warp-at-a-time interpretation with IPDOM
     * reconvergence against functional memory; scoreboard, pipeline,
     * caches and DRAM timing are skipped. Deterministic by construction
     * (atomics apply in SM-id/warp-slot rotation order), so the final
     * MemorySpace::digest() is reproducible and — for schedule-invariant
     * kernels — identical to cycle mode. KernelStats::cycles is 0.
     */
    Functional,
    /**
     * SMARTS-style sampling: functional fast-forward alternating with
     * detailed cycle-accurate windows seeded from architectural
     * checkpoints; reports per-window IPC with mean and a 95% CI
     * (KernelStats::ipcEst / ipcCi95 / sampledWindows).
     */
    Sampled,
};

const char *toString(SchedulerKind kind);
const char *toString(SpinDetect kind);
const char *toString(HashKind kind);
const char *toString(ExecMode mode);

/** Parses "cycle" / "functional" / "sampled"; false on anything else. */
bool parseExecMode(const std::string &text, ExecMode *out);

/** DDOS design parameters (Table I / Table II, "DDOS Specific"). */
struct DdosConfig {
    bool enabled = true;
    HashKind hash = HashKind::Xor;
    /** Hashed path/value width in bits ("m = k" in the paper). */
    unsigned hashBits = 8;
    /** History register length in entries ("l"). */
    unsigned historyLength = 8;
    /** SIB-PT confidence threshold ("t"). */
    unsigned confidenceThreshold = 4;
    /** SIB-PT capacity per SM (16 entries, 35 bits each; Table III). */
    unsigned sibTableEntries = 16;
    /** Time-share one history-register set among warps ("sh"). */
    bool timeShare = false;
    /** Epoch length in cycles when time-sharing is on. */
    Cycle timeShareEpoch = 1000;
};

/** BOWS design parameters (Table II, "BOWS Specific"). */
struct BowsConfig {
    bool enabled = false;
    /**
     * Ablation knob: move backed-off warps behind all non-backed-off
     * warps (the priority-queue half of BOWS). With this off, only the
     * minimum-spacing delay remains active.
     */
    bool deprioritize = true;
    /**
     * Fixed back-off delay limit in cycles. Ignored when adaptive is
     * true. A value of 0 still deprioritizes spinning warps (they go to
     * the back of the priority queue) but imposes no minimum spacing
     * between spin iterations.
     */
    Cycle delayLimit = 0;
    /** Use the adaptive delay-limit estimator of Fig. 5. */
    bool adaptive = true;
    /** Execution window T for the adaptive estimator. */
    Cycle window = 1000;
    /** Delay step added/removed by the estimator. */
    Cycle delayStep = 250;
    /** Lower clamp for the adaptive delay limit. */
    Cycle minLimit = 0;
    /** Upper clamp for the adaptive delay limit (14-bit counter). */
    Cycle maxLimit = 10000;
    /**
     * SIB-instruction fraction that triggers an increase (FRAC1).
     * Table II lists 0.5; a spin iteration in this ISA is ~5-8
     * instructions (one SIB each), so the dynamic SIB share tops out
     * near 0.2 and 0.5 would never fire. The default keeps the
     * "non-negligible spinning" semantics of Fig. 5 at this ISA's
     * instruction granularity.
     */
    double frac1 = 0.1;
    /** Useful-ratio degradation that triggers a decrease (FRAC2). */
    double frac2 = 0.8;
};

/** Memory-hierarchy geometry for one cache. */
struct CacheConfig {
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = kLineBytes;
    unsigned mshrs = 32;

    unsigned numSets() const { return sizeBytes / (ways * lineBytes); }
};

/**
 * Top-level GPU configuration (Table II "Baseline Configuration" plus the
 * pipeline/memory latencies GPGPU-Sim would read from its config files).
 */
struct GpuConfig {
    std::string name = "GTX480";

    // --- Core geometry -------------------------------------------------
    unsigned numCores = 15;
    unsigned maxThreadsPerCore = 1536;
    unsigned maxCtasPerCore = 8;
    unsigned numRegsPerCore = 32768;
    unsigned sharedMemPerCore = 48 * 1024;
    unsigned numSchedulersPerCore = 2;

    // --- Scheduling -----------------------------------------------------
    SchedulerKind scheduler = SchedulerKind::GTO;
    /** GTO age-rotation period; avoids livelock on HT/ATM (Section VI). */
    Cycle gtoRotatePeriod = 50000;
    /** Fetch-group size for the TwoLevel scheduler. */
    unsigned twoLevelGroupSize = 8;

    BowsConfig bows;
    DdosConfig ddos;
    SpinDetect spinDetect = SpinDetect::Ddos;

    // --- Pipeline latencies ---------------------------------------------
    unsigned aluLatency = 4;
    unsigned mulDivLatency = 16;
    unsigned sharedMemLatency = 24;

    // --- Memory system ---------------------------------------------------
    CacheConfig l1d{16 * 1024, 4, kLineBytes, 32};
    CacheConfig l2{64 * 1024, 8, kLineBytes, 64};
    unsigned numL2Banks = 6;
    unsigned l1HitLatency = 28;
    unsigned l2HitLatency = 120;
    unsigned icntLatency = 24;
    unsigned dramLatency = 220;
    /** Cycles between successive DRAM services on one channel. */
    unsigned dramServicePeriod = 4;
    /**
     * Minimum cycles between atomic operations at one L2 bank (Table II,
     * "atomic service period"). This serialization is what makes failed
     * lock acquires consume memory bandwidth.
     */
    unsigned atomicServicePeriod = 4;

    // --- Clocks (MHz), used to convert cycles to wall time ---------------
    double coreClockMhz = 700.0;

    /** Max cycles before the simulator declares a hang. */
    Cycle watchdogCycles = 400'000'000;

    /**
     * Collect the per-warp issue-stall breakdown (KernelStats::
     * stallCounts) even without a trace sink attached. Off by default:
     * the attribution loop runs once per resident warp per cycle, so it
     * is gated off the hot path. Attaching a trace sink via
     * Gpu::setTraceSink() turns collection on regardless of this flag.
     */
    bool collectStallBreakdown = false;

    /**
     * Accumulate KernelStats::spinningWarpCycles — the per-cycle count
     * of resident warps the spin-detection mechanism currently flags as
     * spinning. Off by default for the same reason as the stall
     * breakdown: the gauge loops over resident warps, so it stays off
     * the hot path unless a consumer (the litmus harness's spin-cycle
     * attribution) asks for it.
     */
    bool collectSpinCycles = false;

    /**
     * Event-driven idle-cycle fast-forward: when a cycle ends with no
     * warp issued on any SM, jump the clock to the earliest cycle at
     * which any component can do work (writeback, memory completion,
     * back-off deadline, CTA dispatch) instead of ticking through the
     * gap. Deterministic and statistics-exact by construction (see
     * docs/PERF.md for the horizon contract); the flag exists as an
     * escape hatch (--no-skip / BOWSIM_NO_SKIP on the bench binaries)
     * and for differential testing. Ignored — skip is forced off —
     * while a trace sink is attached, because per-cycle IssueStall
     * events cannot be synthesized for skipped cycles.
     */
    bool idleSkip = true;

    /**
     * Host worker threads for the per-cycle SM compute phase (--sm-threads
     * / BOWSIM_SM_THREADS on the bench binaries). Purely an execution
     * knob: results are independent of it by the phase-split contract
     * (docs/PERF.md) — the compute phase of active SMs runs concurrently,
     * and all globally visible side effects (functional memory, memory-
     * system requests, traces) are committed serially in SM-id order at a
     * cycle barrier. 1 (the default) keeps the sequential loop.
     */
    unsigned smThreads = 1;

    /**
     * Sample period, in simulated cycles, for the time-series metrics
     * sampler (--metrics-interval / BOWSIM_METRICS_INTERVAL on the bench
     * binaries). 0 disables sampling; the value is only consulted when a
     * MetricsSampler is attached via Gpu::setMetrics(). Recorded in sweep
     * JSON artifacts so a series can be interpreted offline.
     */
    Cycle metricsInterval = 0;

    /**
     * Sync-contention profiler (docs/SYNC.md, "Sync observability"):
     * number of hot addresses emitted in a --sync-report document and
     * the --profile hot-sync section. Purely an observability knob —
     * only consulted when a SyncProfileRegistry is attached via
     * Gpu::setSyncProf() — and excluded from the result-cache
     * fingerprint like metricsInterval.
     */
    unsigned syncTopN = 32;

    /**
     * CAS-storm detector window: the profiler classifies an address as
     * storming when at least 90% of the last syncStormWindow CAS
     * attempts failed, and clears the flag below 50% (hysteresis).
     * Capped at 64 attempts (one machine word of history per address).
     * Observability-only, like syncTopN.
     */
    unsigned syncStormWindow = 64;

    // --- Execution mode (docs/PERF.md, "Execution modes") ----------------
    /**
     * Cycle-accurate, fast-functional, or sampled execution
     * (--exec-mode / BOWSIM_EXEC_MODE on the bench binaries). Functional
     * and sampled modes are estimation tools: per-cycle observability
     * (traces, stall breakdowns, time-series metrics outside detailed
     * windows) is forced off, and only cycle mode reports exact timing.
     */
    ExecMode execMode = ExecMode::Cycle;

    /**
     * Sampled mode: length of one detailed cycle-accurate window in
     * cycles (--sample-window). The first quarter of each window is
     * warm-up — simulated but excluded from the IPC measurement, which
     * absorbs the cold-start bias of checkpoint-seeded caches and
     * pipeline state.
     */
    Cycle sampleWindow = 4000;

    /**
     * Sampled mode: functional fast-forward distance between detailed
     * windows, in warp instructions (--sample-period). The first
     * fast-forward leg is half a period, so windows sit mid-period
     * rather than sampling the launch transient at instruction 0.
     */
    std::uint64_t samplePeriod = 10000;

    // --- Device/system split (docs/PERF.md, "Device sharding") -----------
    /**
     * Number of devices in the simulated system (--devices /
     * BOWSIM_DEVICES on the bench binaries). Each device replicates the
     * full core/L2/DRAM geometry above; CTAs of a launch are chunked
     * contiguously across devices and global memory is homed on devices
     * by static line-address interleave. 1 (the default) is the
     * single-GPU model and is byte-identical to the pre-split simulator.
     */
    unsigned numDevices = 1;

    /**
     * Inter-device link traversal latency in cycles (one direction,
     * switch excluded). Only consulted when numDevices > 1.
     */
    unsigned linkLatency = 700;

    /**
     * Minimum cycles between packets on one device's link egress (and,
     * symmetrically, ingress) port — the link serialization delay.
     */
    unsigned linkServicePeriod = 4;

    /** System-level switch hop latency between link ports, in cycles. */
    unsigned switchLatency = 100;

    /** Warps per core implied by the thread budget. */
    unsigned maxWarpsPerCore() const { return maxThreadsPerCore / kWarpSize; }

    /** Total SM count across all devices of the system. */
    unsigned totalCores() const
    {
        return numCores * (numDevices > 0 ? numDevices : 1);
    }
};

/**
 * Home device of a byte address under the static line-interleave policy:
 * consecutive cache lines rotate across devices. With one device this is
 * always device 0 (no remote traffic exists).
 */
inline unsigned
homeDeviceOf(Addr addr, unsigned num_devices)
{
    if (num_devices <= 1)
        return 0;
    return static_cast<unsigned>((lineBase(addr) / kLineBytes) %
                                 num_devices);
}

/** Table II GTX480 (Fermi) baseline. */
GpuConfig makeGtx480Config();

/** Table II GTX1080Ti (Pascal) baseline. */
GpuConfig makeGtx1080TiConfig();

}  // namespace bowsim

#endif  // BOWSIM_COMMON_CONFIG_HPP
