#ifndef BOWSIM_MEM_LOCK_TRACKER_HPP
#define BOWSIM_MEM_LOCK_TRACKER_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "src/common/types.hpp"

/**
 * @file
 * Measurement-only lock ownership tracker behind the Figure 2 / Figure 12
 * outcome distributions. Successful `atomicCAS(m, 0, v)` records the
 * acquiring warp; failed attempts are classified as intra-warp (the holder
 * is the same warp) or inter-warp failures. Writing 0 back releases.
 */

namespace bowsim {

enum class CasOutcome { Success, InterWarpFail, IntraWarpFail };

class LockTracker {
  public:
    /**
     * Records a CAS attempt on @p addr by global warp @p warp_key.
     * @param old_value    value read by the CAS
     * @param expected     the compare value
     * @param desired      the swap value
     */
    CasOutcome onCas(Addr addr, std::uint64_t warp_key, Word old_value,
                     Word expected, Word desired);

    /** Records a plain store/exchange of @p value to @p addr. */
    void onWrite(Addr addr, Word value);

    /** Number of currently-held tracked locks. */
    size_t held() const { return owner_.size(); }

  private:
    std::unordered_map<Addr, std::uint64_t> owner_;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_LOCK_TRACKER_HPP
