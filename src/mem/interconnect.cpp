#include "src/mem/interconnect.hpp"

// Header-only; this translation unit anchors the component in the library.
