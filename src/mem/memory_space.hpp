#ifndef BOWSIM_MEM_MEMORY_SPACE_HPP
#define BOWSIM_MEM_MEMORY_SPACE_HPP

#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * Functional global memory: a sparse, paged, flat 64-bit byte-addressable
 * space with a bump allocator. Timing is modeled separately (the caches
 * and DRAM never hold data, only tags); all values live here.
 */

namespace bowsim {

class MemorySpace {
  public:
    static constexpr Addr kPageBytes = 4096;
    /** Allocations start above the null page to catch null derefs. */
    static constexpr Addr kHeapBase = 0x10000;

    /** Allocates @p bytes, 256-byte aligned; returns the base address. */
    Addr allocate(std::uint64_t bytes);

    /** Releases all allocations and contents. */
    void clear();

    Word read(Addr addr, unsigned size) const;
    void write(Addr addr, Word value, unsigned size);

    /** Bulk host access, used by Gpu::memcpy. */
    void readBytes(Addr addr, void *out, std::uint64_t bytes) const;
    void writeBytes(Addr addr, const void *in, std::uint64_t bytes);

    std::uint64_t bytesAllocated() const { return next_ - kHeapBase; }

    /**
     * Content digest (FNV-1a over pages in address order), independent of
     * page-map iteration order. Two spaces with the same digest hold the
     * same bytes for all practical purposes — the differential tests use
     * this to compare final memory states across schedulers and sinks.
     */
    std::uint64_t digest() const;

  private:
    const std::vector<std::uint8_t> *findPage(Addr page) const;
    std::vector<std::uint8_t> &touchPage(Addr page);

    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
    Addr next_ = kHeapBase;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_MEMORY_SPACE_HPP
