#include "src/mem/l2_bank.hpp"

namespace bowsim {

Cycle
L2Bank::access(const MemPacket &pkt, Cycle arrival, AccessInfo *info)
{
    ++accesses_;
    bool is_atomic = pkt.type == MemPacket::Type::Atomic;
    bool is_write = pkt.type == MemPacket::Type::Write;
    if (is_atomic)
        ++atomics_;

    Cycle start = std::max(arrival, free_);
    free_ = start + (is_atomic ? atomicPeriod_ : 1);
    if (is_atomic)
        atomicWaitCycles_ += start - arrival;
    if (info)
        info->waited = start - arrival;

    // Atomics arrive with byte addresses (they serialize per address);
    // the tag array works on line granularity.
    Addr line = lineBase(pkt.line);
    bool hit = cache_.access(line, is_write || is_atomic);
    Cycle tag_done = start + hitLatency_;
    if (hit)
        return tag_done;
    if (info)
        info->miss = true;

    // Miss: fetch the line from DRAM and install it (write-allocate).
    bool evicted_dirty = false;
    cache_.fill(line, is_write || is_atomic, &evicted_dirty);
    if (evicted_dirty)
        dram_.scheduleWriteback(tag_done);
    return dram_.schedule(tag_done, line);
}

MemorySystem::MemorySystem(const GpuConfig &cfg)
    : cfg_(cfg),
      toMem_(cfg.numCores, cfg.icntLatency),
      toSm_(cfg.numL2Banks, cfg.icntLatency)
{
    banks_.reserve(cfg.numL2Banks);
    for (unsigned b = 0; b < cfg.numL2Banks; ++b)
        banks_.emplace_back(cfg);
}

Cycle
MemorySystem::request(const MemPacket &pkt, Cycle now)
{
    // Home routing (static line-address interleave): device-scope
    // atomics resolve at the local L2 regardless of the address's home;
    // everything else belongs to its home device. On a single-device
    // system home is always this device, so the link path is never
    // taken and the pre-split timing is preserved byte for byte.
    const bool device_scope_atomic =
        pkt.type == MemPacket::Type::Atomic &&
        pkt.scope == MemScope::Device;
    const unsigned home = device_scope_atomic
                              ? deviceId_
                              : homeDeviceOf(pkt.line, numDevices_);
    if (home != deviceId_)
        return remoteRequest(pkt, now, home);

    Cycle arrival = toMem_.inject(pkt.smId, now);
    unsigned bank = static_cast<unsigned>(
        (lineBase(pkt.line) / kLineBytes) % banks_.size());
    Cycle bank_done;
    if (!tracer_.enabled() && !sync_.enabled()) {
        bank_done = banks_[bank].access(pkt, arrival);
    } else {
        L2Bank::AccessInfo info;
        bank_done = banks_[bank].access(pkt, arrival, &info);
        if (pkt.type == MemPacket::Type::Atomic) {
            tracer_.emit(now, pkt.smId, -1,
                         trace::EventKind::AtomicSerialize, pkt.line,
                         info.waited);
            sync_.onTimedAtomic(pkt.line, info.waited, /*remote=*/false);
        }
        if (info.miss) {
            tracer_.emit(now, pkt.smId, -1, trace::EventKind::L2Miss,
                         lineBase(pkt.line));
        }
    }
    if (pkt.type == MemPacket::Type::Write)
        return 0;
    return toSm_.inject(bank, bank_done);
}

Cycle
MemorySystem::remoteRequest(const MemPacket &pkt, Cycle now,
                            unsigned home)
{
    // The request leaves through the memory-side switch: it serializes
    // on the link's egress/ingress ports instead of the SM/L2 crossbars,
    // and its bank access accrues on the home device's counters. Trace
    // events are emitted by the requesting device's tracer so per-device
    // streams stay timestamp-ordered.
    MemorySystem &h = *peers_[home];
    const Cycle arrival = link_->traverse(deviceId_, home, now);
    ++linkPackets_;
    Cycle bank_done;
    if (!tracer_.enabled() && !sync_.enabled()) {
        bank_done = h.bankAccess(pkt, arrival);
    } else {
        L2Bank::AccessInfo info;
        bank_done = h.bankAccess(pkt, arrival, &info);
        if (pkt.type == MemPacket::Type::Atomic) {
            tracer_.emit(now, pkt.smId, -1,
                         trace::EventKind::AtomicSerialize, pkt.line,
                         info.waited);
            sync_.onTimedAtomic(pkt.line, info.waited, /*remote=*/true);
        }
        if (info.miss) {
            tracer_.emit(now, pkt.smId, -1, trace::EventKind::L2Miss,
                         lineBase(pkt.line));
        }
    }
    if (pkt.type == MemPacket::Type::Write)
        return 0;
    ++linkPackets_;
    return link_->traverse(home, deviceId_, bank_done);
}

MemSystemStats
MemorySystem::stats() const
{
    MemSystemStats s;
    for (const L2Bank &b : banks_) {
        s.l2Accesses += b.accesses();
        s.l2Hits += b.cache().hits();
        s.l2Misses += b.cache().misses();
        s.dramAccesses += b.dram().accesses() + b.dram().writebacks();
        s.dramRowActivations += b.dram().rowActivations();
        s.atomics += b.atomics();
        s.atomicWaitCycles += b.atomicWaitCycles();
    }
    s.icntPackets = toMem_.packets() + toSm_.packets();
    s.linkPackets = linkPackets_;
    return s;
}

}  // namespace bowsim
