#include "src/mem/dram.hpp"

// Header-only; this translation unit anchors the component in the library.
