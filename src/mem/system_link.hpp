#ifndef BOWSIM_MEM_SYSTEM_LINK_HPP
#define BOWSIM_MEM_SYSTEM_LINK_HPP

#include <cstdint>
#include <vector>

#include "src/common/config.hpp"

/**
 * @file
 * The inter-device link of the multi-GPU system (docs/PERF.md, "Device
 * sharding"): an NVLink-like point-to-point fabric routed through one
 * system-level switch. The model is analytic, like Interconnect — each
 * traversal serializes on the source device's egress port and the
 * destination device's ingress port (one packet per linkServicePeriod
 * per direction), then pays the switch hop plus the link latency.
 *
 * Determinism: traverse() mutates port state, so it is only legal from
 * the serialized request order — the same contract MemorySystem already
 * has (inline in the sequential loop, or the commit phase of the
 * phase-split loop). System horizon: a link traversal's completion is
 * folded into the reply cycle MemorySystem::request() returns, which
 * lands in the requesting SM's LD/ST event queue, so the idle-skip
 * horizon (min over SMs' nextWorkCycle) covers link events with no
 * separate term.
 */

namespace bowsim {

class SystemLink {
  public:
    explicit SystemLink(const GpuConfig &cfg)
        : latency_(cfg.linkLatency), switchLatency_(cfg.switchLatency),
          period_(cfg.linkServicePeriod > 0 ? cfg.linkServicePeriod : 1),
          egressFree_(cfg.numDevices, 0), ingressFree_(cfg.numDevices, 0)
    {
    }

    /**
     * Sends one packet from device @p src to device @p dst, entering the
     * fabric at @p now; returns the arrival cycle at @p dst. Must be
     * called in serialized request order (see file comment).
     */
    Cycle
    traverse(unsigned src, unsigned dst, Cycle now)
    {
        ++packets_;
        const Cycle egress = std::max(now, egressFree_[src]);
        egressFree_[src] = egress + period_;
        const Cycle at_switch = egress + switchLatency_;
        const Cycle ingress = std::max(at_switch, ingressFree_[dst]);
        ingressFree_[dst] = ingress + period_;
        return ingress + latency_;
    }

    /** Total packets carried, both directions, all device pairs. */
    std::uint64_t packets() const { return packets_; }

  private:
    Cycle latency_;
    Cycle switchLatency_;
    unsigned period_;
    std::vector<Cycle> egressFree_;
    std::vector<Cycle> ingressFree_;
    std::uint64_t packets_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_SYSTEM_LINK_HPP
