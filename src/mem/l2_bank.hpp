#ifndef BOWSIM_MEM_L2_BANK_HPP
#define BOWSIM_MEM_L2_BANK_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/config.hpp"
#include "src/isa/instruction.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/dram.hpp"
#include "src/mem/interconnect.hpp"
#include "src/mem/system_link.hpp"
#include "src/syncprof/syncprof.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * Banked L2 plus the memory-side network and DRAM channels, composed into
 * a MemorySystem. Atomics bypass the L1 and execute at the home L2 bank
 * (as on real GPUs), where a per-bank service period serializes them —
 * the property that makes failed lock acquires consume memory bandwidth.
 */

namespace bowsim {

/** One request from an SM into the memory system. */
struct MemPacket {
    enum class Type : std::uint8_t { Read, Write, Atomic };

    Addr line = 0;
    Type type = Type::Read;
    unsigned smId = 0;
    /**
     * Memory scope (atomics only): a Device-scope atomic resolves at the
     * issuing device's L2 regardless of the address's home; System-scope
     * atomics — like all plain reads/writes — route to the home device.
     */
    MemScope scope = MemScope::Device;
    /** Opaque transaction id, returned with the reply. */
    std::uint64_t token = 0;
};

/** One L2 slice with its DRAM channel. */
class L2Bank {
  public:
    L2Bank(const GpuConfig &cfg)
        : cache_(cfg.l2),
          dram_(cfg.dramLatency, cfg.dramServicePeriod),
          hitLatency_(cfg.l2HitLatency),
          atomicPeriod_(cfg.atomicServicePeriod)
    {
    }

    /** What one bank access did (for trace emission by the caller). */
    struct AccessInfo {
        bool miss = false;
        /** Cycles the request queued behind the bank's service slot. */
        Cycle waited = 0;
    };

    /**
     * Services @p pkt arriving at @p arrival; returns the cycle the bank
     * finishes (data ready to travel back for reads/atomics).
     */
    Cycle access(const MemPacket &pkt, Cycle arrival,
                 AccessInfo *info = nullptr);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t atomics() const { return atomics_; }
    /** Total cycles atomics queued behind this bank's service slot. */
    std::uint64_t atomicWaitCycles() const { return atomicWaitCycles_; }
    const Cache &cache() const { return cache_; }
    const DramChannel &dram() const { return dram_; }

  private:
    Cache cache_;
    DramChannel dram_;
    unsigned hitLatency_;
    /** Minimum cycles between atomic operations at this bank. */
    unsigned atomicPeriod_;
    Cycle free_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t atomics_ = 0;
    std::uint64_t atomicWaitCycles_ = 0;
};

/** Aggregate counters for the shared memory system. */
struct MemSystemStats {
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t dramRowActivations = 0;
    std::uint64_t atomics = 0;
    std::uint64_t atomicWaitCycles = 0;
    std::uint64_t icntPackets = 0;
    /** Inter-device link packets this device originated (requests and
     *  replies). Always 0 on a single-device system. */
    std::uint64_t linkPackets = 0;

    MemSystemStats &
    operator+=(const MemSystemStats &o)
    {
        l2Accesses += o.l2Accesses;
        l2Hits += o.l2Hits;
        l2Misses += o.l2Misses;
        dramAccesses += o.dramAccesses;
        dramRowActivations += o.dramRowActivations;
        atomics += o.atomics;
        atomicWaitCycles += o.atomicWaitCycles;
        icntPackets += o.icntPackets;
        linkPackets += o.linkPackets;
        return *this;
    }
};

/**
 * The device-level memory system: SM-to-memory crossbar, L2 banks (one
 * DRAM channel each) and the return network. All timing is analytic —
 * request() directly returns the reply-arrival cycle.
 */
class MemorySystem {
  public:
    explicit MemorySystem(const GpuConfig &cfg);

    /**
     * Issues @p pkt at @p now. Returns the cycle the reply reaches the
     * requesting SM; writes return 0 (no reply — write-through traffic is
     * still modeled and counted).
     */
    Cycle request(const MemPacket &pkt, Cycle now);

    MemSystemStats stats() const;

    /**
     * Attaches the launch's event sink. L2Miss/AtomicSerialize events are
     * stamped with the request cycle (not the bank-arrival cycle) so the
     * emitted stream stays globally timestamp-ordered.
     */
    void setTrace(trace::Tracer t) { tracer_ = t; }

    /**
     * Attaches the launch's sync-contention profiler (docs/SYNC.md).
     * Atomic packets report their bank wait and the local/remote split
     * to the registry, keyed by the byte address the packet carries
     * (atomics serialize per address, so pkt.line is the byte address —
     * the same key the functional hooks use).
     */
    void setSyncProf(syncprof::SyncProf s) { sync_ = s; }

    /**
     * Wires this device's memory system into a multi-device system:
     * @p link is the shared inter-device fabric, @p peers the per-device
     * memory systems indexed by device id (including this one at
     * @p device_id). Without this call the system is single-device and
     * request() never consults the link.
     */
    void
    setSystem(SystemLink *link, MemorySystem *const *peers,
              unsigned device_id, unsigned num_devices)
    {
        link_ = link;
        peers_ = peers;
        deviceId_ = device_id;
        numDevices_ = num_devices;
    }

    /**
     * Direct bank access for remote requests arriving over the link:
     * the link attaches at the memory-side switch, so remote traffic
     * bypasses this device's SM/L2 crossbars. Serialized-order only.
     */
    Cycle
    bankAccess(const MemPacket &pkt, Cycle arrival,
               L2Bank::AccessInfo *info = nullptr)
    {
        unsigned bank = static_cast<unsigned>(
            (lineBase(pkt.line) / kLineBytes) % banks_.size());
        return banks_[bank].access(pkt, arrival, info);
    }

  private:
    Cycle remoteRequest(const MemPacket &pkt, Cycle now, unsigned home);

    GpuConfig cfg_;
    std::vector<L2Bank> banks_;
    Interconnect toMem_;
    Interconnect toSm_;
    trace::Tracer tracer_;
    syncprof::SyncProf sync_;
    SystemLink *link_ = nullptr;
    MemorySystem *const *peers_ = nullptr;
    unsigned deviceId_ = 0;
    unsigned numDevices_ = 1;
    std::uint64_t linkPackets_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_L2_BANK_HPP
