#include "src/mem/cache.hpp"

#include "src/common/log.hpp"

namespace bowsim {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg), numSets_(cfg.numSets())
{
    if (numSets_ == 0)
        fatal("cache: size ", cfg.sizeBytes, " too small for ", cfg.ways,
              " ways of ", cfg.lineBytes, "B lines");
    lines_.resize(static_cast<size_t>(numSets_) * cfg_.ways);
}

unsigned
Cache::setOf(Addr line) const
{
    return static_cast<unsigned>((line / cfg_.lineBytes) % numSets_);
}

bool
Cache::probe(Addr line) const
{
    unsigned set = setOf(line);
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        const Line &l = lines_[set * cfg_.ways + w];
        if (l.valid && l.tag == line)
            return true;
    }
    return false;
}

bool
Cache::access(Addr line, bool write)
{
    unsigned set = setOf(line);
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[set * cfg_.ways + w];
        if (l.valid && l.tag == line) {
            l.lru = ++tick_;
            l.dirty = l.dirty || write;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
Cache::fill(Addr line, bool write, bool *evicted_dirty)
{
    if (evicted_dirty)
        *evicted_dirty = false;
    unsigned set = setOf(line);
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &l = lines_[set * cfg_.ways + w];
        if (l.valid && l.tag == line) {
            // Already present (e.g., filled by a merged miss).
            l.lru = ++tick_;
            l.dirty = l.dirty || write;
            return false;
        }
        if (!victim) {
            victim = &l;
        } else if (victim->valid && (!l.valid || l.lru < victim->lru)) {
            victim = &l;
        }
    }
    if (!victim)
        panic("cache fill found no victim");
    bool evicted = victim->valid;
    if (evicted && evicted_dirty)
        *evicted_dirty = victim->dirty;
    victim->tag = line;
    victim->valid = true;
    victim->dirty = write;
    victim->lru = ++tick_;
    return evicted;
}

void
Cache::invalidateAll()
{
    for (Line &l : lines_)
        l.valid = false;
}

}  // namespace bowsim
