#ifndef BOWSIM_MEM_DRAM_HPP
#define BOWSIM_MEM_DRAM_HPP

#include <algorithm>
#include <cstdint>

#include "src/common/types.hpp"

/**
 * @file
 * Analytic DRAM channel: fixed access latency plus a service period that
 * caps channel bandwidth (one access every dramServicePeriod cycles).
 */

namespace bowsim {

class DramChannel {
  public:
    DramChannel(unsigned latency, unsigned service_period)
        : latency_(latency), period_(service_period)
    {
    }

    /**
     * Schedules an access to @p line that becomes serviceable at
     * @p ready; returns the cycle its data is available. Row-buffer
     * tracking is observational only (no timing effect): a demand access
     * to a different 2 KiB row than the previous one counts as a row
     * activation.
     */
    Cycle
    schedule(Cycle ready, Addr line = 0)
    {
        Cycle start = std::max(ready, free_);
        free_ = start + period_;
        ++accesses_;
        const Addr row = line >> kRowShift;
        if (row != lastRow_) {
            ++rowActivations_;
            lastRow_ = row;
        }
        return start + latency_;
    }

    /** Consumes bandwidth without a consumer (write-back traffic). */
    void
    scheduleWriteback(Cycle ready)
    {
        Cycle start = std::max(ready, free_);
        free_ = start + period_;
        ++accesses_;
        ++writebacks_;
        // A write-back drains through the write buffer and closes
        // whatever row the demand stream had open.
        lastRow_ = kNoRow;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    /** Demand-stream row-buffer activations (2 KiB row granularity). */
    std::uint64_t rowActivations() const { return rowActivations_; }

  private:
    /** log2 of the row-buffer size: 2 KiB rows. */
    static constexpr unsigned kRowShift = 11;
    static constexpr Addr kNoRow = ~static_cast<Addr>(0);

    unsigned latency_;
    unsigned period_;
    Cycle free_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t rowActivations_ = 0;
    Addr lastRow_ = kNoRow;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_DRAM_HPP
