#ifndef BOWSIM_MEM_DRAM_HPP
#define BOWSIM_MEM_DRAM_HPP

#include <algorithm>
#include <cstdint>

#include "src/common/types.hpp"

/**
 * @file
 * Analytic DRAM channel: fixed access latency plus a service period that
 * caps channel bandwidth (one access every dramServicePeriod cycles).
 */

namespace bowsim {

class DramChannel {
  public:
    DramChannel(unsigned latency, unsigned service_period)
        : latency_(latency), period_(service_period)
    {
    }

    /**
     * Schedules an access that becomes serviceable at @p ready; returns
     * the cycle its data is available.
     */
    Cycle
    schedule(Cycle ready)
    {
        Cycle start = std::max(ready, free_);
        free_ = start + period_;
        ++accesses_;
        return start + latency_;
    }

    /** Consumes bandwidth without a consumer (write-back traffic). */
    void
    scheduleWriteback(Cycle ready)
    {
        (void)schedule(ready);
        ++writebacks_;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    unsigned latency_;
    unsigned period_;
    Cycle free_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t writebacks_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_DRAM_HPP
