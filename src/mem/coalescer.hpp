#ifndef BOWSIM_MEM_COALESCER_HPP
#define BOWSIM_MEM_COALESCER_HPP

#include <array>
#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * Memory-access coalescing: the per-lane byte addresses of one warp
 * memory instruction collapse into one transaction per distinct 128-byte
 * line, exactly as on Fermi-class hardware.
 */

namespace bowsim {

/**
 * Returns the distinct line base addresses touched by @p mask lanes.
 * Order is first-touch order (lane 0 upward), which keeps the timing
 * model deterministic.
 */
std::vector<Addr> coalesce(const std::array<Addr, kWarpSize> &lane_addrs,
                           LaneMask mask);

}  // namespace bowsim

#endif  // BOWSIM_MEM_COALESCER_HPP
