#ifndef BOWSIM_MEM_MEM_PORT_HPP
#define BOWSIM_MEM_MEM_PORT_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/types.hpp"
#include "src/mem/l2_bank.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * Per-SM ordered commit queue backing the phase-split cycle contract
 * (docs/PERF.md): during the compute phase an SM appends every globally
 * visible side effect — memory-system requests, functional global-memory
 * operations, trace events — to its own CommitQueue instead of performing
 * it inline. Gpu::launch drains the queues at the cycle barrier in SM-id
 * order, which reproduces the sequential loop's side-effect order exactly
 * (within one SM's cycle the queue preserves program order; across SMs
 * the drain order equals the old loop order). With --sm-threads=1 the
 * queue is bypassed entirely: side effects run inline at the enqueue
 * point and the serial path is byte-for-byte the pre-split loop.
 */

namespace bowsim {

class Warp;
struct Instruction;

/** A MemorySystem::request deferred to the commit phase. */
struct MemPortRequest {
    MemPacket pkt;
    /**
     * LD/ST event sequence number reserved at decision time so the
     * (when, seq) event-queue tie-break matches the inline path exactly.
     */
    std::uint64_t seq = 0;
    /** What to schedule once the reply cycle is known at commit. */
    enum class Completion : std::uint8_t { None, OpDone, Fill };
    Completion completion = Completion::None;
    /** Fill target line (Completion::Fill only). */
    Addr line = 0;
};

/** One deferred globally visible side effect. */
struct CommitEntry {
    enum class Kind : std::uint8_t {
        Trace,         ///< staged trace event
        MemRequest,    ///< LD/ST unit memory-system request
        GlobalLoad,    ///< functional global-memory load
        GlobalStore,   ///< functional global-memory store
        GlobalAtomic,  ///< functional read-modify-write
        SyncEvent,     ///< sync-profiler BOWS/DDOS transition
    };

    Kind kind = Kind::Trace;
    /** Atomic at a lock-acquire PC (captured at issue; the PC moves on
     *  before commit, so it cannot be re-derived from the warp). */
    bool acquire = false;
    LaneMask exec = 0;
    Warp *warp = nullptr;
    const Instruction *inst = nullptr;
    MemPortRequest req;
    trace::TraceEvent ev;
    std::array<Addr, kWarpSize> addrs{};
};

/**
 * Ordered per-SM buffer of deferred side effects for one cycle. Appended
 * to by exactly one compute thread; drained (and cleared) by the commit
 * phase on the coordinating thread every cycle.
 */
class CommitQueue {
  public:
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }
    const std::vector<CommitEntry> &entries() const { return entries_; }

    void
    pushTrace(const trace::TraceEvent &ev)
    {
        CommitEntry e;
        e.kind = CommitEntry::Kind::Trace;
        e.ev = ev;
        entries_.push_back(e);
    }

    void
    pushRequest(const MemPortRequest &req)
    {
        CommitEntry e;
        e.kind = CommitEntry::Kind::MemRequest;
        e.req = req;
        entries_.push_back(e);
    }

    /**
     * Stages a BOWS/DDOS transition for the sync profiler. Reuses the
     * TraceEvent payload (kind = BackoffEnter / SibConfirm, a0 = global
     * warp key) so the registry sees the transition at the same point in
     * the drain order as the inline path's direct call — after the
     * warp's own preceding failed CAS, before its next one.
     */
    void
    pushSyncEvent(const trace::TraceEvent &ev)
    {
        CommitEntry e;
        e.kind = CommitEntry::Kind::SyncEvent;
        e.ev = ev;
        entries_.push_back(e);
    }

    void
    pushGlobal(CommitEntry::Kind kind, Warp *warp, const Instruction *inst,
               LaneMask exec, const std::array<Addr, kWarpSize> &addrs,
               bool acquire)
    {
        CommitEntry e;
        e.kind = kind;
        e.warp = warp;
        e.inst = inst;
        e.exec = exec;
        e.addrs = addrs;
        e.acquire = acquire;
        entries_.push_back(e);
    }

  private:
    std::vector<CommitEntry> entries_;
};

/**
 * TraceSink that stages events into a CommitQueue. SM-side events share
 * the queue with deferred memory requests, so the drain interleaves them
 * with the MemorySystem's own emissions (L2Miss/AtomicSerialize, emitted
 * while the request entry commits) in exactly the sequential order.
 */
class StagingSink final : public trace::TraceSink {
  public:
    explicit StagingSink(CommitQueue &q) : q_(&q) {}
    void emit(const trace::TraceEvent &ev) override { q_->pushTrace(ev); }

  private:
    CommitQueue *q_;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_MEM_PORT_HPP
