#ifndef BOWSIM_MEM_CACHE_HPP
#define BOWSIM_MEM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "src/common/config.hpp"
#include "src/common/types.hpp"

/**
 * @file
 * Set-associative tag array with true-LRU replacement. Data never lives
 * here (functional values are in MemorySpace); the cache tracks presence
 * and dirtiness for timing and traffic accounting only.
 */

namespace bowsim {

class Cache {
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Looks up @p line without changing state. */
    bool probe(Addr line) const;

    /**
     * Performs an access: on hit, updates LRU and returns true; on miss
     * returns false and leaves the array unchanged.
     * @param write marks the line dirty on hit.
     */
    bool access(Addr line, bool write);

    /**
     * Installs @p line, evicting the set's LRU victim if needed.
     * @param write marks the new line dirty.
     * @param[out] evicted_dirty true when a dirty victim was evicted.
     * @return true when a valid victim was evicted.
     */
    bool fill(Addr line, bool write, bool *evicted_dirty);

    /** Invalidates every line. */
    void invalidateAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned numSets() const { return numSets_; }

  private:
    struct Line {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    unsigned setOf(Addr line) const;

    CacheConfig cfg_;
    unsigned numSets_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_CACHE_HPP
