#include "src/mem/memory_space.hpp"

#include <algorithm>

#include "src/common/log.hpp"

namespace bowsim {

Addr
MemorySpace::allocate(std::uint64_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    Addr base = next_;
    next_ += (bytes + 255) & ~std::uint64_t{255};
    return base;
}

void
MemorySpace::clear()
{
    pages_.clear();
    next_ = kHeapBase;
}

const std::vector<std::uint8_t> *
MemorySpace::findPage(Addr page) const
{
    auto it = pages_.find(page);
    return it == pages_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t> &
MemorySpace::touchPage(Addr page)
{
    auto &p = pages_[page];
    if (p.empty())
        p.assign(kPageBytes, 0);
    return p;
}

Word
MemorySpace::read(Addr addr, unsigned size) const
{
    if (size != 2 && size != 4 && size != 8)
        panic("MemorySpace::read: bad size ", size);
    std::uint64_t raw = 0;
    readBytes(addr, &raw, size);
    if (size == 4)
        return static_cast<Word>(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(raw)));
    if (size == 2)
        return static_cast<Word>(static_cast<std::int16_t>(
            static_cast<std::uint16_t>(raw)));
    return static_cast<Word>(raw);
}

void
MemorySpace::write(Addr addr, Word value, unsigned size)
{
    if (size != 2 && size != 4 && size != 8)
        panic("MemorySpace::write: bad size ", size);
    std::uint64_t raw = static_cast<std::uint64_t>(value);
    writeBytes(addr, &raw, size);
}

void
MemorySpace::readBytes(Addr addr, void *out, std::uint64_t bytes) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    std::uint64_t done = 0;
    while (done < bytes) {
        Addr a = addr + done;
        Addr page = a / kPageBytes;
        Addr off = a % kPageBytes;
        std::uint64_t chunk = std::min(bytes - done, kPageBytes - off);
        const auto *p = findPage(page);
        if (p) {
            std::memcpy(dst + done, p->data() + off, chunk);
        } else {
            std::memset(dst + done, 0, chunk);
        }
        done += chunk;
    }
}

void
MemorySpace::writeBytes(Addr addr, const void *in, std::uint64_t bytes)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    std::uint64_t done = 0;
    while (done < bytes) {
        Addr a = addr + done;
        Addr page = a / kPageBytes;
        Addr off = a % kPageBytes;
        std::uint64_t chunk = std::min(bytes - done, kPageBytes - off);
        std::memcpy(touchPage(page).data() + off, src + done, chunk);
        done += chunk;
    }
}

std::uint64_t
MemorySpace::digest() const
{
    std::vector<Addr> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    auto mix = [&h](const void *data, std::size_t n) {
        const auto *b = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    };
    for (Addr key : keys) {
        const auto &page = pages_.at(key);
        // An all-zero page is indistinguishable from an untouched one,
        // so it must not perturb the digest.
        bool all_zero = std::all_of(page.begin(), page.end(),
                                    [](std::uint8_t b) { return b == 0; });
        if (all_zero)
            continue;
        mix(&key, sizeof(key));
        mix(page.data(), page.size());
    }
    return h;
}

}  // namespace bowsim
