#include "src/mem/lock_tracker.hpp"

namespace bowsim {

CasOutcome
LockTracker::onCas(Addr addr, std::uint64_t warp_key, Word old_value,
                   Word expected, Word desired)
{
    if (old_value == expected) {
        if (desired != 0) {
            owner_[addr] = warp_key;
        } else {
            owner_.erase(addr);  // CAS-release pattern
        }
        return CasOutcome::Success;
    }
    auto it = owner_.find(addr);
    if (it != owner_.end() && it->second == warp_key)
        return CasOutcome::IntraWarpFail;
    return CasOutcome::InterWarpFail;
}

void
LockTracker::onWrite(Addr addr, Word value)
{
    // Any plain write to a held lock word releases it: writing 0 is the
    // mutex-release idiom, and publishing a non-sentinel value is the
    // lock-free "unlock by publish" idiom (BH tree build).
    (void)value;
    owner_.erase(addr);
}

}  // namespace bowsim
