#include "src/mem/coalescer.hpp"

#include <algorithm>

namespace bowsim {

std::vector<Addr>
coalesce(const std::array<Addr, kWarpSize> &lane_addrs, LaneMask mask)
{
    std::vector<Addr> lines;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!((mask >> lane) & 1))
            continue;
        Addr line = lineBase(lane_addrs[lane]);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }
    return lines;
}

}  // namespace bowsim
