#ifndef BOWSIM_MEM_INTERCONNECT_HPP
#define BOWSIM_MEM_INTERCONNECT_HPP

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * Analytic crossbar model: a fixed traversal latency plus one-packet-per-
 * cycle serialization at each injection port. Requests never need to be
 * replayed — injection returns the delivery cycle directly, which keeps
 * the memory system event-free and fast while preserving the bandwidth
 * limit that makes spinning warps interfere with useful traffic.
 */

namespace bowsim {

class Interconnect {
  public:
    Interconnect(unsigned num_ports, unsigned latency)
        : portFree_(num_ports, 0), latency_(latency)
    {
    }

    /**
     * Injects one packet at @p port at time @p now; returns the cycle it
     * arrives on the far side.
     */
    Cycle
    inject(unsigned port, Cycle now)
    {
        assert(port < portFree_.size());
        Cycle start = std::max(now, portFree_[port]);
        portFree_[port] = start + 1;
        ++packets_;
        return start + latency_;
    }

    std::uint64_t packets() const { return packets_; }

  private:
    std::vector<Cycle> portFree_;
    unsigned latency_;
    std::uint64_t packets_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_MEM_INTERCONNECT_HPP
