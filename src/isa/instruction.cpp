#include "src/isa/instruction.hpp"

#include <sstream>

namespace bowsim {

void
computeHazardMasks(Instruction &inst)
{
    std::uint64_t regs = 0;
    std::uint64_t preds = 0;
    bool fits = true;
    auto add = [&](const Operand &op) {
        if (op.kind == Operand::Kind::Reg) {
            if (op.index < 0 || op.index >= 64)
                fits = false;
            else
                regs |= std::uint64_t{1} << op.index;
        } else if (op.kind == Operand::Kind::Pred) {
            if (op.index < 0 || op.index >= 64)
                fits = false;
            else
                preds |= std::uint64_t{1} << op.index;
        }
    };
    add(inst.dst);
    for (const Operand &src : inst.src)
        add(src);
    if (inst.guard >= 0) {
        if (inst.guard >= 64)
            fits = false;
        else
            preds |= std::uint64_t{1} << inst.guard;
    }
    inst.hazardRegMask = regs;
    inst.hazardPredMask = preds;
    inst.hazardMasksValid = fits;
}

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Mad: return "mad";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Not: return "not";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Setp: return "setp";
      case Opcode::Selp: return "selp";
      case Opcode::Bra: return "bra";
      case Opcode::Exit: return "exit";
      case Opcode::Bar: return "bar.sync";
      case Opcode::Membar: return "membar";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Atom: return "atom";
      case Opcode::Clock: return "clock";
    }
    return "?";
}

std::string
toString(CmpOp op)
{
    switch (op) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
    }
    return "?";
}

namespace {

void
renderOperand(std::ostream &os, const Operand &op)
{
    switch (op.kind) {
      case Operand::Kind::None:
        os << "_";
        break;
      case Operand::Kind::Reg:
        os << "%r" << op.index;
        break;
      case Operand::Kind::Pred:
        os << "%p" << op.index;
        break;
      case Operand::Kind::Imm:
        os << op.imm;
        break;
      case Operand::Kind::Special:
        switch (static_cast<SpecialReg>(op.index)) {
          case SpecialReg::TidX: os << "%tid"; break;
          case SpecialReg::CtaIdX: os << "%ctaid"; break;
          case SpecialReg::NTidX: os << "%ntid"; break;
          case SpecialReg::NCtaIdX: os << "%nctaid"; break;
          case SpecialReg::LaneId: os << "%laneid"; break;
          case SpecialReg::WarpId: os << "%warpid"; break;
          case SpecialReg::SmId: os << "%smid"; break;
        }
        break;
    }
}

}  // namespace

std::string
toString(const Instruction &inst)
{
    std::ostringstream os;
    if (inst.guard >= 0)
        os << "@" << (inst.guardNegate ? "!" : "") << "%p" << inst.guard
           << " ";
    os << toString(inst.op);
    if (inst.op == Opcode::Setp)
        os << "." << toString(inst.cmp);
    if (inst.op == Opcode::Atom) {
        switch (inst.atom) {
          case AtomOp::Cas: os << ".cas"; break;
          case AtomOp::Exch: os << ".exch"; break;
          case AtomOp::Add: os << ".add"; break;
          case AtomOp::Min: os << ".min"; break;
          case AtomOp::Max: os << ".max"; break;
        }
    }
    if (inst.isBranch()) {
        os << " -> " << inst.target;
        if (inst.reconvergence != kInvalidPc)
            os << " (rpc " << inst.reconvergence << ")";
        return os.str();
    }
    bool first = true;
    auto emit = [&](const Operand &op) {
        if (!op.valid())
            return;
        os << (first ? " " : ", ");
        first = false;
        renderOperand(os, op);
    };
    emit(inst.dst);
    emit(inst.src[0]);
    emit(inst.src[1]);
    emit(inst.src[2]);
    return os.str();
}

}  // namespace bowsim
