#include "src/isa/cfg.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "src/common/log.hpp"

namespace bowsim {

namespace {

bool
isTerminator(const Instruction &inst)
{
    return inst.op == Opcode::Bra || inst.op == Opcode::Exit;
}

/** Dense bitset sized at runtime; kernels are small so this is cheap. */
class NodeSet {
  public:
    explicit NodeSet(int n, bool full = false)
        : bits_((n + 63) / 64, full ? ~0ull : 0ull), size_(n)
    {
        if (full)
            trim();
    }

    void set(int i) { bits_[i / 64] |= 1ull << (i % 64); }
    void clear(int i) { bits_[i / 64] &= ~(1ull << (i % 64)); }
    bool test(int i) const { return bits_[i / 64] >> (i % 64) & 1; }

    /** this &= other; returns true if anything changed. */
    bool
    intersectWith(const NodeSet &other)
    {
        bool changed = false;
        for (size_t w = 0; w < bits_.size(); ++w) {
            std::uint64_t nv = bits_[w] & other.bits_[w];
            changed |= nv != bits_[w];
            bits_[w] = nv;
        }
        return changed;
    }

    int
    count() const
    {
        int c = 0;
        for (auto w : bits_)
            c += __builtin_popcountll(w);
        return c;
    }

    bool operator==(const NodeSet &o) const { return bits_ == o.bits_; }

  private:
    void
    trim()
    {
        int extra = static_cast<int>(bits_.size()) * 64 - size_;
        if (extra > 0 && !bits_.empty())
            bits_.back() &= ~0ull >> extra;
    }

    std::vector<std::uint64_t> bits_;
    int size_;
};

}  // namespace

Cfg
buildCfg(const Program &prog)
{
    const unsigned n = prog.length();
    if (n == 0)
        panic("buildCfg: empty program");

    // Block leaders: entry, branch targets, instruction after terminators.
    std::set<Pc> leaders;
    leaders.insert(0);
    for (Pc pc = 0; pc < n; ++pc) {
        const Instruction &inst = prog.at(pc);
        if (inst.op == Opcode::Bra) {
            if (inst.target >= n)
                panic("buildCfg: branch target out of range");
            leaders.insert(inst.target);
        }
        if (isTerminator(inst) && pc + 1 < n)
            leaders.insert(pc + 1);
    }

    Cfg cfg;
    cfg.blockOf.assign(n, -1);
    std::vector<Pc> starts(leaders.begin(), leaders.end());
    for (size_t i = 0; i < starts.size(); ++i) {
        BasicBlock bb;
        bb.first = starts[i];
        bb.last = (i + 1 < starts.size()) ? starts[i + 1] - 1 : n - 1;
        for (Pc pc = bb.first; pc <= bb.last; ++pc)
            cfg.blockOf[pc] = static_cast<int>(cfg.blocks.size());
        cfg.blocks.push_back(bb);
    }
    cfg.exitNode = static_cast<int>(cfg.blocks.size());

    // Successor edges.
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        BasicBlock &bb = cfg.blocks[b];
        const Instruction &term = prog.at(bb.last);
        auto addEdge = [&](int to) {
            if (std::find(bb.succs.begin(), bb.succs.end(), to) ==
                bb.succs.end()) {
                bb.succs.push_back(to);
            }
        };
        if (term.op == Opcode::Bra) {
            addEdge(cfg.blockOf[term.target]);
            if (term.guard >= 0) {
                if (bb.last + 1 >= n)
                    panic("buildCfg: conditional branch falls off the end");
                addEdge(cfg.blockOf[bb.last + 1]);
            }
        } else if (term.op == Opcode::Exit) {
            addEdge(cfg.exitNode);
            if (term.guard >= 0) {
                if (bb.last + 1 >= n)
                    panic("buildCfg: guarded exit falls off the end");
                addEdge(cfg.blockOf[bb.last + 1]);
            }
        } else {
            if (bb.last + 1 >= n)
                panic("buildCfg: block falls off the end of the kernel");
            addEdge(cfg.blockOf[bb.last + 1]);
        }
    }
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        for (int s : cfg.blocks[b].succs) {
            if (s != cfg.exitNode)
                cfg.blocks[s].preds.push_back(static_cast<int>(b));
        }
    }

    // Post-dominator sets via the classic fixpoint:
    //   pdom(exit) = {exit}
    //   pdom(b)    = {b} ∪ ⋂_{s ∈ succ(b)} pdom(s)
    const int num_nodes = cfg.exitNode + 1;
    std::vector<NodeSet> pdom(num_nodes, NodeSet(num_nodes, true));
    pdom[cfg.exitNode] = NodeSet(num_nodes);
    pdom[cfg.exitNode].set(cfg.exitNode);

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = static_cast<int>(cfg.blocks.size()) - 1; b >= 0; --b) {
            NodeSet merged(num_nodes, true);
            for (int s : cfg.blocks[b].succs)
                merged.intersectWith(pdom[s]);
            merged.set(b);
            if (!(merged == pdom[b])) {
                pdom[b] = merged;
                changed = true;
            }
        }
    }

    // ipdom(b) = the strict post-dominator of b post-dominated by every
    // other strict post-dominator of b, i.e. the unique p != b in pdom(b)
    // with |pdom(p)| == |pdom(b)| - 1.
    cfg.ipdom.assign(num_nodes, cfg.exitNode);
    cfg.ipdom[cfg.exitNode] = cfg.exitNode;
    for (int b = 0; b < static_cast<int>(cfg.blocks.size()); ++b) {
        int want = pdom[b].count() - 1;
        int found = cfg.exitNode;
        for (int p = 0; p < num_nodes; ++p) {
            if (p == b || !pdom[b].test(p))
                continue;
            int c = p == cfg.exitNode ? 1 : pdom[p].count();
            if (c == want) {
                found = p;
                break;
            }
        }
        cfg.ipdom[b] = found;
    }
    return cfg;
}

void
assignReconvergencePcs(Program &prog)
{
    Cfg cfg = buildCfg(prog);
    for (Pc pc = 0; pc < prog.length(); ++pc) {
        Instruction &inst = prog.code[pc];
        bool divergent =
            (inst.op == Opcode::Bra && inst.guard >= 0 && !inst.uniform) ||
            (inst.op == Opcode::Exit && inst.guard >= 0);
        if (!divergent)
            continue;
        int block = cfg.blockOf[pc];
        int ip = cfg.ipdom[block];
        inst.reconvergence =
            ip == cfg.exitNode ? kInvalidPc : cfg.blocks[ip].first;
    }
}

}  // namespace bowsim
