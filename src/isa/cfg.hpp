#ifndef BOWSIM_ISA_CFG_HPP
#define BOWSIM_ISA_CFG_HPP

#include <vector>

#include "src/isa/program.hpp"

/**
 * @file
 * Control-flow graph construction and immediate-post-dominator analysis.
 *
 * Stack-based SIMT hardware reconverges diverged warps at the immediate
 * post-dominator (IPDOM) of the divergent branch. Real GPUs get the
 * reconvergence point from the compiler; here the assembler computes it
 * with a classic iterative post-dominator pass over the kernel CFG and
 * stores it in Instruction::reconvergence.
 */

namespace bowsim {

/** One basic block: instructions [first, last] inclusive. */
struct BasicBlock {
    Pc first;
    Pc last;
    /** Successor block ids. */
    std::vector<int> succs;
    /** Predecessor block ids. */
    std::vector<int> preds;
};

/** CFG of one kernel, with a virtual exit node as the last block id. */
struct Cfg {
    std::vector<BasicBlock> blocks;
    /** Id of the virtual exit node (== blocks.size()). */
    int exitNode;
    /** blockOf[pc] = id of the block containing pc. */
    std::vector<int> blockOf;
    /**
     * ipdom[b] = immediate post-dominator block id of b, or exitNode.
     * ipdom[exitNode] == exitNode.
     */
    std::vector<int> ipdom;
};

/** Builds the CFG of @p prog and computes post-dominators. */
Cfg buildCfg(const Program &prog);

/**
 * Fills Instruction::reconvergence for every potentially-divergent branch
 * and guarded exit in @p prog with the first PC of its IPDOM block
 * (kInvalidPc when the IPDOM is the virtual exit).
 */
void assignReconvergencePcs(Program &prog);

}  // namespace bowsim

#endif  // BOWSIM_ISA_CFG_HPP
