#include "src/isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "src/common/log.hpp"
#include "src/isa/cfg.hpp"

namespace bowsim {

namespace {

/** Pending annotation to apply to the next emitted instruction. */
enum class PendingAnnot { None, Spin, Acquire, Wait };

struct PendingBranch {
    Pc pc;
    std::string label;
    int line;
};

/** Splits a mnemonic like "atom.global.cas.b64" into dotted parts. */
std::vector<std::string>
splitDots(const std::string &token)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : token) {
        if (c == '.') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    parts.push_back(cur);
    return parts;
}

class Parser {
  public:
    explicit Parser(const std::string &source) : source_(source) {}

    Program
    run()
    {
        std::istringstream in(source_);
        std::string line;
        int line_no = 0;
        while (std::getline(in, line)) {
            ++line_no;
            parseLine(line, line_no);
        }
        finish();
        return std::move(prog_);
    }

  private:
    void
    parseLine(std::string line, int line_no)
    {
        // Strip comments and trailing semicolons/whitespace.
        auto comment = line.find("//");
        if (comment != std::string::npos)
            line.erase(comment);
        tokens_ = tokenize(line, line_no);
        pos_ = 0;
        line_ = line_no;
        if (tokens_.empty())
            return;

        // Labels: IDENT ':' prefixes (may stack on one line).
        while (pos_ + 1 < tokens_.size() && tokens_[pos_ + 1] == ":") {
            defineLabel(tokens_[pos_]);
            pos_ += 2;
        }
        if (pos_ >= tokens_.size())
            return;

        const std::string &head = tokens_[pos_];
        if (head[0] == '.') {
            parseDirective();
        } else {
            parseInstruction();
        }
        if (pos_ < tokens_.size())
            fatal("line ", line_, ": trailing tokens after statement");
    }

    static std::vector<std::string>
    tokenize(const std::string &line, int line_no)
    {
        std::vector<std::string> out;
        size_t i = 0;
        while (i < line.size()) {
            char c = line[i];
            if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
                c == ';') {
                ++i;
                continue;
            }
            if (c == '[' || c == ']' || c == ':') {
                out.emplace_back(1, c);
                ++i;
                continue;
            }
            size_t j = i;
            while (j < line.size() && !std::isspace(
                       static_cast<unsigned char>(line[j])) &&
                   line[j] != ',' && line[j] != ';' && line[j] != '[' &&
                   line[j] != ']' && line[j] != ':') {
                ++j;
            }
            out.push_back(line.substr(i, j - i));
            i = j;
        }
        (void)line_no;
        return out;
    }

    void
    defineLabel(const std::string &name)
    {
        if (labels_.count(name))
            fatal("line ", line_, ": duplicate label '", name, "'");
        labels_[name] = static_cast<Pc>(prog_.code.size());
    }

    void
    parseDirective()
    {
        std::string dir = take();
        if (dir == ".kernel") {
            prog_.name = take();
        } else if (dir == ".reg") {
            prog_.numRegs = takeUnsigned();
            explicitRegs_ = true;
        } else if (dir == ".pred") {
            prog_.numPreds = takeUnsigned();
            explicitPreds_ = true;
        } else if (dir == ".shared") {
            prog_.sharedBytes = takeUnsigned();
        } else if (dir == ".param") {
            prog_.numParams = takeUnsigned();
        } else if (dir == ".annot") {
            std::string kind = take();
            if (kind == "spin") {
                pending_ = PendingAnnot::Spin;
            } else if (kind == "acquire") {
                pending_ = PendingAnnot::Acquire;
            } else if (kind == "wait") {
                pending_ = PendingAnnot::Wait;
            } else if (kind == "sync_begin") {
                syncBegin_ = static_cast<Pc>(prog_.code.size());
            } else if (kind == "sync_end") {
                if (!syncBegin_)
                    fatal("line ", line_, ": sync_end without sync_begin");
                Pc last = static_cast<Pc>(prog_.code.size());
                if (last == *syncBegin_)
                    fatal("line ", line_, ": empty sync region");
                prog_.annotateSyncRange(*syncBegin_, last - 1);
                syncBegin_.reset();
            } else {
                fatal("line ", line_, ": unknown annotation '", kind, "'");
            }
        } else {
            fatal("line ", line_, ": unknown directive '", dir, "'");
        }
    }

    void
    parseInstruction()
    {
        Instruction inst;
        inst.line = line_;

        // Optional guard @%p / @!%p.
        if (tokens_[pos_][0] == '@') {
            std::string g = take().substr(1);
            if (!g.empty() && g[0] == '!') {
                inst.guardNegate = true;
                g = g.substr(1);
            }
            Operand p = parseOperandToken(g);
            if (p.kind != Operand::Kind::Pred)
                fatal("line ", line_, ": guard must be a predicate");
            inst.guard = p.index;
        }

        auto parts = splitDots(take());
        const std::string &base = parts[0];

        if (base == "mov" || base == "not" || base == "neg" ||
            base == "clock") {
            inst.op = base == "clock" ? Opcode::Clock
                    : base == "not"   ? Opcode::Not
                                      : Opcode::Mov;
            inst.dst = parseOperand();
            if (inst.op != Opcode::Clock)
                inst.src[0] = parseOperand();
            if (base == "neg") {
                // neg d, a  ==  sub d, 0, a
                inst.op = Opcode::Sub;
                inst.src[1] = inst.src[0];
                inst.src[0] = Operand::immediate(0);
            }
        } else if (base == "add" || base == "sub" || base == "mul" ||
                   base == "div" || base == "rem" || base == "min" ||
                   base == "max" || base == "and" || base == "or" ||
                   base == "xor" || base == "shl" || base == "shr") {
            static const std::map<std::string, Opcode> kBinOps = {
                {"add", Opcode::Add}, {"sub", Opcode::Sub},
                {"mul", Opcode::Mul}, {"div", Opcode::Div},
                {"rem", Opcode::Rem}, {"min", Opcode::Min},
                {"max", Opcode::Max}, {"and", Opcode::And},
                {"or", Opcode::Or},   {"xor", Opcode::Xor},
                {"shl", Opcode::Shl}, {"shr", Opcode::Shr},
            };
            inst.op = kBinOps.at(base);
            inst.dst = parseOperand();
            inst.src[0] = parseOperand();
            inst.src[1] = parseOperand();
        } else if (base == "mad") {
            inst.op = Opcode::Mad;
            inst.dst = parseOperand();
            inst.src[0] = parseOperand();
            inst.src[1] = parseOperand();
            inst.src[2] = parseOperand();
        } else if (base == "setp") {
            inst.op = Opcode::Setp;
            if (parts.size() < 2)
                fatal("line ", line_, ": setp needs a comparison suffix");
            inst.cmp = parseCmp(parts[1]);
            inst.dst = parseOperand();
            inst.src[0] = parseOperand();
            inst.src[1] = parseOperand();
            if (inst.dst.kind != Operand::Kind::Pred)
                fatal("line ", line_, ": setp destination must be %p");
        } else if (base == "selp") {
            inst.op = Opcode::Selp;
            inst.dst = parseOperand();
            inst.src[0] = parseOperand();
            inst.src[1] = parseOperand();
            inst.src[2] = parseOperand();
            if (inst.src[2].kind != Operand::Kind::Pred)
                fatal("line ", line_, ": selp selector must be %p");
        } else if (base == "bra") {
            inst.op = Opcode::Bra;
            inst.uniform =
                parts.size() > 1 && parts[1] == "uni";
            std::string label = take();
            pendingBranches_.push_back(
                {static_cast<Pc>(prog_.code.size()), label, line_});
        } else if (base == "exit") {
            inst.op = Opcode::Exit;
        } else if (base == "bar") {
            inst.op = Opcode::Bar;
            // Optional barrier id operand; only barrier 0 is modeled.
            if (pos_ < tokens_.size())
                (void)parseOperand();
        } else if (base == "membar") {
            inst.op = Opcode::Membar;
            if (parts.size() > 1)
                inst.scope = parseScope(parts[1]);
        } else if (base == "nop") {
            inst.op = Opcode::Nop;
        } else if (base == "ld" || base == "st") {
            inst.op = base == "ld" ? Opcode::Ld : Opcode::St;
            if (parts.size() < 2)
                fatal("line ", line_, ": ", base, " needs a space suffix");
            unsigned space_idx = 1;
            if (parts[1] == "volatile") {
                inst.isVolatile = true;
                if (parts.size() < 3)
                    fatal("line ", line_, ": ld.volatile needs a space");
                space_idx = 2;
            }
            inst.space = parseSpace(parts[space_idx]);
            inst.size = parseWidth(parts);
            if (inst.op == Opcode::Ld) {
                inst.dst = parseOperand();
                parseMemRef(inst);
            } else {
                parseMemRef(inst);
                inst.src[1] = parseOperand();
            }
            if (inst.space == MemSpace::Param && inst.op == Opcode::St)
                fatal("line ", line_, ": cannot store to param space");
        } else if (base == "atom") {
            inst.op = Opcode::Atom;
            if (parts.size() < 3)
                fatal("line ", line_, ": atom needs space and op suffixes");
            inst.space = parseSpace(parts[1]);
            if (inst.space != MemSpace::Global)
                fatal("line ", line_, ": only global atomics are supported");
            // Optional scope between the space and the op
            // (atom.global.sys.cas.b64); device scope is the default.
            unsigned op_idx = 2;
            if (parts[2] == "sys" || parts[2] == "gpu") {
                inst.scope = parseScope(parts[2]);
                if (parts.size() < 4)
                    fatal("line ", line_, ": atom needs an op suffix");
                op_idx = 3;
            }
            inst.atom = parseAtomOp(parts[op_idx]);
            inst.size = parseWidth(parts);
            inst.dst = parseOperand();
            parseMemRef(inst);
            inst.src[1] = parseOperand();
            if (inst.atom == AtomOp::Cas)
                inst.src[2] = parseOperand();
        } else {
            fatal("line ", line_, ": unknown opcode '", base, "'");
        }

        applyPendingAnnotation(inst);
        trackRegisterUse(inst);
        prog_.code.push_back(inst);
    }

    void
    applyPendingAnnotation(const Instruction &inst)
    {
        Pc pc = static_cast<Pc>(prog_.code.size());
        switch (pending_) {
          case PendingAnnot::None:
            break;
          case PendingAnnot::Spin:
            if (inst.op != Opcode::Bra)
                fatal("line ", line_, ": .annot spin must tag a branch");
            prog_.sync.spinBranches.insert(pc);
            break;
          case PendingAnnot::Acquire:
            if (inst.op != Opcode::Atom)
                fatal("line ", line_, ": .annot acquire must tag an atomic");
            prog_.sync.lockAcquires.insert(pc);
            break;
          case PendingAnnot::Wait:
            if (inst.op != Opcode::Setp)
                fatal("line ", line_, ": .annot wait must tag a setp");
            prog_.sync.waitChecks.insert(pc);
            break;
        }
        pending_ = PendingAnnot::None;
    }

    void
    trackRegisterUse(const Instruction &inst)
    {
        auto see = [&](const Operand &op) {
            if (op.kind == Operand::Kind::Reg) {
                maxReg_ = std::max(maxReg_, op.index);
            } else if (op.kind == Operand::Kind::Pred) {
                maxPred_ = std::max(maxPred_, op.index);
            }
        };
        see(inst.dst);
        for (const auto &s : inst.src)
            see(s);
        if (inst.guard >= 0)
            maxPred_ = std::max(maxPred_, inst.guard);
    }

    CmpOp
    parseCmp(const std::string &s)
    {
        if (s == "eq") return CmpOp::Eq;
        if (s == "ne") return CmpOp::Ne;
        if (s == "lt") return CmpOp::Lt;
        if (s == "le") return CmpOp::Le;
        if (s == "gt") return CmpOp::Gt;
        if (s == "ge") return CmpOp::Ge;
        fatal("line ", line_, ": unknown comparison '", s, "'");
    }

    MemSpace
    parseSpace(const std::string &s)
    {
        if (s == "global") return MemSpace::Global;
        if (s == "shared") return MemSpace::Shared;
        if (s == "param") return MemSpace::Param;
        fatal("line ", line_, ": unknown memory space '", s, "'");
    }

    MemScope
    parseScope(const std::string &s)
    {
        if (s == "sys") return MemScope::System;
        if (s == "gpu") return MemScope::Device;
        fatal("line ", line_, ": unknown memory scope '", s, "'");
    }

    AtomOp
    parseAtomOp(const std::string &s)
    {
        if (s == "cas") return AtomOp::Cas;
        if (s == "exch") return AtomOp::Exch;
        if (s == "add") return AtomOp::Add;
        if (s == "min") return AtomOp::Min;
        if (s == "max") return AtomOp::Max;
        fatal("line ", line_, ": unknown atomic op '", s, "'");
    }

    /** Width from a type suffix such as u32/s64/b32/f32; defaults to 8. */
    unsigned
    parseWidth(const std::vector<std::string> &parts)
    {
        for (size_t i = 1; i < parts.size(); ++i) {
            const std::string &p = parts[i];
            if (p.size() == 3 &&
                (p[0] == 'u' || p[0] == 's' || p[0] == 'b' || p[0] == 'f')) {
                if (p.substr(1) == "32")
                    return 4;
                if (p.substr(1) == "64")
                    return 8;
                if (p.substr(1) == "16")
                    return 2;
            }
        }
        return 8;
    }

    void
    parseMemRef(Instruction &inst)
    {
        expect("[");
        std::string tok = take();
        // Forms: %rN | %rN+imm | %rN-imm | imm
        auto plus = tok.find_first_of("+-", 1);
        std::string base_tok = tok.substr(0, plus);
        Operand base = parseOperandToken(base_tok);
        inst.src[0] = base;
        if (plus != std::string::npos) {
            Word off = parseImm(tok.substr(plus + 1));
            if (tok[plus] == '-')
                off = -off;
            inst.memOffset = off;
        }
        expect("]");
    }

    Operand
    parseOperand()
    {
        if (pos_ >= tokens_.size())
            fatal("line ", line_, ": missing operand");
        return parseOperandToken(take());
    }

    Operand
    parseOperandToken(const std::string &tok)
    {
        if (tok.empty())
            fatal("line ", line_, ": empty operand");
        if (tok[0] == '%') {
            std::string body = tok.substr(1);
            // Drop a trailing ".x" dimension suffix on specials.
            auto dot = body.find('.');
            std::string dim;
            if (dot != std::string::npos) {
                dim = body.substr(dot + 1);
                body = body.substr(0, dot);
                if (dim != "x")
                    fatal("line ", line_, ": only .x dimensions supported");
            }
            if (body.size() > 1 && (body[0] == 'r' || body[0] == 'p') &&
                std::isdigit(static_cast<unsigned char>(body[1]))) {
                int idx = std::stoi(body.substr(1));
                return body[0] == 'r' ? Operand::reg(idx)
                                      : Operand::pred(idx);
            }
            if (body == "tid") return Operand::special(SpecialReg::TidX);
            if (body == "ctaid")
                return Operand::special(SpecialReg::CtaIdX);
            if (body == "ntid") return Operand::special(SpecialReg::NTidX);
            if (body == "nctaid")
                return Operand::special(SpecialReg::NCtaIdX);
            if (body == "laneid")
                return Operand::special(SpecialReg::LaneId);
            if (body == "warpid")
                return Operand::special(SpecialReg::WarpId);
            if (body == "smid") return Operand::special(SpecialReg::SmId);
            fatal("line ", line_, ": unknown register '", tok, "'");
        }
        return Operand::immediate(parseImm(tok));
    }

    Word
    parseImm(const std::string &tok)
    {
        try {
            size_t used = 0;
            Word v = std::stoll(tok, &used, 0);
            if (used != tok.size())
                fatal("line ", line_, ": bad immediate '", tok, "'");
            return v;
        } catch (const std::invalid_argument &) {
            fatal("line ", line_, ": bad immediate '", tok, "'");
        } catch (const std::out_of_range &) {
            fatal("line ", line_, ": immediate out of range '", tok, "'");
        }
    }

    void
    expect(const std::string &tok)
    {
        if (pos_ >= tokens_.size() || tokens_[pos_] != tok)
            fatal("line ", line_, ": expected '", tok, "'");
        ++pos_;
    }

    std::string
    take()
    {
        if (pos_ >= tokens_.size())
            fatal("line ", line_, ": unexpected end of statement");
        return tokens_[pos_++];
    }

    unsigned
    takeUnsigned()
    {
        Word v = parseImm(take());
        if (v < 0)
            fatal("line ", line_, ": expected a non-negative count");
        return static_cast<unsigned>(v);
    }

    void
    finish()
    {
        if (syncBegin_)
            fatal("unterminated .annot sync_begin");
        if (prog_.code.empty())
            fatal("kernel '", prog_.name, "' has no instructions");

        // Resolve branch targets.
        for (const auto &pb : pendingBranches_) {
            auto it = labels_.find(pb.label);
            if (it == labels_.end())
                fatal("line ", pb.line, ": undefined label '", pb.label,
                      "'");
            prog_.code[pb.pc].target = it->second;
        }

        // Kernels may not fall off the end of the instruction stream.
        const Instruction &last = prog_.code.back();
        bool terminated = (last.op == Opcode::Exit && last.guard < 0) ||
                          (last.op == Opcode::Bra && last.guard < 0);
        if (!terminated) {
            Instruction exit_inst;
            exit_inst.op = Opcode::Exit;
            prog_.code.push_back(exit_inst);
        }

        if (!explicitRegs_)
            prog_.numRegs = static_cast<unsigned>(maxReg_ + 1);
        else if (maxReg_ >= static_cast<int>(prog_.numRegs))
            fatal("register %r", maxReg_, " exceeds .reg ", prog_.numRegs);
        if (!explicitPreds_)
            prog_.numPreds = static_cast<unsigned>(maxPred_ + 1);
        else if (maxPred_ >= static_cast<int>(prog_.numPreds))
            fatal("predicate %p", maxPred_, " exceeds .pred ",
                  prog_.numPreds);

        assignReconvergencePcs(prog_);
        for (Instruction &inst : prog_.code)
            computeHazardMasks(inst);
    }

    const std::string &source_;
    Program prog_;
    std::map<std::string, Pc> labels_;
    std::vector<PendingBranch> pendingBranches_;
    std::vector<std::string> tokens_;
    size_t pos_ = 0;
    int line_ = 0;
    PendingAnnot pending_ = PendingAnnot::None;
    std::optional<Pc> syncBegin_;
    bool explicitRegs_ = false;
    bool explicitPreds_ = false;
    int maxReg_ = 0;
    int maxPred_ = 0;
};

}  // namespace

Program
assemble(const std::string &source)
{
    return Parser(source).run();
}

}  // namespace bowsim
