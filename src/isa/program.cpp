#include "src/isa/program.hpp"

// Program is a plain aggregate; implementation lives in the header. This
// translation unit anchors the type for the library.
