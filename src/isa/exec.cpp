#include "src/isa/exec.hpp"

#include <algorithm>

#include "src/common/log.hpp"

namespace bowsim::exec {

Word
aluCompute(const Instruction &inst, Word a, Word b, Word c)
{
    switch (inst.op) {
      case Opcode::Mov: return a;
      case Opcode::Add: return wrapAdd(a, b);
      case Opcode::Sub: return wrapSub(a, b);
      case Opcode::Mul: return wrapMul(a, b);
      case Opcode::Mad: return wrapAdd(wrapMul(a, b), c);
      // Division by zero yields 0; INT64_MIN / -1 wraps (both are
      // UB in C++ but well-defined device behaviour here).
      case Opcode::Div:
        return b == 0 ? 0 : (b == -1 ? wrapSub(0, a) : a / b);
      case Opcode::Rem:
        return b == 0 ? 0 : (b == -1 ? 0 : a % b);
      case Opcode::Min: return std::min(a, b);
      case Opcode::Max: return std::max(a, b);
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Not: return ~a;
      case Opcode::Shl: return static_cast<Word>(
          static_cast<std::uint64_t>(a) << (b & 63));
      case Opcode::Shr: return static_cast<Word>(
          static_cast<std::uint64_t>(a) >> (b & 63));
      default:
        panic("aluCompute on non-ALU opcode");
    }
}

bool
compare(CmpOp op, Word a, Word b)
{
    switch (op) {
      case CmpOp::Eq: return a == b;
      case CmpOp::Ne: return a != b;
      case CmpOp::Lt: return a < b;
      case CmpOp::Le: return a <= b;
      case CmpOp::Gt: return a > b;
      case CmpOp::Ge: return a >= b;
    }
    return false;
}

Word
readSpecial(SpecialReg sr, const ThreadCtx &ctx, unsigned lane)
{
    switch (sr) {
      case SpecialReg::TidX:
        return static_cast<Word>(ctx.warpInCta * kWarpSize + lane);
      case SpecialReg::CtaIdX:
        return static_cast<Word>(ctx.ctaId);
      case SpecialReg::NTidX:
        return static_cast<Word>(ctx.blockThreads);
      case SpecialReg::NCtaIdX:
        return static_cast<Word>(ctx.gridCtas);
      case SpecialReg::LaneId:
        return static_cast<Word>(lane);
      case SpecialReg::WarpId:
        return static_cast<Word>(ctx.warpInCta);
      case SpecialReg::SmId:
        return static_cast<Word>(ctx.smId);
    }
    return 0;
}

AtomicResult
applyAtomicLane(MemorySpace &mem, LockTracker &tracker,
                const Instruction &inst, Addr addr, Word operand,
                Word desired, std::uint64_t warp_key)
{
    AtomicResult r;
    r.old = mem.read(addr, inst.size);
    Word next = r.old;
    switch (inst.atom) {
      case AtomOp::Cas:
        next = (r.old == operand) ? desired : r.old;
        r.isCas = true;
        r.cas = tracker.onCas(addr, warp_key, r.old, operand, desired);
        break;
      case AtomOp::Exch:
        next = operand;
        tracker.onWrite(addr, operand);
        break;
      case AtomOp::Add:
        next = wrapAdd(r.old, operand);
        break;
      case AtomOp::Min:
        next = std::min(r.old, operand);
        break;
      case AtomOp::Max:
        next = std::max(r.old, operand);
        break;
    }
    mem.write(addr, next, inst.size);
    return r;
}

}  // namespace bowsim::exec
