#ifndef BOWSIM_ISA_EXEC_HPP
#define BOWSIM_ISA_EXEC_HPP

#include "src/common/types.hpp"
#include "src/isa/instruction.hpp"
#include "src/mem/lock_tracker.hpp"
#include "src/mem/memory_space.hpp"

/**
 * @file
 * Shared ISA execution semantics, lifted out of the cycle-accurate
 * pipeline path so the fast-functional interpreter (src/sim/functional)
 * and SmCore execute instructions through one definition. Everything
 * here is pure functional behaviour: no timing, no statistics — callers
 * do their own accounting.
 */

namespace bowsim::exec {

/** Wrapping signed arithmetic via unsigned (overflow is defined). */
inline Word
wrapAdd(Word a, Word b)
{
    return static_cast<Word>(static_cast<std::uint64_t>(a) +
                             static_cast<std::uint64_t>(b));
}

inline Word
wrapSub(Word a, Word b)
{
    return static_cast<Word>(static_cast<std::uint64_t>(a) -
                             static_cast<std::uint64_t>(b));
}

inline Word
wrapMul(Word a, Word b)
{
    return static_cast<Word>(static_cast<std::uint64_t>(a) *
                             static_cast<std::uint64_t>(b));
}

/** Result of a plain ALU-class opcode (Mov..Shr). */
Word aluCompute(const Instruction &inst, Word a, Word b, Word c);

/** Setp comparison semantics. */
bool compare(CmpOp op, Word a, Word b);

/** Per-thread identity a special-register read depends on. */
struct ThreadCtx {
    unsigned warpInCta = 0;
    unsigned ctaId = 0;
    unsigned blockThreads = 0;
    unsigned gridCtas = 0;
    unsigned smId = 0;
};

/** Special (read-only) register semantics shared by both executors. */
Word readSpecial(SpecialReg sr, const ThreadCtx &ctx, unsigned lane);

/**
 * One lane of an atomic read-modify-write: reads old, computes the next
 * value per inst.atom, writes it back, and keeps the LockTracker's
 * CAS/release bookkeeping in step. Returns the old value (the
 * destination-register result) and, for CAS, the tracker's outcome
 * classification so the caller can count lock-acquire statistics.
 *
 * @param operand  src[1] value for this lane (compare value / addend).
 * @param desired  src[2] value for this lane (CAS desired; ignored
 *                 otherwise).
 * @param warp_key globally unique nonzero key of the issuing warp
 *                 (warp age + 1), the LockTracker's owner identity.
 */
struct AtomicResult {
    Word old = 0;
    CasOutcome cas = CasOutcome::Success;
    bool isCas = false;
};

AtomicResult applyAtomicLane(MemorySpace &mem, LockTracker &tracker,
                             const Instruction &inst, Addr addr,
                             Word operand, Word desired,
                             std::uint64_t warp_key);

}  // namespace bowsim::exec

#endif  // BOWSIM_ISA_EXEC_HPP
