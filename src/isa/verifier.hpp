#ifndef BOWSIM_ISA_VERIFIER_HPP
#define BOWSIM_ISA_VERIFIER_HPP

#include <string>
#include <vector>

#include "src/isa/program.hpp"

/**
 * @file
 * Static program verification and disassembly. The verifier enforces the
 * invariants the simulator assumes (so broken hand-built programs fail
 * loudly at load time instead of corrupting a simulation); the
 * disassembler renders a Program back to assembler-compatible text.
 */

namespace bowsim {

/** One verification finding. */
struct VerifyIssue {
    Pc pc;
    std::string message;
};

/**
 * Checks @p prog against the simulator's structural invariants:
 * register/predicate indices within bounds, branch targets in range,
 * operand shapes per opcode, terminated fall-through, annotation
 * consistency (spin branches are backward branches, acquires are
 * atomics, waits are setps).
 *
 * @return all violations found (empty = valid).
 */
std::vector<VerifyIssue> verify(const Program &prog);

/** Throws FatalError listing every issue when @p prog is invalid. */
void verifyOrDie(const Program &prog);

/**
 * Renders @p prog as assembler-accepted text (directives, labels for
 * every branch target, annotations). assemble(disassemble(p)) produces
 * an equivalent program.
 */
std::string disassemble(const Program &prog);

}  // namespace bowsim

#endif  // BOWSIM_ISA_VERIFIER_HPP
