#ifndef BOWSIM_ISA_INSTRUCTION_HPP
#define BOWSIM_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * A PTX-like mini-ISA. Values are 64-bit words; memory operations carry an
 * access size (4 or 8 bytes). The subset covers everything the paper's
 * benchmark kernels need: ALU ops, set-predicate, predicated branches,
 * global/shared/param memory, atomics, barriers, fences and clock reads.
 */

namespace bowsim {

/** Program counters index instructions; one instruction occupies 8 bytes
 *  of (virtual) instruction memory, as assumed by DDOS's PC hashing. */
using Pc = std::uint32_t;

constexpr unsigned kInstrBytes = 8;
constexpr Pc kInvalidPc = 0xffffffffu;

enum class Opcode : std::uint8_t {
    Nop,
    Mov,
    Add,
    Sub,
    Mul,
    Mad,   ///< d = a * b + c
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,
    Setp,  ///< set predicate from comparison
    Selp,  ///< d = p ? a : b
    Bra,   ///< (possibly predicated) branch
    Exit,  ///< thread exit
    Bar,   ///< CTA-wide barrier (bar.sync)
    Membar,///< memory fence (threadfence)
    Ld,
    St,
    Atom,  ///< atomic read-modify-write on global memory
    Clock, ///< read the SM cycle counter
};

enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

enum class MemSpace : std::uint8_t { Global, Shared, Param };

enum class AtomOp : std::uint8_t { Cas, Exch, Add, Min, Max };

/**
 * Memory scope of an atomic or fence (`atom.global.sys.*` /
 * `membar.sys`). Device (the default, and the only behavior before the
 * device/system split) resolves at the issuing device's L2; System
 * routes to the address's home device over the inter-device link, so
 * the operation is ordered against every device's accesses.
 */
enum class MemScope : std::uint8_t { Device, System };

/** Special (read-only, per-thread) registers. */
enum class SpecialReg : std::uint8_t {
    TidX,     ///< thread index within CTA
    CtaIdX,   ///< CTA index within grid
    NTidX,    ///< CTA size
    NCtaIdX,  ///< grid size
    LaneId,   ///< lane within warp
    WarpId,   ///< warp within CTA
    SmId,     ///< core the CTA runs on
};

/** One instruction operand. */
struct Operand {
    enum class Kind : std::uint8_t { None, Reg, Pred, Imm, Special };

    Kind kind = Kind::None;
    /** Register/predicate index, or SpecialReg cast to int. */
    int index = 0;
    /** Immediate value when kind == Imm. */
    Word imm = 0;

    static Operand none() { return {}; }
    static Operand reg(int r) { return {Kind::Reg, r, 0}; }
    static Operand pred(int p) { return {Kind::Pred, p, 0}; }
    static Operand immediate(Word v) { return {Kind::Imm, 0, v}; }
    static Operand special(SpecialReg s)
    {
        return {Kind::Special, static_cast<int>(s), 0};
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool valid() const { return kind != Kind::None; }
};

/** Decoded instruction. */
struct Instruction {
    Opcode op = Opcode::Nop;
    CmpOp cmp = CmpOp::Eq;
    MemSpace space = MemSpace::Global;
    AtomOp atom = AtomOp::Cas;
    /** Scope of an Atom/Membar (ignored by every other opcode). */
    MemScope scope = MemScope::Device;
    /** Memory access size in bytes (4 or 8). */
    unsigned size = 8;

    /** Guard predicate register; -1 = unguarded. */
    int guard = -1;
    /** Execute when the guard is false instead of true (`@!%p`). */
    bool guardNegate = false;
    /** bra.uni: branch asserted to be warp-uniform. */
    bool uniform = false;
    /**
     * ld.volatile: bypass the (incoherent) L1 and read through to the L2,
     * as GPU spin-wait polling loads must.
     */
    bool isVolatile = false;

    /** Destination register (Reg for ALU/ld/atom, Pred for setp). */
    Operand dst;
    /** Source operands; memory address base goes in src[0]. */
    Operand src[3];
    /** Constant byte offset for memory operands (`[%r1+8]`). */
    Word memOffset = 0;

    /** Branch target (filled by the assembler from the label). */
    Pc target = kInvalidPc;
    /** Reconvergence PC (immediate post-dominator; filled by CFG pass). */
    Pc reconvergence = kInvalidPc;

    /** Source line in the assembly text, for diagnostics. */
    int line = 0;

    /**
     * Precomputed scoreboard hazard masks: bit i set when %ri (resp. %pi)
     * appears as a source, guard or destination. Valid only when
     * hazardMasksValid — the assembler fills them for every assembled
     * kernel; hand-built instructions (unit tests) keep the operand-walk
     * slow path, as do register indices >= 64.
     */
    std::uint64_t hazardRegMask = 0;
    std::uint64_t hazardPredMask = 0;
    bool hazardMasksValid = false;

    bool isBranch() const { return op == Opcode::Bra; }
    bool
    isMemory() const
    {
        return op == Opcode::Ld || op == Opcode::St || op == Opcode::Atom;
    }
    bool isAtomic() const { return op == Opcode::Atom; }
    bool isSetp() const { return op == Opcode::Setp; }
    bool
    writesRegister() const
    {
        return dst.kind == Operand::Kind::Reg;
    }
    bool writesPredicate() const { return dst.kind == Operand::Kind::Pred; }

    /** True for mul/div-class ops that use the long-latency pipe. */
    bool
    longLatency() const
    {
        return op == Opcode::Mul || op == Opcode::Mad ||
               op == Opcode::Div || op == Opcode::Rem;
    }
};

/** Fills @p inst's hazard masks (no-op marker left unset when any
 *  register index does not fit a 64-bit mask). */
void computeHazardMasks(Instruction &inst);

/** Human-readable rendering, for diagnostics and tests. */
std::string toString(const Instruction &inst);
std::string toString(Opcode op);
std::string toString(CmpOp op);

}  // namespace bowsim

#endif  // BOWSIM_ISA_INSTRUCTION_HPP
