#ifndef BOWSIM_ISA_ASSEMBLER_HPP
#define BOWSIM_ISA_ASSEMBLER_HPP

#include <string>

#include "src/isa/program.hpp"

/**
 * @file
 * Assembler for the PTX-like mini-ISA.
 *
 * Syntax (one statement per line, `//` comments, optional trailing `;`):
 *
 *     .kernel ht_insert
 *     .reg 24            // optional; inferred from use when omitted
 *     .pred 4
 *     .shared 1024       // bytes of CTA shared memory
 *     .param 5           // number of 64-bit parameters
 *
 *     LOOP:
 *       .annot acquire               // tags the *next* instruction
 *       atom.global.cas.b64 %r15, [%r7], 0, 1;
 *       setp.eq.s64 %p1, %r15, 0;
 *       @!%p1 bra SKIP;
 *       ...
 *     SKIP:
 *       .annot spin
 *       @%p2 bra LOOP;
 *       exit;
 *
 * Annotations: `spin` (ground-truth spin-inducing branch), `acquire`
 * (lock-acquire atomic), `wait` (wait-condition setp), and
 * `sync_begin`/`sync_end` (instructions in between, inclusive, count as
 * synchronization overhead for the Fig. 1c/13a instruction split).
 *
 * Operands: `%rN`, `%pN`, immediates (decimal or 0x hex), specials
 * (`%tid`, `%ctaid`, `%ntid`, `%nctaid`, `%laneid`, `%warpid`, `%smid`),
 * memory `[%rN]`, `[%rN+imm]` or `[imm]`.
 *
 * The assembler resolves labels, infers register counts, appends a
 * trailing `exit` if the kernel can fall off the end, and runs the CFG
 * pass to fill each divergent branch's reconvergence PC (immediate
 * post-dominator).
 */

namespace bowsim {

/** Assembles @p source into a Program. Throws FatalError on bad input. */
Program assemble(const std::string &source);

}  // namespace bowsim

#endif  // BOWSIM_ISA_ASSEMBLER_HPP
