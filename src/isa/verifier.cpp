#include "src/isa/verifier.hpp"

#include <map>
#include <sstream>

#include "src/common/log.hpp"

namespace bowsim {

namespace {

void
checkOperandBounds(const Program &prog, Pc pc, const Operand &op,
                   const char *role, std::vector<VerifyIssue> &issues)
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        if (op.index < 0 ||
            static_cast<unsigned>(op.index) >= prog.numRegs) {
            issues.push_back(
                {pc, std::string(role) + ": register %r" +
                         std::to_string(op.index) + " out of bounds"});
        }
        break;
      case Operand::Kind::Pred:
        if (op.index < 0 ||
            static_cast<unsigned>(op.index) >= prog.numPreds) {
            issues.push_back(
                {pc, std::string(role) + ": predicate %p" +
                         std::to_string(op.index) + " out of bounds"});
        }
        break;
      default:
        break;
    }
}

/** Expected operand shape per opcode: {dst kind, #sources}. */
struct Shape {
    Operand::Kind dst;
    unsigned minSrcs;
    unsigned maxSrcs;
};

Shape
shapeOf(const Instruction &inst)
{
    using K = Operand::Kind;
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Exit:
      case Opcode::Bar:
      case Opcode::Membar:
        return {K::None, 0, 0};
      case Opcode::Bra:
        return {K::None, 0, 0};
      case Opcode::Mov:
      case Opcode::Not:
        return {K::Reg, 1, 1};
      case Opcode::Clock:
        return {K::Reg, 0, 0};
      case Opcode::Setp:
        return {K::Pred, 2, 2};
      case Opcode::Selp:
      case Opcode::Mad:
        return {K::Reg, 3, 3};
      case Opcode::Ld:
        return {K::Reg, 1, 1};
      case Opcode::St:
        return {K::None, 2, 2};
      case Opcode::Atom:
        return {K::Reg, inst.atom == AtomOp::Cas ? 3u : 2u,
                inst.atom == AtomOp::Cas ? 3u : 2u};
      default:
        return {K::Reg, 2, 2};  // binary ALU
    }
}

}  // namespace

std::vector<VerifyIssue>
verify(const Program &prog)
{
    std::vector<VerifyIssue> issues;
    const unsigned n = prog.length();
    if (n == 0) {
        issues.push_back({0, "program has no instructions"});
        return issues;
    }

    const Instruction &last = prog.code.back();
    bool terminated = (last.op == Opcode::Exit && last.guard < 0) ||
                      (last.op == Opcode::Bra && last.guard < 0);
    if (!terminated)
        issues.push_back({n - 1, "control can fall off the end"});

    for (Pc pc = 0; pc < n; ++pc) {
        const Instruction &inst = prog.at(pc);
        Shape shape = shapeOf(inst);

        if (shape.dst == Operand::Kind::None && inst.dst.valid()) {
            issues.push_back({pc, "unexpected destination operand"});
        } else if (shape.dst != Operand::Kind::None &&
                   inst.dst.kind != shape.dst) {
            issues.push_back({pc, "wrong destination operand kind"});
        }
        unsigned srcs = 0;
        for (const Operand &s : inst.src)
            srcs += s.valid() ? 1 : 0;
        if (srcs < shape.minSrcs || srcs > shape.maxSrcs)
            issues.push_back({pc, "wrong source operand count"});

        checkOperandBounds(prog, pc, inst.dst, "dst", issues);
        for (const Operand &s : inst.src)
            checkOperandBounds(prog, pc, s, "src", issues);
        if (inst.guard >= 0 &&
            static_cast<unsigned>(inst.guard) >= prog.numPreds) {
            issues.push_back({pc, "guard predicate out of bounds"});
        }

        if (inst.op == Opcode::Bra && inst.target >= n)
            issues.push_back({pc, "branch target out of range"});
        if (inst.op == Opcode::Bra && inst.guard >= 0 && !inst.uniform &&
            inst.reconvergence == kInvalidPc) {
            // Allowed (merge at exit), but the target must still exist.
        }
        if (inst.isMemory() && inst.size != 2 && inst.size != 4 &&
            inst.size != 8) {
            issues.push_back({pc, "bad memory access size"});
        }
        if (inst.scope != MemScope::Device && inst.op != Opcode::Atom &&
            inst.op != Opcode::Membar) {
            issues.push_back(
                {pc, "memory scope on a non-atomic, non-fence opcode"});
        }
    }

    // Annotation consistency.
    for (Pc pc : prog.sync.spinBranches) {
        if (pc >= n || prog.at(pc).op != Opcode::Bra)
            issues.push_back({pc, "spin annotation on a non-branch"});
        else if (prog.at(pc).target > pc)
            issues.push_back({pc, "spin branch is not backward"});
    }
    for (Pc pc : prog.sync.lockAcquires) {
        if (pc >= n || prog.at(pc).op != Opcode::Atom)
            issues.push_back({pc, "acquire annotation on a non-atomic"});
    }
    for (Pc pc : prog.sync.waitChecks) {
        if (pc >= n || prog.at(pc).op != Opcode::Setp)
            issues.push_back({pc, "wait annotation on a non-setp"});
    }
    return issues;
}

void
verifyOrDie(const Program &prog)
{
    auto issues = verify(prog);
    if (issues.empty())
        return;
    std::ostringstream os;
    os << "program '" << prog.name << "' failed verification:";
    for (const VerifyIssue &i : issues)
        os << "\n  pc " << i.pc << ": " << i.message;
    fatal(os.str());
}

std::string
disassemble(const Program &prog)
{
    // Collect branch targets so we can emit labels.
    std::map<Pc, std::string> labels;
    for (const Instruction &inst : prog.code) {
        if (inst.op == Opcode::Bra && !labels.count(inst.target))
            labels[inst.target] =
                "L" + std::to_string(labels.size());
    }

    std::ostringstream os;
    os << ".kernel " << (prog.name.empty() ? "kernel" : prog.name)
       << "\n";
    os << ".reg " << prog.numRegs << "\n";
    os << ".pred " << std::max(prog.numPreds, 1u) << "\n";
    if (prog.sharedBytes)
        os << ".shared " << prog.sharedBytes << "\n";
    if (prog.numParams)
        os << ".param " << prog.numParams << "\n";

    auto operand = [](const Operand &op) -> std::string {
        switch (op.kind) {
          case Operand::Kind::Reg:
            return "%r" + std::to_string(op.index);
          case Operand::Kind::Pred:
            return "%p" + std::to_string(op.index);
          case Operand::Kind::Imm:
            return std::to_string(op.imm);
          case Operand::Kind::Special:
            switch (static_cast<SpecialReg>(op.index)) {
              case SpecialReg::TidX: return "%tid";
              case SpecialReg::CtaIdX: return "%ctaid";
              case SpecialReg::NTidX: return "%ntid";
              case SpecialReg::NCtaIdX: return "%nctaid";
              case SpecialReg::LaneId: return "%laneid";
              case SpecialReg::WarpId: return "%warpid";
              case SpecialReg::SmId: return "%smid";
            }
            return "?";
          case Operand::Kind::None:
            return "?";
        }
        return "?";
    };
    auto memref = [&](const Instruction &inst) {
        std::string s = "[" + operand(inst.src[0]);
        if (inst.memOffset > 0)
            s += "+" + std::to_string(inst.memOffset);
        else if (inst.memOffset < 0)
            s += std::to_string(inst.memOffset);
        return s + "]";
    };
    auto width = [](unsigned size) {
        return size == 8 ? ".u64" : size == 4 ? ".u32" : ".u16";
    };
    auto space = [](MemSpace sp) {
        switch (sp) {
          case MemSpace::Global: return ".global";
          case MemSpace::Shared: return ".shared";
          case MemSpace::Param: return ".param";
        }
        return "";
    };

    for (Pc pc = 0; pc < prog.length(); ++pc) {
        const Instruction &inst = prog.at(pc);
        if (labels.count(pc))
            os << labels[pc] << ":\n";
        if (prog.sync.spinBranches.count(pc))
            os << "  .annot spin\n";
        if (prog.sync.lockAcquires.count(pc))
            os << "  .annot acquire\n";
        if (prog.sync.waitChecks.count(pc))
            os << "  .annot wait\n";
        os << "  ";
        if (inst.guard >= 0)
            os << "@" << (inst.guardNegate ? "!" : "") << "%p"
               << inst.guard << " ";
        switch (inst.op) {
          case Opcode::Bra:
            os << "bra" << (inst.uniform ? ".uni " : " ")
               << labels[inst.target];
            break;
          case Opcode::Ld:
            os << "ld" << (inst.isVolatile ? ".volatile" : "")
               << space(inst.space) << width(inst.size) << " "
               << operand(inst.dst) << ", " << memref(inst);
            break;
          case Opcode::St:
            os << "st" << space(inst.space) << width(inst.size) << " "
               << memref(inst) << ", " << operand(inst.src[1]);
            break;
          case Opcode::Atom: {
            const char *aop = inst.atom == AtomOp::Cas    ? "cas"
                              : inst.atom == AtomOp::Exch ? "exch"
                              : inst.atom == AtomOp::Add  ? "add"
                              : inst.atom == AtomOp::Min  ? "min"
                                                          : "max";
            os << "atom.global."
               << (inst.scope == MemScope::System ? "sys." : "") << aop
               << (inst.size == 8 ? ".b64" : ".b32") << " "
               << operand(inst.dst) << ", " << memref(inst) << ", "
               << operand(inst.src[1]);
            if (inst.atom == AtomOp::Cas)
                os << ", " << operand(inst.src[2]);
            break;
          }
          case Opcode::Membar:
            os << "membar"
               << (inst.scope == MemScope::System ? ".sys" : "");
            break;
          case Opcode::Setp:
            os << "setp." << toString(inst.cmp) << ".s64 "
               << operand(inst.dst) << ", " << operand(inst.src[0])
               << ", " << operand(inst.src[1]);
            break;
          default: {
            os << toString(inst.op);
            bool first = true;
            auto emit = [&](const Operand &op) {
                if (!op.valid())
                    return;
                os << (first ? " " : ", ") << operand(op);
                first = false;
            };
            emit(inst.dst);
            for (const Operand &s : inst.src)
                emit(s);
            break;
          }
        }
        os << ";\n";
    }
    return os.str();
}

}  // namespace bowsim
