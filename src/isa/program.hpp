#ifndef BOWSIM_ISA_PROGRAM_HPP
#define BOWSIM_ISA_PROGRAM_HPP

#include <set>
#include <string>
#include <vector>

#include "src/isa/instruction.hpp"

/**
 * @file
 * A Program is one assembled kernel: the instruction stream plus the
 * resource declarations and the synchronization annotations used by the
 * oracle spin detector and the statistics classifier.
 */

namespace bowsim {

/**
 * Synchronization annotations for one kernel.
 *
 * These are *measurement* aids, not functional state: ground-truth
 * spin-inducing branches feed the DDOS accuracy metrics (Table I) and the
 * oracle SpinDetect mode; the acquire/wait PCs feed the lock-outcome
 * classifier behind Figures 2 and 12; the sync region feeds the
 * useful-vs-overhead instruction split behind Figures 1c and 13a.
 */
struct SyncAnnotations {
    /** PCs of ground-truth spin-inducing (backward) branches. */
    std::set<Pc> spinBranches;
    /** PCs of atomic lock-acquire attempts (atomicCAS of a mutex). */
    std::set<Pc> lockAcquires;
    /**
     * PCs of wait-condition checks (the setp of a wait-and-signal loop).
     * A lane that exits the loop after this check scored a Wait Exit
     * Success; a lane that iterates again scored a Wait Exit Fail.
     */
    std::set<Pc> waitChecks;
    /** PCs whose dynamic instances count as synchronization overhead. */
    std::set<Pc> syncRegion;

    bool isSpinBranch(Pc pc) const { return spinBranches.count(pc) != 0; }
    bool isSyncPc(Pc pc) const { return syncRegion.count(pc) != 0; }
};

/** One assembled kernel. */
struct Program {
    std::string name;
    std::vector<Instruction> code;
    /** General-purpose registers per thread. */
    unsigned numRegs = 16;
    /** Predicate registers per thread. */
    unsigned numPreds = 4;
    /** Static shared memory per CTA, bytes. */
    unsigned sharedBytes = 0;
    /** Number of 64-bit kernel parameters. */
    unsigned numParams = 0;

    SyncAnnotations sync;

    unsigned length() const { return code.size(); }

    const Instruction &
    at(Pc pc) const
    {
        return code.at(pc);
    }

    /** Marks all PCs in [first, last] as synchronization overhead. */
    void
    annotateSyncRange(Pc first, Pc last)
    {
        for (Pc pc = first; pc <= last; ++pc)
            sync.syncRegion.insert(pc);
    }
};

}  // namespace bowsim

#endif  // BOWSIM_ISA_PROGRAM_HPP
