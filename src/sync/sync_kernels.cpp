#include "src/sync/sync_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/common/log.hpp"
#include "src/cpuref/sync_cpu.hpp"
#include "src/isa/assembler.hpp"
#include "src/kernels/registry.hpp"

namespace bowsim::sync {

std::string
syncBenchmarkName(Primitive p, const SyncGeometry &g)
{
    std::ostringstream os;
    os << "SYNC_" << toString(p) << "_" << g.ctas << "x"
       << g.threadsPerCta;
    return os.str();
}

namespace {

/** Words of lock-block storage ahead of the counter/slot arrays. */
unsigned
lockBlockWords(Primitive p, const SyncGeometry &g)
{
    switch (p) {
      case Primitive::TasLock:
      case Primitive::BackoffLock:
        return 1;  // the lock word
      case Primitive::TicketLock:
        return 2;  // next-ticket, now-serving
      case Primitive::ArrayLock:
        return 1 + g.totalWarps();  // tail, then one flag per slot
      case Primitive::GlobalBarrier:
      case Primitive::SystemBarrier:
        break;
    }
    fatal("lockBlockWords: not a lock primitive");
}

class SyncKernelHarness : public KernelHarness {
  public:
    SyncKernelHarness(Primitive p, const SyncGeometry &g)
        : KernelHarness(syncBenchmarkName(p, g)), p_(p), g_(g),
          prog_(assemble(primitiveSource(p, g)))
    {
    }

    void
    setup(Gpu &gpu) override
    {
        const unsigned warps = g_.totalWarps();
        if (isBarrier(p_)) {
            countAddr_ = gpu.malloc(8);
            releaseAddr_ = gpu.malloc(8);
            dataAddr_ = gpu.malloc(g_.ctas * 8);
            errorsAddr_ = gpu.malloc(g_.ctas * 8);
            return;
        }
        lockAddr_ = gpu.malloc(lockBlockWords(p_, g_) * 8);
        counterAddr_ = gpu.malloc(8);
        slotsAddr_ = gpu.malloc(warps * 8);
        ownerAddr_ = gpu.malloc(8);
        errorsAddr_ = gpu.malloc(warps * 8);
        if (p_ == Primitive::ArrayLock) {
            // flags[0] starts open so the first ticket proceeds.
            const Word one = 1;
            gpu.memcpyToDevice(lockAddr_ + 8, &one, 8);
        }
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        const Dim3 grid{g_.ctas, 1, 1};
        const Dim3 block{g_.threadsPerCta, 1, 1};
        if (isBarrier(p_)) {
            return {LaunchSpec{&prog_, grid, block,
                               {static_cast<Word>(countAddr_),
                                static_cast<Word>(releaseAddr_),
                                static_cast<Word>(dataAddr_),
                                static_cast<Word>(errorsAddr_),
                                static_cast<Word>(g_.iters)}}};
        }
        Word extra = 0;
        if (p_ == Primitive::BackoffLock)
            extra = g_.delayFactor;
        else if (p_ == Primitive::ArrayLock)
            extra = g_.totalWarps();  // flag-slot count
        return {LaunchSpec{&prog_, grid, block,
                           {static_cast<Word>(lockAddr_),
                            static_cast<Word>(counterAddr_),
                            static_cast<Word>(slotsAddr_),
                            static_cast<Word>(ownerAddr_),
                            static_cast<Word>(errorsAddr_),
                            static_cast<Word>(g_.iters), extra}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        if (isBarrier(p_))
            return validateBarrier(gpu);
        return validateLock(gpu);
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

    const SyncGeometry &geometry() const { return g_; }

  private:
    bool
    validateLock(Gpu &gpu) const
    {
        const unsigned warps = g_.totalWarps();
        const cpuref::LockRef ref = cpuref::lockReference(p_, g_);
        std::vector<Word> vec(warps);
        Word w = 0;
        gpu.memcpyFromDevice(&w, counterAddr_, 8);
        if (w != ref.counter)
            return false;
        gpu.memcpyFromDevice(vec.data(), slotsAddr_, warps * 8);
        if (vec != ref.slots)
            return false;
        gpu.memcpyFromDevice(vec.data(), errorsAddr_, warps * 8);
        if (vec != ref.errors)
            return false;
        // The owner-witness word ends as the *last* holder's warp id —
        // the one legitimately schedule-dependent byte of the run.
        // Normalize it so final memory digests are comparable across
        // schedulers and execution modes (the equivalence suite relies
        // on this).
        w = 0;
        gpu.memcpyToDevice(ownerAddr_, &w, 8);
        switch (p_) {
          case Primitive::TasLock:
          case Primitive::BackoffLock:
            gpu.memcpyFromDevice(&w, lockAddr_, 8);
            return w == ref.lockWord;
          case Primitive::TicketLock: {
            Word serving = 0;
            gpu.memcpyFromDevice(&w, lockAddr_, 8);
            gpu.memcpyFromDevice(&serving, lockAddr_ + 8, 8);
            return w == ref.nextTicket && serving == ref.nowServing;
          }
          case Primitive::ArrayLock: {
            gpu.memcpyFromDevice(&w, lockAddr_, 8);
            if (w != ref.tail)
                return false;
            std::vector<Word> flags(warps);
            gpu.memcpyFromDevice(flags.data(), lockAddr_ + 8, warps * 8);
            return flags == ref.flags;
          }
          case Primitive::GlobalBarrier:
          case Primitive::SystemBarrier:
            break;
        }
        return false;
    }

    bool
    validateBarrier(Gpu &gpu) const
    {
        const cpuref::BarrierRef ref = cpuref::barrierReference(g_);
        Word w = 0;
        gpu.memcpyFromDevice(&w, countAddr_, 8);
        if (w != ref.count)
            return false;
        gpu.memcpyFromDevice(&w, releaseAddr_, 8);
        if (w != ref.release)
            return false;
        std::vector<Word> vec(g_.ctas);
        gpu.memcpyFromDevice(vec.data(), dataAddr_, g_.ctas * 8);
        if (vec != ref.data)
            return false;
        gpu.memcpyFromDevice(vec.data(), errorsAddr_, g_.ctas * 8);
        return vec == ref.errors;
    }

    Primitive p_;
    SyncGeometry g_;
    Program prog_;
    Addr lockAddr_ = 0;
    Addr counterAddr_ = 0;
    Addr slotsAddr_ = 0;
    Addr ownerAddr_ = 0;
    Addr errorsAddr_ = 0;
    Addr countAddr_ = 0;
    Addr releaseAddr_ = 0;
    Addr dataAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeSyncKernel(Primitive p, const SyncGeometry &g)
{
    return std::make_unique<SyncKernelHarness>(p, g);
}

void
registerSyncKernelVariants()
{
    struct Shape {
        unsigned ctas;
        unsigned threadsPerCta;
    };
    static const Shape shapes[] = {{2, 64}, {8, 64}, {16, 128}};
    for (Primitive p : allPrimitives()) {
        for (const Shape &s : shapes) {
            SyncGeometry base;
            base.ctas = s.ctas;
            base.threadsPerCta = s.threadsPerCta;
            registerBenchmark(
                syncBenchmarkName(p, base), [p, base](double scale) {
                    SyncGeometry g = base;
                    g.iters = std::max(
                        1u, static_cast<unsigned>(
                                std::lround(g.iters * scale)));
                    return makeSyncKernel(p, g);
                });
        }
    }
}

}  // namespace bowsim::sync
