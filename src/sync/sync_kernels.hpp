#ifndef BOWSIM_SYNC_SYNC_KERNELS_HPP
#define BOWSIM_SYNC_SYNC_KERNELS_HPP

#include <memory>
#include <string>

#include "src/kernels/kernel_harness.hpp"
#include "src/sync/primitives.hpp"

/**
 * @file
 * KernelHarness wrappers for the src/sync primitive library: device
 * memory layout, launch geometry, and validation against the
 * src/cpuref references. makeSyncKernel() instantiates any primitive
 * at any geometry; registerSyncKernelVariants() publishes a default
 * set of (primitive x geometry) variants in the benchmark registry so
 * sweeps and the bench CLI can reference them by name.
 */

namespace bowsim::sync {

/** Harness for @p p at @p g; name = syncBenchmarkName(p, g). */
std::unique_ptr<KernelHarness> makeSyncKernel(Primitive p,
                                              const SyncGeometry &g);

/** Registry name of one variant, e.g. "SYNC_tas_4x64". */
std::string syncBenchmarkName(Primitive p, const SyncGeometry &g);

/**
 * Registers the default variant set (every primitive at 2x64, 8x64 and
 * 16x128 CTAs x threads) with the benchmark registry. Idempotent via
 * the registry's lazy-init hook; the scale argument of the registered
 * factories multiplies the round count.
 */
void registerSyncKernelVariants();

}  // namespace bowsim::sync

#endif  // BOWSIM_SYNC_SYNC_KERNELS_HPP
