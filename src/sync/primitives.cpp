#include "src/sync/primitives.hpp"

#include <sstream>

#include "src/common/log.hpp"

namespace bowsim::sync {

const std::vector<Primitive> &
allPrimitives()
{
    static const std::vector<Primitive> all = {
        Primitive::TasLock,   Primitive::BackoffLock,
        Primitive::TicketLock, Primitive::ArrayLock,
        Primitive::GlobalBarrier, Primitive::SystemBarrier};
    return all;
}

const char *
toString(Primitive p)
{
    switch (p) {
      case Primitive::TasLock: return "tas";
      case Primitive::BackoffLock: return "backoff";
      case Primitive::TicketLock: return "ticket";
      case Primitive::ArrayLock: return "array";
      case Primitive::GlobalBarrier: return "barrier";
      case Primitive::SystemBarrier: return "system-barrier";
    }
    return "?";
}

bool
parsePrimitive(const std::string &text, Primitive *out)
{
    for (Primitive p : allPrimitives()) {
        if (text == toString(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

std::string
primitiveKernelName(Primitive p, const SyncGeometry &g)
{
    std::ostringstream os;
    os << "sync_" << toString(p) << "_" << g.ctas << "x"
       << g.threadsPerCta;
    return os.str();
}

namespace {

/**
 * Shared lock-kernel prologue: retire lanes 1..31 (lock work is
 * warp-granular), load the 7-parameter layout, and compute the global
 * warp id in %r3. Leaves %r27/%r28/%r30 as the acquisition, overlap-
 * error and round counters.
 */
void
emitLockPrologue(std::ostringstream &os, const std::string &name)
{
    os << ".kernel " << name << "\n";
    os << R"(.param 7
  mov %r1, %laneid;
  setp.ne.s64 %p0, %r1, 0;
  @%p0 exit;                     // lock work is warp-granular: lane 0 only
  ld.param.u64 %r10, [0];        // lock block
  ld.param.u64 %r11, [8];        // counter
  ld.param.u64 %r12, [16];       // slots[]
  ld.param.u64 %r13, [24];       // owner
  ld.param.u64 %r14, [32];       // errors[]
  ld.param.u64 %r15, [40];       // iters
  ld.param.u64 %r16, [48];       // extra (backoff delay / array slots)
  mov %r2, %ctaid;
  mov %r4, %ntid;
  shr %r4, %r4, 5;               // warps per CTA
  mov %r5, %warpid;
  mad %r3, %r2, %r4, %r5;        // global warp id
  mov %r27, 0;                   // acquisitions
  mov %r28, 0;                   // CS-overlap errors
  mov %r30, 0;                   // round
)";
}

/**
 * Critical section shared by every lock: a non-atomic counter
 * increment bracketed by an owner-witness overlap check. Any
 * mutual-exclusion violation shows up as a lost counter update or a
 * nonzero per-warp error count.
 */
void
emitCriticalSection(std::ostringstream &os)
{
    os << R"(  membar;
  st.global.u64 [%r13], %r3;     // owner = gw
  ld.global.u64 %r7, [%r11];
  add %r7, %r7, 1;
  st.global.u64 [%r11], %r7;     // counter++ (non-atomic on purpose)
  ld.global.u64 %r8, [%r13];     // owner still us?
  setp.ne.s64 %p3, %r8, %r3;
  selp %r9, 1, 0, %p3;
  add %r28, %r28, %r9;
  add %r27, %r27, 1;
  membar;
)";
}

/** Round loop head/tail and the per-warp result stores. */
void
emitRoundHead(std::ostringstream &os)
{
    os << R"(ROUND:
  setp.ge.s64 %p1, %r30, %r15;
  @%p1 bra DONE;
)";
}

void
emitRoundTailAndEpilogue(std::ostringstream &os)
{
    os << R"(  add %r30, %r30, 1;
  bra.uni ROUND;
DONE:
  shl %r9, %r3, 3;
  add %r6, %r12, %r9;
  st.global.u64 [%r6], %r27;     // slots[gw] = acquisitions
  add %r6, %r14, %r9;
  st.global.u64 [%r6], %r28;     // errors[gw] = overlap errors
  exit;
)";
}

std::string
tasLockSource(const std::string &name)
{
    std::ostringstream os;
    emitLockPrologue(os, name);
    emitRoundHead(os);
    os << R"(.annot sync_begin
ACQ:
  .annot acquire
  atom.global.cas.b64 %r6, [%r10], 0, 1;
  setp.ne.s64 %p2, %r6, 0;
  .annot spin
  @%p2 bra ACQ;
.annot sync_end
)";
    emitCriticalSection(os);
    os << R"(.annot sync_begin
  atom.global.exch.b64 %r6, [%r10], 0;
.annot sync_end
)";
    emitRoundTailAndEpilogue(os);
    return os.str();
}

std::string
backoffLockSource(const std::string &name)
{
    std::ostringstream os;
    emitLockPrologue(os, name);
    // Per-warp back-off threshold: delayFactor * ((gw % 8) + 1), the
    // Fig. 3a software-delay recipe staggered across warps.
    os << R"(  rem %r17, %r3, 8;
  add %r17, %r17, 1;
  mul %r17, %r17, %r16;          // threshold = factor * ((gw % 8) + 1)
)";
    emitRoundHead(os);
    os << R"(.annot sync_begin
ACQ:
  .annot acquire
  atom.global.cas.b64 %r6, [%r10], 0, 1;
  setp.eq.s64 %p2, %r6, 0;
  @%p2 bra GOT;
  clock %r18;                    // failed: back off before retrying
DELAY:
  clock %r19;
  sub %r19, %r19, %r18;
  setp.lt.s64 %p4, %r19, %r17;
  @%p4 bra DELAY;
  .annot spin
  bra.uni ACQ;
GOT:
.annot sync_end
)";
    emitCriticalSection(os);
    os << R"(.annot sync_begin
  atom.global.exch.b64 %r6, [%r10], 0;
.annot sync_end
)";
    emitRoundTailAndEpilogue(os);
    return os.str();
}

std::string
ticketLockSource(const std::string &name)
{
    std::ostringstream os;
    emitLockPrologue(os, name);
    os << R"(  add %r18, %r10, 8;             // &now_serving
)";
    emitRoundHead(os);
    os << R"(.annot sync_begin
  atom.global.add.b64 %r6, [%r10], 1;  // my ticket = fetch-add(next)
WAIT:
  ld.volatile.global.u64 %r7, [%r18];
  .annot wait
  setp.eq.s64 %p2, %r7, %r6;     // my turn?
  .annot spin
  @!%p2 bra WAIT;
.annot sync_end
)";
    emitCriticalSection(os);
    os << R"(.annot sync_begin
  add %r7, %r6, 1;
  st.global.u64 [%r18], %r7;     // now_serving = ticket + 1
.annot sync_end
)";
    emitRoundTailAndEpilogue(os);
    return os.str();
}

std::string
arrayLockSource(const std::string &name)
{
    std::ostringstream os;
    emitLockPrologue(os, name);
    emitRoundHead(os);
    os << R"(.annot sync_begin
  atom.global.add.b64 %r6, [%r10], 1;  // ticket = fetch-add(tail)
  rem %r7, %r6, %r16;                  // my flag slot
  shl %r7, %r7, 3;
  add %r18, %r10, %r7;
  add %r18, %r18, 8;                   // &flags[slot]
WAIT:
  ld.volatile.global.u64 %r7, [%r18];
  .annot wait
  setp.ne.s64 %p2, %r7, 0;       // slot open?
  .annot spin
  @!%p2 bra WAIT;
.annot sync_end
)";
    emitCriticalSection(os);
    os << R"(.annot sync_begin
  mov %r7, 0;
  st.global.u64 [%r18], %r7;           // clear own flag
  add %r7, %r6, 1;
  rem %r7, %r7, %r16;
  shl %r7, %r7, 3;
  add %r7, %r10, %r7;
  add %r7, %r7, 8;
  mov %r8, 1;
  st.global.u64 [%r7], %r8;            // wake the next slot
.annot sync_end
)";
    emitRoundTailAndEpilogue(os);
    return os.str();
}

std::string
barrierSource(const std::string &name, bool system_scope)
{
    // The two barrier primitives share one protocol and differ only in
    // memory scope: GlobalBarrier uses device-scope atomics and fences
    // (resolved in the local L2), SystemBarrier uses .sys scope so the
    // arrive counter and fences order across every device of a
    // multi-device system (docs/PERF.md, "Device sharding").
    const char *scope = system_scope ? ".sys" : "";
    std::ostringstream os;
    os << ".kernel " << name << "\n";
    // All lanes stay alive: every warp of the CTA participates in the
    // intra-CTA bar.sync each round, while warp 0 lane 0 drives the
    // centralized global arrive/release. The release spin depends only
    // on another CTA's lane (cross-warp producer -> consumer), which is
    // SIMT-safe per docs/ISA.md. The data[] check uses >= rather than
    // ==: a faster CTA may already have published the next round, but a
    // value *below* round+1 proves the barrier let this CTA through
    // before its neighbor arrived.
    os << R"(.param 5
  ld.param.u64 %r10, [0];        // &count
  ld.param.u64 %r11, [8];        // &release
  ld.param.u64 %r12, [16];       // data[] (one word per CTA)
  ld.param.u64 %r13, [24];       // errors[] (one word per CTA)
  ld.param.u64 %r14, [32];       // iters
  mov %r2, %ctaid;
  mov %r15, %nctaid;
  mov %r3, %warpid;
  mov %r4, %laneid;
  or %r5, %r3, %r4;              // zero only for warp 0 lane 0
  mov %r28, 0;                   // cross-CTA check errors
  mov %r30, 0;                   // round
ROUND:
  setp.ge.s64 %p0, %r30, %r14;
  @%p0 bra DONE;
  setp.ne.s64 %p1, %r5, 0;
  @%p1 bra SKIP;                 // only warp 0 lane 0 runs the global phase
  add %r6, %r30, 1;
  shl %r7, %r2, 3;
  add %r7, %r12, %r7;
  st.global.u64 [%r7], %r6;      // publish data[ctaid] = round + 1
  membar)" << scope
       << R"(;
.annot sync_begin
  atom.global)" << scope
       << R"(.add.b64 %r8, [%r10], 1;  // arrive
  add %r9, %r8, 1;
  setp.lt.s64 %p2, %r9, %r15;    // not the last arriver?
  @%p2 bra WAITREL;
  mov %r9, 0;
  st.global.u64 [%r10], %r9;     // last arriver: reset the count...
  membar)" << scope
       << R"(;
  st.global.u64 [%r11], %r6;     // ...and open release = round + 1
  bra.uni RELDONE;
WAITREL:
  ld.volatile.global.u64 %r9, [%r11];
  .annot wait
  setp.ge.s64 %p3, %r9, %r6;     // release round open?
  .annot spin
  @!%p3 bra WAITREL;
RELDONE:
.annot sync_end
  add %r7, %r2, 1;
  rem %r7, %r7, %r15;
  shl %r7, %r7, 3;
  add %r7, %r12, %r7;
  ld.global.u64 %r9, [%r7];      // neighbor's data must have arrived
  setp.lt.s64 %p4, %r9, %r6;
  selp %r7, 1, 0, %p4;
  add %r28, %r28, %r7;
SKIP:
  bar.sync;
  add %r30, %r30, 1;
  bra.uni ROUND;
DONE:
  setp.ne.s64 %p1, %r5, 0;
  @%p1 exit;
  shl %r7, %r2, 3;
  add %r7, %r13, %r7;
  st.global.u64 [%r7], %r28;     // errors[ctaid]
  exit;
)";
    return os.str();
}

}  // namespace

std::string
primitiveSource(Primitive p, const SyncGeometry &g)
{
    if (g.threadsPerCta == 0 || g.threadsPerCta % kWarpSize != 0)
        fatal("sync primitive: threadsPerCta (", g.threadsPerCta,
              ") must be a positive multiple of ", kWarpSize);
    if (g.ctas == 0 || g.iters == 0)
        fatal("sync primitive: ctas and iters must be positive");
    const std::string name = primitiveKernelName(p, g);
    switch (p) {
      case Primitive::TasLock: return tasLockSource(name);
      case Primitive::BackoffLock: return backoffLockSource(name);
      case Primitive::TicketLock: return ticketLockSource(name);
      case Primitive::ArrayLock: return arrayLockSource(name);
      case Primitive::GlobalBarrier:
        return barrierSource(name, /*system_scope=*/false);
      case Primitive::SystemBarrier:
        return barrierSource(name, /*system_scope=*/true);
    }
    fatal("sync primitive: unknown primitive");
}

}  // namespace bowsim::sync
