#ifndef BOWSIM_SYNC_PRIMITIVES_HPP
#define BOWSIM_SYNC_PRIMITIVES_HPP

#include <string>
#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * Synchronization-primitive library (docs/SYNC.md): parameterizable
 * ISA-source generators for the classic GPU lock and barrier designs of
 * Stuart & Owens, "Efficient Synchronization Primitives for GPUs" —
 * test-and-set spin lock, spin-with-backoff, ticket lock, array queue
 * lock, and a software global (inter-CTA) sense-style barrier.
 *
 * Locks operate at warp granularity: lane 0 of every warp takes the
 * lock while lanes 1..31 exit immediately, which sidesteps the
 * SIMT-induced intra-warp deadlocks of per-lane fair locks
 * (docs/ISA.md, "Deadlock rules"). The barrier keeps all lanes alive
 * and combines an intra-CTA bar.sync with a centralized global arrive/
 * release protocol driven by warp 0 lane 0 of each CTA.
 *
 * Every generator emits geometry-independent source — CTA count, CTA
 * size and round count arrive through special registers and kernel
 * parameters — so one primitive can be instantiated at any geometry.
 */

namespace bowsim::sync {

/** The six generated primitives. */
enum class Primitive {
    TasLock,       ///< test-and-set (CAS) spin lock
    BackoffLock,   ///< TAS lock + software clock()-delay back-off
    TicketLock,    ///< fetch-add ticket / now-serving FIFO lock
    ArrayLock,     ///< array queue lock (one flag slot per waiter)
    GlobalBarrier, ///< software inter-CTA sense barrier
    SystemBarrier, ///< GlobalBarrier with system-scope atomics/fences,
                   ///< the multi-device (inter-GPU) variant
};

/** True for the two barrier primitives (same 5-parameter protocol). */
inline bool
isBarrier(Primitive p)
{
    return p == Primitive::GlobalBarrier || p == Primitive::SystemBarrier;
}

/** All primitives, in a fixed canonical order. */
const std::vector<Primitive> &allPrimitives();

/** Short lower-case identifier: "tas", "backoff", "ticket", ...,
 *  "barrier", "system-barrier". */
const char *toString(Primitive p);

/** Parses the toString() identifiers; false on anything else. */
bool parsePrimitive(const std::string &text, Primitive *out);

/** Geometry of one primitive instantiation. */
struct SyncGeometry {
    /** CTAs in the grid. */
    unsigned ctas = 4;
    /** Threads per CTA; must be a multiple of the warp size. */
    unsigned threadsPerCta = 64;
    /** Lock acquire/release rounds per warp, or barrier rounds. */
    unsigned iters = 16;
    /**
     * BackoffLock only: base clock()-delay in cycles; each warp waits
     * delayFactor * ((warp % 8) + 1) cycles after a failed acquire.
     */
    unsigned delayFactor = 64;

    unsigned warpsPerCta() const { return threadsPerCta / kWarpSize; }
    unsigned totalWarps() const { return ctas * warpsPerCta(); }
    /** Total lock acquisitions across the launch (lock primitives). */
    std::uint64_t totalAcquisitions() const
    {
        return static_cast<std::uint64_t>(totalWarps()) * iters;
    }
};

/**
 * Emits the ISA source of @p p. The source itself is geometry-
 * independent; @p g only selects the kernel name (so programs from
 * different instantiations stay distinguishable in stats and traces)
 * and, for BackoffLock, documents the delay parameter. Lock kernels
 * take 7 parameters:
 *
 *   [0]  lock block   (TAS/backoff: 1 word; ticket: next,serving;
 *                      array: tail then one flag word per slot)
 *   [8]  counter      1 word, incremented non-atomically in the CS
 *   [16] slots[]      per-warp acquisition counts (totalWarps words)
 *   [24] owner        1 word, mutual-exclusion witness
 *   [32] errors[]     per-warp CS-overlap counts (totalWarps words)
 *   [40] iters        rounds per warp
 *   [48] extra        backoff: delay factor; array: flag-slot count
 *
 * The barrier takes 5: count, release, data[] (one word per CTA),
 * errors[] (one word per CTA), iters.
 */
std::string primitiveSource(Primitive p, const SyncGeometry &g);

/** Kernel name embedded in the generated source, e.g. "sync_tas_4x64". */
std::string primitiveKernelName(Primitive p, const SyncGeometry &g);

}  // namespace bowsim::sync

#endif  // BOWSIM_SYNC_PRIMITIVES_HPP
