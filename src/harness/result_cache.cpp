#include "src/harness/result_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/common/log.hpp"
#include "src/harness/fingerprint.hpp"
#include "src/harness/json.hpp"
#include "src/harness/sweep.hpp"

namespace fs = std::filesystem;

namespace bowsim::harness {

const char *
toString(CacheMode mode)
{
    switch (mode) {
      case CacheMode::Off: return "off";
      case CacheMode::ReadOnly: return "ro";
      case CacheMode::ReadWrite: return "rw";
    }
    return "?";
}

bool
parseCacheMode(const std::string &text, CacheMode *out)
{
    if (text == "off") {
        *out = CacheMode::Off;
        return true;
    }
    if (text == "ro") {
        *out = CacheMode::ReadOnly;
        return true;
    }
    if (text == "rw") {
        *out = CacheMode::ReadWrite;
        return true;
    }
    return false;
}

namespace {

/** Whole-file read; false on any I/O problem (treated as a miss). */
bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return false;
    *out = buf.str();
    return true;
}

/**
 * Temp-file + atomic-rename publish. The temp name is unique per thread
 * so concurrent writers of the same record never collide mid-write; the
 * final rename is atomic on POSIX, so readers see either the old record,
 * the new one, or none — never a torn file. Returns false on any I/O
 * failure (cache writes are best-effort; the sweep result is unaffected).
 */
bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp = tmp_name.str();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << content;
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

}  // namespace

ResultCache::ResultCache(std::string dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode)
{
    if (mode_ == CacheMode::Off)
        return;
    if (dir_.empty())
        fatal("result cache: empty cache directory");
    if (mode_ == CacheMode::ReadWrite) {
        std::error_code ec;
        fs::create_directories(fs::path(dir_) / "objects", ec);
        if (!ec)
            fs::create_directories(fs::path(dir_) / "journal", ec);
        if (ec) {
            fatal("result cache: cannot create ", dir_, ": ",
                  ec.message());
        }
    }
}

std::string
ResultCache::recordPath(const std::string &fingerprint) const
{
    return (fs::path(dir_) / "objects" / (fingerprint + ".json"))
        .string();
}

std::string
ResultCache::journalPath(const std::string &bench_name) const
{
    return (fs::path(dir_) / "journal" / (bench_name + ".jsonl"))
        .string();
}

bool
ResultCache::lookup(const std::string &fingerprint, KernelStats *out) const
{
    if (mode_ == CacheMode::Off)
        return false;
    std::string text;
    if (!readFile(recordPath(fingerprint), &text))
        return false;
    // Any defect — torn write survivor, version skew, a record hand-
    // edited into nonsense — is a miss, never an error: the point is
    // simply recomputed (and, in rw mode, the bad record overwritten).
    try {
        const Json rec = Json::parse(text);
        if (rec.at("cache_version").asInt() !=
            static_cast<std::int64_t>(kResultSchemaVersion))
            return false;
        if (rec.at("fingerprint").asString() != fingerprint)
            return false;
        *out = statsFromJson(rec.at("stats"));
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

void
ResultCache::store(const std::string &fingerprint, const std::string &id,
                   const KernelStats &stats)
{
    if (mode_ != CacheMode::ReadWrite)
        return;
    Json rec = Json::object();
    rec.set("cache_version", kResultSchemaVersion);
    rec.set("fingerprint", fingerprint);
    rec.set("id", id);
    rec.set("stats", statsToJson(stats));
    if (writeFileAtomic(recordPath(fingerprint), rec.dump(1) + "\n"))
        countStored();
    else
        warn("result cache: failed to store " + fingerprint);
}

CacheCounters
ResultCache::counters() const
{
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.stored = stored_.load(std::memory_order_relaxed);
    c.bypassed = bypassed_.load(std::memory_order_relaxed);
    c.resumed = resumed_.load(std::memory_order_relaxed);
    return c;
}

ResumeJournal::ResumeJournal(std::string path, bool resume, bool writable)
    : path_(std::move(path)), writable_(writable)
{
    if (resume) {
        std::string text;
        if (readFile(path_, &text)) {
            std::istringstream lines(text);
            std::string line;
            while (std::getline(lines, line)) {
                if (line.empty())
                    continue;
                try {
                    const Json rec = Json::parse(line);
                    Entry e;
                    e.key = rec.at("key").asString();
                    e.stats = statsFromJson(rec.at("stats"));
                    entries_[rec.at("id").asString()] = std::move(e);
                } catch (const FatalError &) {
                    // A torn final line is how a crash mid-append
                    // manifests; everything after it is unreadable, so
                    // stop and let those points re-simulate.
                    break;
                }
            }
        }
    } else if (writable_) {
        // Fresh sweep: any journal left by a previous run describes
        // points the caller chose not to resume — discard it.
        std::error_code ec;
        fs::remove(path_, ec);
    }
    if (writable_) {
        std::error_code ec;
        fs::create_directories(fs::path(path_).parent_path(), ec);
        if (ec) {
            fatal("resume journal: cannot create ",
                  fs::path(path_).parent_path().string(), ": ",
                  ec.message());
        }
    }
}

bool
ResumeJournal::lookup(const std::string &id, const std::string &key,
                      KernelStats *out) const
{
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.key != key)
        return false;
    *out = it->second.stats;
    return true;
}

void
ResumeJournal::record(const std::string &id, const std::string &key,
                      const KernelStats &stats)
{
    if (!writable_)
        return;
    Json rec = Json::object();
    rec.set("id", id);
    rec.set("key", key);
    rec.set("stats", statsToJson(stats));
    const std::string line = rec.dump(0) + "\n";
    std::lock_guard<std::mutex> lock(mu_);
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) {
        warn("resume journal: cannot append to " + path_);
        return;
    }
    out << line;
    out.flush();
    if (!out)
        warn("resume journal: short write to " + path_);
}

}  // namespace bowsim::harness
