#include "src/harness/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/log.hpp"

namespace bowsim::harness {

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        fatal("json: asBool on a non-bool value");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::Int)
        return int_;
    if (type_ == Type::Double)
        return static_cast<std::int64_t>(double_);
    fatal("json: asInt on a non-number value");
}

double
Json::asDouble() const
{
    if (type_ == Type::Double)
        return double_;
    if (type_ == Type::Int)
        return static_cast<double>(int_);
    fatal("json: asDouble on a non-number value");
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        fatal("json: asString on a non-string value");
    return string_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return items_.size();
    if (type_ == Type::Object)
        return members_.size();
    fatal("json: size() on a scalar value");
}

Json &
Json::push(Json value)
{
    if (type_ != Type::Array)
        fatal("json: push on a non-array value");
    items_.push_back(std::move(value));
    return *this;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (type_ != Type::Object)
        fatal("json: set on a non-object value");
    for (auto &kv : members_) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

bool
Json::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &kv : members_) {
        if (kv.first == key)
            return true;
    }
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    if (type_ != Type::Object)
        fatal("json: at(\"", key, "\") on a non-object value");
    for (const auto &kv : members_) {
        if (kv.first == key)
            return kv.second;
    }
    fatal("json: missing key '", key, "'");
}

const Json &
Json::at(std::size_t index) const
{
    if (type_ != Type::Array)
        fatal("json: at(", index, ") on a non-array value");
    if (index >= items_.size())
        fatal("json: index ", index, " out of range (size ", items_.size(),
              ")");
    return items_[index];
}

namespace {

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
numberInto(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null like most emitters do.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[32];
        std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
        if (std::strtod(shorter, nullptr) == v) {
            out += shorter;
            return;
        }
    }
    out += buf;
}

}  // namespace

void
Json::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    const std::string pad =
        indent ? "\n" + std::string(indent * (depth + 1), ' ') : "";
    const std::string padEnd =
        indent ? "\n" + std::string(indent * depth, ' ') : "";
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int: {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      }
      case Type::Double:
        numberInto(out, double_);
        break;
      case Type::String:
        escapeInto(out, string_);
        break;
      case Type::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ',';
            out += pad;
            items_[i].dumpTo(out, indent, depth + 1);
        }
        out += padEnd;
        out += ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            out += pad;
            escapeInto(out, members_[i].first);
            out += indent ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        out += padEnd;
        out += '}';
        break;
    }
}

std::string
Json::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

class Parser {
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fatal("json: trailing characters at offset ", pos_);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fatal("json: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("json: expected '", c, "' at offset ", pos_, ", got '",
                  text_[pos_], "'");
        ++pos_;
    }

    bool
    consume(const char *literal)
    {
        std::size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (consume("true"))
                return Json(true);
            fatal("json: bad literal at offset ", pos_);
          case 'f':
            if (consume("false"))
                return Json(false);
            fatal("json: bad literal at offset ", pos_);
          case 'n':
            if (consume("null"))
                return Json();
            fatal("json: bad literal at offset ", pos_);
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fatal("json: unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fatal("json: unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fatal("json: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fatal("json: bad \\u escape");
                }
                // Basic-multilingual-plane only; encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fatal("json: bad escape '\\", e, "'");
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fatal("json: bad number at offset ", start);
        std::string tok = text_.substr(start, pos_ - start);
        if (integral) {
            errno = 0;
            long long v = std::strtoll(tok.c_str(), nullptr, 10);
            if (errno == 0)
                return Json(static_cast<std::int64_t>(v));
        }
        return Json(std::strtod(tok.c_str(), nullptr));
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            if (c != ',')
                fatal("json: expected ',' or ']' at offset ", pos_ - 1);
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            obj.set(key, parseValue());
            char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            if (c != ',')
                fatal("json: expected ',' or '}' at offset ", pos_ - 1);
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

}  // namespace bowsim::harness
