#include "src/harness/json_check.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/common/log.hpp"

namespace bowsim::harness {

namespace {

CheckResult
fail(std::string message)
{
    CheckResult r;
    r.ok = false;
    r.message = std::move(message);
    return r;
}

}  // namespace

Json
loadJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
}

CheckResult
checkSweepArtifact(const Json &doc, std::int64_t expected_points)
{
    if (!doc.has("points"))
        return fail("artifact has no \"points\" array");
    const Json &points = doc.at("points");
    if (points.type() != Json::Type::Array)
        return fail("\"points\" is not an array");
    if (expected_points >= 0 &&
        points.size() != static_cast<std::size_t>(expected_points)) {
        std::ostringstream os;
        os << "artifact has " << points.size() << " points, expected "
           << expected_points;
        return fail(os.str());
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Json &p = points.at(i);
        // Every point must record its configuration, including the
        // idle-skip setting, so artifacts from skip-on and skip-off
        // runs are distinguishable (they must agree everywhere else).
        if (!p.has("config") ||
            p.at("config").type() != Json::Type::Object) {
            return fail("point " + std::to_string(i) +
                        " has no \"config\" object");
        }
        if (!p.at("config").has("idle_skip")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"idle_skip\"");
        }
        // Same for the execution knobs added since: sm_threads (phase-
        // split worker count) and atomic_service_period (Table II
        // parameter) must be recorded so artifacts are self-describing.
        if (!p.at("config").has("sm_threads")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"sm_threads\"");
        }
        if (!p.at("config").has("atomic_service_period")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"atomic_service_period\"");
        }
        if (!p.has("ok") || !p.at("ok").asBool()) {
            std::ostringstream os;
            os << "point " << (p.has("id") ? p.at("id").asString()
                                           : std::to_string(i))
               << " failed";
            if (p.has("error"))
                os << ": " << p.at("error").asString();
            return fail(os.str());
        }
    }
    std::ostringstream os;
    os << "OK (bench="
       << (doc.has("bench") ? doc.at("bench").asString() : "?") << ", "
       << points.size() << " points)";
    CheckResult r;
    r.message = os.str();
    return r;
}

CheckResult
checkChromeTrace(const Json &doc)
{
    if (!doc.has("traceEvents"))
        return fail("trace has no \"traceEvents\" array");
    const Json &events = doc.at("traceEvents");
    if (events.type() != Json::Type::Array)
        return fail("\"traceEvents\" is not an array");

    // Per-(pid, tid) track state: last timestamp and open B/E depth.
    std::map<std::pair<std::int64_t, std::int64_t>,
             std::pair<std::int64_t, std::int64_t>>
        tracks;
    std::size_t timed = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &ev = events.at(i);
        if (ev.type() != Json::Type::Object)
            return fail("event " + std::to_string(i) + " is not an object");
        if (!ev.has("ph"))
            return fail("event " + std::to_string(i) + " has no phase");
        const std::string &ph = ev.at("ph").asString();
        if (ph == "M")
            continue;  // metadata events carry no timestamp
        if (!ev.has("ts") || !ev.at("ts").isNumber())
            return fail("event " + std::to_string(i) +
                        " has no numeric \"ts\"");
        if (!ev.has("pid") || !ev.has("tid"))
            return fail("event " + std::to_string(i) + " has no pid/tid");
        ++timed;
        const std::int64_t ts = ev.at("ts").asInt();
        auto key = std::make_pair(ev.at("pid").asInt(),
                                  ev.at("tid").asInt());
        auto [it, fresh] = tracks.emplace(key, std::make_pair(ts, 0));
        auto &[last_ts, depth] = it->second;
        if (!fresh && ts < last_ts) {
            std::ostringstream os;
            os << "event " << i << ": ts " << ts
               << " goes backwards on track pid=" << key.first
               << " tid=" << key.second << " (last " << last_ts << ")";
            return fail(os.str());
        }
        last_ts = ts;
        if (ph == "B") {
            ++depth;
        } else if (ph == "E") {
            if (depth == 0) {
                std::ostringstream os;
                os << "event " << i << ": unmatched \"E\" on track pid="
                   << key.first << " tid=" << key.second;
                return fail(os.str());
            }
            --depth;
        }
    }
    for (const auto &[key, state] : tracks) {
        if (state.second != 0) {
            std::ostringstream os;
            os << state.second << " unclosed \"B\" interval(s) on track pid="
               << key.first << " tid=" << key.second;
            return fail(os.str());
        }
    }
    std::ostringstream os;
    os << "OK (" << timed << " timed events on " << tracks.size()
       << " tracks)";
    CheckResult r;
    r.message = os.str();
    return r;
}

}  // namespace bowsim::harness
