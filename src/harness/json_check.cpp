#include "src/harness/json_check.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/log.hpp"
#include "src/harness/litmus.hpp"
#include "src/sync/primitives.hpp"

namespace bowsim::harness {

namespace {

CheckResult
fail(std::string message)
{
    CheckResult r;
    r.ok = false;
    r.message = std::move(message);
    return r;
}

}  // namespace

Json
loadJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
}

CheckResult
checkSweepArtifact(const Json &doc, std::int64_t expected_points,
                   std::int64_t expected_cache_hits)
{
    if (!doc.has("points"))
        return fail("artifact has no \"points\" array");
    const Json &points = doc.at("points");
    if (points.type() != Json::Type::Array)
        return fail("\"points\" is not an array");
    if (expected_cache_hits >= 0 && !doc.has("cache"))
        return fail("expected a \"cache\" block (run with --cache) but "
                    "the artifact has none");
    if (doc.has("cache")) {
        const Json &cache = doc.at("cache");
        if (cache.type() != Json::Type::Object)
            return fail("\"cache\" is not an object");
        if (!cache.has("mode"))
            return fail("cache block lacks \"mode\"");
        const std::string &mode = cache.at("mode").asString();
        // "off" never emits a block at all, so it is illegal here.
        if (mode != "ro" && mode != "rw")
            return fail("cache block has unknown mode \"" + mode + "\"");
        for (const char *k :
             {"hits", "misses", "stored", "bypassed", "resumed"}) {
            if (!cache.has(k) || !cache.at(k).isNumber())
                return fail(std::string("cache block lacks numeric \"") +
                            k + "\"");
            if (cache.at(k).asInt() < 0)
                return fail(std::string("cache counter \"") + k +
                            "\" is negative");
        }
        const std::int64_t hits = cache.at("hits").asInt();
        const std::int64_t misses = cache.at("misses").asInt();
        const std::int64_t stored = cache.at("stored").asInt();
        const std::int64_t bypassed = cache.at("bypassed").asInt();
        const std::int64_t resumed = cache.at("resumed").asInt();
        // Every point gets exactly one disposition.
        if (hits + misses + bypassed + resumed !=
            static_cast<std::int64_t>(points.size())) {
            std::ostringstream os;
            os << "cache counters sum to "
               << (hits + misses + bypassed + resumed) << " but the "
               << "artifact has " << points.size() << " points";
            return fail(os.str());
        }
        if (stored > misses)
            return fail("cache stored more records than it missed");
        if (mode == "ro" && stored != 0)
            return fail("read-only cache claims to have stored records");
        if (expected_cache_hits >= 0 && hits != expected_cache_hits) {
            std::ostringstream os;
            os << "cache reports " << hits << " hits, expected "
               << expected_cache_hits;
            return fail(os.str());
        }
    }
    if (expected_points >= 0 &&
        points.size() != static_cast<std::size_t>(expected_points)) {
        std::ostringstream os;
        os << "artifact has " << points.size() << " points, expected "
           << expected_points;
        return fail(os.str());
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Json &p = points.at(i);
        // Every point must record its configuration, including the
        // idle-skip setting, so artifacts from skip-on and skip-off
        // runs are distinguishable (they must agree everywhere else).
        if (!p.has("config") ||
            p.at("config").type() != Json::Type::Object) {
            return fail("point " + std::to_string(i) +
                        " has no \"config\" object");
        }
        if (!p.at("config").has("idle_skip")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"idle_skip\"");
        }
        // Same for the execution knobs added since: sm_threads (phase-
        // split worker count) and atomic_service_period (Table II
        // parameter) must be recorded so artifacts are self-describing.
        if (!p.at("config").has("sm_threads")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"sm_threads\"");
        }
        if (!p.at("config").has("atomic_service_period")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"atomic_service_period\"");
        }
        if (!p.at("config").has("metrics_interval")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"metrics_interval\"");
        }
        // Execution mode must always be recorded (a cycle-mode artifact
        // and a sampled-mode artifact are not comparable), and the
        // estimator fields are exclusive to the estimating modes: a
        // cycle-mode point carrying ipc_est would silently launder an
        // estimate as ground truth.
        if (!p.at("config").has("exec_mode")) {
            return fail("point " + std::to_string(i) +
                        " config lacks \"exec_mode\"");
        }
        const std::string &mode =
            p.at("config").at("exec_mode").asString();
        if (mode != "cycle" && mode != "functional" && mode != "sampled") {
            return fail("point " + std::to_string(i) +
                        " has unknown exec_mode \"" + mode + "\"");
        }
        if (mode == "cycle" && p.has("stats")) {
            const Json &stats = p.at("stats");
            if (stats.has("ipc_est") || stats.has("ipc_ci95") ||
                stats.has("sampled_windows")) {
                return fail("point " + std::to_string(i) +
                            " is exec_mode=cycle but carries sampled "
                            "estimator fields");
            }
        }
        // Multi-device points are self-describing: the device count,
        // the link parameters, and one per-device stats shard per
        // device. Single-device points omit all of them (the artifact
        // stays byte-identical to the pre-device-split schema).
        if (p.at("config").has("num_devices")) {
            const std::int64_t nd =
                p.at("config").at("num_devices").asInt();
            if (nd < 2) {
                return fail("point " + std::to_string(i) + " records "
                            "num_devices=" + std::to_string(nd) +
                            " (single-device points omit the key)");
            }
            for (const char *k : {"link_latency", "link_service_period",
                                  "switch_latency"}) {
                if (!p.at("config").has(k)) {
                    return fail("point " + std::to_string(i) +
                                " is multi-device but its config lacks "
                                "\"" + std::string(k) + "\"");
                }
            }
            if (p.has("stats")) {
                const Json &stats = p.at("stats");
                if (!stats.has("devices") ||
                    stats.at("devices").type() != Json::Type::Array ||
                    stats.at("devices").size() !=
                        static_cast<std::size_t>(nd)) {
                    return fail("point " + std::to_string(i) +
                                " is multi-device but its stats lack a "
                                "\"devices\" array with one shard per "
                                "device");
                }
                for (std::size_t d = 0; d < stats.at("devices").size();
                     ++d) {
                    const Json &shard = stats.at("devices").at(d);
                    if (shard.type() != Json::Type::Object)
                        return fail("point " + std::to_string(i) +
                                    " device shard " +
                                    std::to_string(d) +
                                    " is not an object");
                    if (shard.has("devices"))
                        return fail("point " + std::to_string(i) +
                                    " device shard " +
                                    std::to_string(d) +
                                    " nests a \"devices\" block");
                }
            }
        } else if (p.has("stats") && p.at("stats").has("devices")) {
            return fail("point " + std::to_string(i) + " carries a "
                        "per-device stats block without "
                        "config.num_devices");
        }
        if (!p.has("ok") || !p.at("ok").asBool()) {
            std::ostringstream os;
            os << "point " << (p.has("id") ? p.at("id").asString()
                                           : std::to_string(i))
               << " failed";
            if (p.has("error"))
                os << ": " << p.at("error").asString();
            return fail(os.str());
        }
    }
    std::ostringstream os;
    os << "OK (bench="
       << (doc.has("bench") ? doc.at("bench").asString() : "?") << ", "
       << points.size() << " points";
    if (doc.has("cache")) {
        const Json &cache = doc.at("cache");
        os << ", cache " << cache.at("hits").asInt() << " hit/"
           << cache.at("misses").asInt() << " miss/"
           << cache.at("bypassed").asInt() << " bypassed/"
           << cache.at("resumed").asInt() << " resumed";
    }
    os << ")";
    CheckResult r;
    r.message = os.str();
    return r;
}

CheckResult
compareSweepPoints(const Json &a, const Json &b)
{
    for (const Json *doc : {&a, &b}) {
        if (!doc->has("points") ||
            doc->at("points").type() != Json::Type::Array)
            return fail("artifact has no \"points\" array");
    }
    const std::string bench_a =
        a.has("bench") ? a.at("bench").asString() : "?";
    const std::string bench_b =
        b.has("bench") ? b.at("bench").asString() : "?";
    if (bench_a != bench_b)
        return fail("bench names differ: \"" + bench_a + "\" vs \"" +
                    bench_b + "\"");
    // Byte-level comparison of the serialized arrays: dumps are
    // deterministic, so this is exactly "the points agree".
    if (a.at("points").dump() != b.at("points").dump()) {
        const Json &pa = a.at("points");
        const Json &pb = b.at("points");
        if (pa.size() != pb.size()) {
            std::ostringstream os;
            os << "point counts differ: " << pa.size() << " vs "
               << pb.size();
            return fail(os.str());
        }
        for (std::size_t i = 0; i < pa.size(); ++i) {
            if (pa.at(i).dump() != pb.at(i).dump()) {
                std::ostringstream os;
                os << "point " << i << " ("
                   << (pa.at(i).has("id") ? pa.at(i).at("id").asString()
                                          : "?")
                   << ") differs between the artifacts";
                return fail(os.str());
            }
        }
        return fail("points arrays differ");
    }
    std::ostringstream os;
    os << "OK (bench=" << bench_a << ", " << a.at("points").size()
       << " points byte-identical)";
    CheckResult r;
    r.message = os.str();
    return r;
}

CheckResult
checkChromeTrace(const Json &doc)
{
    if (!doc.has("traceEvents"))
        return fail("trace has no \"traceEvents\" array");
    const Json &events = doc.at("traceEvents");
    if (events.type() != Json::Type::Array)
        return fail("\"traceEvents\" is not an array");

    // Per-(pid, tid) track state: last timestamp and open B/E depth.
    std::map<std::pair<std::int64_t, std::int64_t>,
             std::pair<std::int64_t, std::int64_t>>
        tracks;
    std::size_t timed = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &ev = events.at(i);
        if (ev.type() != Json::Type::Object)
            return fail("event " + std::to_string(i) + " is not an object");
        if (!ev.has("ph"))
            return fail("event " + std::to_string(i) + " has no phase");
        const std::string &ph = ev.at("ph").asString();
        if (ph == "M")
            continue;  // metadata events carry no timestamp
        if (!ev.has("ts") || !ev.at("ts").isNumber())
            return fail("event " + std::to_string(i) +
                        " has no numeric \"ts\"");
        if (!ev.has("pid") || !ev.has("tid"))
            return fail("event " + std::to_string(i) + " has no pid/tid");
        ++timed;
        const std::int64_t ts = ev.at("ts").asInt();
        auto key = std::make_pair(ev.at("pid").asInt(),
                                  ev.at("tid").asInt());
        auto [it, fresh] = tracks.emplace(key, std::make_pair(ts, 0));
        auto &[last_ts, depth] = it->second;
        if (!fresh && ts < last_ts) {
            std::ostringstream os;
            os << "event " << i << ": ts " << ts
               << " goes backwards on track pid=" << key.first
               << " tid=" << key.second << " (last " << last_ts << ")";
            return fail(os.str());
        }
        last_ts = ts;
        if (ph == "B") {
            ++depth;
        } else if (ph == "E") {
            if (depth == 0) {
                std::ostringstream os;
                os << "event " << i << ": unmatched \"E\" on track pid="
                   << key.first << " tid=" << key.second;
                return fail(os.str());
            }
            --depth;
        }
    }
    for (const auto &[key, state] : tracks) {
        if (state.second != 0) {
            std::ostringstream os;
            os << state.second << " unclosed \"B\" interval(s) on track pid="
               << key.first << " tid=" << key.second;
            return fail(os.str());
        }
    }
    std::ostringstream os;
    os << "OK (" << timed << " timed events on " << tracks.size()
       << " tracks)";
    CheckResult r;
    r.message = os.str();
    return r;
}

CheckResult
checkMetricsSeries(const Json &doc, const Json *stats)
{
    if (!doc.has("interval") || !doc.at("interval").isNumber())
        return fail("metrics document has no numeric \"interval\"");
    const std::int64_t interval = doc.at("interval").asInt();
    if (interval <= 0)
        return fail("metrics interval must be positive");
    if (!doc.has("columns") ||
        doc.at("columns").type() != Json::Type::Array)
        return fail("metrics document has no \"columns\" array");
    if (!doc.has("rows") || doc.at("rows").type() != Json::Type::Array)
        return fail("metrics document has no \"rows\" array");

    const Json &columns = doc.at("columns");
    std::map<std::string, std::size_t> colIndex;
    std::vector<bool> isCounter(columns.size(), false);
    for (std::size_t c = 0; c < columns.size(); ++c) {
        const Json &col = columns.at(c);
        if (col.type() != Json::Type::Object || !col.has("name") ||
            !col.has("kind")) {
            return fail("column " + std::to_string(c) +
                        " lacks name/kind");
        }
        const std::string &kind = col.at("kind").asString();
        if (kind != "counter" && kind != "gauge" && kind != "rate")
            return fail("column " + std::to_string(c) +
                        " has unknown kind \"" + kind + "\"");
        isCounter[c] = kind == "counter";
        colIndex.emplace(col.at("name").asString(), c);
    }
    auto required = [&](const char *name) {
        return colIndex.count(name) != 0;
    };
    if (!required("cycle") || !required("launch"))
        return fail("metrics schema lacks cycle/launch columns");
    const std::size_t cycleCol = colIndex.at("cycle");
    const std::size_t launchCol = colIndex.at("launch");

    const Json &rows = doc.at("rows");
    std::int64_t prevCycle = -1;
    std::int64_t prevLaunch = 0;
    std::int64_t prevGridCycle = -1;
    std::vector<std::int64_t> prevRow(columns.size(), 0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Json &row = rows.at(i);
        if (row.type() != Json::Type::Array ||
            row.size() != columns.size()) {
            return fail("row " + std::to_string(i) +
                        " does not match the column schema");
        }
        const std::int64_t cycle = row.at(cycleCol).asInt();
        const std::int64_t launch = row.at(launchCol).asInt();
        if (cycle <= prevCycle) {
            return fail("row " + std::to_string(i) + ": cycle " +
                        std::to_string(cycle) +
                        " not strictly increasing (previous " +
                        std::to_string(prevCycle) + ")");
        }
        if (launch < prevLaunch) {
            return fail("row " + std::to_string(i) +
                        ": launch index went backwards");
        }
        const bool onGrid = cycle % interval == 0;
        if (!onGrid) {
            // Off-grid rows are only legal as launch boundaries: the
            // launch index must advance on the next row, or this must
            // be the final row of the series.
            const bool last = i + 1 == rows.size();
            const bool boundary =
                last || rows.at(i + 1).at(launchCol).asInt() > launch;
            if (!boundary) {
                return fail("row " + std::to_string(i) + ": cycle " +
                            std::to_string(cycle) +
                            " is off the sample grid and not a launch "
                            "boundary");
            }
        } else if (prevGridCycle >= 0 &&
                   cycle - prevGridCycle != interval) {
            return fail("row " + std::to_string(i) +
                        ": grid samples " + std::to_string(prevGridCycle) +
                        " -> " + std::to_string(cycle) +
                        " are not one interval apart");
        }
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (!isCounter[c])
                continue;
            const std::int64_t v = row.at(c).asInt();
            if (i > 0 && v < prevRow[c]) {
                return fail("row " + std::to_string(i) + ": counter \"" +
                            columns.at(c).at("name").asString() +
                            "\" decreased (" + std::to_string(prevRow[c]) +
                            " -> " + std::to_string(v) + ")");
            }
            prevRow[c] = v;
        }
        prevCycle = cycle;
        prevLaunch = launch;
        if (onGrid)
            prevGridCycle = cycle;
    }

    std::size_t checked = 0;
    if (stats != nullptr) {
        if (rows.size() == 0)
            return fail("metrics series has no rows to check against "
                        "KernelStats");
        const Json &final_row = rows.at(rows.size() - 1);
        auto expect = [&](const char *column, const Json &parent,
                          const char *key) -> CheckResult {
            if (!colIndex.count(column))
                return fail(std::string("metrics schema lacks \"") +
                            column + "\"");
            if (!parent.has(key))
                return fail(std::string("stats lack \"") + key + "\"");
            const std::int64_t got =
                final_row.at(colIndex.at(column)).asInt();
            const std::int64_t want = parent.at(key).asInt();
            if (got != want) {
                std::ostringstream os;
                os << "final row \"" << column << "\" = " << got
                   << " disagrees with stats." << key << " = " << want;
                return fail(os.str());
            }
            ++checked;
            return CheckResult{};
        };
        // KernelStats::operator+= sums cycles across launches, exactly
        // like the sampler's cross-launch cycle column, so this holds
        // for multi-launch harnesses too.
        CheckResult r = expect("cycle", *stats, "cycles");
        if (r.ok)
            r = expect("warp_instructions", *stats, "warp_instructions");
        if (r.ok)
            r = expect("thread_instructions", *stats,
                       "thread_instructions");
        if (r.ok && stats->has("mem")) {
            const Json &mem = stats->at("mem");
            for (const char *k :
                 {"l1_accesses", "l1_misses", "l2_accesses", "l2_misses",
                  "dram_accesses", "dram_row_activations", "atomics",
                  "atomic_wait_cycles", "icnt_packets"}) {
                r = expect(k, mem, k);
                if (!r.ok)
                    break;
            }
        }
        if (r.ok && stats->has("sched")) {
            const Json &sched = stats->at("sched");
            for (const char *k :
                 {"resident_warp_cycles", "backed_off_warp_cycles",
                  "sm_cycles", "delay_limit_cycle_sum"}) {
                r = expect(k, sched, k);
                if (!r.ok)
                    break;
            }
        }
        if (r.ok && stats->has("outcomes")) {
            const Json &out = stats->at("outcomes");
            for (const char *k :
                 {"lock_success", "inter_warp_fail", "intra_warp_fail",
                  "wait_exit_success", "wait_exit_fail"}) {
                r = expect(k, out, k);
                if (!r.ok)
                    break;
            }
        }
        if (!r.ok)
            return r;
    }

    std::ostringstream os;
    os << "OK (" << rows.size() << " rows, " << columns.size()
       << " columns, interval " << interval;
    if (stats != nullptr)
        os << ", " << checked << " totals matched against stats";
    os << ")";
    CheckResult r;
    r.message = os.str();
    return r;
}

CheckResult
checkLitmusMatrix(const Json &doc, std::int64_t expected_cells)
{
    // --- document header ---------------------------------------------
    for (const char *k : {"bench", "exec_mode", "watchdog_cycles",
                          "threads_per_cta", "iters"}) {
        if (!doc.has(k))
            return fail(std::string("litmus document lacks \"") + k +
                        "\"");
    }
    const std::string &mode = doc.at("exec_mode").asString();
    if (mode != "cycle" && mode != "functional" && mode != "sampled")
        return fail("unknown exec_mode \"" + mode + "\"");
    if (doc.at("watchdog_cycles").asInt() <= 0)
        return fail("watchdog_cycles must be positive");

    // --- axis lists ---------------------------------------------------
    for (const char *k : {"primitives", "schedulers", "bows",
                          "occupancies", "devices", "cells"}) {
        if (!doc.has(k) || doc.at(k).type() != Json::Type::Array)
            return fail(std::string("litmus document lacks \"") + k +
                        "\" array");
        if (std::string(k) != "cells" && doc.at(k).size() == 0)
            return fail(std::string("axis \"") + k + "\" is empty");
    }
    const Json &prims = doc.at("primitives");
    for (std::size_t i = 0; i < prims.size(); ++i) {
        sync::Primitive p;
        if (!sync::parsePrimitive(prims.at(i).asString(), &p))
            return fail("unknown primitive \"" + prims.at(i).asString() +
                        "\"");
    }
    const Json &occs = doc.at("occupancies");
    for (std::size_t i = 0; i < occs.size(); ++i) {
        OccupancyLevel level;
        if (!parseOccupancy(occs.at(i).asString(), &level))
            return fail("unknown occupancy \"" + occs.at(i).asString() +
                        "\"");
    }
    const Json &scheds = doc.at("schedulers");
    const Json &bows = doc.at("bows");
    const Json &devs = doc.at("devices");
    for (std::size_t i = 0; i < devs.size(); ++i) {
        if (devs.at(i).asInt() <= 0)
            return fail("devices axis entries must be positive");
    }

    // --- cells: schema, legality, and exact axis coverage -------------
    const Json &cells = doc.at("cells");
    const std::size_t expected_product = prims.size() * scheds.size() *
                                         bows.size() * occs.size() *
                                         devs.size();
    if (expected_cells >= 0 &&
        cells.size() != static_cast<std::size_t>(expected_cells)) {
        std::ostringstream os;
        os << "matrix has " << cells.size() << " cells, expected "
           << expected_cells;
        return fail(os.str());
    }
    if (cells.size() != expected_product) {
        std::ostringstream os;
        os << "matrix has " << cells.size()
           << " cells but the axis lists span " << expected_product;
        return fail(os.str());
    }
    std::map<std::string, int> seen;
    std::map<std::string, std::size_t> outcome_counts;
    std::size_t evidence_cells = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Json &c = cells.at(i);
        const std::string where = "cell " + std::to_string(i);
        for (const char *k : {"id", "primitive", "scheduler", "bows",
                              "occupancy", "devices", "ctas",
                              "warps_per_cta", "iters", "outcome",
                              "config", "stats"}) {
            if (!c.has(k))
                return fail(where + " lacks \"" + k + "\"");
        }
        SyncOutcome outcome;
        if (!parseSyncOutcome(c.at("outcome").asString(), &outcome))
            return fail(where + " has illegal outcome \"" +
                        c.at("outcome").asString() + "\"");
        ++outcome_counts[c.at("outcome").asString()];
        if (c.at("ctas").asInt() <= 0 ||
            c.at("warps_per_cta").asInt() <= 0 ||
            c.at("iters").asInt() <= 0 || c.at("devices").asInt() <= 0)
            return fail(where + " has non-positive geometry");
        const Json &cfg = c.at("config");
        if (cfg.type() != Json::Type::Object)
            return fail(where + " \"config\" is not an object");
        // The cell configuration must be self-describing and agree
        // with the cell's own axis coordinates.
        for (const char *k : {"exec_mode", "watchdog_cycles",
                              "scheduler", "bows_enabled",
                              "spin_detect"}) {
            if (!cfg.has(k))
                return fail(where + " config lacks \"" + k + "\"");
        }
        if (cfg.at("exec_mode").asString() != mode)
            return fail(where + " config exec_mode disagrees with the "
                        "document header");
        if (cfg.at("scheduler").asString() !=
            c.at("scheduler").asString())
            return fail(where + " config scheduler disagrees with the "
                        "cell's scheduler");
        if (cfg.at("bows_enabled").asBool() != c.at("bows").asBool())
            return fail(where + " config bows_enabled disagrees with "
                        "the cell's bows flag");
        if (cfg.has("devices") &&
            cfg.at("devices").asInt() != c.at("devices").asInt())
            return fail(where + " config devices disagrees with the "
                        "cell's device count");
        if (c.at("stats").type() != Json::Type::Object)
            return fail(where + " \"stats\" is not an object");
        // Contention evidence (docs/SYNC.md): livelocked cycle-mode
        // cells must carry a machine-checked attribution of the
        // contended address; other cells may.
        const bool livelocked =
            c.at("outcome").asString() == "livelocked";
        if (mode == "cycle" && livelocked && !c.has("evidence"))
            return fail(where + " is livelocked but carries no "
                        "\"evidence\" block");
        if (c.has("evidence")) {
            const Json &ev = c.at("evidence");
            if (ev.type() != Json::Type::Object)
                return fail(where + " \"evidence\" is not an object");
            for (const char *k : {"addr", "cas_attempts",
                                  "cas_failures", "failed_share",
                                  "peak_waiters", "storms"}) {
                if (!ev.has(k))
                    return fail(where + " evidence lacks \"" + k +
                                "\"");
            }
            if (ev.at("addr").asString().compare(0, 2, "0x") != 0)
                return fail(where + " evidence addr is not hex");
            if (ev.at("cas_failures").asInt() >
                ev.at("cas_attempts").asInt())
                return fail(where + " evidence has more CAS failures "
                            "than attempts");
            const double share = ev.at("failed_share").asDouble();
            if (share < 0.0 || share > 1.0)
                return fail(where + " evidence failed_share is "
                            "outside [0, 1]");
            if (ev.at("peak_waiters").asInt() < 0 ||
                ev.at("storms").asInt() < 0)
                return fail(where + " evidence counters are negative");
            ++evidence_cells;
        }
        std::string key =
            c.at("primitive").asString() + "/" +
            c.at("scheduler").asString() + "/" +
            (c.at("bows").asBool() ? "bows" : "base") + "/" +
            c.at("occupancy").asString() + "/d" +
            std::to_string(c.at("devices").asInt());
        if (++seen[key] > 1)
            return fail("duplicate cell " + key);
    }
    for (std::size_t pi = 0; pi < prims.size(); ++pi)
        for (std::size_t si = 0; si < scheds.size(); ++si)
            for (std::size_t bi = 0; bi < bows.size(); ++bi)
                for (std::size_t oi = 0; oi < occs.size(); ++oi)
                    for (std::size_t di = 0; di < devs.size(); ++di) {
                        std::string key =
                            prims.at(pi).asString() + "/" +
                            scheds.at(si).asString() + "/" +
                            (bows.at(bi).asBool() ? "bows" : "base") +
                            "/" + occs.at(oi).asString() + "/d" +
                            std::to_string(devs.at(di).asInt());
                        if (seen.find(key) == seen.end())
                            return fail("matrix is missing cell " +
                                        key);
                    }

    std::ostringstream os;
    os << "OK (litmus, " << cells.size() << " cells";
    for (const auto &[name, count] : outcome_counts)
        os << ", " << count << " " << name;
    if (evidence_cells != 0)
        os << ", " << evidence_cells << " with contention evidence";
    os << ")";
    CheckResult r;
    r.message = os.str();
    return r;
}

namespace {

/** Shared by the totals block and each per-address entry. */
CheckResult
checkSyncCounters(const Json &obj, const std::string &where)
{
    for (const char *k : {"atomics", "cas_attempts", "cas_failures",
                          "failed_share", "acquires", "releases",
                          "timed_atomics", "local_atomics",
                          "remote_atomics", "wait_cycles",
                          "peak_waiters", "backoff_enters",
                          "sib_confirms"}) {
        if (!obj.has(k) || !obj.at(k).isNumber())
            return fail(where + " lacks numeric \"" + k + "\"");
        if (obj.at(k).asDouble() < 0)
            return fail(where + " \"" + k + "\" is negative");
    }
    const std::int64_t atomics = obj.at("atomics").asInt();
    const std::int64_t attempts = obj.at("cas_attempts").asInt();
    const std::int64_t failures = obj.at("cas_failures").asInt();
    if (failures > attempts)
        return fail(where + " has more CAS failures than attempts");
    if (attempts > atomics)
        return fail(where + " has more CAS attempts than atomics");
    const double share = obj.at("failed_share").asDouble();
    if (share < 0.0 || share > 1.0)
        return fail(where + " failed_share is outside [0, 1]");
    if (obj.at("local_atomics").asInt() +
            obj.at("remote_atomics").asInt() !=
        obj.at("timed_atomics").asInt())
        return fail(where + " local + remote atomics do not fold to "
                    "timed_atomics");
    return CheckResult{};
}

/** A log2 latency histogram: <= 32 non-negative integer buckets. */
CheckResult
checkSyncHistogram(const Json &arr, const std::string &where)
{
    if (arr.type() != Json::Type::Array)
        return fail(where + " is not an array");
    if (arr.size() > 32)
        return fail(where + " has more than 32 buckets");
    for (std::size_t i = 0; i < arr.size(); ++i) {
        if (!arr.at(i).isNumber() || arr.at(i).asInt() < 0)
            return fail(where + " bucket " + std::to_string(i) +
                        " is not a non-negative integer");
    }
    return CheckResult{};
}

}  // namespace

CheckResult
checkSyncReport(const Json &doc)
{
    // --- header -------------------------------------------------------
    for (const char *k : {"version", "top_n", "storm_window", "totals",
                          "addresses"}) {
        if (!doc.has(k))
            return fail(std::string("sync report lacks \"") + k + "\"");
    }
    if (doc.at("version").asInt() != 1)
        return fail("unsupported sync report version");
    const std::int64_t top_n = doc.at("top_n").asInt();
    if (top_n <= 0 || doc.at("storm_window").asInt() <= 0)
        return fail("top_n and storm_window must be positive");

    // --- totals -------------------------------------------------------
    const Json &totals = doc.at("totals");
    if (totals.type() != Json::Type::Object)
        return fail("\"totals\" is not an object");
    for (const char *k : {"tracked_addresses", "contended_lines",
                          "storms"}) {
        if (!totals.has(k) || !totals.at(k).isNumber() ||
            totals.at(k).asInt() < 0)
            return fail(std::string("totals lacks non-negative \"") + k +
                        "\"");
    }
    CheckResult r = checkSyncCounters(totals, "totals");
    if (!r.ok)
        return r;
    if (totals.at("contended_lines").asInt() >
        totals.at("tracked_addresses").asInt())
        return fail("more contended lines than tracked addresses");

    // --- addresses: schema and hottest-first order --------------------
    const Json &addrs = doc.at("addresses");
    if (addrs.type() != Json::Type::Array)
        return fail("\"addresses\" is not an array");
    if (addrs.size() > static_cast<std::size_t>(top_n))
        return fail("addresses array exceeds top_n");
    std::int64_t prev_failures = -1;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        const Json &a = addrs.at(i);
        const std::string where = "address " + std::to_string(i);
        for (const char *k : {"addr", "line"}) {
            if (!a.has(k) ||
                a.at(k).asString().compare(0, 2, "0x") != 0)
                return fail(where + " lacks hex \"" + k + "\"");
        }
        r = checkSyncCounters(a, where);
        if (!r.ok)
            return r;
        for (const char *k :
             {"acquire_latency", "hold_cycles", "handoff_cycles"}) {
            if (!a.has(k))
                return fail(where + " lacks \"" + k + "\"");
            r = checkSyncHistogram(a.at(k), where + " " + k);
            if (!r.ok)
                return r;
        }
        if (!a.has("fairness") ||
            a.at("fairness").type() != Json::Type::Object)
            return fail(where + " lacks a \"fairness\" object");
        const Json &f = a.at("fairness");
        for (const char *k : {"warps", "max", "mean", "gini"}) {
            if (!f.has(k) || !f.at(k).isNumber())
                return fail(where + " fairness lacks numeric \"" + k +
                            "\"");
        }
        const double gini = f.at("gini").asDouble();
        if (gini < 0.0 || gini > 1.0)
            return fail(where + " fairness gini is outside [0, 1]");
        if (!a.has("storm_count") || !a.has("storms") ||
            a.at("storms").type() != Json::Type::Array)
            return fail(where + " lacks storm fields");
        const Json &storms = a.at("storms");
        for (std::size_t s = 0; s < storms.size(); ++s) {
            const Json &iv = storms.at(s);
            if (!iv.has("from") || !iv.has("to") ||
                iv.at("from").asInt() < 0 ||
                iv.at("from").asInt() > iv.at("to").asInt())
                return fail(where + " storm " + std::to_string(s) +
                            " has an illegal interval");
        }
        const std::int64_t failures = a.at("cas_failures").asInt();
        if (prev_failures >= 0 && failures > prev_failures)
            return fail("addresses are not sorted hottest-first at "
                        "entry " +
                        std::to_string(i));
        prev_failures = failures;
    }

    std::ostringstream os;
    os << "OK (sync-report, " << addrs.size() << " addresses, "
       << totals.at("cas_attempts").asInt() << " CAS attempts, "
       << totals.at("cas_failures").asInt() << " failed)";
    r = CheckResult{};
    r.message = os.str();
    return r;
}

}  // namespace bowsim::harness
