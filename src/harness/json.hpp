#ifndef BOWSIM_HARNESS_JSON_HPP
#define BOWSIM_HARNESS_JSON_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

/**
 * @file
 * Minimal JSON value: enough to emit the BENCH_*.json sweep artifacts
 * and to parse them back for validation (bench_smoke, unit tests). No
 * external dependencies. Object keys keep insertion order so emitted
 * artifacts are stable and diffable; dumps are deterministic, so two
 * sweeps agree byte-for-byte iff their results agree.
 */

namespace bowsim::harness {

class Json {
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(unsigned v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
    Json(std::int64_t v) : type_(Type::Int), int_(v) {}
    Json(std::uint64_t v)
        : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }

    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Array element count / object member count. */
    std::size_t size() const;

    /** Appends to an array (value must be an array). */
    Json &push(Json value);

    /** Sets an object member, replacing any existing value for @p key. */
    Json &set(const std::string &key, Json value);

    /** True when this object has member @p key. */
    bool has(const std::string &key) const;

    /** Object member access; throws FatalError when missing. */
    const Json &at(const std::string &key) const;

    /** Array element access; throws FatalError when out of range. */
    const Json &at(std::size_t index) const;

    const std::vector<Json> &items() const { return items_; }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /**
     * Serializes deterministically. @p indent > 0 pretty-prints with
     * that many spaces per level; 0 emits a compact single line.
     */
    std::string dump(unsigned indent = 0) const;

    /** Parses @p text; throws FatalError on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, unsigned indent, unsigned depth) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace bowsim::harness

#endif  // BOWSIM_HARNESS_JSON_HPP
