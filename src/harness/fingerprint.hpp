#ifndef BOWSIM_HARNESS_FINGERPRINT_HPP
#define BOWSIM_HARNESS_FINGERPRINT_HPP

#include <cstdint>
#include <string>

#include "src/common/config.hpp"

/**
 * @file
 * Content fingerprints for sweep points (docs/BENCH.md, "Result cache &
 * resume"). A fingerprint is a SHA-256 over a canonical serialization of
 * everything that can influence a point's statistics:
 *
 *  - a schema-version constant (kResultSchemaVersion), bumped whenever
 *    the simulator's timing behavior or the cached-record format
 *    changes, so every previously cached result is invalidated at once;
 *  - every result-relevant GpuConfig field (see hashConfig for the
 *    short, deliberately enumerated list of exclusions);
 *  - the kernel name and workload scale;
 *  - the assembled ISA of every program the benchmark launches —
 *    instruction stream, resource declarations and synchronization
 *    annotations — so editing a kernel's source text changes its key.
 *
 * The guarantee the result cache leans on (docs/PERF.md): two runs with
 * equal fingerprints produce bit-identical KernelStats. The determinism
 * contracts shipped with the sweep harness make that literal — results
 * are byte-identical across --jobs, --sm-threads and idle-skip, which
 * is exactly why those execution knobs are excluded from the hash.
 */

namespace bowsim {
class KernelHarness;
struct Program;
}

namespace bowsim::harness {

struct SweepPoint;

/**
 * Version of the (simulator behavior, cached-record format) pair.
 * Hashed into every fingerprint and written into every cache record:
 * bump it when a change alters simulated results without touching any
 * GpuConfig field (a scheduler fix, a latency model change, a stats
 * field addition), and the entire cache goes cold instead of stale.
 */
constexpr std::uint32_t kResultSchemaVersion = 2;

/**
 * Incremental SHA-256 with tagged, self-delimiting field encoding: every
 * add() mixes in the tag, a type marker and the value's length, so field
 * reordering, concatenation ambiguity ("ab"+"c" vs "a"+"bc") and
 * type confusion all produce distinct digests.
 */
class FingerprintHasher {
  public:
    FingerprintHasher();

    void add(const char *tag, std::uint64_t value);
    void add(const char *tag, std::int64_t value);
    void add(const char *tag, unsigned value);
    void add(const char *tag, bool value);
    /** Hashes the exact bit pattern, so -0.0 and 0.0 differ. */
    void add(const char *tag, double value);
    void add(const char *tag, const std::string &value);

    /** Finalizes and returns the 64-hex-digit digest. Call once. */
    std::string hex();

  private:
    void update(const void *data, std::size_t len);

    std::uint32_t state_[8];
    std::uint8_t buf_[64];
    std::size_t buffered_ = 0;
    std::uint64_t total_ = 0;
    bool finalized_ = false;
};

/**
 * Hashes every result-relevant GpuConfig field into @p h. The only
 * exclusions are the three execution knobs whose non-effect on results
 * is contractual and differentially tested (docs/PERF.md): idleSkip,
 * smThreads and metricsInterval. Everything else — including fields
 * that only gate optional stats collection (collectStallBreakdown,
 * collectSpinCycles), since they change what statsToJson emits — is
 * included. A field-coverage guard in fingerprint.cpp fails the build
 * when GpuConfig grows without this function being revisited.
 */
void hashConfig(FingerprintHasher &h, const GpuConfig &cfg);

/** Hashes one assembled program: name, resource declarations, the full
 *  instruction stream (every field, numerically — not the disassembly,
 *  which elides reconvergence PCs) and the sync annotations. */
void hashProgram(FingerprintHasher &h, const Program &prog);

/**
 * Fingerprint of all programs @p harness launches, as a hex digest.
 * Benches with custom gpuBody points fold this into their declared
 * cache salt so a kernel-source edit invalidates their cached results
 * (see SweepPoint::cacheSalt).
 */
std::string fingerprintPrograms(const KernelHarness &harness);

/** Whether and how a sweep point is content-addressable. */
struct PointKey {
    bool cacheable = false;
    /** 64-hex-digit digest; empty when !cacheable. */
    std::string hash;
    /** Human-readable reason when !cacheable. */
    std::string reason;
};

/**
 * Computes @p point's fingerprint:
 *  - registry points hash (schema version, config, kernel, scale, the
 *    assembled programs of makeBenchmark(kernel, scale));
 *  - gpuBody points with a declared cacheSalt hash (schema version,
 *    config, salt, scale);
 *  - opaque `body` points and gpuBody points without a salt are not
 *    cacheable (the harness counts them as bypassed).
 * Side outputs (tracePath/metricsPath) are the runner's concern: such
 * points get a key here but are bypassed at dispatch, because a cache
 * hit would not regenerate the side files.
 */
PointKey fingerprintPoint(const SweepPoint &point);

}  // namespace bowsim::harness

#endif  // BOWSIM_HARNESS_FINGERPRINT_HPP
