#ifndef BOWSIM_HARNESS_SWEEP_HPP
#define BOWSIM_HARNESS_SWEEP_HPP

#include <functional>
#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/harness/json.hpp"
#include "src/stats/stats.hpp"

namespace bowsim {
class GpuSystem;
using Gpu = GpuSystem;
}

/**
 * @file
 * Parallel simulation sweep harness. A sweep is a list of independent
 * (kernel, GpuConfig) points; SweepRunner executes them on a fixed pool
 * of worker threads. Each point constructs its own Gpu/MemorySystem, so
 * runs are fully isolated and results are bit-identical regardless of
 * the worker count. Results come back in submission order, and a point
 * that throws (e.g. a SimError from the deadlock watchdog) is captured
 * as a per-point error instead of killing the sweep.
 */

namespace bowsim::harness {

class ResultCache;
class ResumeJournal;

/** One independent simulation in a sweep. */
struct SweepPoint {
    /** Unique label for output/JSON rows, e.g. "HT/B500". */
    std::string id;
    /** Registry benchmark name; used when no custom body is set. */
    std::string kernel;
    GpuConfig cfg;
    /** Workload scale passed to makeBenchmark for the default body. */
    double scale = 1.0;
    /**
     * Optional custom run body (e.g. non-registry parameterizations).
     * When empty the point runs makeBenchmark(kernel, scale) on a fresh
     * Gpu(cfg).
     */
    std::function<KernelStats()> body;
    /**
     * Custom workload on a runner-provided Gpu: the runner constructs
     * Gpu(cfg), attaches observers (trace recorder, metrics sampler),
     * and hands it to this body. Prefer this over `body` — it keeps a
     * non-registry workload compatible with --trace/--metrics/--profile.
     * Ignored when `body` is set.
     */
    std::function<KernelStats(Gpu &)> gpuBody;
    /**
     * When set, the point runs with a ring-buffered trace recorder
     * attached and writes a Chrome trace_event JSON document here (see
     * docs/TRACING.md). The file is written even when the point fails,
     * so the trace window leading up to a watchdog abort is preserved.
     * Ignored (with a warning from runSweep) for custom-body points,
     * which construct their own Gpu out of the runner's sight. Each
     * point owns its recorder, so tracing is safe under any --jobs.
     */
    std::string tracePath;
    /**
     * Optional trace category filter ("sync,mem", ...; see
     * trace::parseCategoryFilter and docs/TRACING.md) applied to the
     * recorder when tracePath is set; events outside the selected
     * categories never enter the ring, deepening the retained window.
     * Empty records everything. An unparseable filter fails the point.
     */
    std::string traceFilter;
    /**
     * When set, the point runs with a MetricsSampler attached (interval
     * cfg.metricsInterval, or 1000 when that is 0) and writes the
     * sampled time series here (CSV for a ".csv" suffix, else JSON; see
     * docs/METRICS.md). Written even when the point fails, like
     * tracePath. Ignored (with a warning from runSweep) for `body`
     * points; `gpuBody` points sample fine.
     */
    std::string metricsPath;
    /**
     * When set, the point runs with a sync-contention profiler attached
     * (Gpu::setSyncProf; docs/SYNC.md) and writes its JSON report —
     * top-N hot addresses, latency histograms, fairness, storm
     * intervals — here, validated by `json_check --sync-report`.
     * Written even when the point fails (a livelocked point's report is
     * the interesting one). Deterministic: byte-identical across
     * --sm-threads, --jobs and idle-skip. Ignored (with a warning from
     * runSweep) for `body` points, like metricsPath.
     */
    std::string syncReportPath;
    /**
     * Attach a sync profiler even without a syncReportPath so the
     * --profile report can include its "hot sync objects" section
     * (SweepResult::syncProfileText). Implied by syncReportPath.
     */
    bool syncProfile = false;
    /**
     * Opt-in content key for `gpuBody` points (ignored otherwise). The
     * runner cannot see inside a gpuBody closure, so such a point is
     * only cacheable when the bench declares a salt covering everything
     * the closure's behavior depends on — at minimum
     * fingerprintPrograms() of the harness it runs plus every
     * parameter baked into the closure. An empty salt (the default)
     * keeps the point safely uncacheable. See docs/BENCH.md.
     */
    std::string cacheSalt;
};

/** Outcome of one sweep point. */
struct SweepResult {
    /** How the result was obtained (sweep artifacts do not record
     *  this — cold and warm runs must emit identical points). */
    enum class Source { Simulated, CacheHit, Resumed };

    bool ok = false;
    KernelStats stats;
    /** Exception message when !ok. */
    std::string error;
    Source source = Source::Simulated;
    /** "Hot sync objects" text for the --profile report (points run
     *  with SweepPoint::syncProfile; empty otherwise). */
    std::string syncProfileText;
};

/**
 * Worker count: explicit @p requested if nonzero, else the BOWSIM_JOBS
 * environment variable, else the hardware concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested = 0);

class SweepRunner {
  public:
    /** @p jobs == 0 resolves via resolveJobs(). */
    explicit SweepRunner(unsigned jobs = 0) : jobs_(resolveJobs(jobs)) {}

    unsigned jobs() const { return jobs_; }

    /**
     * Called after each point finishes, with its submission index and
     * result (e.g. the --progress heartbeat). Invoked from worker
     * threads under a run-internal mutex, so the callback itself needs
     * no locking; keep it cheap — it serializes point completion.
     */
    using PointCallback = std::function<void(std::size_t,
                                            const SweepResult &)>;
    void setPointCallback(PointCallback cb) { callback_ = std::move(cb); }

    /**
     * Attaches a persistent result cache (docs/BENCH.md, "Result cache
     * & resume"): before dispatching a point to a worker the runner
     * consults the cache and serves a fingerprint hit without
     * simulating; misses simulate and (rw mode) store their result.
     * Points with side outputs (tracePath/metricsPath) and points the
     * fingerprinter cannot key bypass the cache and are counted as
     * such. @p cache must outlive run(); nullptr detaches.
     */
    void setCache(ResultCache *cache) { cache_ = cache; }

    /**
     * Attaches a resume journal: every completed (ok) point is
     * journaled, and points already journaled under a matching key are
     * served without simulation (--resume). @p journal must outlive
     * run(); nullptr detaches.
     */
    void setJournal(ResumeJournal *journal) { journal_ = journal; }

    /**
     * Runs every point and returns results in submission order. With
     * jobs() == 1 everything runs on the calling thread.
     */
    std::vector<SweepResult> run(const std::vector<SweepPoint> &points) const;

  private:
    SweepResult execPoint(const SweepPoint &point) const;

    unsigned jobs_;
    PointCallback callback_;
    ResultCache *cache_ = nullptr;
    ResumeJournal *journal_ = nullptr;
};

/**
 * Serializes the interesting fields of @p s (deterministic order).
 * Fatal on NaN/Inf in any floating-point field — such a value is a
 * simulator bug, and emitting it would produce invalid JSON that a
 * cache read would then silently treat as a corrupt record.
 */
Json statsToJson(const KernelStats &s);

/**
 * Inverse of statsToJson: rebuilds a KernelStats from its JSON form.
 * Raw counters are read back exactly; derived fields (ipc,
 * simd_efficiency, avg_delay_limit, the ddos rates, the per-cause
 * stall totals) are recomputed from the raws, so
 * statsToJson(statsFromJson(j)) == j byte-for-byte. Throws FatalError
 * on missing or ill-typed fields (the result cache maps that to a
 * miss).
 */
KernelStats statsFromJson(const Json &j);

/** Serializes the sweep-relevant fields of @p cfg. */
Json configToJson(const GpuConfig &cfg);

/**
 * Builds the BENCH_*.json artifact document for one finished sweep:
 * { "bench", "jobs", ["cache"], "points": [ {id, kernel, ok, config,
 * stats|error} ] }. When @p cache is non-null a "cache" block records
 * its mode and hit/miss/stored/bypassed/resumed counters (validated by
 * json_check); the "points" array is identical either way, so cold and
 * warm runs differ only in that block.
 */
Json sweepToJson(const std::string &bench_name, unsigned jobs,
                 const std::vector<SweepPoint> &points,
                 const std::vector<SweepResult> &results,
                 const ResultCache *cache = nullptr);

}  // namespace bowsim::harness

#endif  // BOWSIM_HARNESS_SWEEP_HPP
