#include "src/harness/fingerprint.hpp"

#include <cstring>

#include "src/common/log.hpp"
#include "src/harness/sweep.hpp"
#include "src/isa/program.hpp"
#include "src/kernels/kernel_harness.hpp"
#include "src/kernels/registry.hpp"

namespace bowsim::harness {

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4). Self-contained so the cache has no external
// dependencies; the hash only needs to be stable and collision-resistant
// for content addressing, not cryptographically current.
// ---------------------------------------------------------------------

namespace {

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t
rotr(std::uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

void
sha256Block(std::uint32_t state[8], const std::uint8_t block[64])
{
    std::uint32_t w[64];
    for (unsigned i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t{block[i * 4]} << 24) |
               (std::uint32_t{block[i * 4 + 1]} << 16) |
               (std::uint32_t{block[i * 4 + 2]} << 8) |
               std::uint32_t{block[i * 4 + 3]};
    }
    for (unsigned i = 16; i < 64; ++i) {
        std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                           (w[i - 15] >> 3);
        std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                           (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (unsigned i = 0; i < 64; ++i) {
        std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        std::uint32_t ch = (e & f) ^ (~e & g);
        std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
        std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

}  // namespace

FingerprintHasher::FingerprintHasher()
{
    static constexpr std::uint32_t init[8] = {
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    std::memcpy(state_, init, sizeof state_);
}

void
FingerprintHasher::update(const void *data, std::size_t len)
{
    if (finalized_)
        panic("FingerprintHasher: update after hex()");
    const auto *p = static_cast<const std::uint8_t *>(data);
    total_ += len;
    while (len > 0) {
        std::size_t take = 64 - buffered_;
        if (take > len)
            take = len;
        std::memcpy(buf_ + buffered_, p, take);
        buffered_ += take;
        p += take;
        len -= take;
        if (buffered_ == 64) {
            sha256Block(state_, buf_);
            buffered_ = 0;
        }
    }
}

namespace {

/** Tagged-field framing: tag NUL typechar, then a fixed-width payload. */
enum : char {
    kTypeU64 = 'u',
    kTypeI64 = 'i',
    kTypeBool = 'b',
    kTypeF64 = 'f',
    kTypeStr = 's',
};

}  // namespace

void
FingerprintHasher::add(const char *tag, std::uint64_t value)
{
    update(tag, std::strlen(tag) + 1);
    char t = kTypeU64;
    update(&t, 1);
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(value >> (8 * i));
    update(b, sizeof b);
}

void
FingerprintHasher::add(const char *tag, std::int64_t value)
{
    update(tag, std::strlen(tag) + 1);
    char t = kTypeI64;
    update(&t, 1);
    auto u = static_cast<std::uint64_t>(value);
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(u >> (8 * i));
    update(b, sizeof b);
}

void
FingerprintHasher::add(const char *tag, unsigned value)
{
    add(tag, static_cast<std::uint64_t>(value));
}

void
FingerprintHasher::add(const char *tag, bool value)
{
    update(tag, std::strlen(tag) + 1);
    char t = kTypeBool;
    update(&t, 1);
    std::uint8_t b = value ? 1 : 0;
    update(&b, 1);
}

void
FingerprintHasher::add(const char *tag, double value)
{
    update(tag, std::strlen(tag) + 1);
    char t = kTypeF64;
    update(&t, 1);
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(bits >> (8 * i));
    update(b, sizeof b);
}

void
FingerprintHasher::add(const char *tag, const std::string &value)
{
    update(tag, std::strlen(tag) + 1);
    char t = kTypeStr;
    update(&t, 1);
    // Length prefix keeps adjacent strings self-delimiting.
    add("len", static_cast<std::uint64_t>(value.size()));
    update(value.data(), value.size());
}

std::string
FingerprintHasher::hex()
{
    if (finalized_)
        panic("FingerprintHasher: hex() called twice");
    const std::uint64_t bits = total_ * 8;
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    std::uint8_t zero = 0;
    while (buffered_ != 56)
        update(&zero, 1);
    std::uint8_t len[8];
    for (int i = 0; i < 8; ++i)
        len[i] = static_cast<std::uint8_t>(bits >> (8 * (7 - i)));
    update(len, sizeof len);
    finalized_ = true;

    static const char *digits = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (std::uint32_t word : state_) {
        for (int shift = 28; shift >= 0; shift -= 4)
            out += digits[(word >> shift) & 0xf];
    }
    return out;
}

// ---------------------------------------------------------------------
// Canonical GpuConfig serialization.
// ---------------------------------------------------------------------

/*
 * Field-coverage guard. If this assertion fires, GpuConfig (or one of
 * its nested structs) gained, lost or resized a field. A new field that
 * can influence simulated results MUST be added to hashConfig() below
 * AND to configToJson() (src/harness/sweep.cpp) before updating the
 * expected size — otherwise two configurations that differ in the new
 * field would hash to the same cache key and the result cache would
 * serve STALE statistics for one of them. That failure mode is silent
 * at run time (the cached record looks perfectly valid), which is why
 * the guard is structural: growing the struct breaks the build until a
 * human re-audits the canonical serializations. Execution knobs proven
 * result-neutral (see hashConfig) may be excluded from the hash, but
 * the exclusion must be explicit and the size below still updated.
 */
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(GpuConfig) == 368 && sizeof(BowsConfig) == 72 &&
                  sizeof(DdosConfig) == 40 && sizeof(CacheConfig) == 24,
              "GpuConfig layout changed: update hashConfig() and "
              "configToJson() for any new result-relevant field, then "
              "update these expected sizes (see the stale-cache hazard "
              "comment above)");
#endif

namespace {

void
hashCache(FingerprintHasher &h, const char *tag, const CacheConfig &c)
{
    h.add(tag, std::string("cache"));
    h.add("size_bytes", c.sizeBytes);
    h.add("ways", c.ways);
    h.add("line_bytes", c.lineBytes);
    h.add("mshrs", c.mshrs);
}

}  // namespace

void
hashConfig(FingerprintHasher &h, const GpuConfig &cfg)
{
    h.add("schema", static_cast<std::uint64_t>(kResultSchemaVersion));
    h.add("name", cfg.name);
    h.add("num_cores", cfg.numCores);
    h.add("max_threads_per_core", cfg.maxThreadsPerCore);
    h.add("max_ctas_per_core", cfg.maxCtasPerCore);
    h.add("num_regs_per_core", cfg.numRegsPerCore);
    h.add("shared_mem_per_core", cfg.sharedMemPerCore);
    h.add("num_schedulers_per_core", cfg.numSchedulersPerCore);
    h.add("scheduler", std::string(toString(cfg.scheduler)));
    h.add("gto_rotate_period", cfg.gtoRotatePeriod);
    h.add("two_level_group_size", cfg.twoLevelGroupSize);

    h.add("bows_enabled", cfg.bows.enabled);
    h.add("bows_deprioritize", cfg.bows.deprioritize);
    h.add("bows_delay_limit", cfg.bows.delayLimit);
    h.add("bows_adaptive", cfg.bows.adaptive);
    h.add("bows_window", cfg.bows.window);
    h.add("bows_delay_step", cfg.bows.delayStep);
    h.add("bows_min_limit", cfg.bows.minLimit);
    h.add("bows_max_limit", cfg.bows.maxLimit);
    h.add("bows_frac1", cfg.bows.frac1);
    h.add("bows_frac2", cfg.bows.frac2);

    h.add("ddos_enabled", cfg.ddos.enabled);
    h.add("ddos_hash", std::string(toString(cfg.ddos.hash)));
    h.add("ddos_hash_bits", cfg.ddos.hashBits);
    h.add("ddos_history_length", cfg.ddos.historyLength);
    h.add("ddos_confidence_threshold", cfg.ddos.confidenceThreshold);
    h.add("ddos_sib_table_entries", cfg.ddos.sibTableEntries);
    h.add("ddos_time_share", cfg.ddos.timeShare);
    h.add("ddos_time_share_epoch", cfg.ddos.timeShareEpoch);

    h.add("spin_detect", std::string(toString(cfg.spinDetect)));

    h.add("alu_latency", cfg.aluLatency);
    h.add("mul_div_latency", cfg.mulDivLatency);
    h.add("shared_mem_latency", cfg.sharedMemLatency);

    hashCache(h, "l1d", cfg.l1d);
    hashCache(h, "l2", cfg.l2);
    h.add("num_l2_banks", cfg.numL2Banks);
    h.add("l1_hit_latency", cfg.l1HitLatency);
    h.add("l2_hit_latency", cfg.l2HitLatency);
    h.add("icnt_latency", cfg.icntLatency);
    h.add("dram_latency", cfg.dramLatency);
    h.add("dram_service_period", cfg.dramServicePeriod);
    h.add("atomic_service_period", cfg.atomicServicePeriod);

    h.add("core_clock_mhz", cfg.coreClockMhz);
    h.add("watchdog_cycles", cfg.watchdogCycles);

    // Device/system split: the device count changes CTA placement and
    // address homing; the link parameters change remote-access timing.
    // All four are hashed even though a single-device run never consults
    // the link — a numDevices=1 record must not be served to a
    // numDevices=2 request and vice versa.
    h.add("num_devices", cfg.numDevices);
    h.add("link_latency", cfg.linkLatency);
    h.add("link_service_period", cfg.linkServicePeriod);
    h.add("switch_latency", cfg.switchLatency);

    // Stats-collection gates change what statsToJson emits (stall
    // tables, spin-cycle gauge), so they are result-relevant even
    // though they never alter timing.
    h.add("collect_stall_breakdown", cfg.collectStallBreakdown);
    h.add("collect_spin_cycles", cfg.collectSpinCycles);

    // Deliberately excluded — execution knobs whose non-effect on
    // results is contractual and locked in by the differential suites
    // (docs/PERF.md): idleSkip (SkipEquivalence), smThreads
    // (ThreadEquivalence), metricsInterval (inert without an attached
    // sampler; sampler points bypass the cache anyway). Excluding them
    // lets a cache warmed at --sm-threads=1 serve a --sm-threads=8 run.
    // syncTopN and syncStormWindow (docs/SYNC.md) join that list: they
    // only shape the sync-report/profile *rendering* of an attached
    // SyncProfileRegistry, never KernelStats or timing, and points with
    // a --sync-report side output bypass the cache exactly like traced
    // and sampled points do.

    h.add("exec_mode", std::string(toString(cfg.execMode)));
    h.add("sample_window", cfg.sampleWindow);
    h.add("sample_period", cfg.samplePeriod);
}

// ---------------------------------------------------------------------
// Program serialization.
// ---------------------------------------------------------------------

namespace {

void
hashOperand(FingerprintHasher &h, const char *tag, const Operand &op)
{
    h.add(tag, static_cast<std::uint64_t>(op.kind));
    h.add("idx", static_cast<std::int64_t>(op.index));
    h.add("imm", static_cast<std::int64_t>(op.imm));
}

void
hashPcSet(FingerprintHasher &h, const char *tag, const std::set<Pc> &pcs)
{
    h.add(tag, static_cast<std::uint64_t>(pcs.size()));
    for (Pc pc : pcs)
        h.add("pc", static_cast<std::uint64_t>(pc));
}

}  // namespace

void
hashProgram(FingerprintHasher &h, const Program &prog)
{
    h.add("program", prog.name);
    h.add("num_regs", prog.numRegs);
    h.add("num_preds", prog.numPreds);
    h.add("shared_bytes", prog.sharedBytes);
    h.add("num_params", prog.numParams);
    h.add("length", static_cast<std::uint64_t>(prog.code.size()));
    for (const Instruction &inst : prog.code) {
        // Every semantic field, numerically: the disassembly elides
        // reconvergence PCs and hazard metadata, and a lossy rendering
        // is exactly the kind of hole a content hash must not have.
        // (line and the precomputed hazard masks are diagnostics /
        // derived state and are skipped.)
        h.add("op", static_cast<std::uint64_t>(inst.op));
        h.add("cmp", static_cast<std::uint64_t>(inst.cmp));
        h.add("space", static_cast<std::uint64_t>(inst.space));
        h.add("atom", static_cast<std::uint64_t>(inst.atom));
        h.add("scope", static_cast<std::uint64_t>(inst.scope));
        h.add("size", inst.size);
        h.add("guard", static_cast<std::int64_t>(inst.guard));
        h.add("guard_neg", inst.guardNegate);
        h.add("uniform", inst.uniform);
        h.add("volatile", inst.isVolatile);
        hashOperand(h, "dst", inst.dst);
        hashOperand(h, "src0", inst.src[0]);
        hashOperand(h, "src1", inst.src[1]);
        hashOperand(h, "src2", inst.src[2]);
        h.add("mem_offset", static_cast<std::int64_t>(inst.memOffset));
        h.add("target", static_cast<std::uint64_t>(inst.target));
        h.add("reconv", static_cast<std::uint64_t>(inst.reconvergence));
    }
    hashPcSet(h, "spin_branches", prog.sync.spinBranches);
    hashPcSet(h, "lock_acquires", prog.sync.lockAcquires);
    hashPcSet(h, "wait_checks", prog.sync.waitChecks);
    hashPcSet(h, "sync_region", prog.sync.syncRegion);
}

std::string
fingerprintPrograms(const KernelHarness &harness)
{
    FingerprintHasher h;
    const auto progs = harness.programs();
    h.add("num_programs", static_cast<std::uint64_t>(progs.size()));
    for (const Program *p : progs)
        hashProgram(h, *p);
    return h.hex();
}

// ---------------------------------------------------------------------
// Point fingerprints.
// ---------------------------------------------------------------------

PointKey
fingerprintPoint(const SweepPoint &point)
{
    PointKey key;
    if (point.body) {
        key.reason = "opaque custom body";
        return key;
    }
    FingerprintHasher h;
    hashConfig(h, point.cfg);
    h.add("scale", point.scale);
    if (point.gpuBody) {
        if (point.cacheSalt.empty()) {
            key.reason = "gpuBody without a declared cache salt";
            return key;
        }
        h.add("salt", point.cacheSalt);
    } else {
        h.add("kernel", point.kernel);
        try {
            // Constructors assemble their programs (setup() only touches
            // device memory), so the ISA content is available without a
            // Gpu. An unresolvable kernel name is not cacheable — the
            // run itself will fail and failures are never cached.
            auto harness = makeBenchmark(point.kernel, point.scale);
            const auto progs = harness->programs();
            h.add("num_programs",
                  static_cast<std::uint64_t>(progs.size()));
            for (const Program *p : progs)
                hashProgram(h, *p);
        } catch (const FatalError &e) {
            key.reason = std::string("kernel not fingerprintable: ") +
                         e.what();
            return key;
        }
    }
    key.cacheable = true;
    key.hash = h.hex();
    return key;
}

}  // namespace bowsim::harness
