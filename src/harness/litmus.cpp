#include "src/harness/litmus.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/common/log.hpp"
#include "src/harness/sweep.hpp"
#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"
#include "src/sim/sm_core.hpp"
#include "src/sync/sync_kernels.hpp"
#include "src/syncprof/syncprof.hpp"

namespace bowsim::harness {

const char *
toString(SyncOutcome o)
{
    switch (o) {
      case SyncOutcome::Completed: return "completed";
      case SyncOutcome::Livelocked: return "livelocked";
      case SyncOutcome::Deadlocked: return "deadlocked";
      case SyncOutcome::WatchdogKilled: return "watchdog_killed";
    }
    return "?";
}

bool
parseSyncOutcome(const std::string &text, SyncOutcome *out)
{
    static const SyncOutcome all[] = {
        SyncOutcome::Completed,
        SyncOutcome::Livelocked,
        SyncOutcome::Deadlocked,
        SyncOutcome::WatchdogKilled,
    };
    for (SyncOutcome o : all) {
        if (text == toString(o)) {
            *out = o;
            return true;
        }
    }
    return false;
}

const char *
toString(OccupancyLevel level)
{
    switch (level) {
      case OccupancyLevel::Under: return "under";
      case OccupancyLevel::Exact: return "exact";
      case OccupancyLevel::Over: return "over";
    }
    return "?";
}

bool
parseOccupancy(const std::string &text, OccupancyLevel *out)
{
    for (OccupancyLevel level : allOccupancyLevels()) {
        if (text == toString(level)) {
            *out = level;
            return true;
        }
    }
    return false;
}

const std::vector<OccupancyLevel> &
allOccupancyLevels()
{
    static const std::vector<OccupancyLevel> levels = {
        OccupancyLevel::Under,
        OccupancyLevel::Exact,
        OccupancyLevel::Over,
    };
    return levels;
}

GpuConfig
defaultLitmusConfig()
{
    GpuConfig cfg = makeGtx480Config();
    // One SM: occupancy levels are defined against one core's resident
    // capacity, and every scheduling pathology under study is
    // intra-core.
    cfg.numCores = 1;
    // A litmus-sized budget: completing cells finish inside it (the
    // slowest default cell needs ~2.8M cycles), pathological cells do
    // not drag a 400M-cycle default behind them.
    cfg.watchdogCycles = 3'000'000;
    // Scarce atomic bandwidth (Table II's knob, turned up): failed
    // acquires then consume enough L2 atomic slots to starve the
    // holder's release, which is what lets the CAS-storm livelock that
    // BOWS resolves show up at this kernel scale. At the GTX480 default
    // of 4 the spin CAS rate never saturates a bank and every lock cell
    // completes.
    cfg.atomicServicePeriod = 512;
    // Pure GTO: the age rotation exists precisely to mask the
    // starvation livelock the litmus matrix wants to observe.
    cfg.gtoRotatePeriod = 0;
    cfg.spinDetect = SpinDetect::Ddos;
    cfg.ddos.enabled = true;
    cfg.bows.enabled = false;
    // Spin-cycle attribution feeds the per-cell spin share.
    cfg.collectSpinCycles = true;
    return cfg;
}

LitmusOptions
defaultLitmusOptions()
{
    LitmusOptions opts;
    opts.base = defaultLitmusConfig();
    opts.primitives = sync::allPrimitives();
    opts.schedulers = {SchedulerKind::LRR, SchedulerKind::GTO,
                       SchedulerKind::CAWA, SchedulerKind::TwoLevel};
    opts.bowsModes = {false, true};
    opts.occupancies = allOccupancyLevels();
    opts.devices = {1, 2};
    return opts;
}

namespace {

unsigned
ctasForOccupancy(OccupancyLevel level, unsigned capacity)
{
    switch (level) {
      case OccupancyLevel::Under: return std::max(1u, capacity / 2);
      case OccupancyLevel::Exact: return std::max(1u, capacity);
      case OccupancyLevel::Over: return std::max(2u, capacity * 2);
    }
    fatal("ctasForOccupancy: bad occupancy level");
}

}  // namespace

std::vector<LitmusCell>
buildLitmusCells(const LitmusOptions &opts)
{
    std::vector<LitmusCell> cells;
    for (sync::Primitive p : opts.primitives) {
        // Resident capacity depends only on the program and CTA size,
        // so probe once per primitive.
        sync::SyncGeometry probe;
        probe.threadsPerCta = opts.threadsPerCta;
        probe.iters = opts.iters;
        probe.delayFactor = opts.delayFactor;
        const Program prog = assemble(sync::primitiveSource(p, probe));
        const unsigned capacity =
            maxResidentCtasFor(opts.base, prog, opts.threadsPerCta) *
            std::max(1u, opts.base.numCores);
        for (SchedulerKind sched : opts.schedulers) {
            for (bool bows : opts.bowsModes) {
                for (OccupancyLevel level : opts.occupancies) {
                    for (unsigned dev : opts.devices) {
                        if (dev == 0)
                            fatal("buildLitmusCells: zero devices");
                        LitmusCell cell;
                        cell.primitive = p;
                        cell.scheduler = sched;
                        cell.bows = bows;
                        cell.occupancy = level;
                        cell.numDevices = dev;
                        cell.geometry = probe;
                        // CTAs chunk evenly across devices, so the
                        // occupancy levels scale against the
                        // system-wide resident capacity.
                        cell.geometry.ctas =
                            ctasForOccupancy(level, capacity * dev);
                        cell.cfg = opts.base;
                        cell.cfg.scheduler = sched;
                        cell.cfg.bows.enabled = bows;
                        cell.cfg.numDevices = dev;
                        cell.id = std::string(sync::toString(p)) + "/" +
                                  bowsim::toString(sched) + "/" +
                                  (bows ? "bows" : "base") + "/" +
                                  toString(level) + "/d" +
                                  std::to_string(dev);
                        cells.push_back(std::move(cell));
                    }
                }
            }
        }
    }
    return cells;
}

SyncOutcome
classifySyncAbort(const LaunchAbort &abort, const GpuConfig &cfg,
                  const std::string &message)
{
    // Functional mode's zero-progress check is a direct deadlock
    // witness: a full rotation over every live warp retired nothing.
    if (message.find("made no progress") != std::string::npos)
        return SyncOutcome::Deadlocked;
    // Cycle mode: blocked (nothing issuing for a long tail) vs
    // actively spinning.
    if (abort.atCycle > 0) {
        const Cycle idle = abort.atCycle > abort.lastIssueCycle
                               ? abort.atCycle - abort.lastIssueCycle
                               : 0;
        const auto threshold = static_cast<Cycle>(
            static_cast<double>(cfg.watchdogCycles) *
            kDeadlockIdleFraction);
        if (idle >= threshold)
            return SyncOutcome::Deadlocked;
    }
    const KernelStats &s = abort.stats;
    if (s.warpInstructions > 0 &&
        static_cast<double>(s.sibInstructions) / s.warpInstructions >=
            kLivelockSibFraction)
        return SyncOutcome::Livelocked;
    return SyncOutcome::WatchdogKilled;
}

LitmusCellResult
runLitmusCell(const LitmusCell &cell, Gpu &gpu)
{
    LitmusCellResult r;
    // Contention evidence: cycle-mode cells run with a sync profiler
    // attached so the artifact can attribute the outcome to a concrete
    // address. An externally attached registry (--sync-report) is
    // reused; otherwise a cell-local one is attached for the duration.
    std::unique_ptr<syncprof::SyncProfileRegistry> local;
    syncprof::SyncProfileRegistry *reg = gpu.syncProf();
    if (reg == nullptr && gpu.config().execMode == ExecMode::Cycle) {
        local = std::make_unique<syncprof::SyncProfileRegistry>(
            cell.cfg.syncTopN, cell.cfg.syncStormWindow);
        reg = local.get();
        gpu.setSyncProf(reg);
    }
    auto harness = sync::makeSyncKernel(cell.primitive, cell.geometry);
    try {
        r.stats = harness->run(gpu);
        r.outcome = SyncOutcome::Completed;
    } catch (const SimError &e) {
        const std::string message = e.what();
        const LaunchAbort &abort = gpu.lastAbort();
        const bool is_hang =
            message.find("watchdog") != std::string::npos ||
            message.find("made no progress") != std::string::npos;
        // Anything else (out-of-bounds access, kernel does not fit) is
        // a harness bug, not a synchronization pathology.
        if (!is_hang || !abort.valid)
            throw;
        r.detail = message;
        r.stats = abort.stats;
        r.stats.kernel = harness->name();
        r.outcome = classifySyncAbort(abort, gpu.config(), message);
    }
    if (reg != nullptr) {
        const auto hot = reg->hotAddresses(1);
        if (!hot.empty()) {
            const syncprof::AddrSummary &a = hot.front();
            r.hasEvidence = true;
            r.evidenceAddr = a.addr;
            r.evidenceCasAttempts = a.casAttempts;
            r.evidenceCasFailures = a.casFailures;
            r.evidenceFailedShare = a.failedShare();
            r.evidencePeakWaiters = a.peakWaiters;
            r.evidenceStorms = a.stormCount;
        }
    }
    if (local)
        gpu.setSyncProf(nullptr);
    return r;
}

namespace {

/**
 * Semantic configuration subset for one cell. Execution knobs that
 * cannot affect results (sm_threads, idle_skip, metrics_interval) are
 * deliberately absent so artifacts stay byte-identical across them.
 */
Json
litmusConfigToJson(const GpuConfig &cfg)
{
    Json j = Json::object();
    j.set("name", cfg.name);
    j.set("cores", cfg.numCores);
    j.set("devices", cfg.numDevices);
    if (cfg.numDevices != 1) {
        j.set("link_latency", cfg.linkLatency);
        j.set("link_service_period", cfg.linkServicePeriod);
        j.set("switch_latency", cfg.switchLatency);
    }
    j.set("exec_mode", toString(cfg.execMode));
    j.set("watchdog_cycles", cfg.watchdogCycles);
    j.set("scheduler", toString(cfg.scheduler));
    j.set("gto_rotate_period", cfg.gtoRotatePeriod);
    j.set("spin_detect", toString(cfg.spinDetect));
    j.set("atomic_service_period", cfg.atomicServicePeriod);
    j.set("bows_enabled", cfg.bows.enabled);
    j.set("bows_deprioritize", cfg.bows.deprioritize);
    j.set("bows_adaptive", cfg.bows.adaptive);
    j.set("bows_delay_limit", cfg.bows.delayLimit);
    j.set("ddos_hash", toString(cfg.ddos.hash));
    j.set("ddos_hash_bits", cfg.ddos.hashBits);
    j.set("ddos_history_length", cfg.ddos.historyLength);
    j.set("ddos_confidence_threshold", cfg.ddos.confidenceThreshold);
    return j;
}

}  // namespace

Json
litmusToJson(const std::string &bench_name, const LitmusOptions &opts,
             const std::vector<LitmusCell> &cells,
             const std::vector<LitmusCellResult> &results)
{
    if (cells.size() != results.size())
        panic("litmusToJson: cells/results size mismatch");
    Json doc = Json::object();
    doc.set("bench", bench_name);
    doc.set("exec_mode", toString(opts.base.execMode));
    doc.set("watchdog_cycles", opts.base.watchdogCycles);
    doc.set("threads_per_cta", opts.threadsPerCta);
    doc.set("iters", opts.iters);
    Json prims = Json::array();
    for (sync::Primitive p : opts.primitives)
        prims.push(Json(std::string(sync::toString(p))));
    doc.set("primitives", std::move(prims));
    Json scheds = Json::array();
    for (SchedulerKind s : opts.schedulers)
        scheds.push(Json(std::string(toString(s))));
    doc.set("schedulers", std::move(scheds));
    Json bows = Json::array();
    for (bool b : opts.bowsModes)
        bows.push(Json(b));
    doc.set("bows", std::move(bows));
    Json occs = Json::array();
    for (OccupancyLevel level : opts.occupancies)
        occs.push(Json(std::string(toString(level))));
    doc.set("occupancies", std::move(occs));
    Json devs = Json::array();
    for (unsigned dev : opts.devices)
        devs.push(Json(static_cast<std::int64_t>(dev)));
    doc.set("devices", std::move(devs));
    Json arr = Json::array();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const LitmusCell &cell = cells[i];
        const LitmusCellResult &r = results[i];
        Json c = Json::object();
        c.set("id", cell.id);
        c.set("primitive", std::string(sync::toString(cell.primitive)));
        c.set("scheduler", std::string(toString(cell.scheduler)));
        c.set("bows", cell.bows);
        c.set("occupancy", std::string(toString(cell.occupancy)));
        c.set("devices", cell.numDevices);
        c.set("ctas", cell.geometry.ctas);
        c.set("warps_per_cta", cell.geometry.warpsPerCta());
        c.set("iters", cell.geometry.iters);
        c.set("outcome", std::string(toString(r.outcome)));
        if (!r.detail.empty())
            c.set("detail", r.detail);
        if (r.hasEvidence) {
            // Deterministic across --sm-threads/--jobs/idle-skip like
            // the rest of the document (the profiler hooks the
            // committed instruction stream).
            Json ev = Json::object();
            std::ostringstream hex;
            hex << "0x" << std::hex << r.evidenceAddr;
            ev.set("addr", hex.str());
            ev.set("cas_attempts", r.evidenceCasAttempts);
            ev.set("cas_failures", r.evidenceCasFailures);
            ev.set("failed_share", r.evidenceFailedShare);
            ev.set("peak_waiters", r.evidencePeakWaiters);
            ev.set("storms", r.evidenceStorms);
            c.set("evidence", std::move(ev));
        }
        c.set("config", litmusConfigToJson(cell.cfg));
        c.set("stats", statsToJson(r.stats));
        arr.push(std::move(c));
    }
    doc.set("cells", std::move(arr));
    return doc;
}

}  // namespace bowsim::harness
