#ifndef BOWSIM_HARNESS_RESULT_CACHE_HPP
#define BOWSIM_HARNESS_RESULT_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/stats/stats.hpp"

/**
 * @file
 * Persistent, content-addressed sweep result cache with a resume
 * journal (docs/BENCH.md, "Result cache & resume").
 *
 * Layout of a cache directory:
 *
 *   <dir>/objects/<fingerprint>.json   one record per unique point
 *   <dir>/journal/<bench>.jsonl        per-sweep resume journal
 *
 * A record is { "cache_version", "fingerprint", "id", "stats" }; the
 * version and fingerprint are re-validated on read, so a record written
 * by an incompatible build (or a hash collision on a truncated name)
 * reads as a miss, never as stale data. Records are written to a
 * temporary file in the same directory and atomically renamed into
 * place, so a crashed or concurrent writer can never leave a torn
 * record; any unparsable record is treated as a miss and, in rw mode,
 * overwritten by the recomputed result.
 *
 * The journal is one JSON object per line, appended (and flushed) as
 * each point completes, so an interrupted sweep can be resumed with
 * --resume: points whose (id, fingerprint) match a journal entry are
 * served without re-simulation, including points that are not
 * content-addressable enough for the shared object store (those match
 * on a weaker config-only key). A truncated final line — the signature
 * of a crash mid-append — is skipped on load.
 */

namespace bowsim::harness {

/** --cache=off|ro|rw (BOWSIM_CACHE). */
enum class CacheMode {
    Off,        ///< never consult or write the cache
    ReadOnly,   ///< serve hits; never create or modify files
    ReadWrite,  ///< serve hits and store misses
};

const char *toString(CacheMode mode);

/** Parses "off" / "ro" / "rw"; false on anything else. */
bool parseCacheMode(const std::string &text, CacheMode *out);

/**
 * Point-disposition counters, exactly one increment per sweep point:
 * hits + misses + bypassed + resumed == points. Recorded in the sweep
 * JSON artifact's "cache" block and shown by the --progress heartbeat.
 */
struct CacheCounters {
    std::uint64_t hits = 0;      ///< served from the object store
    std::uint64_t misses = 0;    ///< fingerprinted, absent, simulated
    std::uint64_t stored = 0;    ///< records written (subset of misses)
    std::uint64_t bypassed = 0;  ///< not cacheable / side outputs
    std::uint64_t resumed = 0;   ///< served from the resume journal
};

class ResultCache {
  public:
    /**
     * Opens (rw: creates) the cache at @p dir. Fatal when rw directories
     * cannot be created; a missing directory in ro mode simply misses.
     */
    ResultCache(std::string dir, CacheMode mode);

    CacheMode mode() const { return mode_; }
    const std::string &dir() const { return dir_; }

    /**
     * Looks @p fingerprint up in the object store. Returns true and
     * fills @p out on a valid hit; a missing, torn, version-skewed or
     * otherwise unparsable record is a miss. Thread-safe (reads only).
     */
    bool lookup(const std::string &fingerprint, KernelStats *out) const;

    /**
     * Stores @p stats under @p fingerprint (rw mode only; no-op in ro).
     * @p id is recorded for humans inspecting the cache. Temp-file +
     * atomic-rename, so concurrent writers of the same key are safe —
     * last rename wins with either writer's (bit-identical) content.
     */
    void store(const std::string &fingerprint, const std::string &id,
               const KernelStats &stats);

    /** Snapshot of the counters accumulated via the count*() calls. */
    CacheCounters counters() const;

    void countHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
    void countMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
    void countStored() { stored_.fetch_add(1, std::memory_order_relaxed); }
    void countBypassed()
    {
        bypassed_.fetch_add(1, std::memory_order_relaxed);
    }
    void countResumed()
    {
        resumed_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Path of the record for @p fingerprint (exists or not). */
    std::string recordPath(const std::string &fingerprint) const;

    /** Path of the resume journal for sweep @p bench_name. */
    std::string journalPath(const std::string &bench_name) const;

  private:
    std::string dir_;
    CacheMode mode_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stored_{0};
    std::atomic<std::uint64_t> bypassed_{0};
    std::atomic<std::uint64_t> resumed_{0};
};

/**
 * Append-only completion journal for one sweep. Construction loads any
 * existing entries when @p resume is set (tolerating a truncated final
 * line) and otherwise starts the journal afresh. record() appends and
 * flushes one line per completed point; lookup() serves a previously
 * completed point when both its id and its key match. Failed points are
 * never journaled — a resumed sweep re-simulates them.
 */
class ResumeJournal {
  public:
    /**
     * @p writable: append new completions (rw cache); a read-only
     * journal only serves lookups. @p resume: load existing entries
     * (otherwise any previous journal for this sweep is discarded).
     */
    ResumeJournal(std::string path, bool resume, bool writable);

    /** Entries loaded from a previous run (0 unless resuming). */
    std::size_t loadedEntries() const { return entries_.size(); }

    /** True and fills @p out when (id, key) completed in a prior run. */
    bool lookup(const std::string &id, const std::string &key,
                KernelStats *out) const;

    /** Journals one completed (ok) point. Thread-safe. */
    void record(const std::string &id, const std::string &key,
                const KernelStats &stats);

  private:
    struct Entry {
        std::string key;
        KernelStats stats;
    };

    std::string path_;
    bool writable_;
    std::map<std::string, Entry> entries_;
    std::mutex mu_;
};

}  // namespace bowsim::harness

#endif  // BOWSIM_HARNESS_RESULT_CACHE_HPP
