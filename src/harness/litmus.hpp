#ifndef BOWSIM_HARNESS_LITMUS_HPP
#define BOWSIM_HARNESS_LITMUS_HPP

#include <string>
#include <vector>

#include "src/common/config.hpp"
#include "src/harness/json.hpp"
#include "src/stats/stats.hpp"
#include "src/sync/primitives.hpp"

namespace bowsim {
class GpuSystem;
using Gpu = GpuSystem;
struct LaunchAbort;
}

/**
 * @file
 * Synchronization litmus harness (docs/SYNC.md). A litmus matrix runs
 * every generated primitive (src/sync) under every combination of
 * baseline scheduler, BOWS on/off, occupancy level, and device count
 * (single-GPU and 2-GPU with the modeled inter-device link), with a
 * short
 * watchdog and DDOS spin detection, and classifies each cell's outcome:
 *
 *  - completed: the kernel finished and validated against src/cpuref.
 *  - livelocked: the watchdog fired while warps were still actively
 *    issuing a spin-dominated instruction stream (forward progress
 *    starved, not blocked) — e.g. pure GTO starving a lock holder, or
 *    an over-subscribed inter-CTA barrier spinning on CTAs that can
 *    never become resident.
 *  - deadlocked: no warp had issued for a long tail of the run
 *    (everything blocked, e.g. divergent bar.sync), or functional
 *    mode's zero-progress check fired.
 *  - watchdog_killed: the watchdog fired but the stream was still
 *    making non-spin progress — the budget was simply too small.
 *
 * Classification consumes Gpu::lastAbort(), which is deterministic
 * across --sm-threads and idle-skip, so a litmus artifact is
 * byte-identical across those execution knobs (they are deliberately
 * not recorded in the document).
 */

namespace bowsim::harness {

/** Classified result of one litmus cell. */
enum class SyncOutcome {
    Completed,
    Livelocked,
    Deadlocked,
    WatchdogKilled,
};

/** "completed", "livelocked", "deadlocked", "watchdog_killed". */
const char *toString(SyncOutcome o);

/** Parses the toString() identifiers; false on anything else. */
bool parseSyncOutcome(const std::string &text, SyncOutcome *out);

/** Grid size relative to the configuration's resident-CTA capacity. */
enum class OccupancyLevel {
    Under,  ///< half the resident capacity (at least one CTA)
    Exact,  ///< exactly the resident capacity
    Over,   ///< twice the resident capacity
};

/** "under", "exact", "over". */
const char *toString(OccupancyLevel level);

/** Parses the toString() identifiers; false on anything else. */
bool parseOccupancy(const std::string &text, OccupancyLevel *out);

/** All occupancy levels, in a fixed canonical order. */
const std::vector<OccupancyLevel> &allOccupancyLevels();

/** Spin-dominance threshold for the livelock classification: a cell
 *  whose aborted run spent at least this fraction of its warp
 *  instructions on (predicted or ground-truth) spin-inducing branches
 *  counts as livelocked rather than merely out of budget. */
inline constexpr double kLivelockSibFraction = 0.05;

/** Issue-recency threshold for the deadlock classification: an abort
 *  with no instruction issued in the trailing quarter of the watchdog
 *  budget counts as deadlocked (blocked), not livelocked (spinning). */
inline constexpr double kDeadlockIdleFraction = 0.25;

/** One cell of the litmus matrix. */
struct LitmusCell {
    /** "tas/GTO/bows/over/d2" —
     *  primitive/scheduler/bows/occupancy/devices. */
    std::string id;
    sync::Primitive primitive;
    SchedulerKind scheduler;
    bool bows = false;
    OccupancyLevel occupancy;
    /** Devices the cell runs across (cfg.numDevices). */
    unsigned numDevices = 1;
    sync::SyncGeometry geometry;
    /** Complete configuration the cell runs under. */
    GpuConfig cfg;
};

/** Outcome of one executed cell. */
struct LitmusCellResult {
    SyncOutcome outcome = SyncOutcome::WatchdogKilled;
    /** Final stats (completed) or the abort snapshot (everything else). */
    KernelStats stats;
    /** The SimError message for non-completed outcomes; empty else. */
    std::string detail;
    /**
     * Machine-checked contention evidence (docs/SYNC.md): the hottest
     * sync address the cell touched, from the sync profiler attached by
     * runLitmusCell on cycle-mode cells. json_check --litmus requires
     * it on every livelocked cycle-mode cell, so "livelocked" is never
     * a bare classification — the artifact names the address and the
     * failed-CAS share behind it. False when the profiler saw no
     * atomics (functional/sampled modes, or an atomics-free cell).
     */
    bool hasEvidence = false;
    Addr evidenceAddr = 0;
    std::uint64_t evidenceCasAttempts = 0;
    std::uint64_t evidenceCasFailures = 0;
    double evidenceFailedShare = 0.0;
    unsigned evidencePeakWaiters = 0;
    std::uint64_t evidenceStorms = 0;
};

/** The matrix to run: axis lists plus the shared base configuration. */
struct LitmusOptions {
    /** Base configuration every cell derives from
     *  (defaultLitmusConfig()); scheduler and bows.enabled are
     *  overwritten per cell. */
    GpuConfig base;
    std::vector<sync::Primitive> primitives;
    std::vector<SchedulerKind> schedulers;
    /** BOWS off/on; "base" and "bows" in cell ids. */
    std::vector<bool> bowsModes;
    std::vector<OccupancyLevel> occupancies;
    /** Device counts (GpuConfig::numDevices); "d1", "d2" in cell ids.
     *  Occupancy geometry scales with the device count so "exact"
     *  always means the whole grid is co-resident system-wide. */
    std::vector<unsigned> devices = {1};
    unsigned threadsPerCta = 64;
    /** Lock rounds per warp / barrier rounds. */
    unsigned iters = 16;
    /** BackoffLock clock()-delay base (SyncGeometry::delayFactor). */
    unsigned delayFactor = 64;
};

/**
 * Litmus base configuration: one SM, a litmus-sized watchdog, DDOS
 * spin detection, spin-cycle attribution on, and — crucially — GTO age
 * rotation disabled, so the pure-GTO starvation the rotation exists to
 * paper over is observable as a livelock.
 */
GpuConfig defaultLitmusConfig();

/** Full default matrix: all primitives x {LRR, GTO, CAWA, TwoLevel} x
 *  {base, bows} x {under, exact, over} x {1, 2} devices. */
LitmusOptions defaultLitmusOptions();

/**
 * Expands @p opts into concrete cells (primitive-major, then
 * scheduler, BOWS mode, occupancy, device count). Occupancy geometry
 * derives from maxResidentCtasFor() on the assembled primitive at
 * opts.threadsPerCta, scaled by base.numCores and the cell's device
 * count (CTAs are chunked evenly across devices, so the system-wide
 * capacity is the per-device capacity times the device count).
 */
std::vector<LitmusCell> buildLitmusCells(const LitmusOptions &opts);

/**
 * Runs @p cell's kernel on @p gpu (constructed from cell.cfg, possibly
 * with execution-knob overrides) and classifies the outcome. Watchdog
 * SimErrors are absorbed into the classification; validation failures
 * and non-watchdog SimErrors propagate — they signal harness bugs, not
 * synchronization pathologies.
 */
LitmusCellResult runLitmusCell(const LitmusCell &cell, Gpu &gpu);

/**
 * Classifies a watchdog abort from the Gpu's abort record (see the
 * file comment for the taxonomy). @p message is the SimError text;
 * functional-mode zero-progress aborts classify as Deadlocked from it.
 */
SyncOutcome classifySyncAbort(const LaunchAbort &abort,
                              const GpuConfig &cfg,
                              const std::string &message);

/**
 * Builds the litmus artifact: { "bench", "exec_mode",
 * "watchdog_cycles", "threads_per_cta", "iters", "primitives",
 * "schedulers", "bows", "occupancies", "devices", "cells": [...] }.
 * Execution
 * knobs that cannot affect results (--jobs, --sm-threads, idle-skip,
 * metrics interval) are deliberately omitted so artifacts are
 * byte-identical across them.
 */
Json litmusToJson(const std::string &bench_name,
                  const LitmusOptions &opts,
                  const std::vector<LitmusCell> &cells,
                  const std::vector<LitmusCellResult> &results);

}  // namespace bowsim::harness

#endif  // BOWSIM_HARNESS_LITMUS_HPP
