#ifndef BOWSIM_HARNESS_JSON_CHECK_HPP
#define BOWSIM_HARNESS_JSON_CHECK_HPP

#include <cstdint>
#include <string>

#include "src/harness/json.hpp"

/**
 * @file
 * Artifact validation shared by the json_check CLI (bench_smoke) and the
 * unit tests: loading a JSON document from disk, structural checks for
 * BENCH_*.json sweep artifacts, and property checks for Chrome
 * trace_event documents produced by the trace exporter.
 */

namespace bowsim::harness {

/** One validation outcome: ok plus a human-readable explanation. */
struct CheckResult {
    bool ok = true;
    std::string message;
};

/** Reads and parses @p path; throws FatalError on IO or parse errors. */
Json loadJsonFile(const std::string &path);

/**
 * Validates a BENCH_*.json sweep artifact: a "points" array of
 * @p expected_points entries (any size when negative) in which every
 * point reports ok == true and carries a "config" object recording at
 * least the idle_skip setting. When the artifact carries a "cache"
 * block (the sweep ran with --cache, docs/BENCH.md) its mode and
 * counters are validated: hits + misses + bypassed + resumed must
 * equal the point count and stored may not exceed misses. A
 * non-negative @p expected_cache_hits additionally requires the block
 * to be present and report exactly that many hits (the CI warm-run
 * all-hits gate).
 */
CheckResult checkSweepArtifact(const Json &doc,
                               std::int64_t expected_points = -1,
                               std::int64_t expected_cache_hits = -1);

/**
 * Compares the "points" arrays of two sweep artifacts byte-for-byte
 * (serialized form), plus the bench names. Cold and warm cached runs
 * must agree exactly here — only their "cache" blocks may differ —
 * which is what makes a cache hit indistinguishable from a simulation.
 */
CheckResult compareSweepPoints(const Json &a, const Json &b);

/**
 * Validates a Chrome trace_event document (docs/TRACING.md):
 *  - "traceEvents" is an array of objects, each with a "ph" phase;
 *  - every non-metadata event carries numeric ts/pid/tid;
 *  - timestamps are non-decreasing per (pid, tid) track;
 *  - "B"/"E" duration events balance per track (no unmatched end, no
 *    open interval left at the end of the document).
 */
CheckResult checkChromeTrace(const Json &doc);

/**
 * Validates a metrics time-series document (docs/METRICS.md):
 *  - "interval" is a positive integer and "columns" an array of
 *    {name, kind} objects matching every row's length;
 *  - the "cycle" column is strictly increasing, and every row sits on
 *    the sample grid (cycle % interval == 0) or is a launch-boundary
 *    row (the launch index changes next row, or it is the final row);
 *  - counter columns are non-decreasing over the whole series;
 *  - the "launch" column is non-decreasing.
 * With @p stats (a sweep artifact's "stats" object for the same run),
 * additionally checks that the final row's counters agree with the
 * KernelStats totals: cycle vs cycles (single-launch artifacts),
 * warp_instructions, the mem block counters, the sched block sums, and
 * the sync-outcome counts.
 */
CheckResult checkMetricsSeries(const Json &doc,
                               const Json *stats = nullptr);

/**
 * Validates a litmus outcome-matrix document (docs/SYNC.md):
 *  - the header records bench, exec_mode (legal value), a positive
 *    watchdog_cycles, threads_per_cta and iters;
 *  - the axis lists (primitives, schedulers, bows, occupancies) are
 *    non-empty and name known primitives/occupancy levels;
 *  - "cells" covers the full axis cross-product exactly once, and each
 *    cell carries its coordinates, geometry, a legal outcome, a
 *    self-describing config (exec_mode agreeing with the header,
 *    scheduler/bows_enabled agreeing with the cell), and a stats
 *    object.
 * @p expected_cells additionally pins the cell count when >= 0.
 */
CheckResult checkLitmusMatrix(const Json &doc,
                              std::int64_t expected_cells = -1);

/**
 * Validates a sync-contention report (--sync-report, docs/SYNC.md):
 *  - version 1 header with positive top_n and storm_window;
 *  - a "totals" block with consistent counters (cas_failures <=
 *    cas_attempts <= atomics, failed_share in [0, 1], local + remote
 *    timed atomics folding to timed_atomics);
 *  - an "addresses" array (at most top_n entries, sorted hottest-first
 *    by failed CAS count) in which each entry carries the same
 *    counter invariants, log2 histograms of at most 32 non-negative
 *    buckets, a fairness block with gini in [0, 1], and storm
 *    intervals with from <= to.
 */
CheckResult checkSyncReport(const Json &doc);

}  // namespace bowsim::harness

#endif  // BOWSIM_HARNESS_JSON_CHECK_HPP
