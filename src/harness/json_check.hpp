#ifndef BOWSIM_HARNESS_JSON_CHECK_HPP
#define BOWSIM_HARNESS_JSON_CHECK_HPP

#include <cstdint>
#include <string>

#include "src/harness/json.hpp"

/**
 * @file
 * Artifact validation shared by the json_check CLI (bench_smoke) and the
 * unit tests: loading a JSON document from disk, structural checks for
 * BENCH_*.json sweep artifacts, and property checks for Chrome
 * trace_event documents produced by the trace exporter.
 */

namespace bowsim::harness {

/** One validation outcome: ok plus a human-readable explanation. */
struct CheckResult {
    bool ok = true;
    std::string message;
};

/** Reads and parses @p path; throws FatalError on IO or parse errors. */
Json loadJsonFile(const std::string &path);

/**
 * Validates a BENCH_*.json sweep artifact: a "points" array of
 * @p expected_points entries (any size when negative) in which every
 * point reports ok == true and carries a "config" object recording at
 * least the idle_skip setting.
 */
CheckResult checkSweepArtifact(const Json &doc,
                               std::int64_t expected_points = -1);

/**
 * Validates a Chrome trace_event document (docs/TRACING.md):
 *  - "traceEvents" is an array of objects, each with a "ph" phase;
 *  - every non-metadata event carries numeric ts/pid/tid;
 *  - timestamps are non-decreasing per (pid, tid) track;
 *  - "B"/"E" duration events balance per track (no unmatched end, no
 *    open interval left at the end of the document).
 */
CheckResult checkChromeTrace(const Json &doc);

}  // namespace bowsim::harness

#endif  // BOWSIM_HARNESS_JSON_CHECK_HPP
