#include "src/harness/sweep.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/common/log.hpp"
#include "src/harness/fingerprint.hpp"
#include "src/harness/result_cache.hpp"
#include "src/kernels/registry.hpp"
#include "src/metrics/sampler.hpp"
#include "src/sim/gpu.hpp"
#include "src/syncprof/syncprof.hpp"
#include "src/trace/chrome_exporter.hpp"
#include "src/trace/ring_recorder.hpp"

#include <fstream>

namespace bowsim::harness {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("BOWSIM_JOBS")) {
        int v = std::atoi(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace {

SweepResult
runPoint(const SweepPoint &point)
{
    SweepResult r;
    std::unique_ptr<trace::RingRecorder> recorder;
    if (!point.tracePath.empty() && !point.body) {
        recorder = std::make_unique<trace::RingRecorder>();
        if (!point.traceFilter.empty()) {
            std::uint32_t mask = 0;
            if (!trace::parseCategoryFilter(point.traceFilter, &mask)) {
                r.error = "bad --trace-filter '" + point.traceFilter + "'";
                return r;
            }
            recorder->setFilter(mask);
        }
    }
    std::unique_ptr<metrics::MetricsSampler> sampler;
    if (!point.metricsPath.empty() && !point.body) {
        const Cycle interval =
            point.cfg.metricsInterval ? point.cfg.metricsInterval : 1000;
        sampler = std::make_unique<metrics::MetricsSampler>(
            interval, point.metricsPath);
    }
    std::unique_ptr<syncprof::SyncProfileRegistry> syncreg;
    if ((!point.syncReportPath.empty() || point.syncProfile) &&
        !point.body) {
        syncreg = std::make_unique<syncprof::SyncProfileRegistry>(
            point.cfg.syncTopN, point.cfg.syncStormWindow);
    }
    try {
        if (point.body) {
            r.stats = point.body();
        } else {
            Gpu gpu(point.cfg);
            if (recorder)
                gpu.setTraceSink(recorder.get());
            if (sampler)
                gpu.setMetrics(sampler.get());
            if (syncreg)
                gpu.setSyncProf(syncreg.get());
            r.stats = point.gpuBody
                          ? point.gpuBody(gpu)
                          : makeBenchmark(point.kernel, point.scale)
                                ->run(gpu);
        }
        r.ok = true;
    } catch (const std::exception &e) {
        r.error = e.what();
    } catch (...) {
        r.error = "unknown error";
    }
    if (syncreg) {
        r.syncProfileText = syncreg->hotReport();
        if (!point.syncReportPath.empty()) {
            // Written even on failure: a livelocked point's contention
            // report is the one worth reading.
            try {
                std::ofstream out(point.syncReportPath);
                if (!out) {
                    fatal("cannot write sync report '",
                          point.syncReportPath, "'");
                }
                out << syncreg->reportJson().dump(2) << "\n";
            } catch (const std::exception &e) {
                if (r.ok) {
                    r.ok = false;
                    r.error = e.what();
                }
            }
        }
    }
    if (sampler) {
        // Like the trace below: written even on failure, so the series
        // leading up to a watchdog abort is preserved.
        try {
            sampler->writeFile();
        } catch (const std::exception &e) {
            if (r.ok) {
                r.ok = false;
                r.error = e.what();
            }
        }
    }
    if (recorder) {
        // Written even on failure: the retained window ending at a
        // watchdog abort is the most useful trace of all.
        try {
            trace::ChromeTraceMeta meta;
            meta.label = point.id;
            meta.dropped = recorder->dropped();
            trace::writeChromeTraceFile(recorder->events(),
                                        point.tracePath, meta);
        } catch (const std::exception &e) {
            if (r.ok) {
                r.ok = false;
                r.error = e.what();
            }
        }
    }
    return r;
}

}  // namespace

SweepResult
SweepRunner::execPoint(const SweepPoint &point) const
{
    if (!cache_ && !journal_)
        return runPoint(point);

    // A cache hit would not regenerate side-output files, so points
    // with a trace, metrics or sync-report output always simulate.
    if (!point.tracePath.empty() || !point.metricsPath.empty() ||
        !point.syncReportPath.empty() || point.syncProfile) {
        if (cache_)
            cache_->countBypassed();
        return runPoint(point);
    }

    const PointKey key = fingerprintPoint(point);
    // Points the fingerprinter cannot content-address still get a weak
    // per-sweep resume key (config + id + scale). That is enough for
    // journal replay — a resumed sweep re-runs the same sweep
    // definition, so a matching (id, config) names the same work — but
    // deliberately too weak for the shared object store, where keys
    // must survive source edits.
    std::string journal_key;
    if (key.cacheable) {
        journal_key = key.hash;
    } else {
        FingerprintHasher weak;
        hashConfig(weak, point.cfg);
        weak.add("weak_id", point.id);
        weak.add("scale", point.scale);
        journal_key = weak.hex();
    }

    SweepResult r;
    if (journal_ && journal_->lookup(point.id, journal_key, &r.stats)) {
        r.ok = true;
        r.source = SweepResult::Source::Resumed;
        if (cache_)
            cache_->countResumed();
        return r;
    }
    if (cache_ && key.cacheable && cache_->lookup(key.hash, &r.stats)) {
        r.ok = true;
        r.source = SweepResult::Source::CacheHit;
        cache_->countHit();
        // Journal the hit too, so resuming an interrupted warm run
        // replays it without even touching the object store.
        if (journal_)
            journal_->record(point.id, journal_key, r.stats);
        return r;
    }
    if (cache_) {
        if (key.cacheable)
            cache_->countMiss();
        else
            cache_->countBypassed();
    }
    r = runPoint(point);
    if (r.ok) {
        if (cache_ && key.cacheable)
            cache_->store(key.hash, point.id, r.stats);
        if (journal_)
            journal_->record(point.id, journal_key, r.stats);
    }
    return r;
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    std::vector<SweepResult> results(points.size());
    unsigned workers = jobs_;
    if (workers > points.size())
        workers = static_cast<unsigned>(points.size());

    if (workers <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            results[i] = execPoint(points[i]);
            if (callback_)
                callback_(i, results[i]);
        }
        return results;
    }

    // Fixed pool; workers claim points in submission order so early
    // (usually slower, lower-indexed) points start first. results[i] is
    // owned exclusively by the claiming worker, so no locking is needed
    // beyond the claim counter (and the callback mutex).
    std::atomic<std::size_t> next{0};
    std::mutex cb_mu;
    auto worker = [&]() {
        while (true) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                return;
            results[i] = execPoint(points[i]);
            if (callback_) {
                std::lock_guard<std::mutex> lock(cb_mu);
                callback_(i, results[i]);
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

namespace {

/**
 * Double checked for NaN/Inf before emission: both serialize to tokens
 * no JSON parser accepts, so a record containing one would read back as
 * corrupt — and a non-finite statistic is a simulator bug anyway.
 */
double
finite(const char *key, double v)
{
    if (!std::isfinite(v))
        fatal("statsToJson: non-finite value for \"", key, "\"");
    return v;
}

}  // namespace

Json
statsToJson(const KernelStats &s)
{
    Json j = Json::object();
    j.set("kernel", s.kernel);
    j.set("cycles", s.cycles);
    j.set("warp_instructions", s.warpInstructions);
    j.set("thread_instructions", s.threadInstructions);
    j.set("sync_thread_instructions", s.syncThreadInstructions);
    j.set("sib_instructions", s.sibInstructions);
    j.set("active_lane_sum", s.activeLaneSum);
    j.set("simd_efficiency", finite("simd_efficiency", s.simdEfficiency()));
    j.set("ipc", finite("ipc", s.ipc()));
    // Sampled-mode estimator fields appear only when an estimate was
    // actually produced; cycle-mode artifacts never carry them
    // (json_check enforces this).
    if (s.hasSampledIpc()) {
        j.set("ipc_est", finite("ipc_est", s.ipcEst));
        j.set("ipc_ci95", finite("ipc_ci95", s.ipcCi95));
        j.set("sampled_windows", s.sampledWindows);
    }

    Json mem = Json::object();
    mem.set("l1_accesses", s.l1Accesses);
    mem.set("l1_hits", s.l1Hits);
    mem.set("l1_misses", s.l1Misses);
    mem.set("shared_accesses", s.sharedAccesses);
    mem.set("sync_mem_transactions", s.syncMemTransactions);
    mem.set("l2_accesses", s.mem.l2Accesses);
    mem.set("l2_hits", s.mem.l2Hits);
    mem.set("l2_misses", s.mem.l2Misses);
    mem.set("dram_accesses", s.mem.dramAccesses);
    mem.set("dram_row_activations", s.mem.dramRowActivations);
    mem.set("atomics", s.mem.atomics);
    mem.set("atomic_wait_cycles", s.mem.atomicWaitCycles);
    mem.set("icnt_packets", s.mem.icntPackets);
    // Inter-device link traffic is only possible on multi-device runs;
    // single-device artifacts stay byte-stable by omission.
    if (s.mem.linkPackets != 0)
        mem.set("link_packets", s.mem.linkPackets);
    j.set("mem", std::move(mem));

    Json out = Json::object();
    out.set("lock_success", s.outcomes.lockSuccess);
    out.set("inter_warp_fail", s.outcomes.interWarpFail);
    out.set("intra_warp_fail", s.outcomes.intraWarpFail);
    out.set("wait_exit_success", s.outcomes.waitExitSuccess);
    out.set("wait_exit_fail", s.outcomes.waitExitFail);
    j.set("outcomes", std::move(out));

    Json sched = Json::object();
    sched.set("resident_warp_cycles", s.residentWarpCycles);
    sched.set("backed_off_warp_cycles", s.backedOffWarpCycles);
    // Gated counter (GpuConfig::collectSpinCycles): emitted only when
    // collected so artifacts from runs without it stay byte-stable.
    if (s.spinningWarpCycles != 0)
        sched.set("spinning_warp_cycles", s.spinningWarpCycles);
    sched.set("delay_limit_cycle_sum", s.delayLimitCycleSum);
    sched.set("sm_cycles", s.smCycles);
    // Per-SM peak residency (empty for custom-body points, which build
    // their stats by hand).
    if (!s.peakResidentPerSm.empty()) {
        Json peaks = Json::array();
        for (std::uint64_t p : s.peakResidentPerSm)
            peaks.push(p);
        sched.set("peak_resident_per_sm", std::move(peaks));
    }
    sched.set("avg_delay_limit",
              finite("avg_delay_limit", s.avgDelayLimit()));
    j.set("sched", std::move(sched));

    // Derived rates for humans/plots, raw counters for statsFromJson
    // (the rates are recomputed on parse).
    Json ddos = Json::object();
    ddos.set("tsdr", finite("tsdr", s.ddos.tsdr()));
    ddos.set("fsdr", finite("fsdr", s.ddos.fsdr()));
    ddos.set("dpr_true", finite("dpr_true", s.ddos.dprTrue()));
    ddos.set("dpr_false", finite("dpr_false", s.ddos.dprFalse()));
    ddos.set("true_branches", s.ddos.trueBranches);
    ddos.set("true_detected", s.ddos.trueDetected);
    ddos.set("false_branches", s.ddos.falseBranches);
    ddos.set("false_detected", s.ddos.falseDetected);
    ddos.set("dpr_true_sum", finite("dpr_true_sum", s.ddos.dprTrueSum));
    ddos.set("dpr_false_sum",
             finite("dpr_false_sum", s.ddos.dprFalseSum));
    j.set("ddos", std::move(ddos));

    // Only present when collected (trace sink attached or
    // collectStallBreakdown set) so default artifacts stay byte-stable.
    if (s.hasStallBreakdown()) {
        Json stall = Json::object();
        auto totals = s.stallTotals();
        for (unsigned c = 0; c < trace::kNumStallCauses; ++c) {
            stall.set(trace::toString(static_cast<trace::StallCause>(c)),
                      totals[c]);
        }
        j.set("stall", std::move(stall));
        // The full per-warp table (the "stall" block above is its
        // per-cause projection, recomputed on parse).
        Json table = Json::object();
        table.set("warps_per_sm", s.stallWarpsPerSm);
        Json counts = Json::array();
        for (std::uint64_t c : s.stallCounts)
            counts.push(c);
        table.set("counts", std::move(counts));
        j.set("stall_table", std::move(table));
    }
    if (!s.unitIssues.empty()) {
        Json units = Json::object();
        units.set("units_per_sm", s.unitsPerSm);
        Json counts = Json::array();
        for (std::uint64_t c : s.unitIssues)
            counts.push(c);
        units.set("counts", std::move(counts));
        j.set("unit_issues", std::move(units));
    }

    Json ev = Json::object();
    ev.set("warp_instructions", s.energy.warpInstructions);
    ev.set("lane_alu_ops", s.energy.laneAluOps);
    ev.set("rf_read_lanes", s.energy.rfReadLanes);
    ev.set("rf_write_lanes", s.energy.rfWriteLanes);
    ev.set("shared_accesses", s.energy.sharedAccesses);
    ev.set("l1_accesses", s.energy.l1Accesses);
    ev.set("l2_accesses", s.energy.l2Accesses);
    ev.set("dram_accesses", s.energy.dramAccesses);
    ev.set("icnt_packets", s.energy.icntPackets);
    ev.set("atomic_ops", s.energy.atomicOps);
    j.set("energy_events", std::move(ev));

    j.set("energy_nj", finite("energy_nj", s.energyNj));
    j.set("static_energy_nj",
          finite("static_energy_nj", s.staticEnergyNj));

    // Per-device stat shards (numDevices > 1 only), in device-id order.
    // Shards never nest — their own perDevice is empty — so the
    // recursion terminates after one level.
    if (!s.perDevice.empty()) {
        Json devs = Json::array();
        for (const KernelStats &d : s.perDevice)
            devs.push(statsToJson(d));
        j.set("devices", std::move(devs));
    }
    return j;
}

namespace {

std::uint64_t
getU64(const Json &obj, const char *key)
{
    return static_cast<std::uint64_t>(obj.at(key).asInt());
}

}  // namespace

KernelStats
statsFromJson(const Json &j)
{
    KernelStats s;
    s.kernel = j.at("kernel").asString();
    s.cycles = getU64(j, "cycles");
    s.warpInstructions = getU64(j, "warp_instructions");
    s.threadInstructions = getU64(j, "thread_instructions");
    s.syncThreadInstructions = getU64(j, "sync_thread_instructions");
    s.sibInstructions = getU64(j, "sib_instructions");
    s.activeLaneSum = getU64(j, "active_lane_sum");
    // simd_efficiency and ipc are derived; recomputed from the raws.
    if (j.has("sampled_windows")) {
        s.ipcEst = j.at("ipc_est").asDouble();
        s.ipcCi95 = j.at("ipc_ci95").asDouble();
        s.sampledWindows = getU64(j, "sampled_windows");
        if (!s.hasSampledIpc())
            fatal("statsFromJson: sampled_windows == 0 in a sampled "
                  "record");
    }

    const Json &mem = j.at("mem");
    s.l1Accesses = getU64(mem, "l1_accesses");
    s.l1Hits = getU64(mem, "l1_hits");
    s.l1Misses = getU64(mem, "l1_misses");
    s.sharedAccesses = getU64(mem, "shared_accesses");
    s.syncMemTransactions = getU64(mem, "sync_mem_transactions");
    s.mem.l2Accesses = getU64(mem, "l2_accesses");
    s.mem.l2Hits = getU64(mem, "l2_hits");
    s.mem.l2Misses = getU64(mem, "l2_misses");
    s.mem.dramAccesses = getU64(mem, "dram_accesses");
    s.mem.dramRowActivations = getU64(mem, "dram_row_activations");
    s.mem.atomics = getU64(mem, "atomics");
    s.mem.atomicWaitCycles = getU64(mem, "atomic_wait_cycles");
    s.mem.icntPackets = getU64(mem, "icnt_packets");
    if (mem.has("link_packets")) {
        s.mem.linkPackets = getU64(mem, "link_packets");
        if (s.mem.linkPackets == 0)
            fatal("statsFromJson: explicit zero link_packets");
    }

    const Json &out = j.at("outcomes");
    s.outcomes.lockSuccess = getU64(out, "lock_success");
    s.outcomes.interWarpFail = getU64(out, "inter_warp_fail");
    s.outcomes.intraWarpFail = getU64(out, "intra_warp_fail");
    s.outcomes.waitExitSuccess = getU64(out, "wait_exit_success");
    s.outcomes.waitExitFail = getU64(out, "wait_exit_fail");

    const Json &sched = j.at("sched");
    s.residentWarpCycles = getU64(sched, "resident_warp_cycles");
    s.backedOffWarpCycles = getU64(sched, "backed_off_warp_cycles");
    if (sched.has("spinning_warp_cycles")) {
        s.spinningWarpCycles = getU64(sched, "spinning_warp_cycles");
        if (s.spinningWarpCycles == 0)
            fatal("statsFromJson: explicit zero spinning_warp_cycles");
    }
    s.delayLimitCycleSum = getU64(sched, "delay_limit_cycle_sum");
    s.smCycles = getU64(sched, "sm_cycles");
    if (sched.has("peak_resident_per_sm")) {
        const Json &peaks = sched.at("peak_resident_per_sm");
        for (const Json &p : peaks.items())
            s.peakResidentPerSm.push_back(
                static_cast<std::uint64_t>(p.asInt()));
    }

    const Json &ddos = j.at("ddos");
    s.ddos.trueBranches =
        static_cast<unsigned>(getU64(ddos, "true_branches"));
    s.ddos.trueDetected =
        static_cast<unsigned>(getU64(ddos, "true_detected"));
    s.ddos.falseBranches =
        static_cast<unsigned>(getU64(ddos, "false_branches"));
    s.ddos.falseDetected =
        static_cast<unsigned>(getU64(ddos, "false_detected"));
    s.ddos.dprTrueSum = ddos.at("dpr_true_sum").asDouble();
    s.ddos.dprFalseSum = ddos.at("dpr_false_sum").asDouble();

    if (j.has("stall_table")) {
        const Json &table = j.at("stall_table");
        s.stallWarpsPerSm =
            static_cast<unsigned>(getU64(table, "warps_per_sm"));
        for (const Json &c : table.at("counts").items())
            s.stallCounts.push_back(
                static_cast<std::uint64_t>(c.asInt()));
        if (s.stallCounts.empty())
            fatal("statsFromJson: empty stall_table counts");
    }
    if (j.has("unit_issues")) {
        const Json &units = j.at("unit_issues");
        s.unitsPerSm =
            static_cast<unsigned>(getU64(units, "units_per_sm"));
        for (const Json &c : units.at("counts").items())
            s.unitIssues.push_back(
                static_cast<std::uint64_t>(c.asInt()));
        if (s.unitIssues.empty())
            fatal("statsFromJson: empty unit_issues counts");
    }

    const Json &ev = j.at("energy_events");
    s.energy.warpInstructions = getU64(ev, "warp_instructions");
    s.energy.laneAluOps = getU64(ev, "lane_alu_ops");
    s.energy.rfReadLanes = getU64(ev, "rf_read_lanes");
    s.energy.rfWriteLanes = getU64(ev, "rf_write_lanes");
    s.energy.sharedAccesses = getU64(ev, "shared_accesses");
    s.energy.l1Accesses = getU64(ev, "l1_accesses");
    s.energy.l2Accesses = getU64(ev, "l2_accesses");
    s.energy.dramAccesses = getU64(ev, "dram_accesses");
    s.energy.icntPackets = getU64(ev, "icnt_packets");
    s.energy.atomicOps = getU64(ev, "atomic_ops");

    s.energyNj = j.at("energy_nj").asDouble();
    s.staticEnergyNj = j.at("static_energy_nj").asDouble();

    if (j.has("devices")) {
        for (const Json &d : j.at("devices").items()) {
            s.perDevice.push_back(statsFromJson(d));
            if (!s.perDevice.back().perDevice.empty())
                fatal("statsFromJson: nested device shards");
        }
        if (s.perDevice.empty())
            fatal("statsFromJson: empty devices block");
    }
    return s;
}

Json
configToJson(const GpuConfig &cfg)
{
    Json j = Json::object();
    j.set("name", cfg.name);
    j.set("cores", cfg.numCores);
    // Device/link knobs appear only on multi-device points, keeping
    // single-device artifacts byte-identical to the pre-split format.
    if (cfg.numDevices != 1) {
        j.set("num_devices", cfg.numDevices);
        j.set("link_latency", cfg.linkLatency);
        j.set("link_service_period", cfg.linkServicePeriod);
        j.set("switch_latency", cfg.switchLatency);
    }
    j.set("idle_skip", cfg.idleSkip);
    j.set("sm_threads", cfg.smThreads);
    j.set("metrics_interval", cfg.metricsInterval);
    j.set("atomic_service_period", cfg.atomicServicePeriod);
    j.set("exec_mode", toString(cfg.execMode));
    // The sampling knobs only matter — and are only recorded — when the
    // point actually ran in sampled mode.
    if (cfg.execMode == ExecMode::Sampled) {
        j.set("sample_window", cfg.sampleWindow);
        j.set("sample_period", cfg.samplePeriod);
    }
    j.set("scheduler", toString(cfg.scheduler));
    j.set("spin_detect", toString(cfg.spinDetect));
    j.set("bows_enabled", cfg.bows.enabled);
    j.set("bows_deprioritize", cfg.bows.deprioritize);
    j.set("bows_adaptive", cfg.bows.adaptive);
    j.set("bows_delay_limit", cfg.bows.delayLimit);
    j.set("ddos_hash", toString(cfg.ddos.hash));
    j.set("ddos_hash_bits", cfg.ddos.hashBits);
    j.set("ddos_history_length", cfg.ddos.historyLength);
    j.set("ddos_confidence_threshold", cfg.ddos.confidenceThreshold);
    j.set("ddos_time_share", cfg.ddos.timeShare);
    return j;
}

Json
sweepToJson(const std::string &bench_name, unsigned jobs,
            const std::vector<SweepPoint> &points,
            const std::vector<SweepResult> &results,
            const ResultCache *cache)
{
    if (points.size() != results.size())
        panic("sweepToJson: points/results size mismatch");
    Json doc = Json::object();
    doc.set("bench", bench_name);
    doc.set("jobs", jobs);
    if (cache) {
        const CacheCounters c = cache->counters();
        Json cj = Json::object();
        cj.set("mode", toString(cache->mode()));
        cj.set("hits", c.hits);
        cj.set("misses", c.misses);
        cj.set("stored", c.stored);
        cj.set("bypassed", c.bypassed);
        cj.set("resumed", c.resumed);
        doc.set("cache", std::move(cj));
    }
    Json arr = Json::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
        Json p = Json::object();
        p.set("id", points[i].id);
        if (!points[i].kernel.empty())
            p.set("kernel", points[i].kernel);
        p.set("scale", points[i].scale);
        p.set("ok", results[i].ok);
        p.set("config", configToJson(points[i].cfg));
        if (results[i].ok)
            p.set("stats", statsToJson(results[i].stats));
        else
            p.set("error", results[i].error);
        arr.push(std::move(p));
    }
    doc.set("points", std::move(arr));
    return doc;
}

}  // namespace bowsim::harness
