#include "src/harness/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/common/log.hpp"
#include "src/kernels/registry.hpp"
#include "src/metrics/sampler.hpp"
#include "src/sim/gpu.hpp"
#include "src/trace/chrome_exporter.hpp"
#include "src/trace/ring_recorder.hpp"

namespace bowsim::harness {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("BOWSIM_JOBS")) {
        int v = std::atoi(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace {

SweepResult
runPoint(const SweepPoint &point)
{
    SweepResult r;
    std::unique_ptr<trace::RingRecorder> recorder;
    if (!point.tracePath.empty() && !point.body)
        recorder = std::make_unique<trace::RingRecorder>();
    std::unique_ptr<metrics::MetricsSampler> sampler;
    if (!point.metricsPath.empty() && !point.body) {
        const Cycle interval =
            point.cfg.metricsInterval ? point.cfg.metricsInterval : 1000;
        sampler = std::make_unique<metrics::MetricsSampler>(
            interval, point.metricsPath);
    }
    try {
        if (point.body) {
            r.stats = point.body();
        } else {
            Gpu gpu(point.cfg);
            if (recorder)
                gpu.setTraceSink(recorder.get());
            if (sampler)
                gpu.setMetrics(sampler.get());
            r.stats = point.gpuBody
                          ? point.gpuBody(gpu)
                          : makeBenchmark(point.kernel, point.scale)
                                ->run(gpu);
        }
        r.ok = true;
    } catch (const std::exception &e) {
        r.error = e.what();
    } catch (...) {
        r.error = "unknown error";
    }
    if (sampler) {
        // Like the trace below: written even on failure, so the series
        // leading up to a watchdog abort is preserved.
        try {
            sampler->writeFile();
        } catch (const std::exception &e) {
            if (r.ok) {
                r.ok = false;
                r.error = e.what();
            }
        }
    }
    if (recorder) {
        // Written even on failure: the retained window ending at a
        // watchdog abort is the most useful trace of all.
        try {
            trace::ChromeTraceMeta meta;
            meta.label = point.id;
            meta.dropped = recorder->dropped();
            trace::writeChromeTraceFile(recorder->events(),
                                        point.tracePath, meta);
        } catch (const std::exception &e) {
            if (r.ok) {
                r.ok = false;
                r.error = e.what();
            }
        }
    }
    return r;
}

}  // namespace

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    std::vector<SweepResult> results(points.size());
    unsigned workers = jobs_;
    if (workers > points.size())
        workers = static_cast<unsigned>(points.size());

    if (workers <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            results[i] = runPoint(points[i]);
            if (callback_)
                callback_(i, results[i]);
        }
        return results;
    }

    // Fixed pool; workers claim points in submission order so early
    // (usually slower, lower-indexed) points start first. results[i] is
    // owned exclusively by the claiming worker, so no locking is needed
    // beyond the claim counter (and the callback mutex).
    std::atomic<std::size_t> next{0};
    std::mutex cb_mu;
    auto worker = [&]() {
        while (true) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                return;
            results[i] = runPoint(points[i]);
            if (callback_) {
                std::lock_guard<std::mutex> lock(cb_mu);
                callback_(i, results[i]);
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

Json
statsToJson(const KernelStats &s)
{
    Json j = Json::object();
    j.set("kernel", s.kernel);
    j.set("cycles", s.cycles);
    j.set("warp_instructions", s.warpInstructions);
    j.set("thread_instructions", s.threadInstructions);
    j.set("sync_thread_instructions", s.syncThreadInstructions);
    j.set("sib_instructions", s.sibInstructions);
    j.set("active_lane_sum", s.activeLaneSum);
    j.set("simd_efficiency", s.simdEfficiency());
    j.set("ipc", s.ipc());
    // Sampled-mode estimator fields appear only when an estimate was
    // actually produced; cycle-mode artifacts never carry them
    // (json_check enforces this).
    if (s.hasSampledIpc()) {
        j.set("ipc_est", s.ipcEst);
        j.set("ipc_ci95", s.ipcCi95);
        j.set("sampled_windows", s.sampledWindows);
    }

    Json mem = Json::object();
    mem.set("l1_accesses", s.l1Accesses);
    mem.set("l1_hits", s.l1Hits);
    mem.set("l1_misses", s.l1Misses);
    mem.set("shared_accesses", s.sharedAccesses);
    mem.set("sync_mem_transactions", s.syncMemTransactions);
    mem.set("l2_accesses", s.mem.l2Accesses);
    mem.set("l2_hits", s.mem.l2Hits);
    mem.set("l2_misses", s.mem.l2Misses);
    mem.set("dram_accesses", s.mem.dramAccesses);
    mem.set("dram_row_activations", s.mem.dramRowActivations);
    mem.set("atomics", s.mem.atomics);
    mem.set("atomic_wait_cycles", s.mem.atomicWaitCycles);
    mem.set("icnt_packets", s.mem.icntPackets);
    j.set("mem", std::move(mem));

    Json out = Json::object();
    out.set("lock_success", s.outcomes.lockSuccess);
    out.set("inter_warp_fail", s.outcomes.interWarpFail);
    out.set("intra_warp_fail", s.outcomes.intraWarpFail);
    out.set("wait_exit_success", s.outcomes.waitExitSuccess);
    out.set("wait_exit_fail", s.outcomes.waitExitFail);
    j.set("outcomes", std::move(out));

    Json sched = Json::object();
    sched.set("resident_warp_cycles", s.residentWarpCycles);
    sched.set("backed_off_warp_cycles", s.backedOffWarpCycles);
    // Gated counter (GpuConfig::collectSpinCycles): emitted only when
    // collected so artifacts from runs without it stay byte-stable.
    if (s.spinningWarpCycles != 0)
        sched.set("spinning_warp_cycles", s.spinningWarpCycles);
    sched.set("delay_limit_cycle_sum", s.delayLimitCycleSum);
    sched.set("sm_cycles", s.smCycles);
    sched.set("avg_delay_limit", s.avgDelayLimit());
    j.set("sched", std::move(sched));

    Json ddos = Json::object();
    ddos.set("tsdr", s.ddos.tsdr());
    ddos.set("fsdr", s.ddos.fsdr());
    ddos.set("dpr_true", s.ddos.dprTrue());
    ddos.set("dpr_false", s.ddos.dprFalse());
    j.set("ddos", std::move(ddos));

    // Only present when collected (trace sink attached or
    // collectStallBreakdown set) so default artifacts stay byte-stable.
    if (s.hasStallBreakdown()) {
        Json stall = Json::object();
        auto totals = s.stallTotals();
        for (unsigned c = 0; c < trace::kNumStallCauses; ++c) {
            stall.set(trace::toString(static_cast<trace::StallCause>(c)),
                      totals[c]);
        }
        j.set("stall", std::move(stall));
    }

    j.set("energy_nj", s.energyNj);
    j.set("static_energy_nj", s.staticEnergyNj);
    return j;
}

Json
configToJson(const GpuConfig &cfg)
{
    Json j = Json::object();
    j.set("name", cfg.name);
    j.set("cores", cfg.numCores);
    j.set("idle_skip", cfg.idleSkip);
    j.set("sm_threads", cfg.smThreads);
    j.set("metrics_interval", cfg.metricsInterval);
    j.set("atomic_service_period", cfg.atomicServicePeriod);
    j.set("exec_mode", toString(cfg.execMode));
    // The sampling knobs only matter — and are only recorded — when the
    // point actually ran in sampled mode.
    if (cfg.execMode == ExecMode::Sampled) {
        j.set("sample_window", cfg.sampleWindow);
        j.set("sample_period", cfg.samplePeriod);
    }
    j.set("scheduler", toString(cfg.scheduler));
    j.set("spin_detect", toString(cfg.spinDetect));
    j.set("bows_enabled", cfg.bows.enabled);
    j.set("bows_deprioritize", cfg.bows.deprioritize);
    j.set("bows_adaptive", cfg.bows.adaptive);
    j.set("bows_delay_limit", cfg.bows.delayLimit);
    j.set("ddos_hash", toString(cfg.ddos.hash));
    j.set("ddos_hash_bits", cfg.ddos.hashBits);
    j.set("ddos_history_length", cfg.ddos.historyLength);
    j.set("ddos_confidence_threshold", cfg.ddos.confidenceThreshold);
    j.set("ddos_time_share", cfg.ddos.timeShare);
    return j;
}

Json
sweepToJson(const std::string &bench_name, unsigned jobs,
            const std::vector<SweepPoint> &points,
            const std::vector<SweepResult> &results)
{
    if (points.size() != results.size())
        panic("sweepToJson: points/results size mismatch");
    Json doc = Json::object();
    doc.set("bench", bench_name);
    doc.set("jobs", jobs);
    Json arr = Json::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
        Json p = Json::object();
        p.set("id", points[i].id);
        if (!points[i].kernel.empty())
            p.set("kernel", points[i].kernel);
        p.set("scale", points[i].scale);
        p.set("ok", results[i].ok);
        p.set("config", configToJson(points[i].cfg));
        if (results[i].ok)
            p.set("stats", statsToJson(results[i].stats));
        else
            p.set("error", results[i].error);
        arr.push(std::move(p));
    }
    doc.set("points", std::move(arr));
    return doc;
}

}  // namespace bowsim::harness
