#include "src/metrics/metrics.hpp"

#include "src/common/log.hpp"

namespace bowsim::metrics {

const char *
toString(Kind kind)
{
    switch (kind) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      case Kind::Rate: return "rate";
    }
    return "?";
}

std::size_t
MetricsRegistry::define(std::string name, Kind kind)
{
    if (!rows_.empty())
        fatal("metrics column '", name, "' defined after sampling began");
    columns_.push_back(MetricColumn{std::move(name), kind});
    return columns_.size() - 1;
}

void
MetricsRegistry::addRow(std::vector<double> row)
{
    if (row.size() != columns_.size())
        fatal("metrics row has ", row.size(), " values, schema has ",
              columns_.size(), " columns");
    rows_.push_back(std::move(row));
}

}  // namespace bowsim::metrics
