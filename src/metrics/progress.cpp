#include "src/metrics/progress.hpp"

#include <cstdio>

namespace bowsim::metrics {

void
ProgressMeter::start(std::string label, std::size_t total)
{
    std::lock_guard<std::mutex> lock(mu_);
    label_ = std::move(label);
    total_ = total;
    done_ = 0;
    simCycles_ = 0;
    start_ = std::chrono::steady_clock::now();
    lastDone_ = 0.0;
    ewmaGap_ = 0.0;
    cacheDisplay_ = false;
    cacheHits_ = 0;
    cacheMisses_ = 0;
    active_ = true;
    printLine(false, 0.0);
}

void
ProgressMeter::enableCacheDisplay()
{
    std::lock_guard<std::mutex> lock(mu_);
    cacheDisplay_ = true;
}

void
ProgressMeter::pointDone(std::uint64_t sim_cycles, bool from_cache)
{
    const double now =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    pointDoneAt(sim_cycles, now, from_cache);
}

void
ProgressMeter::pointDoneAt(std::uint64_t sim_cycles, double now_secs,
                           bool from_cache)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!active_)
        return;
    ++done_;
    if (from_cache) {
        // Served, not simulated: the point advances done/ETA but its
        // cycles would make the sim-cycles/s gauge report simulation
        // throughput the pool never delivered.
        ++cacheHits_;
    } else {
        ++cacheMisses_;
        simCycles_ += sim_cycles;
    }
    // Concurrent workers may take their timestamps slightly out of
    // order relative to lock acquisition; treat that as a zero gap.
    const double gap = now_secs > lastDone_ ? now_secs - lastDone_ : 0.0;
    // Seed the EWMA with the first gap; afterwards blend, so the ETA
    // adapts when later points run longer than the early ones without
    // jumping on a single slow point.
    ewmaGap_ = done_ == 1 ? gap
                          : kEwmaAlpha * gap + (1.0 - kEwmaAlpha) * ewmaGap_;
    lastDone_ = now_secs;
    printLine(false, now_secs);
}

double
ProgressMeter::etaSeconds()
{
    std::lock_guard<std::mutex> lock(mu_);
    return etaLocked();
}

std::uint64_t
ProgressMeter::cacheHits()
{
    std::lock_guard<std::mutex> lock(mu_);
    return cacheHits_;
}

std::uint64_t
ProgressMeter::cacheMisses()
{
    std::lock_guard<std::mutex> lock(mu_);
    return cacheMisses_;
}

double
ProgressMeter::etaLocked() const
{
    if (done_ == 0 || done_ >= total_)
        return 0.0;
    return ewmaGap_ * static_cast<double>(total_ - done_);
}

void
ProgressMeter::finish()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!active_)
        return;
    const double now =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    printLine(true, now);
    active_ = false;
}

void
ProgressMeter::printLine(bool last, double now_secs)
{
    const double rate =
        now_secs > 0.0 ? static_cast<double>(simCycles_) / now_secs : 0.0;
    std::fprintf(stderr, "\r%s: %zu/%zu points, %.2fM sim-cycles/s",
                 label_.c_str(), done_, total_, rate / 1e6);
    if (cacheDisplay_) {
        std::fprintf(stderr, ", cache %llu hit/%llu miss",
                     static_cast<unsigned long long>(cacheHits_),
                     static_cast<unsigned long long>(cacheMisses_));
    }
    if (done_ < total_)
        std::fprintf(stderr, ", ETA %.0fs ", etaLocked());
    else
        std::fprintf(stderr, ", done in %.1fs", now_secs);
    if (last)
        std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

}  // namespace bowsim::metrics
