#include "src/metrics/progress.hpp"

#include <cstdio>

namespace bowsim::metrics {

void
ProgressMeter::start(std::string label, std::size_t total)
{
    std::lock_guard<std::mutex> lock(mu_);
    label_ = std::move(label);
    total_ = total;
    done_ = 0;
    simCycles_ = 0;
    start_ = std::chrono::steady_clock::now();
    active_ = true;
    printLine(false);
}

void
ProgressMeter::pointDone(std::uint64_t sim_cycles)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!active_)
        return;
    ++done_;
    simCycles_ += sim_cycles;
    printLine(false);
}

void
ProgressMeter::finish()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!active_)
        return;
    printLine(true);
    active_ = false;
}

void
ProgressMeter::printLine(bool last)
{
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate =
        secs > 0.0 ? static_cast<double>(simCycles_) / secs : 0.0;
    // Naive ETA: assume the remaining points cost what the finished
    // ones averaged. Rough by design — this is a heartbeat, not a plan.
    double eta = 0.0;
    if (done_ > 0 && done_ < total_) {
        eta = secs / static_cast<double>(done_) *
              static_cast<double>(total_ - done_);
    }
    std::fprintf(stderr, "\r%s: %zu/%zu points, %.2fM sim-cycles/s",
                 label_.c_str(), done_, total_, rate / 1e6);
    if (done_ < total_)
        std::fprintf(stderr, ", ETA %.0fs ", eta);
    else
        std::fprintf(stderr, ", done in %.1fs", secs);
    if (last)
        std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

}  // namespace bowsim::metrics
