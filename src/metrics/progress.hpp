#ifndef BOWSIM_METRICS_PROGRESS_HPP
#define BOWSIM_METRICS_PROGRESS_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

/**
 * @file
 * Sweep heartbeat (bench flag --progress): one stderr status line,
 * rewritten after every finished sweep point, showing points done/total,
 * aggregate simulated cycles per wall-clock second, and an ETA.
 * Thread-safe — the sweep runner's workers report completions
 * concurrently. Purely observational: it never touches simulator state
 * and writes only to stderr, so stdout tables and JSON artifacts are
 * byte-identical with and without it.
 */

namespace bowsim::metrics {

class ProgressMeter {
  public:
    /**
     * EWMA smoothing factor for per-point completion gaps. High enough
     * to track a sweep whose points grow (sweeps often order points
     * small-to-large), low enough that one outlier point does not swing
     * the ETA.
     */
    static constexpr double kEwmaAlpha = 0.3;

    /** Begins a run of @p total points labeled @p label. */
    void start(std::string label, std::size_t total);

    /**
     * Shows "cache H hit / M miss" in the status line (result cache
     * attached, docs/BENCH.md). Call between start() and the first
     * completion; off by default so cacheless sweeps keep their line
     * unchanged.
     */
    void enableCacheDisplay();

    /**
     * Records one finished point that simulated @p sim_cycles cycles.
     * @p from_cache marks a point served without simulation (cache hit
     * or resume-journal replay): it counts toward the hit gauge and
     * contributes no sim-cycles worth of throughput.
     */
    void pointDone(std::uint64_t sim_cycles, bool from_cache = false);

    /**
     * Explicit-clock variant of pointDone for unit tests: @p now_secs
     * is wall time since start(). The ETA math lives behind this entry
     * point so it can be exercised deterministically.
     */
    void pointDoneAt(std::uint64_t sim_cycles, double now_secs,
                     bool from_cache = false);

    /** Completed points served from the cache/journal. */
    std::uint64_t cacheHits();
    /** Completed points that had to simulate. */
    std::uint64_t cacheMisses();

    /**
     * Estimated seconds until the last point completes: the EWMA of
     * per-point completion gaps times the number of remaining points.
     * Completion gaps — not per-point durations — so a parallel sweep's
     * ETA reflects the pool's aggregate throughput. 0 before the first
     * completion and after the last.
     */
    double etaSeconds();

    /** Prints the final line and a newline (leaves the line visible). */
    void finish();

  private:
    void printLine(bool last, double now_secs);
    double etaLocked() const;

    std::mutex mu_;
    std::string label_;
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::uint64_t simCycles_ = 0;
    bool cacheDisplay_ = false;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t cacheMisses_ = 0;
    std::chrono::steady_clock::time_point start_;
    /** Completion time of the most recent point, seconds since start(). */
    double lastDone_ = 0.0;
    /** EWMA of gaps between consecutive point completions (seconds). */
    double ewmaGap_ = 0.0;
    bool active_ = false;
};

}  // namespace bowsim::metrics

#endif  // BOWSIM_METRICS_PROGRESS_HPP
