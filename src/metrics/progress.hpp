#ifndef BOWSIM_METRICS_PROGRESS_HPP
#define BOWSIM_METRICS_PROGRESS_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

/**
 * @file
 * Sweep heartbeat (bench flag --progress): one stderr status line,
 * rewritten after every finished sweep point, showing points done/total,
 * aggregate simulated cycles per wall-clock second, and a naive ETA.
 * Thread-safe — the sweep runner's workers report completions
 * concurrently. Purely observational: it never touches simulator state
 * and writes only to stderr, so stdout tables and JSON artifacts are
 * byte-identical with and without it.
 */

namespace bowsim::metrics {

class ProgressMeter {
  public:
    /** Begins a run of @p total points labeled @p label. */
    void start(std::string label, std::size_t total);

    /** Records one finished point that simulated @p sim_cycles cycles. */
    void pointDone(std::uint64_t sim_cycles);

    /** Prints the final line and a newline (leaves the line visible). */
    void finish();

  private:
    void printLine(bool last);

    std::mutex mu_;
    std::string label_;
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::uint64_t simCycles_ = 0;
    std::chrono::steady_clock::time_point start_;
    bool active_ = false;
};

}  // namespace bowsim::metrics

#endif  // BOWSIM_METRICS_PROGRESS_HPP
