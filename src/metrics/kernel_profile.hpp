#ifndef BOWSIM_METRICS_KERNEL_PROFILE_HPP
#define BOWSIM_METRICS_KERNEL_PROFILE_HPP

#include <string>

#include "src/stats/stats.hpp"

/**
 * @file
 * nvprof-style per-kernel profile report (bench flag --profile; see
 * docs/METRICS.md). Everything is derived from the KernelStats a run
 * already produced — peak-vs-mean warp occupancy, the per-scheduler-unit
 * issue distribution, the ranked issue-stall causes, and the warps with
 * the largest back-off residency. The unit/stall tables need the stall
 * breakdown (GpuConfig::collectStallBreakdown or an attached trace
 * sink); without it the report says so instead of printing zeros.
 */

namespace bowsim::metrics {

/** Formatted multi-section report over one kernel's statistics. */
std::string profileReport(const KernelStats &stats);

}  // namespace bowsim::metrics

#endif  // BOWSIM_METRICS_KERNEL_PROFILE_HPP
