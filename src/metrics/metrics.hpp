#ifndef BOWSIM_METRICS_METRICS_HPP
#define BOWSIM_METRICS_METRICS_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/**
 * @file
 * Counter/gauge registry behind the sampled-metrics layer
 * (docs/METRICS.md). A MetricsRegistry holds an ordered column schema
 * plus the sampled rows; the Metrics handle wraps a registry pointer and
 * turns every operation into a no-op when none is attached, mirroring
 * the TraceSink null-path idiom (src/trace/trace.hpp) so the disabled
 * path costs one pointer test per call site.
 *
 * The registry does not aggregate by itself: values are *pulled* by the
 * MetricsSampler at the cycle barrier of Gpu::launch, never pushed from
 * SM-private compute state — that is what keeps sampled series
 * bit-identical for any --sm-threads (see docs/METRICS.md for the
 * determinism contract).
 */

namespace bowsim::metrics {

/** How a column's values behave over time (and how they are emitted). */
enum class Kind {
    /** Monotonically non-decreasing event count; emitted as an integer. */
    Counter,
    /** Instantaneous state sampled at the barrier; emitted as an integer. */
    Gauge,
    /** Derived ratio (e.g. IPC); emitted as a double. */
    Rate,
};

const char *toString(Kind kind);

/** One column of the sampled series. */
struct MetricColumn {
    std::string name;
    Kind kind = Kind::Counter;
};

/** Ordered column schema plus the sampled rows. */
class MetricsRegistry {
  public:
    /** Appends a column; returns its index. */
    std::size_t define(std::string name, Kind kind);

    std::size_t size() const { return columns_.size(); }
    const std::vector<MetricColumn> &columns() const { return columns_; }

    /** Appends one sample; @p row must have exactly size() entries. */
    void addRow(std::vector<double> row);

    const std::vector<std::vector<double>> &rows() const { return rows_; }

  private:
    std::vector<MetricColumn> columns_;
    std::vector<std::vector<double>> rows_;
};

/**
 * Null-handle over a registry: all operations no-op (one pointer test)
 * when default-constructed, exactly like trace::Tracer over TraceSink.
 */
class Metrics {
  public:
    Metrics() = default;
    explicit Metrics(MetricsRegistry *reg) : reg_(reg) {}

    bool enabled() const { return reg_ != nullptr; }

    std::size_t
    define(std::string name, Kind kind)
    {
        return reg_ ? reg_->define(std::move(name), kind) : 0;
    }

    void
    addRow(std::vector<double> row)
    {
        if (reg_)
            reg_->addRow(std::move(row));
    }

    MetricsRegistry *registry() const { return reg_; }

  private:
    MetricsRegistry *reg_ = nullptr;
};

}  // namespace bowsim::metrics

#endif  // BOWSIM_METRICS_METRICS_HPP
