#include "src/metrics/sampler.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/common/log.hpp"
#include "src/harness/json.hpp"
#include "src/mem/l2_bank.hpp"
#include "src/sim/sm_core.hpp"
#include "src/stats/stats.hpp"
#include "src/syncprof/syncprof.hpp"

namespace bowsim::metrics {

namespace {

/** Aggregate column indices; the per-SM block starts after these. */
enum AggCol : std::size_t {
    kCycle = 0,
    kLaunch,
    kIpc,
    kWarpInstructions,
    kThreadInstructions,
    kL1Accesses,
    kL1Misses,
    kL2Accesses,
    kL2Misses,
    kDramAccesses,
    kDramRowActivations,
    kIcntPackets,
    kAtomics,
    kAtomicWaitCycles,
    kSibConfirms,
    kSibEvicts,
    kLockSuccess,
    kInterWarpFail,
    kIntraWarpFail,
    kWaitExitSuccess,
    kWaitExitFail,
    kResidentWarpCycles,
    kBackedOffWarpCycles,
    kSmCycles,
    kDelayLimitCycleSum,
    kResidentWarps,
    kEligibleWarps,
    kSpinningWarps,
    kBackedOffWarps,
    kMshrOccupancy,
    kSibOccupancy,
    kNumAggCols,
};

/** Per-SM block layout (offsets from the SM's first column). */
enum SmCol : std::size_t {
    kSmWarpInstructions = 0,
    kSmIpc,
    kSmResidentWarps,
    kSmEligibleWarps,
    kSmSpinningWarps,
    kSmBackedOffWarps,
    kSmDelayLimit,
    kSmMshr,
    kSmSibOccupancy,
    kNumSmCols,
};

}  // namespace

std::size_t
MetricsSampler::smColBase(unsigned sm) const
{
    return kNumAggCols + extraCols_ +
           static_cast<std::size_t>(sm) * kNumSmCols;
}

MetricsSampler::MetricsSampler(Cycle interval, std::string path)
    : interval_(interval), path_(std::move(path))
{
    if (interval_ == 0)
        fatal("metrics sample interval must be >= 1");
    nextSampleGlobal_ = interval_;
}

void
MetricsSampler::defineColumns(unsigned num_cores, unsigned num_devices,
                              bool has_sync)
{
    reg_.define("cycle", Kind::Counter);
    reg_.define("launch", Kind::Counter);
    reg_.define("ipc", Kind::Rate);
    reg_.define("warp_instructions", Kind::Counter);
    reg_.define("thread_instructions", Kind::Counter);
    reg_.define("l1_accesses", Kind::Counter);
    reg_.define("l1_misses", Kind::Counter);
    reg_.define("l2_accesses", Kind::Counter);
    reg_.define("l2_misses", Kind::Counter);
    reg_.define("dram_accesses", Kind::Counter);
    reg_.define("dram_row_activations", Kind::Counter);
    reg_.define("icnt_packets", Kind::Counter);
    reg_.define("atomics", Kind::Counter);
    reg_.define("atomic_wait_cycles", Kind::Counter);
    reg_.define("sib_confirms", Kind::Counter);
    reg_.define("sib_evicts", Kind::Counter);
    reg_.define("lock_success", Kind::Counter);
    reg_.define("inter_warp_fail", Kind::Counter);
    reg_.define("intra_warp_fail", Kind::Counter);
    reg_.define("wait_exit_success", Kind::Counter);
    reg_.define("wait_exit_fail", Kind::Counter);
    reg_.define("resident_warp_cycles", Kind::Counter);
    reg_.define("backed_off_warp_cycles", Kind::Counter);
    reg_.define("sm_cycles", Kind::Counter);
    reg_.define("delay_limit_cycle_sum", Kind::Counter);
    reg_.define("resident_warps", Kind::Gauge);
    reg_.define("eligible_warps", Kind::Gauge);
    reg_.define("spinning_warps", Kind::Gauge);
    reg_.define("backed_off_warps", Kind::Gauge);
    reg_.define("mshr_occupancy", Kind::Gauge);
    reg_.define("sib_occupancy", Kind::Gauge);
    // Multi-device link traffic; absent from single-device schemas so
    // those stay byte-identical to the pre-device-split layout.
    if (num_devices > 1) {
        reg_.define("link_packets", Kind::Counter);
        for (unsigned d = 0; d < num_devices; ++d) {
            reg_.define("d" + std::to_string(d) + ".link_packets",
                        Kind::Counter);
        }
    }
    // Sync-contention columns (docs/SYNC.md); absent unless a profiler
    // is attached, so default schemas stay byte-identical. Gauges, not
    // counters: the registry outlives launches, so its totals are
    // already absolute and must not be re-based at launch boundaries.
    if (has_sync) {
        reg_.define("sync_contended_lines", Kind::Gauge);
        reg_.define("sync_failed_cas_share", Kind::Rate);
        reg_.define("sync_peak_waiters", Kind::Gauge);
    }
    const unsigned per_device = num_cores / num_devices;
    for (unsigned sm = 0; sm < num_cores; ++sm) {
        std::string p;
        if (num_devices > 1)
            p = "d" + std::to_string(sm / per_device) + ".";
        p += "sm" + std::to_string(num_devices > 1 ? sm % per_device : sm) +
             ".";
        reg_.define(p + "warp_instructions", Kind::Counter);
        reg_.define(p + "ipc", Kind::Rate);
        reg_.define(p + "resident_warps", Kind::Gauge);
        reg_.define(p + "eligible_warps", Kind::Gauge);
        reg_.define(p + "spinning_warps", Kind::Gauge);
        reg_.define(p + "backed_off_warps", Kind::Gauge);
        reg_.define(p + "delay_limit", Kind::Gauge);
        reg_.define(p + "mshr", Kind::Gauge);
        reg_.define(p + "sib_occupancy", Kind::Gauge);
    }
    base_.assign(reg_.size(), 0.0);
}

void
MetricsSampler::beginLaunch(const std::string &kernel, unsigned num_cores,
                            unsigned num_devices, bool has_sync)
{
    if (num_devices == 0)
        num_devices = 1;
    if (reg_.size() == 0) {
        numCores_ = num_cores;
        numDevices_ = num_devices;
        hasSync_ = has_sync;
        linkCols_ = num_devices > 1 ? 1 + num_devices : 0;
        extraCols_ = linkCols_ + (has_sync ? 3 : 0);
        defineColumns(num_cores, num_devices, has_sync);
    } else if (num_cores != numCores_ || num_devices != numDevices_ ||
               has_sync != hasSync_) {
        fatal("metrics sampler reused across launches with ", num_cores,
              " cores / ", num_devices, " devices / sync=", has_sync,
              " (schema built for ", numCores_, " / ", numDevices_,
              " / sync=", hasSync_, ")");
    }
    kernels_.push_back(kernel);
}

std::vector<double>
MetricsSampler::collectLocal(Cycle now, const SampleSources &src) const
{
    (void)now;
    std::vector<double> local(reg_.size(), 0.0);

    // Launch-wide counters: every device's launch aggregate plus every
    // SM shard, summed in device/SM-id order (exact integer adds —
    // identical to the inline-mode running totals by the phase-split
    // stat contract).
    auto fold = [&](auto &&get) {
        std::uint64_t v = 0;
        for (const KernelStats *ls : src.launchStats)
            v += get(*ls);
        for (const auto &s : *src.shards)
            v += get(*s);
        return static_cast<double>(v);
    };
    local[kWarpInstructions] =
        fold([](const KernelStats &s) { return s.warpInstructions; });
    local[kThreadInstructions] =
        fold([](const KernelStats &s) { return s.threadInstructions; });
    local[kL1Accesses] =
        fold([](const KernelStats &s) { return s.l1Accesses; });
    local[kL1Misses] = fold([](const KernelStats &s) { return s.l1Misses; });
    local[kLockSuccess] =
        fold([](const KernelStats &s) { return s.outcomes.lockSuccess; });
    local[kInterWarpFail] =
        fold([](const KernelStats &s) { return s.outcomes.interWarpFail; });
    local[kIntraWarpFail] =
        fold([](const KernelStats &s) { return s.outcomes.intraWarpFail; });
    local[kWaitExitSuccess] = fold(
        [](const KernelStats &s) { return s.outcomes.waitExitSuccess; });
    local[kWaitExitFail] =
        fold([](const KernelStats &s) { return s.outcomes.waitExitFail; });
    local[kResidentWarpCycles] =
        fold([](const KernelStats &s) { return s.residentWarpCycles; });
    local[kBackedOffWarpCycles] =
        fold([](const KernelStats &s) { return s.backedOffWarpCycles; });
    local[kSmCycles] = fold([](const KernelStats &s) { return s.smCycles; });
    local[kDelayLimitCycleSum] =
        fold([](const KernelStats &s) { return s.delayLimitCycleSum; });

    MemSystemStats mem;
    std::vector<MemSystemStats> per_dev_mem;
    per_dev_mem.reserve(src.memsys.size());
    for (const MemorySystem *ms : src.memsys) {
        per_dev_mem.push_back(ms->stats());
        mem += per_dev_mem.back();
    }
    local[kL2Accesses] = static_cast<double>(mem.l2Accesses);
    local[kL2Misses] = static_cast<double>(mem.l2Misses);
    local[kDramAccesses] = static_cast<double>(mem.dramAccesses);
    local[kDramRowActivations] =
        static_cast<double>(mem.dramRowActivations);
    local[kIcntPackets] = static_cast<double>(mem.icntPackets);
    local[kAtomics] = static_cast<double>(mem.atomics);
    local[kAtomicWaitCycles] = static_cast<double>(mem.atomicWaitCycles);
    if (linkCols_ != 0) {
        local[kNumAggCols] = static_cast<double>(mem.linkPackets);
        for (std::size_t d = 0; d < per_dev_mem.size(); ++d) {
            local[kNumAggCols + 1 + d] =
                static_cast<double>(per_dev_mem[d].linkPackets);
        }
    }
    if (hasSync_ && src.sync != nullptr) {
        const std::size_t b = kNumAggCols + linkCols_;
        const std::uint64_t attempts = src.sync->casAttempts();
        const std::uint64_t failures = src.sync->casFailures();
        local[b + 0] = static_cast<double>(src.sync->contendedLines());
        local[b + 1] = attempts == 0 ? 0.0
                                     : static_cast<double>(failures) /
                                           static_cast<double>(attempts);
        local[b + 2] = static_cast<double>(src.sync->peakWaiters());
    }

    // Per-SM state: all SM-private and settled at the commit barrier.
    // Cores are indexed by flat (device-major) position — SmCore::id()
    // is device-local and repeats across devices.
    std::uint64_t resident = 0, eligible = 0, spinning = 0, backed = 0;
    std::uint64_t mshr = 0, sib_occ = 0, confirms = 0, evicts = 0;
    for (std::size_t flat = 0; flat < src.cores->size(); ++flat) {
        const auto &core = (*src.cores)[flat];
        const std::size_t b = smColBase(static_cast<unsigned>(flat));
        const std::uint64_t r = core->residentWarps();
        const std::uint64_t e = core->eligibleWarpCount();
        const std::uint64_t sp = core->spinningWarpCount();
        const std::uint64_t bo = core->backoff().backedOffCount();
        const std::uint64_t m = core->ldst().mshrOccupancy();
        const std::uint64_t so = core->ddos().table().size();
        resident += r;
        eligible += e;
        spinning += sp;
        backed += bo;
        mshr += m;
        sib_occ += so;
        confirms += core->ddos().table().confirms();
        evicts += core->ddos().table().evicts();
        local[b + kSmWarpInstructions] =
            static_cast<double>(core->issuedInstructions());
        local[b + kSmResidentWarps] = static_cast<double>(r);
        local[b + kSmEligibleWarps] = static_cast<double>(e);
        local[b + kSmSpinningWarps] = static_cast<double>(sp);
        local[b + kSmBackedOffWarps] = static_cast<double>(bo);
        local[b + kSmDelayLimit] =
            static_cast<double>(core->backoff().delayLimit());
        local[b + kSmMshr] = static_cast<double>(m);
        local[b + kSmSibOccupancy] = static_cast<double>(so);
    }
    local[kResidentWarps] = static_cast<double>(resident);
    local[kEligibleWarps] = static_cast<double>(eligible);
    local[kSpinningWarps] = static_cast<double>(spinning);
    local[kBackedOffWarps] = static_cast<double>(backed);
    local[kMshrOccupancy] = static_cast<double>(mshr);
    local[kSibOccupancy] = static_cast<double>(sib_occ);
    local[kSibConfirms] = static_cast<double>(confirms);
    local[kSibEvicts] = static_cast<double>(evicts);
    return local;
}

void
MetricsSampler::emitRow(Cycle now, const std::vector<double> &local)
{
    const auto &cols = reg_.columns();
    std::vector<double> row(local.size(), 0.0);
    for (std::size_t c = 0; c < local.size(); ++c) {
        row[c] = cols[c].kind == Kind::Counter ? base_[c] + local[c]
                                               : local[c];
    }
    const Cycle global = cycleBase_ + now;
    row[kCycle] = static_cast<double>(global);
    row[kLaunch] = static_cast<double>(launchIndex_);
    const double cyc = static_cast<double>(global);
    row[kIpc] = cyc > 0.0 ? row[kWarpInstructions] / cyc : 0.0;
    for (unsigned sm = 0; sm < numCores_; ++sm) {
        const std::size_t b = smColBase(sm);
        row[b + kSmIpc] =
            cyc > 0.0 ? row[b + kSmWarpInstructions] / cyc : 0.0;
    }
    reg_.addRow(std::move(row));
    lastSampled_ = global;
    haveSampled_ = true;
}

void
MetricsSampler::sample(Cycle now, const SampleSources &src)
{
    emitRow(now, collectLocal(now, src));
    while (nextSampleGlobal_ <= cycleBase_ + now)
        nextSampleGlobal_ += interval_;
}

void
MetricsSampler::endLaunch(Cycle final_now, const SampleSources &src)
{
    const std::vector<double> local = collectLocal(final_now, src);
    // Boundary row: the final cycle of every launch is recorded even
    // when it falls off the sample grid, so the last row's counters
    // always match the launch's KernelStats (json_check --metrics).
    if (!haveSampled_ || lastSampled_ != cycleBase_ + final_now)
        emitRow(final_now, local);
    // Fold the launch's counters into the cross-launch bases so the
    // next launch's (launch-local, freshly zeroed) counters continue
    // the monotone series.
    const auto &cols = reg_.columns();
    for (std::size_t c = kIpc; c < local.size(); ++c) {
        if (cols[c].kind == Kind::Counter)
            base_[c] += local[c];
    }
    cycleBase_ += final_now;
    ++launchIndex_;
    while (nextSampleGlobal_ <= cycleBase_)
        nextSampleGlobal_ += interval_;
}

std::string
MetricsSampler::serialize() const
{
    const auto &cols = reg_.columns();
    const bool csv = path_.size() >= 4 &&
                     path_.compare(path_.size() - 4, 4, ".csv") == 0;
    if (csv) {
        std::string out;
        for (std::size_t c = 0; c < cols.size(); ++c) {
            if (c)
                out += ',';
            out += cols[c].name;
        }
        out += '\n';
        char buf[64];
        for (const auto &row : reg_.rows()) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                if (c)
                    out += ',';
                if (cols[c].kind == Kind::Rate) {
                    std::snprintf(buf, sizeof buf, "%.17g", row[c]);
                } else {
                    std::snprintf(buf, sizeof buf, "%" PRId64,
                                  static_cast<std::int64_t>(row[c]));
                }
                out += buf;
            }
            out += '\n';
        }
        return out;
    }

    harness::Json doc = harness::Json::object();
    harness::Json kernels = harness::Json::array();
    for (const std::string &k : kernels_)
        kernels.push(k);
    doc.set("kernels", std::move(kernels));
    doc.set("interval", static_cast<std::uint64_t>(interval_));
    harness::Json columns = harness::Json::array();
    for (const MetricColumn &c : cols) {
        harness::Json col = harness::Json::object();
        col.set("name", c.name);
        col.set("kind", toString(c.kind));
        columns.push(std::move(col));
    }
    doc.set("columns", std::move(columns));
    harness::Json rows = harness::Json::array();
    for (const auto &row : reg_.rows()) {
        harness::Json r = harness::Json::array();
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (cols[c].kind == Kind::Rate)
                r.push(row[c]);
            else
                r.push(static_cast<std::int64_t>(row[c]));
        }
        rows.push(std::move(r));
    }
    doc.set("rows", std::move(rows));
    return doc.dump() + "\n";
}

void
MetricsSampler::writeFile() const
{
    if (path_.empty())
        return;
    std::ofstream out(path_);
    if (!out)
        fatal("cannot write metrics file '", path_, "'");
    out << serialize();
}

}  // namespace bowsim::metrics
