#ifndef BOWSIM_METRICS_SAMPLER_HPP
#define BOWSIM_METRICS_SAMPLER_HPP

#include <memory>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/metrics/metrics.hpp"

/**
 * @file
 * Time-series sampling of simulator state (docs/METRICS.md). A
 * MetricsSampler attached to a Gpu (Gpu::setMetrics) snapshots a fixed
 * column schema every `interval` simulated cycles into a MetricsRegistry,
 * plus one boundary row at the end of every launch. Sampling is *pull*:
 * Gpu::launch calls sample() on the coordinator thread at the end of a
 * cycle — after the phase-split commit barrier — so every value is read
 * from serially-merged or SM-private-but-settled state and the series is
 * bit-identical for any --sm-threads. The idle-cycle fast-forward clamps
 * its jump targets to the next sample cycle (over-conservative, hence
 * legal under the PR 3 horizon contract), so skip-on and skip-off runs
 * produce byte-identical series too.
 *
 * Samples sit on a *global* cycle grid (multiples of the interval across
 * launches): counter columns accumulate over launches via per-column
 * bases folded at endLaunch(), so the whole series is monotone even for
 * multi-launch harnesses (e.g. NW's two kernels).
 */

namespace bowsim {
class SmCore;
class MemorySystem;
struct KernelStats;
}  // namespace bowsim

namespace bowsim::syncprof {
class SyncProfileRegistry;
}

namespace bowsim::metrics {

/** Where sample() reads from; everything is owned by Gpu::launch.
 *  Multi-device runs list one launch aggregate and one memory system
 *  per device (device-id order); `cores` and `shards` are flat,
 *  device-major vectors covering every SM in the system. */
struct SampleSources {
    const std::vector<std::unique_ptr<SmCore>> *cores = nullptr;
    /** Per-device launch aggregates (inline-mode counters + retired-SM
     *  idle accounting applied by the coordinator). */
    std::vector<const KernelStats *> launchStats;
    /** Per-SM stat shards (phase-split mode; empty when inline). Counter
     *  columns fold launchStats + all shards, which covers both modes. */
    const std::vector<std::unique_ptr<KernelStats>> *shards = nullptr;
    /** Per-device memory systems (device-id order). */
    std::vector<const MemorySystem *> memsys;
    /** Sync-contention profiler, when one is attached (docs/SYNC.md);
     *  feeds the sync_* columns. Read at the commit barrier like every
     *  other source, so the values are settled and deterministic. */
    const syncprof::SyncProfileRegistry *sync = nullptr;
};

class MetricsSampler {
  public:
    /**
     * @param interval sample spacing in simulated cycles (>= 1)
     * @param path     output file ("" = keep in memory only); a ".csv"
     *                 suffix selects CSV, anything else JSON
     */
    explicit MetricsSampler(Cycle interval, std::string path = "");

    /**
     * Starts a launch: defines the column schema on the first call (the
     * per-SM column block needs @p num_cores — the *system-wide* SM
     * count — and @p num_devices; neither may change between launches
     * of one sampler). Multi-device schemas insert link-traffic columns
     * after the aggregate block and prefix per-SM blocks with the
     * device, e.g. "d1.sm0."; @p has_sync appends the sync_* columns
     * after the link block. Default schemas (single device, no sync
     * profiler) are byte-identical to the pre-device-split layout.
     */
    void beginLaunch(const std::string &kernel, unsigned num_cores,
                     unsigned num_devices = 1, bool has_sync = false);

    /**
     * Launch-local cycle of the next due sample (the global grid point
     * minus the cycles consumed by earlier launches). Gpu::launch
     * samples when `now >= nextSampleCycle()` and uses the same value to
     * clamp idle-skip jump targets.
     */
    Cycle nextSampleCycle() const { return nextSampleGlobal_ - cycleBase_; }

    /** Emits one row at launch-local cycle @p now and advances the grid. */
    void sample(Cycle now, const SampleSources &src);

    /**
     * Ends a launch at launch-local cycle @p final_now: emits the
     * boundary row (unless a grid sample already landed there), folds
     * the launch's counters into the cross-launch bases, and re-anchors
     * the grid for the next launch.
     */
    void endLaunch(Cycle final_now, const SampleSources &src);

    /** The sampled series (schema + rows). */
    const MetricsRegistry &registry() const { return reg_; }

    Cycle interval() const { return interval_; }

    /** Serializes the series (JSON, or CSV for a ".csv" path). */
    std::string serialize() const;

    /** Writes serialize() to the constructor path; no-op when "". */
    void writeFile() const;

  private:
    std::vector<double> collectLocal(Cycle now,
                                     const SampleSources &src) const;
    void emitRow(Cycle now, const std::vector<double> &local);
    void defineColumns(unsigned num_cores, unsigned num_devices,
                       bool has_sync);
    /** First column of the per-SM block for flat (device-major) SM
     *  index @p sm. */
    std::size_t smColBase(unsigned sm) const;

    Cycle interval_;
    std::string path_;
    MetricsRegistry reg_;
    std::vector<std::string> kernels_;
    unsigned numCores_ = 0;
    unsigned numDevices_ = 1;
    /** Columns between the aggregate and per-SM blocks: link-traffic
     *  (0 single-device; 1 aggregate + one per device otherwise) plus
     *  the sync_* block (3 when a sync profiler is attached). */
    std::size_t extraCols_ = 0;
    /** Link-traffic share of extraCols_ (sync columns follow it). */
    std::size_t linkCols_ = 0;
    bool hasSync_ = false;

    /** Simulated cycles consumed by completed launches (grid anchor). */
    Cycle cycleBase_ = 0;
    /** Next sample, in global (cross-launch) cycles. */
    Cycle nextSampleGlobal_ = 0;
    /** Per-column counter bases folded at endLaunch(). */
    std::vector<double> base_;
    std::size_t launchIndex_ = 0;
    Cycle lastSampled_ = 0;
    bool haveSampled_ = false;
};

}  // namespace bowsim::metrics

#endif  // BOWSIM_METRICS_SAMPLER_HPP
