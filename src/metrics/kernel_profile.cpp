#include "src/metrics/kernel_profile.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/trace/trace.hpp"

namespace bowsim::metrics {

namespace {

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
}

}  // namespace

std::string
profileReport(const KernelStats &s)
{
    std::ostringstream os;
    os << std::fixed;
    os << "== profile: " << s.kernel << " ==\n";

    // --- occupancy: peak vs mean resident warps ----------------------
    const double mean_resident =
        s.cycles == 0 ? 0.0
                      : static_cast<double>(s.residentWarpCycles) /
                            static_cast<double>(s.cycles);
    std::uint64_t peak_resident = 0;
    for (std::uint64_t p : s.peakResidentPerSm)
        peak_resident += p;
    os << "occupancy: mean " << std::setprecision(1) << mean_resident
       << " resident warps";
    if (peak_resident != 0) {
        os << ", peak " << peak_resident << " (sum of per-SM peaks, "
           << std::setprecision(1) << pct(s.residentWarpCycles,
                                          peak_resident * s.cycles)
           << "% of peak-cycles)";
    }
    os << "; backed-off " << std::setprecision(1)
       << s.backedOffFraction() * 100.0 << "% of resident warp-cycles\n";

    // --- per-scheduler-unit issue distribution ------------------------
    if (!s.unitIssues.empty() && s.unitsPerSm != 0) {
        os << "issue distribution (instructions per scheduler unit):\n";
        os << "  " << std::left << std::setw(8) << "sm.unit" << std::right
           << std::setw(14) << "issued" << std::setw(10) << "share"
           << "\n";
        for (std::size_t i = 0; i < s.unitIssues.size(); ++i) {
            if (s.unitIssues[i] == 0)
                continue;
            std::ostringstream label;
            label << "sm" << i / s.unitsPerSm << ".u" << i % s.unitsPerSm;
            os << "  " << std::left << std::setw(8) << label.str()
               << std::right << std::setw(14) << s.unitIssues[i]
               << std::setw(9) << std::setprecision(1)
               << pct(s.unitIssues[i], s.warpInstructions) << "%\n";
        }
    }

    if (!s.hasStallBreakdown()) {
        os << "(no stall breakdown: run with --profile through the bench "
              "harness, set GpuConfig::collectStallBreakdown, or attach "
              "a trace sink)\n";
        return os.str();
    }

    // --- ranked stall causes ------------------------------------------
    const auto totals = s.stallTotals();
    std::vector<unsigned> order;
    for (unsigned c = 0; c < trace::kNumStallCauses; ++c) {
        if (totals[c] != 0 &&
            static_cast<trace::StallCause>(c) != trace::StallCause::Issued)
            order.push_back(c);
    }
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return totals[a] != totals[b] ? totals[a] > totals[b] : a < b;
    });
    os << "stall causes (% of resident warp-cycles):\n";
    for (unsigned c : order) {
        os << "  " << std::left << std::setw(14)
           << trace::toString(static_cast<trace::StallCause>(c))
           << std::right << std::setw(14) << totals[c] << std::setw(9)
           << std::setprecision(1) << pct(totals[c], s.residentWarpCycles)
           << "%\n";
    }

    // --- top warps by back-off residency ------------------------------
    constexpr unsigned kTopK = 8;
    constexpr auto backoff =
        static_cast<std::size_t>(trace::StallCause::Backoff);
    struct WarpRow {
        std::size_t row;
        std::uint64_t cycles;
    };
    std::vector<WarpRow> warps;
    const std::size_t rows = s.stallWarpsPerSm == 0
                                 ? 0
                                 : s.stallCounts.size() /
                                       trace::kNumStallCauses;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::uint64_t v =
            s.stallCounts[r * trace::kNumStallCauses + backoff];
        if (v != 0)
            warps.push_back({r, v});
    }
    std::sort(warps.begin(), warps.end(),
              [](const WarpRow &a, const WarpRow &b) {
                  return a.cycles != b.cycles ? a.cycles > b.cycles
                                              : a.row < b.row;
              });
    if (!warps.empty()) {
        os << "top warps by back-off residency:\n";
        for (std::size_t i = 0; i < warps.size() && i < kTopK; ++i) {
            os << "  sm" << warps[i].row / s.stallWarpsPerSm << ".w"
               << warps[i].row % s.stallWarpsPerSm << ": "
               << warps[i].cycles << " cycles (" << std::setprecision(1)
               << pct(warps[i].cycles, s.backedOffWarpCycles)
               << "% of backed-off warp-cycles)\n";
        }
    }
    return os.str();
}

}  // namespace bowsim::metrics
