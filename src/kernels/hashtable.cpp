#include "src/kernels/hashtable.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

/** Fig. 1a kernel. Node layout: {key, next} (16 bytes). */
constexpr const char *kHtSource = R"(
.kernel ht_insert
.param 6
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;       // global thread id
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;             // stride = total threads
  ld.param.u64 %r10, [0];        // keys
  ld.param.u64 %r11, [8];        // locks
  ld.param.u64 %r12, [16];       // heads
  ld.param.u64 %r13, [24];       // nodes
  ld.param.u64 %r14, [32];       // buckets
  ld.param.u64 %r15, [40];       // numKeys
  mov %r3, %r0;                  // i = tid
OUTER:
  setp.ge.s64 %p0, %r3, %r15;
  @%p0 exit;
  shl %r4, %r3, 3;
  add %r4, %r10, %r4;
  ld.global.u64 %r5, [%r4];      // key
  rem %r6, %r5, %r14;            // bucket
  shl %r6, %r6, 3;
  add %r7, %r11, %r6;            // &locks[bucket]
  add %r8, %r12, %r6;            // &heads[bucket]
  shl %r9, %r3, 4;
  add %r9, %r13, %r9;            // &nodes[i]
  st.global.u64 [%r9], %r5;      // node.key = key
  mov %r20, 0;                   // done = false
.annot sync_begin
LOOP:
  .annot acquire
  atom.global.cas.b64 %r16, [%r7], 0, 1;
  setp.ne.s64 %p1, %r16, 0;
  @%p1 bra SKIP;
.annot sync_end
  membar;
  ld.global.u64 %r17, [%r8];     // head
  st.global.u64 [%r9+8], %r17;   // node.next = head
  st.global.u64 [%r8], %r9;      // head = node
  mov %r20, 1;                   // done = true
  membar;
.annot sync_begin
  atom.global.exch.b64 %r18, [%r7], 0;
SKIP:
  setp.eq.s64 %p2, %r20, 0;
  .annot spin
  @%p2 bra LOOP;
.annot sync_end
  add %r3, %r3, %r2;
  bra.uni OUTER;
)";

/**
 * Fig. 3 variant: the same kernel with the software back-off delay code
 * of Fig. 3a on the failure path (param[6] = DELAY_FACTOR; threads wait
 * DELAY_FACTOR * ctaid cycles before retrying the acquire).
 */
constexpr const char *kHtSwDelaySource = R"(
.kernel ht_insert_swdelay
.param 7
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;
  ld.param.u64 %r10, [0];
  ld.param.u64 %r11, [8];
  ld.param.u64 %r12, [16];
  ld.param.u64 %r13, [24];
  ld.param.u64 %r14, [32];
  ld.param.u64 %r15, [40];
  ld.param.u64 %r19, [48];       // delay factor
  mov %r26, %ctaid;
  mul %r19, %r19, %r26;          // threshold = factor * ctaid
  mov %r3, %r0;
OUTER:
  setp.ge.s64 %p0, %r3, %r15;
  @%p0 exit;
  shl %r4, %r3, 3;
  add %r4, %r10, %r4;
  ld.global.u64 %r5, [%r4];
  rem %r6, %r5, %r14;
  shl %r6, %r6, 3;
  add %r7, %r11, %r6;
  add %r8, %r12, %r6;
  shl %r9, %r3, 4;
  add %r9, %r13, %r9;
  st.global.u64 [%r9], %r5;
  mov %r20, 0;
.annot sync_begin
LOOP:
  .annot acquire
  atom.global.cas.b64 %r16, [%r7], 0, 1;
  setp.ne.s64 %p1, %r16, 0;
  @%p1 bra BACKOFF;
.annot sync_end
  membar;
  ld.global.u64 %r17, [%r8];
  st.global.u64 [%r9+8], %r17;
  st.global.u64 [%r8], %r9;
  mov %r20, 1;
  membar;
.annot sync_begin
  atom.global.exch.b64 %r18, [%r7], 0;
  bra.uni SKIP;
BACKOFF:
  clock %r21;                    // start = clock()
DELAY:
  clock %r22;                    // now = clock()
  sub %r23, %r22, %r21;
  setp.lt.s64 %p3, %r23, %r19;   // cycles < threshold?
  @%p3 bra DELAY;
SKIP:
  setp.eq.s64 %p2, %r20, 0;
  .annot spin
  @%p2 bra LOOP;
.annot sync_end
  add %r3, %r3, %r2;
  bra.uni OUTER;
)";

class HashtableHarness : public KernelHarness {
  public:
    explicit HashtableHarness(const HashtableParams &p)
        : KernelHarness("HT"), p_(p),
          prog_(assemble(p.delayFactor > 0 ? kHtSwDelaySource : kHtSource))
    {
        if (p_.buckets == 0 || p_.insertions == 0)
            fatal("HT: buckets and insertions must be positive");
    }

    void
    setup(Gpu &gpu) override
    {
        keys_.resize(p_.insertions);
        std::uint64_t x = p_.seed;
        for (auto &k : keys_) {
            // xorshift64*: deterministic pseudo-random keys.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            k = static_cast<Word>((x * 0x2545F4914F6CDD1Dull) >> 16 &
                                  0x7fffffff);
        }
        keysAddr_ = gpu.malloc(p_.insertions * 8);
        locksAddr_ = gpu.malloc(p_.buckets * 8);
        headsAddr_ = gpu.malloc(p_.buckets * 8);
        nodesAddr_ = gpu.malloc(std::uint64_t{p_.insertions} * 16);
        if (gpu.config().numDevices > 1)
            shardKeysByHome(gpu.config().numDevices);
        gpu.memcpyToDevice(keysAddr_, keys_.data(), p_.insertions * 8);
    }

    /**
     * Multi-device layout (docs/PERF.md, "Device sharding"): reorders
     * the key array so each position is consumed by a thread on the
     * device that homes its bucket (the heads line — the bucket's lock
     * atomics are device-scope and resolve locally regardless). The
     * key multiset is unchanged — validate() is order-blind — only the
     * work-to-device assignment moves, which keeps the bucket-chain
     * traffic device-local instead of paying the inter-device link on
     * nearly every insert.
     */
    void
    shardKeysByHome(unsigned n)
    {
        const unsigned total_threads = p_.ctas * p_.threadsPerCta;
        const unsigned chunk = (p_.ctas + n - 1) / n;
        std::vector<std::vector<Word>> pools(n);
        for (Word k : keys_) {
            const auto bucket =
                static_cast<Addr>(static_cast<std::uint64_t>(k) %
                                  p_.buckets);
            pools[homeDeviceOf(headsAddr_ + 8 * bucket, n)].push_back(k);
        }
        // Refill positions in order, each from its owner's pool (FIFO,
        // so the shuffle is deterministic). Key index i is processed
        // by global thread i % total_threads (the kernel strides), and
        // that thread's CTA belongs to device cta / chunk.
        std::vector<std::size_t> next(n, 0);
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            const unsigned cta =
                static_cast<unsigned>(i % total_threads) /
                p_.threadsPerCta;
            unsigned d =
                std::min(static_cast<unsigned>(cta / chunk), n - 1);
            if (next[d] == pools[d].size()) {
                // This device's pool ran dry; steal from the first
                // device that still has keys (the imbalance is
                // bounded by the hash skew).
                for (d = 0; next[d] == pools[d].size(); ++d) {}
            }
            keys_[i] = pools[d][next[d]++];
        }
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        std::vector<Word> params = {
            static_cast<Word>(keysAddr_),  static_cast<Word>(locksAddr_),
            static_cast<Word>(headsAddr_), static_cast<Word>(nodesAddr_),
            static_cast<Word>(p_.buckets),
            static_cast<Word>(p_.insertions)};
        if (p_.delayFactor > 0)
            params.push_back(static_cast<Word>(p_.delayFactor));
        return {LaunchSpec{&prog_, Dim3{p_.ctas, 1, 1},
                           Dim3{p_.threadsPerCta, 1, 1}, params}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        // Every key must appear exactly once, in the right bucket chain.
        std::vector<Word> heads(p_.buckets);
        gpu.memcpyFromDevice(heads.data(), headsAddr_, p_.buckets * 8);
        std::unordered_set<Addr> visited;
        std::uint64_t found = 0;
        for (unsigned b = 0; b < p_.buckets; ++b) {
            Addr node = static_cast<Addr>(heads[b]);
            while (node != 0) {
                if (!visited.insert(node).second)
                    return false;  // cycle or double-link
                Word kv[2];
                gpu.memcpyFromDevice(kv, node, 16);
                if (static_cast<std::uint64_t>(kv[0]) % p_.buckets != b)
                    return false;  // key in the wrong bucket
                ++found;
                node = static_cast<Addr>(kv[1]);
            }
            // All locks must be released.
            Word lock = 0;
            gpu.memcpyFromDevice(&lock, locksAddr_ + 8 * b, 8);
            if (lock != 0)
                return false;
        }
        return found == p_.insertions;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    HashtableParams p_;
    Program prog_;
    std::vector<Word> keys_;
    Addr keysAddr_ = 0;
    Addr locksAddr_ = 0;
    Addr headsAddr_ = 0;
    Addr nodesAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeHashtable(const HashtableParams &p)
{
    return std::make_unique<HashtableHarness>(p);
}

}  // namespace bowsim
