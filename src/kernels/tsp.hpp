#ifndef BOWSIM_KERNELS_TSP_HPP
#define BOWSIM_KERNELS_TSP_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * TSP: travelling-salesman hill climbers that update a global best
 * solution under a single global spin lock, serializing threads within a
 * warp over the critical section (Fig. 6b of the paper). Synchronization
 * is a tiny fraction of total instructions — tour-cost evaluation
 * dominates — which is why the paper sees little BOWS impact here.
 */

namespace bowsim {

struct TspParams {
    unsigned climbers = 3000;
    unsigned cities = 76;
    /** Cost-evaluation rounds per climber (scales useful work). */
    unsigned rounds = 8;
    unsigned threadsPerCta = 128;
    std::uint64_t seed = 4242;
};

std::unique_ptr<KernelHarness> makeTsp(const TspParams &p);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_TSP_HPP
