#ifndef BOWSIM_KERNELS_REGISTRY_HPP
#define BOWSIM_KERNELS_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * Benchmark registry: the paper's kernel suite by name, with inputs
 * scaled to run in seconds on a laptop (EXPERIMENTS.md records the
 * scaling). Section V of the paper:
 *
 *   sync kernels: TB, ST, DS, ATM, HT, TSP, NW1, NW2
 *   sync-free:    VEC, KM, MS, HL, RED, STEN
 */

namespace bowsim {

/** The eight busy-wait synchronization kernels, in the paper's order. */
const std::vector<std::string> &syncKernelNames();

/** The synchronization-free control kernels. */
const std::vector<std::string> &syncFreeKernelNames();

/**
 * Creates the named benchmark with its default (scaled) inputs.
 * @param scale multiplies the default problem size (1.0 = default).
 */
std::unique_ptr<KernelHarness> makeBenchmark(const std::string &name,
                                             double scale = 1.0);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_REGISTRY_HPP
