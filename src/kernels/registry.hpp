#ifndef BOWSIM_KERNELS_REGISTRY_HPP
#define BOWSIM_KERNELS_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * Benchmark registry: the paper's kernel suite by name, with inputs
 * scaled to run in seconds on a laptop (EXPERIMENTS.md records the
 * scaling). Section V of the paper:
 *
 *   sync kernels: TB, ST, DS, ATM, HT, TSP, NW1, NW2
 *   sync-free:    VEC, KM, MS, HL, RED, STEN
 *
 * Beyond that fixed suite, parameterized kernel variants (e.g. the
 * src/sync primitive x geometry instantiations) register themselves
 * programmatically via registerBenchmark(); makeBenchmark() resolves
 * both kinds, so harness code never assumes a fixed name set.
 */

namespace bowsim {

/** The eight busy-wait synchronization kernels, in the paper's order. */
const std::vector<std::string> &syncKernelNames();

/** The synchronization-free control kernels. */
const std::vector<std::string> &syncFreeKernelNames();

/**
 * Factory for one programmatically registered benchmark variant. The
 * scale argument has the same meaning as makeBenchmark()'s: it
 * multiplies the variant's default problem size (1.0 = default).
 */
using BenchmarkFactory =
    std::function<std::unique_ptr<KernelHarness>(double scale)>;

/**
 * Registers @p factory under @p name. Fatal on an empty name, a
 * duplicate registration, or a clash with a built-in suite name.
 * Thread-safe (sweep workers resolve benchmarks concurrently).
 */
void registerBenchmark(const std::string &name, BenchmarkFactory factory);

/** True when @p name resolves — built-in suite or registered variant. */
bool hasBenchmark(const std::string &name);

/**
 * Every resolvable benchmark name: the built-in suite in its canonical
 * order, then the registered variants sorted lexicographically.
 */
std::vector<std::string> allBenchmarkNames();

/**
 * Creates the named benchmark with its default (scaled) inputs.
 * @param scale multiplies the default problem size (1.0 = default).
 */
std::unique_ptr<KernelHarness> makeBenchmark(const std::string &name,
                                             double scale = 1.0);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_REGISTRY_HPP
