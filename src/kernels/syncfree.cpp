#include "src/kernels/syncfree.hpp"

#include <algorithm>
#include <vector>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

std::vector<Word>
randomWords(unsigned count, std::uint64_t seed, Word modulo)
{
    std::vector<Word> v(count);
    std::uint64_t x = seed;
    for (auto &w : v) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        w = static_cast<Word>((x * 0x2545F4914F6CDD1Dull) %
                              static_cast<std::uint64_t>(modulo));
    }
    return v;
}

// ---------------------------------------------------------------- VEC --

/** Rodinia-style: each thread sums a contiguous chunk with a unit-stride
 *  loop (params: [3] = chunk length). */
constexpr const char *kVecSource = R"(
.kernel vec_add
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r10, [0];
  ld.param.u64 %r11, [8];
  ld.param.u64 %r12, [16];
  ld.param.u64 %r13, [24];       // chunk
  mul %r3, %r0, %r13;            // i = tid * chunk
  add %r14, %r3, %r13;           // end
LOOP:
  setp.ge.s64 %p0, %r3, %r14;
  @%p0 exit;
  shl %r4, %r3, 3;
  add %r5, %r10, %r4;
  ld.global.u64 %r5, [%r5];
  add %r6, %r11, %r4;
  ld.global.u64 %r6, [%r6];
  add %r5, %r5, %r6;
  add %r7, %r12, %r4;
  st.global.u64 [%r7], %r5;
  add %r3, %r3, 1;
  bra.uni LOOP;
)";

class VecHarness : public KernelHarness {
  public:
    explicit VecHarness(const SyncFreeParams &p)
        : KernelHarness("VEC"), p_(p), prog_(assemble(kVecSource))
    {
        unsigned threads = p_.ctas * p_.threadsPerCta;
        chunk_ = std::max(1u, p_.elements / threads);
        p_.elements = chunk_ * threads;  // exact coverage
    }

    void
    setup(Gpu &gpu) override
    {
        a_ = randomWords(p_.elements, p_.seed, 1 << 20);
        b_ = randomWords(p_.elements, p_.seed ^ 0xabcdef, 1 << 20);
        aAddr_ = gpu.malloc(p_.elements * 8);
        bAddr_ = gpu.malloc(p_.elements * 8);
        cAddr_ = gpu.malloc(p_.elements * 8);
        gpu.memcpyToDevice(aAddr_, a_.data(), p_.elements * 8);
        gpu.memcpyToDevice(bAddr_, b_.data(), p_.elements * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(aAddr_), static_cast<Word>(bAddr_),
             static_cast<Word>(cAddr_), static_cast<Word>(chunk_)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        std::vector<Word> c(p_.elements);
        gpu.memcpyFromDevice(c.data(), cAddr_, p_.elements * 8);
        for (unsigned i = 0; i < p_.elements; ++i) {
            if (c[i] != a_[i] + b_[i])
                return false;
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    SyncFreeParams p_;
    Program prog_;
    unsigned chunk_ = 1;
    std::vector<Word> a_, b_;
    Addr aAddr_ = 0, bAddr_ = 0, cAddr_ = 0;
};

// ----------------------------------------------------------------- KM --

/** kmeans invert_mapping (the paper's Fig. 7c): transpose points. */
constexpr const char *kKmSource = R"(
.kernel km_invert
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r10, [0];        // in  (n x m, row-major)
  ld.param.u64 %r11, [8];        // out (m x n, row-major)
  ld.param.u64 %r12, [16];       // n points
  ld.param.u64 %r13, [24];       // m features
  setp.ge.s64 %p0, %r0, %r12;
  @%p0 exit;
  mul %r4, %r0, %r13;
  shl %r4, %r4, 3;
  add %r4, %r10, %r4;            // &in[i][0]
  shl %r5, %r0, 3;
  add %r5, %r11, %r5;            // &out[0][i]
  shl %r6, %r12, 3;              // row stride of out
  mov %r20, 0;                   // j
LOOP:
  ld.global.u64 %r7, [%r4];
  st.global.u64 [%r5], %r7;
  add %r4, %r4, 8;
  add %r5, %r5, %r6;
  add %r20, %r20, 1;
  setp.lt.s64 %p4, %r20, %r13;
  @%p4 bra LOOP;
  exit;
)";

class KmHarness : public KernelHarness {
  public:
    explicit KmHarness(const SyncFreeParams &p)
        : KernelHarness("KM"), p_(p), prog_(assemble(kKmSource))
    {
        n_ = p_.ctas * p_.threadsPerCta;
        m_ = std::max(8u, p_.elements / n_);
    }

    void
    setup(Gpu &gpu) override
    {
        in_ = randomWords(n_ * m_, p_.seed, 1 << 20);
        inAddr_ = gpu.malloc(std::uint64_t{n_} * m_ * 8);
        outAddr_ = gpu.malloc(std::uint64_t{n_} * m_ * 8);
        gpu.memcpyToDevice(inAddr_, in_.data(),
                           std::uint64_t{n_} * m_ * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(inAddr_), static_cast<Word>(outAddr_),
             static_cast<Word>(n_), static_cast<Word>(m_)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        std::vector<Word> out(std::uint64_t{n_} * m_);
        gpu.memcpyFromDevice(out.data(), outAddr_, out.size() * 8);
        for (unsigned i = 0; i < n_; ++i) {
            for (unsigned j = 0; j < m_; ++j) {
                if (out[std::uint64_t{j} * n_ + i] !=
                    in_[std::uint64_t{i} * m_ + j]) {
                    return false;
                }
            }
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    SyncFreeParams p_;
    Program prog_;
    unsigned n_, m_;
    std::vector<Word> in_;
    Addr inAddr_ = 0, outAddr_ = 0;
};

// ----------------------------------------------------------------- MS --

/**
 * Merge-sort-style sampling pass: each thread scans elements
 * idx = tid, tid+256, tid+512, ... and records the maximum. The loop
 * counter advances by 256, so its low 8 bits never change — an 8-bit
 * MODULO hash cannot see it move, and MODULO DDOS falsely confirms the
 * loop branch as spin-inducing (Fig. 14).
 */
constexpr const char *kMsSource = R"(
.kernel ms_pass
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r10, [0];        // data
  ld.param.u64 %r11, [8];        // out (per-thread max)
  ld.param.u64 %r12, [16];       // elements
  ld.param.u64 %r13, [24];       // total threads
  setp.ge.s64 %p0, %r0, %r13;
  @%p0 exit;
  mov %r3, %r0;                  // idx = tid (advances by 256)
  mov %r4, -1;                   // running max
LOOP:
  shl %r5, %r3, 3;
  add %r5, %r10, %r5;
  ld.global.u64 %r6, [%r5];
  max %r4, %r4, %r6;
  add %r3, %r3, 256;
  setp.lt.s64 %p1, %r3, %r12;
  @%p1 bra LOOP;
  shl %r7, %r0, 3;
  add %r7, %r11, %r7;
  st.global.u64 [%r7], %r4;
  exit;
)";

class MsHarness : public KernelHarness {
  public:
    explicit MsHarness(const SyncFreeParams &p)
        : KernelHarness("MS"), p_(p), prog_(assemble(kMsSource))
    {
        threads_ = std::min(p_.ctas * p_.threadsPerCta, 256u);
    }

    void
    setup(Gpu &gpu) override
    {
        data_ = randomWords(p_.elements, p_.seed, 1 << 24);
        dataAddr_ = gpu.malloc(p_.elements * 8);
        outAddr_ = gpu.malloc(threads_ * 8);
        gpu.memcpyToDevice(dataAddr_, data_.data(), p_.elements * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        unsigned ctas = (threads_ + p_.threadsPerCta - 1) /
                        p_.threadsPerCta;
        return {LaunchSpec{
            &prog_, Dim3{ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(dataAddr_), static_cast<Word>(outAddr_),
             static_cast<Word>(p_.elements),
             static_cast<Word>(threads_)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        std::vector<Word> out(threads_);
        gpu.memcpyFromDevice(out.data(), outAddr_, threads_ * 8);
        for (unsigned t = 0; t < threads_; ++t) {
            Word expected = -1;
            for (std::uint64_t i = t; i < p_.elements; i += 256)
                expected = std::max(expected, data_[i]);
            if (out[t] != expected)
                return false;
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    SyncFreeParams p_;
    Program prog_;
    unsigned threads_;
    std::vector<Word> data_;
    Addr dataAddr_ = 0, outAddr_ = 0;
};

// ----------------------------------------------------------------- HL --

/**
 * Heart-wall-style windowed sum whose window offset advances by 512 per
 * iteration — the paper's second MODULO false-detection case.
 */
constexpr const char *kHlSource = R"(
.kernel hl_window
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r10, [0];        // data (power-of-two length)
  ld.param.u64 %r11, [8];        // out
  ld.param.u64 %r12, [16];       // mask = elements - 1
  ld.param.u64 %r13, [24];       // window span (multiple of 512)
  mov %r3, 0;                    // off (advances by 512)
  mov %r4, 0;                    // acc
LOOP:
  add %r5, %r0, %r3;
  and %r5, %r5, %r12;
  shl %r5, %r5, 3;
  add %r5, %r10, %r5;
  ld.global.u64 %r6, [%r5];
  add %r4, %r4, %r6;
  add %r3, %r3, 512;
  setp.lt.s64 %p1, %r3, %r13;
  @%p1 bra LOOP;
  shl %r7, %r0, 3;
  add %r7, %r11, %r7;
  st.global.u64 [%r7], %r4;
  exit;
)";

class HlHarness : public KernelHarness {
  public:
    explicit HlHarness(const SyncFreeParams &p)
        : KernelHarness("HL"), p_(p), prog_(assemble(kHlSource))
    {
        if ((p_.elements & (p_.elements - 1)) != 0)
            fatal("HL: elements must be a power of two");
        threads_ = p_.ctas * p_.threadsPerCta;
    }

    void
    setup(Gpu &gpu) override
    {
        data_ = randomWords(p_.elements, p_.seed ^ 0x5eed, 1 << 16);
        dataAddr_ = gpu.malloc(p_.elements * 8);
        outAddr_ = gpu.malloc(threads_ * 8);
        gpu.memcpyToDevice(dataAddr_, data_.data(), p_.elements * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(dataAddr_), static_cast<Word>(outAddr_),
             static_cast<Word>(p_.elements - 1),
             static_cast<Word>(kWindow)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        std::vector<Word> out(threads_);
        gpu.memcpyFromDevice(out.data(), outAddr_, threads_ * 8);
        for (unsigned t = 0; t < threads_; ++t) {
            Word acc = 0;
            for (Word off = 0; off < kWindow; off += 512)
                acc += data_[(t + off) & (p_.elements - 1)];
            if (out[t] != acc)
                return false;
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    static constexpr Word kWindow = 512 * 48;

    SyncFreeParams p_;
    Program prog_;
    unsigned threads_;
    std::vector<Word> data_;
    Addr dataAddr_ = 0, outAddr_ = 0;
};

// ---------------------------------------------------------------- RED --

/**
 * Shared-memory tree reduction: grid-stride accumulate, store to shared,
 * then log2(blockDim) barrier-separated halving steps; thread 0 adds the
 * block sum to the global total atomically.
 */
constexpr const char *kRedSource = R"(
.kernel reduction
.param 4
.shared 8192
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r10, [0];        // data
  ld.param.u64 %r11, [8];        // &total
  ld.param.u64 %r12, [16];       // elements
  ld.param.u64 %r2, [24];        // chunk per thread (unit stride)
  mul %r3, %r0, %r2;             // i = tid * chunk
  add %r13, %r3, %r2;
  min %r13, %r13, %r12;          // end
  mov %r4, 0;                    // acc
ACCUM:
  setp.ge.s64 %p0, %r3, %r13;
  @%p0 bra STORE;
  shl %r5, %r3, 3;
  add %r5, %r10, %r5;
  ld.global.u64 %r6, [%r5];
  add %r4, %r4, %r6;
  add %r3, %r3, 1;
  bra.uni ACCUM;
STORE:
  mov %r7, %tid;
  shl %r8, %r7, 3;
  st.shared.u64 [%r8], %r4;
  bar.sync;
  shr %r9, %r1, 1;               // s = blockDim / 2
TREE:
  setp.eq.s64 %p1, %r9, 0;
  @%p1 bra DONE;
  setp.ge.s64 %p2, %r7, %r9;
  @%p2 bra SKIPADD;
  add %r13, %r7, %r9;
  shl %r14, %r13, 3;
  ld.shared.u64 %r15, [%r14];
  ld.shared.u64 %r16, [%r8];
  add %r16, %r16, %r15;
  st.shared.u64 [%r8], %r16;
SKIPADD:
  bar.sync;
  shr %r9, %r9, 1;
  bra.uni TREE;
DONE:
  setp.ne.s64 %p3, %r7, 0;
  @%p3 exit;
  ld.shared.u64 %r17, [0];
  atom.global.add.b64 %r18, [%r11], %r17;
  exit;
)";

class RedHarness : public KernelHarness {
  public:
    explicit RedHarness(const SyncFreeParams &p)
        : KernelHarness("RED"), p_(p), prog_(assemble(kRedSource))
    {
        if (p_.threadsPerCta == 0 ||
            (p_.threadsPerCta & (p_.threadsPerCta - 1)) != 0) {
            fatal("RED: threadsPerCta must be a power of two");
        }
        if (p_.threadsPerCta * 8 > prog_.sharedBytes)
            fatal("RED: block too large for the shared allocation");
        unsigned threads = p_.ctas * p_.threadsPerCta;
        chunk_ = (p_.elements + threads - 1) / threads;
    }

    void
    setup(Gpu &gpu) override
    {
        data_ = randomWords(p_.elements, p_.seed ^ 0x12345, 1 << 16);
        dataAddr_ = gpu.malloc(p_.elements * 8);
        totalAddr_ = gpu.malloc(8);
        gpu.memcpyToDevice(dataAddr_, data_.data(), p_.elements * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(dataAddr_), static_cast<Word>(totalAddr_),
             static_cast<Word>(p_.elements),
             static_cast<Word>(chunk_)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        Word total = 0;
        gpu.memcpyFromDevice(&total, totalAddr_, 8);
        Word expected = 0;
        for (Word v : data_)
            expected += v;
        return total == expected;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    SyncFreeParams p_;
    Program prog_;
    unsigned chunk_ = 1;
    std::vector<Word> data_;
    Addr dataAddr_ = 0, totalAddr_ = 0;
};

// --------------------------------------------------------------- STEN --

/** Unit-stride chunked stencil: thread t sweeps [t*chunk, (t+1)*chunk),
 *  interior points only (params: [2]=elements, [3]=chunk). */
constexpr const char *kStenSource = R"(
.kernel stencil
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r10, [0];        // in
  ld.param.u64 %r11, [8];        // out
  ld.param.u64 %r12, [16];       // elements
  ld.param.u64 %r2, [24];        // chunk
  mul %r3, %r0, %r2;             // i = tid * chunk
  add %r14, %r3, %r2;            // end
  sub %r13, %r12, 1;
  min %r14, %r14, %r13;          // stay inside the interior
  max %r3, %r3, 1;
LOOP:
  setp.ge.s64 %p0, %r3, %r14;
  @%p0 exit;
  shl %r4, %r3, 3;
  add %r4, %r10, %r4;
  ld.global.u64 %r5, [%r4-8];
  ld.global.u64 %r6, [%r4];
  ld.global.u64 %r7, [%r4+8];
  add %r5, %r5, %r6;
  add %r5, %r5, %r7;
  shl %r8, %r3, 3;
  add %r8, %r11, %r8;
  st.global.u64 [%r8], %r5;
  add %r3, %r3, 1;
  bra.uni LOOP;
)";

class StenHarness : public KernelHarness {
  public:
    explicit StenHarness(const SyncFreeParams &p)
        : KernelHarness("STEN"), p_(p), prog_(assemble(kStenSource))
    {
        unsigned threads = p_.ctas * p_.threadsPerCta;
        chunk_ = (p_.elements + threads - 1) / threads;
    }

    void
    setup(Gpu &gpu) override
    {
        in_ = randomWords(p_.elements, p_.seed ^ 0x777, 1 << 20);
        inAddr_ = gpu.malloc(p_.elements * 8);
        outAddr_ = gpu.malloc(p_.elements * 8);
        gpu.memcpyToDevice(inAddr_, in_.data(), p_.elements * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(inAddr_), static_cast<Word>(outAddr_),
             static_cast<Word>(p_.elements),
             static_cast<Word>(chunk_)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        std::vector<Word> out(p_.elements);
        gpu.memcpyFromDevice(out.data(), outAddr_, p_.elements * 8);
        for (unsigned i = 1; i + 1 < p_.elements; ++i) {
            if (out[i] != in_[i - 1] + in_[i] + in_[i + 1])
                return false;
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    SyncFreeParams p_;
    Program prog_;
    unsigned chunk_ = 1;
    std::vector<Word> in_;
    Addr inAddr_ = 0, outAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeVecAdd(const SyncFreeParams &p)
{
    return std::make_unique<VecHarness>(p);
}

std::unique_ptr<KernelHarness>
makeKmeansInvert(const SyncFreeParams &p)
{
    return std::make_unique<KmHarness>(p);
}

std::unique_ptr<KernelHarness>
makeMergeSortPass(const SyncFreeParams &p)
{
    return std::make_unique<MsHarness>(p);
}

std::unique_ptr<KernelHarness>
makeHeartWall(const SyncFreeParams &p)
{
    return std::make_unique<HlHarness>(p);
}

std::unique_ptr<KernelHarness>
makeReduction(const SyncFreeParams &p)
{
    return std::make_unique<RedHarness>(p);
}

std::unique_ptr<KernelHarness>
makeStencil(const SyncFreeParams &p)
{
    return std::make_unique<StenHarness>(p);
}

}  // namespace bowsim
