#include "src/kernels/nw.hpp"

#include <algorithm>
#include <vector>

#include "src/common/log.hpp"
#include "src/cpuref/nw_cpu.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

/**
 * One thread per matrix row, with a skewed (diagonal) step loop: at step
 * s, lane l computes column c = s - l + 1. Intra-warp dependencies
 * ((r-1, c) from the lane above) were produced at step s-1 and are
 * warp-synchronous — a lane that *waited* on its neighbour lane would be
 * a SIMT-induced deadlock, since the producer lane parks at the
 * reconvergence point while the consumer spins. Only lane 0 of each warp
 * crosses a warp boundary: it spins on progress[r-1] (volatile — polls
 * through to L2) until the previous warp's last row has published column
 * c, giving an acyclic warp-to-warp wait chain.
 *
 * Params: [0]=F, [1]=progress, [2]=seqA, [3]=seqB, [4]=n,
 *         [5]=matchScore, [6]=mismatchPenalty, [7]=gapPenalty.
 */
constexpr const char *kNwSource = R"(
.kernel nw
.param 8
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;       // row index r0; matrix row = r0 + 1
  ld.param.u64 %r10, [0];
  ld.param.u64 %r11, [8];
  ld.param.u64 %r12, [16];
  ld.param.u64 %r13, [24];
  ld.param.u64 %r14, [32];       // n
  ld.param.u64 %r25, [40];       // match
  ld.param.u64 %r26, [48];       // mismatch
  ld.param.u64 %r27, [56];       // gap
  setp.ge.s64 %p0, %r0, %r14;
  @%p0 exit;
  add %r2, %r0, 1;               // mrow
  add %r3, %r14, 1;              // rowWords = n + 1
  mul %r4, %r2, %r3;
  shl %r4, %r4, 3;
  add %r4, %r10, %r4;            // rowBase = &F[mrow][0]
  shl %r5, %r3, 3;
  sub %r6, %r4, %r5;             // prevRowBase = &F[mrow-1][0]
  shl %r7, %r0, 3;
  add %r7, %r11, %r7;            // &progress[mrow-1]
  add %r8, %r7, 8;               // &progress[mrow]
  shl %r9, %r0, 3;
  add %r9, %r13, %r9;
  ld.global.u64 %r9, [%r9];      // bchar = seqB[mrow-1]
  mov %r30, %laneid;
  add %r31, %r14, 31;            // steps = n + warpSize - 1
  mov %r15, 0;                   // step s
STEP:
  setp.ge.s64 %p1, %r15, %r31;
  @%p1 exit;
  sub %r16, %r15, %r30;
  add %r16, %r16, 1;             // c = s - lane + 1
  setp.lt.s64 %p2, %r16, 1;
  @%p2 bra NEXT;
  setp.gt.s64 %p3, %r16, %r14;
  @%p3 bra NEXT;
  add %r17, %r16, 1;             // need progress[mrow-1] >= c+1
.annot sync_begin
WAIT:
  ld.volatile.global.u64 %r18, [%r7];
  .annot wait
  setp.ge.s64 %p4, %r18, %r17;
  .annot spin
  @!%p4 bra WAIT;
.annot sync_end
  shl %r19, %r16, 3;             // c * 8
  add %r20, %r12, %r19;
  ld.global.u64 %r20, [%r20-8];  // achar = seqA[c-1]
  add %r21, %r6, %r19;
  ld.global.u64 %r22, [%r21-8];  // diag  F[mrow-1][c-1]
  ld.global.u64 %r23, [%r21];    // up    F[mrow-1][c]
  add %r24, %r4, %r19;
  ld.global.u64 %r28, [%r24-8];  // left  F[mrow][c-1]
  setp.eq.s64 %p5, %r20, %r9;
  selp %r29, %r25, %r26, %p5;    // match ? M : MM
  add %r22, %r22, %r29;
  sub %r23, %r23, %r27;
  sub %r28, %r28, %r27;
  max %r22, %r22, %r23;
  max %r22, %r22, %r28;
  st.global.u64 [%r24], %r22;    // F[mrow][c]
  membar;
  st.global.u64 [%r8], %r17;     // publish progress[mrow] = c+1
NEXT:
  add %r15, %r15, 1;
  bra.uni STEP;
)";

class NwHarness : public KernelHarness {
  public:
    NwHarness(const NwParams &p, bool reverse)
        : KernelHarness(reverse ? "NW2" : "NW1"), p_(p),
          reverse_(reverse), prog_(assemble(kNwSource))
    {
    }

    void
    setup(Gpu &gpu) override
    {
        const unsigned n = p_.n;
        seqA_.resize(n);
        seqB_.resize(n);
        std::uint64_t x = p_.seed;
        auto next = [&x]() {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            return x * 0x2545F4914F6CDD1Dull;
        };
        for (unsigned i = 0; i < n; ++i) {
            seqA_[i] = static_cast<Word>(next() % 4);
            seqB_[i] = static_cast<Word>(next() % 4);
        }
        // NW2 sweeps the grid in the opposite direction: it aligns the
        // reversed sequences, so its wavefront travels bottom-right to
        // top-left of the original matrix.
        if (reverse_) {
            std::reverse(seqA_.begin(), seqA_.end());
            std::reverse(seqB_.begin(), seqB_.end());
        }

        const unsigned words = (n + 1) * (n + 1);
        fAddr_ = gpu.malloc(std::uint64_t{words} * 8);
        progressAddr_ = gpu.malloc((n + 1) * 8);
        seqAAddr_ = gpu.malloc(n * 8);
        seqBAddr_ = gpu.malloc(n * 8);
        gpu.memcpyToDevice(seqAAddr_, seqA_.data(), n * 8);
        gpu.memcpyToDevice(seqBAddr_, seqB_.data(), n * 8);

        // Boundary conditions: F[0][c] = -c*gap, F[r][0] = -r*gap; row 0
        // is fully final, every other row has published only column 0.
        std::vector<Word> boundary(n + 1);
        for (unsigned c = 0; c <= n; ++c)
            boundary[c] = -static_cast<Word>(c) * p_.gapPenalty;
        gpu.memcpyToDevice(fAddr_, boundary.data(), (n + 1) * 8);
        for (unsigned r = 1; r <= n; ++r) {
            Word v = -static_cast<Word>(r) * p_.gapPenalty;
            gpu.memcpyToDevice(fAddr_ + std::uint64_t{r} * (n + 1) * 8, &v,
                               8);
        }
        std::vector<Word> progress(n + 1, 1);
        progress[0] = n + 1;
        gpu.memcpyToDevice(progressAddr_, progress.data(), (n + 1) * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        unsigned ctas = (p_.n + p_.threadsPerCta - 1) / p_.threadsPerCta;
        return {LaunchSpec{
            &prog_, Dim3{ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(fAddr_), static_cast<Word>(progressAddr_),
             static_cast<Word>(seqAAddr_), static_cast<Word>(seqBAddr_),
             static_cast<Word>(p_.n), p_.matchScore, p_.mismatchPenalty,
             p_.gapPenalty}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        const unsigned n = p_.n;
        std::vector<Word> device((n + 1) * (n + 1));
        gpu.memcpyFromDevice(device.data(), fAddr_, device.size() * 8);
        std::vector<Word> host = nwReference(
            seqA_, seqB_, p_.matchScore, p_.mismatchPenalty, p_.gapPenalty);
        return device == host;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    NwParams p_;
    bool reverse_;
    Program prog_;
    std::vector<Word> seqA_;
    std::vector<Word> seqB_;
    Addr fAddr_ = 0;
    Addr progressAddr_ = 0;
    Addr seqAAddr_ = 0;
    Addr seqBAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeNw(const NwParams &p, bool reverse)
{
    return std::make_unique<NwHarness>(p, reverse);
}

}  // namespace bowsim
