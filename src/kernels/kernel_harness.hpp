#ifndef BOWSIM_KERNELS_KERNEL_HARNESS_HPP
#define BOWSIM_KERNELS_KERNEL_HARNESS_HPP

#include <memory>
#include <string>
#include <vector>

#include "src/isa/program.hpp"
#include "src/sim/gpu.hpp"
#include "src/stats/stats.hpp"

/**
 * @file
 * Benchmark harness framework. Each benchmark kernel (Section V of the
 * paper) is a KernelHarness: it assembles its device code, sets up device
 * memory, describes one or more launches, and validates the results
 * against a host reference after the run.
 */

namespace bowsim {

/** One kernel launch: program + geometry + parameters. */
struct LaunchSpec {
    const Program *prog;
    Dim3 grid;
    Dim3 block;
    std::vector<Word> params;
};

class KernelHarness {
  public:
    explicit KernelHarness(std::string name) : name_(std::move(name)) {}
    virtual ~KernelHarness() = default;

    KernelHarness(const KernelHarness &) = delete;
    KernelHarness &operator=(const KernelHarness &) = delete;

    const std::string &name() const { return name_; }

    /** Allocates and initializes device memory. */
    virtual void setup(Gpu &gpu) = 0;

    /** Launches to execute, in order. Valid after setup(). */
    virtual std::vector<LaunchSpec> launches() const = 0;

    /** Checks device results against the host reference. */
    virtual bool validate(Gpu &gpu) const = 0;

    /** Ground-truth spin branches across all programs (Table I). */
    std::set<Pc> groundTruthSibs() const;

    /** All programs this harness launches (for DDOS scoring). */
    virtual std::vector<const Program *> programs() const = 0;

    /**
     * Convenience driver: setup + all launches + validate. Returns the
     * accumulated statistics; throws FatalError if validation fails.
     */
    KernelStats run(Gpu &gpu);

  private:
    std::string name_;
};

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_KERNEL_HARNESS_HPP
