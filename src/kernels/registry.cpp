#include "src/kernels/registry.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>

#include "src/common/log.hpp"
#include "src/kernels/atm.hpp"
#include "src/kernels/bh_sort.hpp"
#include "src/kernels/bh_tree.hpp"
#include "src/kernels/cp_ds.hpp"
#include "src/kernels/hashtable.hpp"
#include "src/kernels/nw.hpp"
#include "src/kernels/syncfree.hpp"
#include "src/kernels/tsp.hpp"
#include "src/sync/sync_kernels.hpp"

namespace bowsim {

namespace {

unsigned
scaled(unsigned base, double scale)
{
    return std::max(1u, static_cast<unsigned>(std::lround(base * scale)));
}

/** Round up to the next power of two. */
unsigned
nextPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Programmatically registered benchmark variants. Registration and
 * lookup happen from sweep worker threads, so every access holds the
 * registry mutex; factories themselves run outside the lock.
 */
std::mutex &
registryMutex()
{
    static std::mutex mu;
    return mu;
}

std::map<std::string, BenchmarkFactory> &
variantRegistry()
{
    static std::map<std::string, BenchmarkFactory> registry;
    return registry;
}

bool
isBuiltinName(const std::string &name)
{
    const auto &sync = syncKernelNames();
    const auto &free = syncFreeKernelNames();
    return std::find(sync.begin(), sync.end(), name) != sync.end() ||
           std::find(free.begin(), free.end(), name) != free.end();
}

/**
 * The default sync-primitive variants register lazily on first lookup:
 * static self-registration objects in a static library are silently
 * dropped by the linker, so the registry pulls them in explicitly.
 * Re-entrant by design (not std::call_once): registerSyncKernelVariants
 * registers through registerBenchmark, which calls back here so that
 * user registrations clash-check against the defaults regardless of
 * call order. Other threads block until registration completes.
 */
void
ensureDefaultVariants()
{
    static std::recursive_mutex mu;
    static bool done = false;
    std::lock_guard<std::recursive_mutex> lock(mu);
    if (done)
        return;
    done = true;  // before registering: re-entrant calls no-op
    sync::registerSyncKernelVariants();
}

}  // namespace

const std::vector<std::string> &
syncKernelNames()
{
    static const std::vector<std::string> names = {
        "TB", "ST", "DS", "ATM", "HT", "TSP", "NW1", "NW2"};
    return names;
}

const std::vector<std::string> &
syncFreeKernelNames()
{
    static const std::vector<std::string> names = {"VEC", "KM",  "MS",
                                                   "HL",  "RED", "STEN"};
    return names;
}

void
registerBenchmark(const std::string &name, BenchmarkFactory factory)
{
    if (name.empty())
        fatal("registerBenchmark: empty benchmark name");
    if (!factory)
        fatal("registerBenchmark: null factory for '", name, "'");
    if (isBuiltinName(name))
        fatal("registerBenchmark: '", name,
              "' clashes with a built-in suite kernel");
    // Defaults first, so a user registration clash-checks against them
    // no matter which registry call happens first in the process.
    ensureDefaultVariants();
    std::lock_guard<std::mutex> lock(registryMutex());
    if (!variantRegistry().emplace(name, std::move(factory)).second)
        fatal("registerBenchmark: duplicate registration of '", name, "'");
}

bool
hasBenchmark(const std::string &name)
{
    if (isBuiltinName(name))
        return true;
    ensureDefaultVariants();
    std::lock_guard<std::mutex> lock(registryMutex());
    return variantRegistry().count(name) != 0;
}

std::vector<std::string>
allBenchmarkNames()
{
    std::vector<std::string> names = syncKernelNames();
    const auto &free = syncFreeKernelNames();
    names.insert(names.end(), free.begin(), free.end());
    ensureDefaultVariants();
    std::lock_guard<std::mutex> lock(registryMutex());
    for (const auto &[name, factory] : variantRegistry())
        names.push_back(name);
    return names;
}

std::unique_ptr<KernelHarness>
makeBenchmark(const std::string &name, double scale)
{
    if (name == "HT") {
        // 30 CTAs x 256 threads over 256 buckets keeps the paper's
        // resident-threads-per-lock ratio (~25-30) at scaled size.
        HashtableParams p;
        p.insertions = scaled(12288, scale);
        p.buckets = 128;
        return makeHashtable(p);
    }
    if (name == "ATM") {
        // 6144 threads over 250 accounts ~ the paper's 24K threads on
        // 1000 accounts.
        AtmParams p;
        p.transactions = scaled(12288, scale);
        p.accounts = 250;
        return makeAtm(p);
    }
    if (name == "TSP") {
        // Long cost evaluation keeps synchronization a tiny fraction of
        // total instructions, as in the paper (<0.03%).
        TspParams p;
        p.climbers = scaled(3000, scale);
        p.rounds = 24;
        return makeTsp(p);
    }
    if (name == "NW1") {
        NwParams p;
        p.n = scaled(160, scale);
        return makeNw(p, false);
    }
    if (name == "NW2") {
        NwParams p;
        p.n = scaled(160, scale);
        return makeNw(p, true);
    }
    if (name == "TB") {
        BhTreeParams p;
        p.bodies = scaled(6000, scale);
        return makeBhTree(p);
    }
    if (name == "ST") {
        BhSortParams p;
        p.leaves = nextPow2(scaled(4096, scale));
        return makeBhSort(p);
    }
    if (name == "DS") {
        CpDsParams p;
        p.side = scaled(48, scale);
        return makeCpDs(p);
    }
    SyncFreeParams sf;
    sf.elements = nextPow2(scaled(65536, scale));
    if (name == "VEC")
        return makeVecAdd(sf);
    if (name == "KM")
        return makeKmeansInvert(sf);
    if (name == "MS")
        return makeMergeSortPass(sf);
    if (name == "HL")
        return makeHeartWall(sf);
    if (name == "RED")
        return makeReduction(sf);
    if (name == "STEN")
        return makeStencil(sf);
    // Not in the fixed suite: consult the dynamic variant registry. The
    // factory is copied out so it runs without holding the lock (it may
    // itself resolve other benchmarks).
    ensureDefaultVariants();
    BenchmarkFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = variantRegistry().find(name);
        if (it != variantRegistry().end())
            factory = it->second;
    }
    if (factory)
        return factory(scale);
    std::ostringstream known;
    for (const std::string &n : allBenchmarkNames())
        known << (known.tellp() > 0 ? " " : "") << n;
    fatal("unknown benchmark '", name, "' (known: ", known.str(), ")");
}

}  // namespace bowsim
