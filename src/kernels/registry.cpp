#include "src/kernels/registry.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/log.hpp"
#include "src/kernels/atm.hpp"
#include "src/kernels/bh_sort.hpp"
#include "src/kernels/bh_tree.hpp"
#include "src/kernels/cp_ds.hpp"
#include "src/kernels/hashtable.hpp"
#include "src/kernels/nw.hpp"
#include "src/kernels/syncfree.hpp"
#include "src/kernels/tsp.hpp"

namespace bowsim {

namespace {

unsigned
scaled(unsigned base, double scale)
{
    return std::max(1u, static_cast<unsigned>(std::lround(base * scale)));
}

/** Round up to the next power of two. */
unsigned
nextPow2(unsigned v)
{
    unsigned p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

}  // namespace

const std::vector<std::string> &
syncKernelNames()
{
    static const std::vector<std::string> names = {
        "TB", "ST", "DS", "ATM", "HT", "TSP", "NW1", "NW2"};
    return names;
}

const std::vector<std::string> &
syncFreeKernelNames()
{
    static const std::vector<std::string> names = {"VEC", "KM",  "MS",
                                                   "HL",  "RED", "STEN"};
    return names;
}

std::unique_ptr<KernelHarness>
makeBenchmark(const std::string &name, double scale)
{
    if (name == "HT") {
        // 30 CTAs x 256 threads over 256 buckets keeps the paper's
        // resident-threads-per-lock ratio (~25-30) at scaled size.
        HashtableParams p;
        p.insertions = scaled(12288, scale);
        p.buckets = 128;
        return makeHashtable(p);
    }
    if (name == "ATM") {
        // 6144 threads over 250 accounts ~ the paper's 24K threads on
        // 1000 accounts.
        AtmParams p;
        p.transactions = scaled(12288, scale);
        p.accounts = 250;
        return makeAtm(p);
    }
    if (name == "TSP") {
        // Long cost evaluation keeps synchronization a tiny fraction of
        // total instructions, as in the paper (<0.03%).
        TspParams p;
        p.climbers = scaled(3000, scale);
        p.rounds = 24;
        return makeTsp(p);
    }
    if (name == "NW1") {
        NwParams p;
        p.n = scaled(160, scale);
        return makeNw(p, false);
    }
    if (name == "NW2") {
        NwParams p;
        p.n = scaled(160, scale);
        return makeNw(p, true);
    }
    if (name == "TB") {
        BhTreeParams p;
        p.bodies = scaled(6000, scale);
        return makeBhTree(p);
    }
    if (name == "ST") {
        BhSortParams p;
        p.leaves = nextPow2(scaled(4096, scale));
        return makeBhSort(p);
    }
    if (name == "DS") {
        CpDsParams p;
        p.side = scaled(48, scale);
        return makeCpDs(p);
    }
    SyncFreeParams sf;
    sf.elements = nextPow2(scaled(65536, scale));
    if (name == "VEC")
        return makeVecAdd(sf);
    if (name == "KM")
        return makeKmeansInvert(sf);
    if (name == "MS")
        return makeMergeSortPass(sf);
    if (name == "HL")
        return makeHeartWall(sf);
    if (name == "RED")
        return makeReduction(sf);
    if (name == "STEN")
        return makeStencil(sf);
    fatal("unknown benchmark '", name, "'");
}

}  // namespace bowsim
