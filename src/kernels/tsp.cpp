#include "src/kernels/tsp.hpp"

#include <vector>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

/**
 * Each climber evaluates a deterministic pseudo-random tour cost (an LCG
 * mix over cities x rounds iterations, standing in for 2-opt moves over a
 * distance matrix), then — one lane at a time (Fig. 6b) — acquires the
 * global lock and updates {bestCost, bestIdx} if it improved.
 *
 * Params: [0]=mutex, [1]=&best (16B: cost,idx), [2]=iterations,
 *         [3]=numClimbers.
 */
constexpr const char *kTspSource = R"(
.kernel tsp
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r10, [0];
  ld.param.u64 %r11, [8];
  ld.param.u64 %r12, [16];       // iterations = cities * rounds
  ld.param.u64 %r14, [24];       // numClimbers
  setp.ge.s64 %p0, %r0, %r14;
  @%p0 exit;
  // --- tour-cost evaluation (useful work) -----------------------------
  add %r5, %r0, 99991;           // cost accumulator seeded by tid
  mov %r4, 0;
COST:
  setp.ge.s64 %p1, %r4, %r12;
  @%p1 bra COSTDONE;
  mul %r5, %r5, 1103515245;
  add %r5, %r5, 12345;
  and %r5, %r5, 1048575;         // keep it positive, 20 bits
  add %r4, %r4, 1;
  bra.uni COST;
COSTDONE:
  // --- serialize lanes over the global critical section ----------------
  mov %r6, 0;
LANE_LOOP:
  setp.ge.s64 %p2, %r6, 32;
  @%p2 exit;
  mov %r7, %laneid;
  setp.ne.s64 %p3, %r7, %r6;
  @%p3 bra NEXT;
.annot sync_begin
TRY:
  .annot acquire
  atom.global.cas.b64 %r8, [%r10], 0, 1;
  setp.ne.s64 %p4, %r8, 0;
  .annot spin
  @%p4 bra TRY;
.annot sync_end
  membar;
  ld.global.u64 %r9, [%r11];     // best cost
  setp.lt.s64 %p5, %r5, %r9;
  @!%p5 bra REL;
  st.global.u64 [%r11], %r5;
  st.global.u64 [%r11+8], %r0;
REL:
  membar;
.annot sync_begin
  atom.global.exch.b64 %r13, [%r10], 0;
.annot sync_end
NEXT:
  add %r6, %r6, 1;
  bra.uni LANE_LOOP;
)";

class TspHarness : public KernelHarness {
  public:
    explicit TspHarness(const TspParams &p)
        : KernelHarness("TSP"), p_(p), prog_(assemble(kTspSource))
    {
    }

    void
    setup(Gpu &gpu) override
    {
        mutexAddr_ = gpu.malloc(8);
        bestAddr_ = gpu.malloc(16);
        Word init[2] = {kInfinity, -1};
        gpu.memcpyToDevice(bestAddr_, init, 16);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        unsigned ctas =
            (p_.climbers + p_.threadsPerCta - 1) / p_.threadsPerCta;
        return {LaunchSpec{
            &prog_, Dim3{ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(mutexAddr_), static_cast<Word>(bestAddr_),
             static_cast<Word>(p_.cities * p_.rounds),
             static_cast<Word>(p_.climbers)}}};
    }

    /** Host replica of the kernel's cost function. */
    Word
    hostCost(unsigned tid) const
    {
        std::int64_t cost = static_cast<std::int64_t>(tid) + 99991;
        for (unsigned i = 0; i < p_.cities * p_.rounds; ++i) {
            cost = cost * 1103515245 + 12345;
            cost &= 1048575;
        }
        return cost;
    }

    bool
    validate(Gpu &gpu) const override
    {
        Word best[2];
        gpu.memcpyFromDevice(best, bestAddr_, 16);
        Word expected = kInfinity;
        for (unsigned t = 0; t < p_.climbers; ++t)
            expected = std::min(expected, hostCost(t));
        if (best[0] != expected)
            return false;
        if (best[1] < 0 ||
            best[1] >= static_cast<Word>(p_.climbers) ||
            hostCost(static_cast<unsigned>(best[1])) != expected) {
            return false;
        }
        Word mutex = 0;
        gpu.memcpyFromDevice(&mutex, mutexAddr_, 8);
        return mutex == 0;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    static constexpr Word kInfinity = 1 << 30;

    TspParams p_;
    Program prog_;
    Addr mutexAddr_ = 0;
    Addr bestAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeTsp(const TspParams &p)
{
    return std::make_unique<TspHarness>(p);
}

}  // namespace bowsim
