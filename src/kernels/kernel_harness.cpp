#include "src/kernels/kernel_harness.hpp"

#include "src/common/log.hpp"

namespace bowsim {

std::set<Pc>
KernelHarness::groundTruthSibs() const
{
    std::set<Pc> sibs;
    for (const Program *p : programs())
        sibs.insert(p->sync.spinBranches.begin(),
                    p->sync.spinBranches.end());
    return sibs;
}

KernelStats
KernelHarness::run(Gpu &gpu)
{
    setup(gpu);
    KernelStats total;
    total.kernel = name();
    bool first = true;
    for (const LaunchSpec &spec : launches()) {
        KernelStats s =
            gpu.launch(*spec.prog, spec.grid, spec.block, spec.params);
        if (first) {
            std::string keep = total.kernel;
            total = s;
            total.kernel = keep;
            first = false;
        } else {
            total += s;
        }
    }
    if (!validate(gpu))
        fatal("benchmark '", name(), "' failed validation");
    return total;
}

}  // namespace bowsim
