#ifndef BOWSIM_KERNELS_ATM_HPP
#define BOWSIM_KERNELS_ATM_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * ATM: bank transfers between account pairs guarded by two nested spin
 * locks (Fig. 6a of the paper). A thread acquires the source-account
 * lock, then the destination-account lock; if the second acquire fails it
 * releases the first and retries the whole transaction — the
 * SIMT-deadlock-free nested-locking pattern.
 */

namespace bowsim {

struct AtmParams {
    unsigned transactions = 12288;
    unsigned accounts = 1000;
    unsigned ctas = 24;
    unsigned threadsPerCta = 256;
    std::uint64_t seed = 777;
};

std::unique_ptr<KernelHarness> makeAtm(const AtmParams &p);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_ATM_HPP
