#include "src/kernels/bh_sort.hpp"

#include <vector>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

/**
 * Heap-ordered complete binary tree with L leaves: internal nodes
 * 0..L-2, leaves L-1..2L-2. start_d[k] < 0 means "not signalled yet".
 *
 * Params: [0]=start_d, [1]=counts, [2]=sortOut, [3]=numLeaves.
 */
constexpr const char *kBhSortSource = R"(
.kernel bh_sort
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;             // stride
  ld.param.u64 %r14, [0];        // start_d
  ld.param.u64 %r15, [8];        // counts
  ld.param.u64 %r20, [16];       // sortOut
  ld.param.u64 %r13, [24];       // numLeaves
  mov %r3, 0;                    // levelStart
  mov %r4, 1;                    // levelSize
LEVEL:
  add %r5, %r3, %r0;             // k = levelStart + tid
  add %r6, %r3, %r4;             // levelEnd
NODE:
  setp.ge.s64 %p0, %r5, %r6;
  @%p0 bra NEXTLEVEL;
  shl %r7, %r5, 3;
  add %r7, %r14, %r7;            // &start_d[k]
.annot sync_begin
WAIT:
  ld.volatile.global.u64 %r8, [%r7];
  .annot wait
  setp.ge.s64 %p1, %r8, 0;      // signalled?
  .annot spin
  @!%p1 bra WAIT;
.annot sync_end
  sub %r9, %r13, 1;              // L - 1
  setp.ge.s64 %p2, %r5, %r9;
  @%p2 bra LEAF;
  // internal node: signal both children
  shl %r10, %r5, 1;
  add %r10, %r10, 1;             // left = 2k + 1
  shl %r11, %r10, 3;
  add %r12, %r15, %r11;
  ld.global.u64 %r12, [%r12];    // counts[left]
  add %r16, %r14, %r11;          // &start_d[left]
  st.volatile.global.u64 [%r16], %r8;
  add %r17, %r8, %r12;
  membar;
  st.volatile.global.u64 [%r16+8], %r17;  // start_d[right]
  bra.uni NEXTNODE;
LEAF:
  sub %r18, %r5, %r9;            // body id = k - (L-1)
  shl %r19, %r8, 3;
  add %r19, %r20, %r19;
  st.global.u64 [%r19], %r18;    // sortOut[start] = body
NEXTNODE:
  add %r5, %r5, %r2;
  bra.uni NODE;
NEXTLEVEL:
  add %r3, %r3, %r4;             // levelStart += levelSize
  shl %r4, %r4, 1;
  shl %r21, %r13, 1;
  sub %r21, %r21, 1;             // total nodes = 2L - 1
  setp.lt.s64 %p3, %r3, %r21;
  @%p3 bra LEVEL;
  exit;
)";

class BhSortHarness : public KernelHarness {
  public:
    explicit BhSortHarness(const BhSortParams &p)
        : KernelHarness("ST"), p_(p), prog_(assemble(kBhSortSource))
    {
        if ((p_.leaves & (p_.leaves - 1)) != 0 || p_.leaves < 2)
            fatal("ST: leaves must be a power of two >= 2");
    }

    void
    setup(Gpu &gpu) override
    {
        const unsigned l = p_.leaves;
        const unsigned nodes = 2 * l - 1;
        startAddr_ = gpu.malloc(nodes * 8);
        countsAddr_ = gpu.malloc(nodes * 8);
        sortAddr_ = gpu.malloc(l * 8);

        std::vector<Word> start(nodes, -1);
        start[0] = 0;  // the host signals the root
        gpu.memcpyToDevice(startAddr_, start.data(), nodes * 8);

        std::vector<Word> counts(nodes, 0);
        for (unsigned k = nodes; k-- > 0;) {
            counts[k] = k >= l - 1
                            ? 1
                            : counts[2 * k + 1] + counts[2 * k + 2];
        }
        gpu.memcpyToDevice(countsAddr_, counts.data(), nodes * 8);

        std::vector<Word> sentinel(l, -1);
        gpu.memcpyToDevice(sortAddr_, sentinel.data(), l * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(startAddr_), static_cast<Word>(countsAddr_),
             static_cast<Word>(sortAddr_),
             static_cast<Word>(p_.leaves)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        const unsigned l = p_.leaves;
        std::vector<Word> sorted(l);
        gpu.memcpyFromDevice(sorted.data(), sortAddr_, l * 8);
        // Unit leaf counts make start(leaf j) = j, so the output is the
        // identity permutation of body ids.
        for (unsigned j = 0; j < l; ++j) {
            if (sorted[j] != static_cast<Word>(j))
                return false;
        }
        std::vector<Word> start(2 * l - 1);
        gpu.memcpyFromDevice(start.data(), startAddr_, start.size() * 8);
        for (Word s : start) {
            if (s < 0)
                return false;  // a node was never signalled
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    BhSortParams p_;
    Program prog_;
    Addr startAddr_ = 0;
    Addr countsAddr_ = 0;
    Addr sortAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeBhSort(const BhSortParams &p)
{
    return std::make_unique<BhSortHarness>(p);
}

}  // namespace bowsim
