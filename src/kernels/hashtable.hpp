#ifndef BOWSIM_KERNELS_HASHTABLE_HPP
#define BOWSIM_KERNELS_HASHTABLE_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * HT: chained hashtable insertion with one spin lock per bucket — the
 * critical section of Fig. 1a. Each thread inserts keys (grid-stride) by
 * CAS-acquiring the bucket mutex, linking its node at the head of the
 * chain and releasing. Fewer buckets = more contention.
 */

namespace bowsim {

struct HashtableParams {
    unsigned insertions = 16384;
    unsigned buckets = 1024;
    unsigned ctas = 30;
    unsigned threadsPerCta = 256;
    /**
     * Software back-off delay factor (Fig. 3): threads that fail an
     * acquire busy-wait for delayFactor * ctaid cycles before retrying.
     * 0 disables the delay code entirely (the Fig. 1a kernel).
     */
    unsigned delayFactor = 0;
    std::uint64_t seed = 12345;
};

std::unique_ptr<KernelHarness> makeHashtable(const HashtableParams &p);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_HASHTABLE_HPP
