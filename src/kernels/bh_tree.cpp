#include "src/kernels/bh_tree.hpp"

#include <vector>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

/**
 * Slot encoding: 0 = empty, 1 = locked, (i<<2)|2 = internal node i,
 * (k<<2)|3 = body with key k. Nodes are 16 bytes: child[0], child[1].
 *
 * Params: [0]=keys, [1]=nodes, [2]=&nodeCounter, [3]=numBodies.
 */
constexpr const char *kBhTreeSource = R"(
.kernel bh_tree
.param 4
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;             // stride
  ld.param.u64 %r10, [0];
  ld.param.u64 %r11, [8];
  ld.param.u64 %r12, [16];
  ld.param.u64 %r13, [24];
  mov %r3, %r0;                  // body index i
  mov %r30, 1;                   // done (no body yet)
  setp.lt.s64 %p0, %r3, %r13;
  @!%p0 bra FINCHECK;
  shl %r4, %r3, 3;
  add %r4, %r10, %r4;
  ld.global.u64 %r4, [%r4];      // key
  mov %r5, 0;                    // node = root
  mov %r6, 0;                    // depth
  mov %r30, 0;                   // done = false
OUTER:
  setp.ne.s64 %p1, %r30, 0;
  @%p1 bra BARRIER;              // finished lanes skip the attempt
DESCEND:
  shr %r7, %r4, %r6;
  and %r7, %r7, 1;               // bit = (key >> depth) & 1
  shl %r8, %r5, 4;
  shl %r9, %r7, 3;
  add %r8, %r8, %r9;
  add %r8, %r11, %r8;            // &nodes[node].child[bit]
.annot sync_begin
  ld.volatile.global.u64 %r14, [%r8];
  setp.eq.s64 %p2, %r14, 1;
  @%p2 bra BARRIER;              // slot locked: back off to the barrier
.annot sync_end
  and %r15, %r14, 3;
  setp.eq.s64 %p3, %r15, 2;
  @!%p3 bra TRYLOCK;
  shr %r5, %r14, 2;              // internal: descend
  add %r6, %r6, 1;
  bra.uni DESCEND;
TRYLOCK:
.annot sync_begin
  .annot acquire
  atom.global.cas.b64 %r16, [%r8], %r14, 1;
  setp.ne.s64 %p4, %r16, %r14;
  @%p4 bra BARRIER;              // lost the race: back off
.annot sync_end
  setp.ne.s64 %p5, %r14, 0;
  @%p5 bra SPLIT;
  shl %r17, %r4, 2;
  or %r17, %r17, 3;
  membar;
  st.volatile.global.u64 [%r8], %r17;   // place body (publish unlocks)
  mov %r30, 1;
  bra.uni BARRIER;
SPLIT:
  shr %r18, %r14, 2;             // existing body key e
  atom.global.add.b64 %r19, [%r12], 1;  // allocate internal node
  add %r20, %r6, 1;
  shr %r21, %r18, %r20;
  and %r21, %r21, 1;             // e's bit one level down
  shl %r22, %r19, 4;
  shl %r23, %r21, 3;
  add %r22, %r22, %r23;
  add %r22, %r11, %r22;          // &nodes[new].child[ebit]
  shl %r24, %r18, 2;
  or %r24, %r24, 3;
  st.global.u64 [%r22], %r24;    // re-home e under the new node
  membar;
  shl %r25, %r19, 2;
  or %r25, %r25, 2;
  st.volatile.global.u64 [%r8], %r25;   // publish internal node (unlock)
BARRIER:
  bar.sync;
  setp.eq.s64 %p6, %r30, 0;
  @%p6 bra FINCHECK;             // insertion still pending: retry
  setp.ge.s64 %p7, %r3, %r13;
  @%p7 bra FINCHECK;
  add %r3, %r3, %r2;             // advance to my next body
  setp.ge.s64 %p8, %r3, %r13;
  @%p8 bra FINCHECK;
  shl %r4, %r3, 3;
  add %r4, %r10, %r4;
  ld.global.u64 %r4, [%r4];
  mov %r5, 0;
  mov %r6, 0;
  mov %r30, 0;
FINCHECK:
  setp.lt.s64 %p9, %r3, %r13;
  .annot spin
  @%p9 bra OUTER;
  exit;
)";

class BhTreeHarness : public KernelHarness {
  public:
    explicit BhTreeHarness(const BhTreeParams &p)
        : KernelHarness("TB"), p_(p), prog_(assemble(kBhTreeSource))
    {
        if (p_.bodies >= (1u << p_.keyBits))
            fatal("TB: bodies must be fewer than 2^keyBits");
    }

    void
    setup(Gpu &gpu) override
    {
        keys_.resize(p_.bodies);
        const std::uint64_t mask = (1ull << p_.keyBits) - 1;
        for (unsigned i = 0; i < p_.bodies; ++i) {
            // Multiplication by an odd constant is a bijection mod 2^B,
            // so keys are distinct (required for bounded splitting).
            keys_[i] = static_cast<Word>((i * 2654435761ull) & mask);
        }
        keysAddr_ = gpu.malloc(p_.bodies * 8);
        gpu.memcpyToDevice(keysAddr_, keys_.data(), p_.bodies * 8);
        // Worst-case internal nodes: one per split step; bodies * keyBits
        // is a safe upper bound but wasteful — bodies * 4 suffices for
        // hashed keys; keep a generous margin.
        nodeCapacity_ = std::uint64_t{p_.bodies} * 8 + 64;
        nodesAddr_ = gpu.malloc(nodeCapacity_ * 16);
        counterAddr_ = gpu.malloc(8);
        Word one = 1;  // node 0 is the root
        gpu.memcpyToDevice(counterAddr_, &one, 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(keysAddr_), static_cast<Word>(nodesAddr_),
             static_cast<Word>(counterAddr_),
             static_cast<Word>(p_.bodies)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        Word used = 0;
        gpu.memcpyFromDevice(&used, counterAddr_, 8);
        if (used <= 0 || static_cast<std::uint64_t>(used) > nodeCapacity_)
            return false;
        std::vector<Word> slots(static_cast<size_t>(used) * 2);
        gpu.memcpyFromDevice(slots.data(), nodesAddr_, slots.size() * 8);

        // Walk the tree: every reachable body must sit on the path its
        // key bits dictate, and the body count must match (keys are
        // distinct, so matching count means every key was inserted once).
        std::uint64_t located = 0;
        struct Frame {
            Word node;
            unsigned depth;
            std::uint64_t prefix;
        };
        std::vector<Frame> stack{{0, 0, 0}};
        while (!stack.empty()) {
            Frame f = stack.back();
            stack.pop_back();
            if (f.depth > p_.keyBits)
                return false;
            for (unsigned bit = 0; bit < 2; ++bit) {
                Word v = slots[static_cast<size_t>(f.node) * 2 + bit];
                std::uint64_t prefix =
                    f.prefix | (std::uint64_t{bit} << f.depth);
                if (v == 0)
                    continue;
                if (v == 1)
                    return false;  // a lock was leaked
                if ((v & 3) == 2) {
                    stack.push_back(
                        Frame{v >> 2, f.depth + 1, prefix});
                    continue;
                }
                std::uint64_t key = static_cast<std::uint64_t>(v) >> 2;
                // The key must match the path prefix in its low bits.
                std::uint64_t low_mask =
                    (std::uint64_t{1} << (f.depth + 1)) - 1;
                if ((key & low_mask) != prefix)
                    return false;
                ++located;
            }
        }
        return located == p_.bodies;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    BhTreeParams p_;
    Program prog_;
    std::vector<Word> keys_;
    Addr keysAddr_ = 0;
    Addr nodesAddr_ = 0;
    Addr counterAddr_ = 0;
    std::uint64_t nodeCapacity_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeBhTree(const BhTreeParams &p)
{
    return std::make_unique<BhTreeHarness>(p);
}

}  // namespace bowsim
