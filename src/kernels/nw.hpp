#ifndef BOWSIM_KERNELS_NW_HPP
#define BOWSIM_KERNELS_NW_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * NW1/NW2: lock-free wavefront Needleman-Wunsch sequence alignment in the
 * fine-grained dataflow style of Li et al. [ICS'15]. One thread owns one
 * matrix row; before computing cell (r, c) it spins on progress[r-1]
 * until the upper neighbour is final, computes the cell, then publishes
 * progress[r] = c+1 — a wait-and-signal chain. NW1 fills the matrix
 * top-left to bottom-right, NW2 bottom-right to top-left (the paper's two
 * kernels traverse the grid in opposite directions); younger rows depend
 * on older ones, which is why GTO's oldest-first order suits NW.
 */

namespace bowsim {

struct NwParams {
    /** Sequence length (matrix is (n+1) x (n+1)). */
    unsigned n = 96;
    unsigned threadsPerCta = 64;
    Word matchScore = 2;
    Word mismatchPenalty = -1;
    Word gapPenalty = 1;
    std::uint64_t seed = 31337;
};

/** @param reverse false = NW1 (forward), true = NW2 (reverse sweep). */
std::unique_ptr<KernelHarness> makeNw(const NwParams &p, bool reverse);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_NW_HPP
