#include "src/kernels/cp_ds.hpp"

#include <numeric>
#include <vector>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

/**
 * Params: [0]=locks, [1]=positions, [2]=pairA, [3]=pairB,
 *         [4]=numConstraints, [5]=restLength, [6]=iterations.
 */
constexpr const char *kCpDsSource = R"(
.kernel cp_ds
.param 7
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;
  ld.param.u64 %r10, [0];        // locks
  ld.param.u64 %r11, [8];        // positions
  ld.param.u64 %r12, [16];       // pairA
  ld.param.u64 %r13, [24];       // pairB
  ld.param.u64 %r14, [32];       // numConstraints
  ld.param.u64 %r25, [40];       // rest length
  ld.param.u64 %r26, [48];       // iterations
  mov %r27, 0;                   // iter
ITER:
  setp.ge.s64 %p5, %r27, %r26;
  @%p5 exit;
  mov %r3, %r0;
OUTER:
  setp.ge.s64 %p0, %r3, %r14;
  @%p0 bra NEXTITER;
  shl %r4, %r3, 3;
  add %r5, %r12, %r4;
  ld.global.u64 %r5, [%r5];      // particle i
  add %r6, %r13, %r4;
  ld.global.u64 %r6, [%r6];      // particle j
  shl %r7, %r5, 3;
  add %r7, %r10, %r7;            // &lock[i]
  shl %r8, %r6, 3;
  add %r8, %r10, %r8;            // &lock[j]
  shl %r17, %r5, 3;
  add %r17, %r11, %r17;          // &x[i]
  shl %r18, %r6, 3;
  add %r18, %r11, %r18;          // &x[j]
  mov %r20, 0;                   // done = false
.annot sync_begin
LOOP:
  .annot acquire
  atom.global.cas.b64 %r15, [%r7], 0, 1;
  setp.ne.s64 %p1, %r15, 0;
  @%p1 bra SKIP;
  .annot acquire
  atom.global.cas.b64 %r16, [%r8], 0, 1;
  setp.ne.s64 %p2, %r16, 0;
  @%p2 bra REL1;
.annot sync_end
  membar;
  // distance solve: move both ends half the violation
  ld.global.u64 %r21, [%r17];
  ld.global.u64 %r22, [%r18];
  sub %r23, %r22, %r21;          // d = x[j] - x[i]
  sub %r23, %r23, %r25;          // violation = d - rest
  div %r23, %r23, 2;             // corr
  add %r21, %r21, %r23;
  sub %r22, %r22, %r23;
  st.global.u64 [%r17], %r21;
  st.global.u64 [%r18], %r22;
  mov %r20, 1;
  membar;
.annot sync_begin
  atom.global.exch.b64 %r24, [%r8], 0;
REL1:
  atom.global.exch.b64 %r28, [%r7], 0;
SKIP:
  setp.eq.s64 %p3, %r20, 0;
  .annot spin
  @%p3 bra LOOP;
.annot sync_end
  add %r3, %r3, %r2;
  bra.uni OUTER;
NEXTITER:
  add %r27, %r27, 1;
  bra.uni ITER;
)";

class CpDsHarness : public KernelHarness {
  public:
    explicit CpDsHarness(const CpDsParams &p)
        : KernelHarness("DS"), p_(p), prog_(assemble(kCpDsSource))
    {
        if (p_.side < 2)
            fatal("DS: cloth side must be at least 2");
    }

    void
    setup(Gpu &gpu) override
    {
        const unsigned n = p_.side;
        const unsigned particles = n * n;
        // Structural constraints: right and down neighbours.
        pairA_.clear();
        pairB_.clear();
        for (unsigned r = 0; r < n; ++r) {
            for (unsigned c = 0; c < n; ++c) {
                unsigned idx = r * n + c;
                if (c + 1 < n) {
                    pairA_.push_back(idx);
                    pairB_.push_back(idx + 1);
                }
                if (r + 1 < n) {
                    pairA_.push_back(idx);
                    pairB_.push_back(idx + n);
                }
            }
        }
        // Deterministic shuffle: adjacent constraints share particles,
        // and leaving them adjacent puts every conflict inside one warp.
        // Real cloth solvers interleave constraint batches; the shuffle
        // spreads conflicts across warps (as in the paper's DS, where
        // most failures are inter-warp).
        std::uint64_t shuffle_state = p_.seed ^ 0xdecafbad;
        for (size_t i = pairA_.size(); i > 1; --i) {
            shuffle_state ^= shuffle_state >> 12;
            shuffle_state ^= shuffle_state << 25;
            shuffle_state ^= shuffle_state >> 27;
            size_t j = shuffle_state % i;
            std::swap(pairA_[i - 1], pairA_[j]);
            std::swap(pairB_[i - 1], pairB_[j]);
        }
        positions_.resize(particles);
        std::uint64_t x = p_.seed;
        for (auto &pos : positions_) {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            pos = static_cast<Word>((x * 0x2545F4914F6CDD1Dull) % 2048);
        }
        locksAddr_ = gpu.malloc(particles * 8);
        posAddr_ = gpu.malloc(particles * 8);
        pairAAddr_ = gpu.malloc(pairA_.size() * 8);
        pairBAddr_ = gpu.malloc(pairB_.size() * 8);
        gpu.memcpyToDevice(posAddr_, positions_.data(), particles * 8);
        gpu.memcpyToDevice(pairAAddr_, pairA_.data(), pairA_.size() * 8);
        gpu.memcpyToDevice(pairBAddr_, pairB_.data(), pairB_.size() * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(locksAddr_), static_cast<Word>(posAddr_),
             static_cast<Word>(pairAAddr_), static_cast<Word>(pairBAddr_),
             static_cast<Word>(pairA_.size()), kRestLength,
             static_cast<Word>(p_.iterations)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        const unsigned particles = p_.side * p_.side;
        std::vector<Word> pos(particles);
        gpu.memcpyFromDevice(pos.data(), posAddr_, particles * 8);
        // Symmetric corrections preserve the coordinate sum exactly.
        Word before = std::accumulate(positions_.begin(), positions_.end(),
                                      Word{0});
        Word after = std::accumulate(pos.begin(), pos.end(), Word{0});
        if (before != after)
            return false;
        std::vector<Word> locks(particles);
        gpu.memcpyFromDevice(locks.data(), locksAddr_, particles * 8);
        for (Word l : locks) {
            if (l != 0)
                return false;
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    static constexpr Word kRestLength = 16;

    CpDsParams p_;
    Program prog_;
    std::vector<Word> pairA_;
    std::vector<Word> pairB_;
    std::vector<Word> positions_;
    Addr locksAddr_ = 0;
    Addr posAddr_ = 0;
    Addr pairAAddr_ = 0;
    Addr pairBAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeCpDs(const CpDsParams &p)
{
    return std::make_unique<CpDsHarness>(p);
}

}  // namespace bowsim
