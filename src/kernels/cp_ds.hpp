#ifndef BOWSIM_KERNELS_CP_DS_HPP
#define BOWSIM_KERNELS_CP_DS_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * DS: the Cloth Physics distance solver. Constraints connect particle
 * pairs on a cloth grid; each constraint update takes both particles'
 * locks with the nested try-lock/release-and-retry pattern (Fig. 6a) and
 * moves the pair toward its rest distance. Updates are symmetric
 * (x_i += c, x_j -= c), so the total coordinate sum is an invariant the
 * harness validates.
 */

namespace bowsim {

struct CpDsParams {
    /** Cloth grid side (particles = side^2). */
    unsigned side = 48;
    /** Solver relaxation iterations. */
    unsigned iterations = 2;
    unsigned ctas = 16;
    unsigned threadsPerCta = 192;
    std::uint64_t seed = 909090;
};

std::unique_ptr<KernelHarness> makeCpDs(const CpDsParams &p);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_CP_DS_HPP
