#ifndef BOWSIM_KERNELS_BH_SORT_HPP
#define BOWSIM_KERNELS_BH_SORT_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * ST: BarnesHut sort-kernel-style wait-and-signal synchronization
 * (Fig. 6c of the paper). Threads own nodes of a complete binary tree;
 * a node's start index is written ("signalled") by its parent's owner,
 * and each owner spins ("waits") on a volatile load until its start
 * arrives, then signals its children (internal nodes) or writes its
 * bodies to the sorted output (leaves).
 */

namespace bowsim {

struct BhSortParams {
    /** Number of leaves (a power of two). */
    unsigned leaves = 4096;
    unsigned ctas = 16;
    unsigned threadsPerCta = 256;
};

std::unique_ptr<KernelHarness> makeBhSort(const BhSortParams &p);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_BH_SORT_HPP
