#ifndef BOWSIM_KERNELS_BH_TREE_HPP
#define BOWSIM_KERNELS_BH_TREE_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * TB: BarnesHut-style concurrent tree building. Threads insert bodies
 * into a binary radix tree with per-slot locking: descend to a null/body
 * slot, CAS-lock it, place the body or split it into a new internal node,
 * and publish to unlock. As in the original TB kernel, the retry loop is
 * throttled by a CTA barrier (each failed thread backs off to the barrier
 * before retrying) and the CTA count is limited — which is why BOWS has
 * little left to improve here.
 */

namespace bowsim {

struct BhTreeParams {
    unsigned bodies = 6000;
    unsigned ctas = 15;
    unsigned threadsPerCta = 256;
    /** Key width in bits (keys are distinct within this width). */
    unsigned keyBits = 20;
};

std::unique_ptr<KernelHarness> makeBhTree(const BhTreeParams &p);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_BH_TREE_HPP
