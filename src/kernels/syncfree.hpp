#ifndef BOWSIM_KERNELS_SYNCFREE_HPP
#define BOWSIM_KERNELS_SYNCFREE_HPP

#include <memory>

#include "src/kernels/kernel_harness.hpp"

/**
 * @file
 * Synchronization-free control kernels (the paper's Rodinia stand-ins).
 * Used to measure DDOS false detections (Table I) and the overhead BOWS
 * imposes when a branch is falsely classified (Fig. 14):
 *
 *  - VEC: grid-stride vector add.
 *  - KM: kmeans invert_mapping-style copy loop (the Fig. 7c example).
 *  - MS: merge-sort-style pass whose inner loop's induction variable
 *    advances by 256 — invisible to an 8-bit MODULO hash, so MODULO
 *    DDOS falsely flags its loop branch as spin-inducing.
 *  - HL: heart-wall-style windowed sum with a 512-stride loop (the
 *    paper's second false-detection case).
 *  - RED: shared-memory tree reduction with barriers + a final atomic.
 *  - STEN: 3-point stencil.
 */

namespace bowsim {

struct SyncFreeParams {
    unsigned elements = 65536;
    unsigned ctas = 30;
    unsigned threadsPerCta = 256;
    std::uint64_t seed = 2025;
};

std::unique_ptr<KernelHarness> makeVecAdd(const SyncFreeParams &p);
std::unique_ptr<KernelHarness> makeKmeansInvert(const SyncFreeParams &p);
std::unique_ptr<KernelHarness> makeMergeSortPass(const SyncFreeParams &p);
std::unique_ptr<KernelHarness> makeHeartWall(const SyncFreeParams &p);
std::unique_ptr<KernelHarness> makeReduction(const SyncFreeParams &p);
std::unique_ptr<KernelHarness> makeStencil(const SyncFreeParams &p);

}  // namespace bowsim

#endif  // BOWSIM_KERNELS_SYNCFREE_HPP
