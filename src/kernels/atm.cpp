#include "src/kernels/atm.hpp"

#include <vector>

#include "src/common/log.hpp"
#include "src/isa/assembler.hpp"

namespace bowsim {

namespace {

constexpr const char *kAtmSource = R"(
.kernel atm
.param 5
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;
  ld.param.u64 %r10, [0];        // locks
  ld.param.u64 %r11, [8];        // balances
  ld.param.u64 %r12, [16];       // src account ids
  ld.param.u64 %r13, [24];       // dst account ids
  ld.param.u64 %r14, [32];       // numTransactions
  mov %r3, %r0;
OUTER:
  setp.ge.s64 %p0, %r3, %r14;
  @%p0 exit;
  shl %r4, %r3, 3;
  add %r5, %r12, %r4;
  ld.global.u64 %r5, [%r5];      // src
  add %r6, %r13, %r4;
  ld.global.u64 %r6, [%r6];      // dst
  // Locks are taken in (min, max) account order: a global lock order
  // guarantees progress under deterministic lock-step retries while
  // keeping the Fig. 6a try/release-and-retry shape.
  min %r25, %r5, %r6;
  max %r26, %r5, %r6;
  shl %r7, %r25, 3;
  add %r7, %r10, %r7;            // &lock[lo]
  shl %r8, %r26, 3;
  add %r8, %r10, %r8;            // &lock[hi]
  shl %r17, %r5, 3;
  add %r17, %r11, %r17;          // &balance[src]
  shl %r18, %r6, 3;
  add %r18, %r11, %r18;          // &balance[dst]
  mov %r20, 0;                   // transaction_done = false
.annot sync_begin
LOOP:
  .annot acquire
  atom.global.cas.b64 %r15, [%r7], 0, 1;   // try lock 1
  setp.ne.s64 %p1, %r15, 0;
  @%p1 bra SKIP;
  .annot acquire
  atom.global.cas.b64 %r16, [%r8], 0, 1;   // try lock 2
  setp.ne.s64 %p2, %r16, 0;
  @%p2 bra REL1;
.annot sync_end
  membar;
  ld.global.u64 %r21, [%r17];
  sub %r21, %r21, 1;
  st.global.u64 [%r17], %r21;    // balance[src] -= 1
  ld.global.u64 %r22, [%r18];
  add %r22, %r22, 1;
  st.global.u64 [%r18], %r22;    // balance[dst] += 1
  mov %r20, 1;
  membar;
.annot sync_begin
  atom.global.exch.b64 %r23, [%r8], 0;     // release lock 2
REL1:
  atom.global.exch.b64 %r24, [%r7], 0;     // release lock 1
SKIP:
  setp.eq.s64 %p3, %r20, 0;
  .annot spin
  @%p3 bra LOOP;
.annot sync_end
  add %r3, %r3, %r2;
  bra.uni OUTER;
)";

class AtmHarness : public KernelHarness {
  public:
    explicit AtmHarness(const AtmParams &p)
        : KernelHarness("ATM"), p_(p), prog_(assemble(kAtmSource))
    {
        if (p_.accounts < 2)
            fatal("ATM needs at least two accounts");
    }

    void
    setup(Gpu &gpu) override
    {
        src_.resize(p_.transactions);
        dst_.resize(p_.transactions);
        std::uint64_t x = p_.seed;
        auto next = [&x]() {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            return x * 0x2545F4914F6CDD1Dull;
        };
        for (unsigned t = 0; t < p_.transactions; ++t) {
            std::uint64_t a = next() % p_.accounts;
            std::uint64_t b = next() % p_.accounts;
            if (b == a)
                b = (b + 1) % p_.accounts;  // src != dst (no self-deadlock)
            src_[t] = static_cast<Word>(a);
            dst_[t] = static_cast<Word>(b);
        }
        locksAddr_ = gpu.malloc(p_.accounts * 8);
        balancesAddr_ = gpu.malloc(p_.accounts * 8);
        srcAddr_ = gpu.malloc(p_.transactions * 8);
        dstAddr_ = gpu.malloc(p_.transactions * 8);
        std::vector<Word> init(p_.accounts, kInitialBalance);
        gpu.memcpyToDevice(balancesAddr_, init.data(), p_.accounts * 8);
        gpu.memcpyToDevice(srcAddr_, src_.data(), p_.transactions * 8);
        gpu.memcpyToDevice(dstAddr_, dst_.data(), p_.transactions * 8);
    }

    std::vector<LaunchSpec>
    launches() const override
    {
        return {LaunchSpec{
            &prog_, Dim3{p_.ctas, 1, 1}, Dim3{p_.threadsPerCta, 1, 1},
            {static_cast<Word>(locksAddr_), static_cast<Word>(balancesAddr_),
             static_cast<Word>(srcAddr_), static_cast<Word>(dstAddr_),
             static_cast<Word>(p_.transactions)}}};
    }

    bool
    validate(Gpu &gpu) const override
    {
        std::vector<Word> balances(p_.accounts);
        gpu.memcpyFromDevice(balances.data(), balancesAddr_,
                             p_.accounts * 8);
        std::vector<Word> expected(p_.accounts, kInitialBalance);
        for (unsigned t = 0; t < p_.transactions; ++t) {
            --expected[src_[t]];
            ++expected[dst_[t]];
        }
        if (balances != expected)
            return false;
        std::vector<Word> locks(p_.accounts);
        gpu.memcpyFromDevice(locks.data(), locksAddr_, p_.accounts * 8);
        for (Word l : locks) {
            if (l != 0)
                return false;
        }
        return true;
    }

    std::vector<const Program *>
    programs() const override
    {
        return {&prog_};
    }

  private:
    static constexpr Word kInitialBalance = 1000;

    AtmParams p_;
    Program prog_;
    std::vector<Word> src_;
    std::vector<Word> dst_;
    Addr locksAddr_ = 0;
    Addr balancesAddr_ = 0;
    Addr srcAddr_ = 0;
    Addr dstAddr_ = 0;
};

}  // namespace

std::unique_ptr<KernelHarness>
makeAtm(const AtmParams &p)
{
    return std::make_unique<AtmHarness>(p);
}

}  // namespace bowsim
