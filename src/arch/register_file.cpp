#include "src/arch/register_file.hpp"

// Header-only; this translation unit anchors the component in the library.
