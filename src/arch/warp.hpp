#ifndef BOWSIM_ARCH_WARP_HPP
#define BOWSIM_ARCH_WARP_HPP

#include <memory>

#include "src/arch/register_file.hpp"
#include "src/arch/scoreboard.hpp"
#include "src/arch/simt_stack.hpp"
#include "src/common/types.hpp"

/**
 * @file
 * Per-warp state held by an SM: architectural state (SIMT stack, register
 * file), hazard state (scoreboard), and the scheduler-visible status bits
 * BOWS and CAWA operate on.
 */

namespace bowsim {

/** CAWA's per-warp criticality inputs (Section II of the paper). */
struct CawaState {
    /** Estimated remaining dynamic instructions (nInst). */
    double estRemaining = 0.0;
    /** Instructions issued so far. */
    std::uint64_t issued = 0;
    /** Cycles since the warp launched. */
    std::uint64_t activeCycles = 0;
    /** Cycles the warp was resident but could not issue (nStall). */
    std::uint64_t stallCycles = 0;

    /** Criticality metric: nInst * CPIavg + nStall. */
    double
    criticality() const
    {
        double cpi =
            issued == 0 ? 1.0
                        : static_cast<double>(activeCycles) /
                              static_cast<double>(issued);
        return estRemaining * cpi + static_cast<double>(stallCycles);
    }
};

/** BOWS per-warp state (Section III; Fig. 8 table fields). */
struct BowsState {
    /** The warp executed a SIB and sits in the backed-off queue. */
    bool backedOff = false;
    /** Cycles remaining before the next spin iteration may issue. */
    Cycle pendingDelay = 0;
    /** Absolute expiry cycle of the armed delay — the deadline twin of
     *  pendingDelay the simulator hot path uses so no per-cycle counter
     *  ticking is needed (a delay of L armed at issue cycle c first
     *  allows issue at cycle c+L in both representations). */
    Cycle delayUntil = 0;
    /** FIFO ticket: when the warp entered the backed-off queue. */
    std::uint64_t backoffSeq = 0;
};

class Warp {
  public:
    Warp(unsigned id, unsigned cta, unsigned warp_in_cta, std::uint64_t age,
         unsigned num_regs, unsigned num_preds, LaneMask active)
        : id_(id), cta_(cta), warpInCta_(warp_in_cta), age_(age),
          regs_(num_regs, num_preds),
          scoreboard_(num_regs, num_preds)
    {
        stack_.reset(active);
    }

    unsigned id() const { return id_; }
    unsigned cta() const { return cta_; }
    unsigned warpInCta() const { return warpInCta_; }
    /** Global launch order; lower = older (GTO's age notion). */
    std::uint64_t age() const { return age_; }
    void setAge(std::uint64_t age) { age_ = age; }

    SimtStack &stack() { return stack_; }
    const SimtStack &stack() const { return stack_; }
    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }
    Scoreboard &scoreboard() { return scoreboard_; }
    const Scoreboard &scoreboard() const { return scoreboard_; }

    bool done() const { return stack_.done(); }

    bool atBarrier() const { return atBarrier_; }
    void setAtBarrier(bool v) { atBarrier_ = v; }

    CawaState &cawa() { return cawa_; }
    const CawaState &cawa() const { return cawa_; }
    BowsState &bows() { return bows_; }
    const BowsState &bows() const { return bows_; }

    /** Cycle this warp last won arbitration (CAWA stall accounting). */
    Cycle lastIssueCycle() const { return lastIssueCycle_; }
    void setLastIssueCycle(Cycle c) { lastIssueCycle_ = c; }

    /** In-flight LD/ST-unit operations (gates CTA retirement). */
    unsigned ldstOutstanding() const { return ldstOutstanding_; }
    void
    addLdstOutstanding(int delta)
    {
        ldstOutstanding_ = static_cast<unsigned>(
            static_cast<int>(ldstOutstanding_) + delta);
    }

  private:
    unsigned id_;
    unsigned cta_;
    unsigned warpInCta_;
    std::uint64_t age_;
    SimtStack stack_;
    RegisterFile regs_;
    Scoreboard scoreboard_;
    bool atBarrier_ = false;
    CawaState cawa_;
    BowsState bows_;
    unsigned ldstOutstanding_ = 0;
    Cycle lastIssueCycle_ = ~Cycle{0};
};

}  // namespace bowsim

#endif  // BOWSIM_ARCH_WARP_HPP
