#include "src/arch/scoreboard.hpp"

#include "src/common/log.hpp"

namespace bowsim {

bool
Scoreboard::pending(const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return regPending_.at(op.index);
      case Operand::Kind::Pred:
        return predPending_.at(op.index);
      default:
        return false;
    }
}

bool
Scoreboard::canIssueSlow(const Instruction &inst) const
{
    if (inst.guard >= 0 && predPending_.at(inst.guard))
        return false;
    for (const Operand &src : inst.src) {
        if (pending(src))
            return false;
    }
    // WAW: the destination must not already be in flight.
    if (pending(inst.dst))
        return false;
    return true;
}

void
Scoreboard::reserve(const Instruction &inst)
{
    switch (inst.dst.kind) {
      case Operand::Kind::Reg:
        if (regPending_.at(inst.dst.index))
            panic("scoreboard: WAW reserve on %r", inst.dst.index);
        regPending_[inst.dst.index] = true;
        if (inst.dst.index < 64)
            regMask_ |= std::uint64_t{1} << inst.dst.index;
        ++outstanding_;
        break;
      case Operand::Kind::Pred:
        if (predPending_.at(inst.dst.index))
            panic("scoreboard: WAW reserve on %p", inst.dst.index);
        predPending_[inst.dst.index] = true;
        if (inst.dst.index < 64)
            predMask_ |= std::uint64_t{1} << inst.dst.index;
        ++outstanding_;
        break;
      default:
        break;
    }
}

void
Scoreboard::release(const Instruction &inst)
{
    switch (inst.dst.kind) {
      case Operand::Kind::Reg:
        if (!regPending_.at(inst.dst.index))
            panic("scoreboard: release of idle %r", inst.dst.index);
        regPending_[inst.dst.index] = false;
        if (inst.dst.index < 64)
            regMask_ &= ~(std::uint64_t{1} << inst.dst.index);
        --outstanding_;
        break;
      case Operand::Kind::Pred:
        if (!predPending_.at(inst.dst.index))
            panic("scoreboard: release of idle %p", inst.dst.index);
        predPending_[inst.dst.index] = false;
        if (inst.dst.index < 64)
            predMask_ &= ~(std::uint64_t{1} << inst.dst.index);
        --outstanding_;
        break;
      default:
        break;
    }
}

}  // namespace bowsim
