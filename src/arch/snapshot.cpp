#include "src/arch/snapshot.hpp"

namespace bowsim {

WarpSnapshot
snapshotWarp(const Warp &w)
{
    WarpSnapshot snap;
    snap.warpInCta = w.warpInCta();
    snap.age = w.age();
    snap.atBarrier = w.atBarrier();
    snap.done = w.done();
    snap.stack = w.stack();
    snap.regs = w.regs();
    return snap;
}

void
restoreWarp(Warp &w, const WarpSnapshot &snap)
{
    w.setAge(snap.age);
    w.setAtBarrier(snap.atBarrier);
    w.stack() = snap.stack;
    w.regs() = snap.regs;
}

}  // namespace bowsim
