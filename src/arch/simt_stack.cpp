#include "src/arch/simt_stack.hpp"

#include "src/common/log.hpp"

namespace bowsim {

void
SimtStack::reset(LaneMask active)
{
    stack_.clear();
    if (active)
        stack_.push_back({0, kInvalidPc, active});
}

void
SimtStack::pcOnDone() const
{
    panic("SimtStack::pc on a finished warp");
}

void
SimtStack::advance()
{
    if (stack_.empty())
        panic("SimtStack::advance on a finished warp");
    ++stack_.back().pc;
    cleanup();
}

void
SimtStack::branch(const Instruction &inst, LaneMask taken)
{
    if (stack_.empty())
        panic("SimtStack::branch on a finished warp");
    SimtEntry &tos = stack_.back();
    const LaneMask exec = tos.mask;
    const LaneMask fall = exec & ~taken;
    if ((taken & ~exec) != 0)
        panic("SimtStack::branch: taken lanes outside the active mask");

    if (inst.uniform && taken != 0 && fall != 0)
        panic("bra.uni diverged at pc ", tos.pc);

    if (fall == 0) {
        tos.pc = inst.target;
        cleanup();
        return;
    }
    if (taken == 0) {
        ++tos.pc;
        cleanup();
        return;
    }

    // Divergence. Convert the TOS entry into the reconvergence entry and
    // push the two sides; the taken path runs first.
    const Pc fall_pc = tos.pc + 1;
    const Pc rpc = inst.reconvergence;
    tos.pc = rpc;  // may be kInvalidPc: a "merge at exit" placeholder
    stack_.push_back({fall_pc, rpc, fall});
    stack_.push_back({inst.target, rpc, taken});
    cleanup();
}

void
SimtStack::exitLanes(LaneMask lanes)
{
    if (stack_.empty())
        panic("SimtStack::exitLanes on a finished warp");
    if ((lanes & ~stack_.back().mask) != 0)
        panic("SimtStack::exitLanes: lanes outside the active mask");
    const LaneMask remaining = stack_.back().mask & ~lanes;
    for (SimtEntry &e : stack_)
        e.mask &= ~lanes;
    if (remaining)
        ++stack_.back().pc;
    cleanup();
}

void
SimtStack::cleanup()
{
    while (!stack_.empty()) {
        SimtEntry &tos = stack_.back();
        if (tos.mask == 0) {
            stack_.pop_back();
            continue;
        }
        // A path entry that reached its reconvergence PC folds back into
        // the union entry below it (which already carries these lanes).
        if (tos.rpc != kInvalidPc && tos.pc == tos.rpc &&
            stack_.size() > 1) {
            stack_.pop_back();
            continue;
        }
        break;
    }
}

}  // namespace bowsim
