#include "src/arch/warp.hpp"

// Header-only; this translation unit anchors the component in the library.
