#ifndef BOWSIM_ARCH_REGISTER_FILE_HPP
#define BOWSIM_ARCH_REGISTER_FILE_HPP

#include <vector>

#include "src/common/log.hpp"
#include "src/common/types.hpp"

/**
 * @file
 * Per-warp architectural register state: 32 lanes of general-purpose
 * 64-bit registers plus per-lane predicate bits (one LaneMask per
 * predicate register).
 */

namespace bowsim {

class RegisterFile {
  public:
    RegisterFile(unsigned num_regs, unsigned num_preds)
        : numRegs_(num_regs),
          regs_(static_cast<size_t>(num_regs) * kWarpSize, 0),
          preds_(num_preds, 0)
    {
    }

    Word
    read(unsigned lane, int reg) const
    {
        return regs_[slot(lane, reg)];
    }

    void
    write(unsigned lane, int reg, Word value)
    {
        regs_[slot(lane, reg)] = value;
    }

    bool
    readPred(unsigned lane, int pred) const
    {
        return (preds_.at(pred) >> lane) & 1;
    }

    void
    writePred(unsigned lane, int pred, bool value)
    {
        LaneMask bit = LaneMask{1} << lane;
        if (value)
            preds_.at(pred) |= bit;
        else
            preds_.at(pred) &= ~bit;
    }

    /** Lanes (within @p mask) whose predicate @p pred is set. */
    LaneMask
    predMask(int pred, LaneMask mask) const
    {
        return preds_.at(pred) & mask;
    }

    unsigned numRegs() const { return numRegs_; }

    /**
     * Direct row access for per-warp execution loops: one bounds check
     * per instruction instead of one per lane. Rows are lane-contiguous
     * (reg-major layout).
     */
    const Word *
    row(int reg) const
    {
        checkReg(reg);
        return regs_.data() + static_cast<size_t>(reg) * kWarpSize;
    }
    Word *
    row(int reg)
    {
        checkReg(reg);
        return regs_.data() + static_cast<size_t>(reg) * kWarpSize;
    }

    /** All 32 lanes of predicate @p pred as a bitmask (hoists the
     *  per-lane readPred indexing out of execution loops). */
    LaneMask predBits(int pred) const { return preds_.at(pred); }
    /** Mutable predicate row for per-instruction write loops. */
    LaneMask &predRow(int pred) { return preds_.at(pred); }

  private:
    void
    checkReg(int reg) const
    {
        if (reg < 0 || static_cast<unsigned>(reg) >= numRegs_)
            panic("register file access out of range: %r", reg);
    }

    size_t
    slot(unsigned lane, int reg) const
    {
        if (lane >= kWarpSize || reg < 0 ||
            static_cast<unsigned>(reg) >= numRegs_) {
            panic("register file access out of range: lane ", lane, " %r",
                  reg);
        }
        return static_cast<size_t>(reg) * kWarpSize + lane;
    }

    unsigned numRegs_;
    std::vector<Word> regs_;
    std::vector<LaneMask> preds_;
};

}  // namespace bowsim

#endif  // BOWSIM_ARCH_REGISTER_FILE_HPP
