#ifndef BOWSIM_ARCH_SIMT_STACK_HPP
#define BOWSIM_ARCH_SIMT_STACK_HPP

#include <vector>

#include "src/common/types.hpp"
#include "src/isa/instruction.hpp"

/**
 * @file
 * Stack-based SIMT reconvergence (the pre-Volta mechanism the paper
 * targets). Each entry holds the next PC for a group of lanes and the PC
 * at which the group rejoins the entry below it (the IPDOM of the branch
 * that created the split).
 */

namespace bowsim {

/** One reconvergence-stack entry. */
struct SimtEntry {
    Pc pc;
    /** Reconvergence PC; kInvalidPc when paths only merge at exit. */
    Pc rpc;
    LaneMask mask;
};

/**
 * Per-warp SIMT reconvergence stack.
 *
 * The owning core executes the instruction at pc() over activeMask(),
 * then calls exactly one of advance(), branch() or exitLanes() to update
 * control flow.
 */
class SimtStack {
  public:
    /** Resets the stack to a single entry covering @p active at PC 0. */
    void reset(LaneMask active);

    /** True when every lane has exited. */
    bool done() const { return stack_.empty(); }

    /** PC the warp will execute next. Inline: this sits on the per-cycle
     *  arbitration path (one call per eligibility probe). */
    Pc
    pc() const
    {
        if (stack_.empty())
            pcOnDone();
        return stack_.back().pc;
    }

    /** Lanes that execute the next instruction. */
    LaneMask activeMask() const { return stack_.empty() ? 0 : stack_.back().mask; }

    /** Advances past a non-control-flow instruction. */
    void advance();

    /**
     * Executes a branch.
     *
     * @param inst   The branch (supplies target and reconvergence PCs).
     * @param taken  Lanes (subset of activeMask) whose guard passed.
     */
    void branch(const Instruction &inst, LaneMask taken);

    /**
     * Retires @p lanes (subset of activeMask) at an exit instruction and
     * advances the remaining lanes, if any, past it.
     */
    void exitLanes(LaneMask lanes);

    /** Current stack depth (for tests and occupancy stats). */
    size_t depth() const { return stack_.size(); }

    /** Read-only view of the raw entries (tests only). */
    const std::vector<SimtEntry> &entries() const { return stack_; }

  private:
    /** Pops converged and emptied entries. */
    void cleanup();
    /** Cold path: aborts via panic (out of line to keep pc() tiny). */
    [[noreturn]] void pcOnDone() const;

    std::vector<SimtEntry> stack_;
};

}  // namespace bowsim

#endif  // BOWSIM_ARCH_SIMT_STACK_HPP
