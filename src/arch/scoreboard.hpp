#ifndef BOWSIM_ARCH_SCOREBOARD_HPP
#define BOWSIM_ARCH_SCOREBOARD_HPP

#include <cstdint>
#include <vector>

#include "src/isa/instruction.hpp"

/**
 * @file
 * Per-warp scoreboard tracking in-flight register writes. An instruction
 * may issue only when none of its sources (RAW), its destination (WAW) or
 * its guard predicate are pending.
 */

namespace bowsim {

class Scoreboard {
  public:
    Scoreboard(unsigned num_regs, unsigned num_preds)
        : regPending_(num_regs, false), predPending_(num_preds, false)
    {
    }

    /** True when @p inst has no outstanding hazard. */
    bool
    canIssue(const Instruction &inst) const
    {
        // Nothing in flight means no hazard of any kind; this is the
        // common case on the per-cycle arbitration path.
        if (outstanding_ == 0)
            return true;
        // Assembled instructions carry their full read/guard/write set
        // as bitmasks, reducing the hazard check to two ANDs.
        if (inst.hazardMasksValid) {
            return (regMask_ & inst.hazardRegMask) == 0 &&
                   (predMask_ & inst.hazardPredMask) == 0;
        }
        return canIssueSlow(inst);
    }

    /** Marks @p inst's destination as pending (no-op if none). */
    void reserve(const Instruction &inst);

    /** Clears @p inst's destination (called at writeback). */
    void release(const Instruction &inst);

    /** True when no writes are outstanding (used at barriers/teardown). */
    bool idle() const { return outstanding_ == 0; }

    unsigned outstanding() const { return outstanding_; }

  private:
    bool pending(const Operand &op) const;
    bool canIssueSlow(const Instruction &inst) const;

    std::vector<bool> regPending_;
    std::vector<bool> predPending_;
    /**
     * Bitmask mirror of the pending vectors for indices < 64 (every
     * assembled kernel; wider register files simply leave the mask path
     * unused because their instructions carry no hazard masks).
     */
    std::uint64_t regMask_ = 0;
    std::uint64_t predMask_ = 0;
    unsigned outstanding_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_ARCH_SCOREBOARD_HPP
