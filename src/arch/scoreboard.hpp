#ifndef BOWSIM_ARCH_SCOREBOARD_HPP
#define BOWSIM_ARCH_SCOREBOARD_HPP

#include <vector>

#include "src/isa/instruction.hpp"

/**
 * @file
 * Per-warp scoreboard tracking in-flight register writes. An instruction
 * may issue only when none of its sources (RAW), its destination (WAW) or
 * its guard predicate are pending.
 */

namespace bowsim {

class Scoreboard {
  public:
    Scoreboard(unsigned num_regs, unsigned num_preds)
        : regPending_(num_regs, false), predPending_(num_preds, false)
    {
    }

    /** True when @p inst has no outstanding hazard. */
    bool canIssue(const Instruction &inst) const;

    /** Marks @p inst's destination as pending (no-op if none). */
    void reserve(const Instruction &inst);

    /** Clears @p inst's destination (called at writeback). */
    void release(const Instruction &inst);

    /** True when no writes are outstanding (used at barriers/teardown). */
    bool idle() const { return outstanding_ == 0; }

    unsigned outstanding() const { return outstanding_; }

  private:
    bool pending(const Operand &op) const;

    std::vector<bool> regPending_;
    std::vector<bool> predPending_;
    unsigned outstanding_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_ARCH_SCOREBOARD_HPP
