#ifndef BOWSIM_ARCH_SNAPSHOT_HPP
#define BOWSIM_ARCH_SNAPSHOT_HPP

#include <cstdint>
#include <vector>

#include "src/arch/warp.hpp"

/**
 * @file
 * Architectural state snapshots: everything needed to seed a
 * cycle-accurate SM from a point mid-execution (sampled mode's detailed
 * windows) or to checkpoint/restore the functional executor. Snapshots
 * capture architectural state only — SIMT stacks, register files,
 * barrier membership, warp ages, CTA shared memory and the launch-wide
 * dispatch cursor. Microarchitectural state (scoreboards, LD/ST queues,
 * caches, DDOS/BOWS) deliberately starts cold on restore; sampled
 * windows absorb that bias with a warm-up prefix (docs/PERF.md).
 */

namespace bowsim {

/** One warp's architectural state (SimtStack and RegisterFile are plain
 *  copyable values, so the snapshot holds them directly). */
struct WarpSnapshot {
    unsigned warpInCta = 0;
    std::uint64_t age = 0;
    bool atBarrier = false;
    bool done = false;
    SimtStack stack;
    RegisterFile regs{0, 0};
};

/** One resident CTA: identity, shared memory, barrier count, warps. */
struct CtaSnapshot {
    unsigned id = 0;
    unsigned arrivedAtBarrier = 0;
    std::vector<std::uint8_t> shared;
    std::vector<WarpSnapshot> warps;
};

/** One SM's resident CTAs (slot order preserved). */
struct SmSnapshot {
    std::vector<CtaSnapshot> ctas;
};

/** Whole-device architectural checkpoint (memory is snapshotted
 *  separately — MemorySpace is itself copyable). Sampled mode is gated
 *  to single-device runs, so a snapshot always covers one device. */
struct GpuSnapshot {
    /** Device the checkpoint was taken on (0 on single-device runs). */
    unsigned device = 0;
    unsigned nextCta = 0;
    std::uint64_t warpAgeCounter = 0;
    std::vector<SmSnapshot> sms;
};

/** Captures @p w's architectural state. */
WarpSnapshot snapshotWarp(const Warp &w);

/** Restores @p w from @p snap (stack, registers, barrier flag, age). */
void restoreWarp(Warp &w, const WarpSnapshot &snap);

}  // namespace bowsim

#endif  // BOWSIM_ARCH_SNAPSHOT_HPP
