#ifndef BOWSIM_CORE_BOWS_BACKOFF_HPP
#define BOWSIM_CORE_BOWS_BACKOFF_HPP

#include <cstdint>
#include <vector>

#include "src/arch/warp.hpp"
#include "src/common/config.hpp"
#include "src/core/bows/adaptive_delay.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * BOWS back-off unit (Section III, Fig. 8). The arbitration rules:
 *
 *  1. A warp that takes a spin-inducing branch enters the *backed-off*
 *     state and moves behind every non-backed-off warp.
 *  2. A backed-off warp may issue only when its pending back-off delay
 *     has expired; backed-off warps are ordered FIFO by entry time.
 *  3. When a backed-off warp issues, it leaves the backed-off state and
 *     its pending delay is re-armed to the current delay limit — setting
 *     a minimum spacing between consecutive spin-loop iterations.
 */

namespace bowsim {

class BackoffUnit {
  public:
    explicit BackoffUnit(const BowsConfig &cfg)
        : cfg_(cfg), estimator_(cfg),
          currentLimit_(cfg.adaptive ? estimator_.limit() : cfg.delayLimit)
    {
    }

    bool enabled() const { return cfg_.enabled; }

    /** Attaches the launch's event sink (BackoffEnter/Exit/Count). */
    void
    setTrace(trace::Tracer t, unsigned sm)
    {
        tracer_ = t;
        sm_ = sm;
    }

    /** Backed-off warps drop behind non-backed-off ones (ablation). */
    bool deprioritizes() const { return cfg_.enabled && cfg_.deprioritize; }

    /** Warp @p w took a SIB: push it to the back of the priority queue. */
    void
    onSpinBranch(Warp &w, Cycle now = 0)
    {
        if (!cfg_.enabled)
            return;
        BowsState &b = w.bows();
        if (!b.backedOff) {
            b.backedOff = true;
            b.backoffSeq = ++seq_;
            ++backedOffCount_;
            if (tracer_.enabled()) {
                const std::int32_t wid = static_cast<std::int32_t>(w.id());
                tracer_.emit(now, sm_, wid, trace::EventKind::BackoffEnter,
                             b.backoffSeq);
                tracer_.emit(now, sm_, -1, trace::EventKind::BackoffCount,
                             backedOffCount_);
            }
        }
    }

    /**
     * Warp @p w won arbitration: leaving the backed-off state re-arms its
     * pending delay to the current limit.
     */
    void
    onIssue(Warp &w)
    {
        BowsState &b = w.bows();
        if (b.backedOff) {
            b.backedOff = false;
            --backedOffCount_;
            b.pendingDelay = currentLimit_;
        }
    }

    /** True when BOWS permits @p w to compete for an issue slot at all. */
    bool
    mayIssue(const Warp &w) const
    {
        if (!cfg_.enabled)
            return true;
        const BowsState &b = w.bows();
        return !b.backedOff || b.pendingDelay == 0;
    }

    /**
     * Deadline-based twins of onIssue()/mayIssue() used by the simulator
     * hot path: arming records an absolute expiry cycle instead of a
     * counter, so cycle()'s per-warp decrement loop is unnecessary. A
     * delay of L armed at issue cycle c first allows issue at cycle
     * c + L — identical to decrementing a counter of L once per
     * subsequent cycle.
     */
    void
    onIssue(Warp &w, Cycle now)
    {
        BowsState &b = w.bows();
        if (b.backedOff) {
            b.backedOff = false;
            --backedOffCount_;
            b.delayUntil = now + currentLimit_;
            if (tracer_.enabled()) {
                tracer_.emit(now, sm_, static_cast<std::int32_t>(w.id()),
                             trace::EventKind::BackoffExit, currentLimit_);
                tracer_.emit(now, sm_, -1, trace::EventKind::BackoffCount,
                             backedOffCount_);
            }
        }
    }

    bool
    mayIssue(const Warp &w, Cycle now) const
    {
        if (!cfg_.enabled)
            return true;
        const BowsState &b = w.bows();
        return !b.backedOff || now >= b.delayUntil;
    }

    /** Currently backed-off warps (Fig. 11 occupancy accounting). */
    unsigned backedOffCount() const { return backedOffCount_; }

    /** Ticks every resident warp's pending-delay counter. */
    void
    cycle(std::vector<Warp *> &resident)
    {
        if (!cfg_.enabled)
            return;
        for (Warp *w : resident) {
            if (w->bows().pendingDelay > 0)
                --w->bows().pendingDelay;
        }
    }

    /** Feeds the adaptive estimator; call once per issued instruction. */
    void
    onInstruction(bool is_sib)
    {
        if (cfg_.enabled && cfg_.adaptive)
            estimator_.onInstruction(is_sib);
    }

    /** Advances the adaptive estimator's execution window. */
    void
    tickWindow(Cycle now)
    {
        if (!cfg_.enabled || !cfg_.adaptive)
            return;
        estimator_.tick(now);
        currentLimit_ = estimator_.limit();
    }

    Cycle delayLimit() const { return currentLimit_; }

    /**
     * Replays tickWindow(c) for every cycle c in [from, to] of an idle
     * gap (no instructions issued, so the estimator's counters are
     * untouched) and returns the gap's per-cycle delayLimit() sum —
     * exactly what the cycle loop would have added to
     * KernelStats::delayLimitCycleSum one cycle at a time.
     */
    std::uint64_t
    fastForwardWindows(Cycle from, Cycle to)
    {
        if (!cfg_.enabled || !cfg_.adaptive)
            return static_cast<std::uint64_t>(currentLimit_) *
                   (to - from + 1);
        std::uint64_t sum = estimator_.fastForward(from, to);
        currentLimit_ = estimator_.limit();
        return sum;
    }

  private:
    BowsConfig cfg_;
    AdaptiveDelayEstimator estimator_;
    Cycle currentLimit_;
    std::uint64_t seq_ = 0;
    unsigned backedOffCount_ = 0;
    trace::Tracer tracer_;
    unsigned sm_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_CORE_BOWS_BACKOFF_HPP
