#ifndef BOWSIM_CORE_BOWS_ADAPTIVE_DELAY_HPP
#define BOWSIM_CORE_BOWS_ADAPTIVE_DELAY_HPP

#include <cstdint>

#include "src/common/config.hpp"

/**
 * @file
 * Adaptive back-off delay-limit estimation (Fig. 5 of the paper). Over
 * successive execution windows of T cycles, the estimator tries to
 * maximize useful-instructions / spin-overhead using Total/SIB dynamic
 * instruction counts as a proxy:
 *
 *     every window:
 *       if SIB insts > FRAC1 * total insts:        limit += step
 *       if total/SIB  < FRAC2 * prev total/SIB:    limit -= 2 * step
 *       clamp(limit, min, max)
 */

namespace bowsim {

class AdaptiveDelayEstimator {
  public:
    explicit AdaptiveDelayEstimator(const BowsConfig &cfg)
        : cfg_(cfg), limit_(cfg.minLimit)
    {
    }

    /** Counts one issued instruction (SIB or not) in this window. */
    void
    onInstruction(bool is_sib)
    {
        ++totalInsts_;
        if (is_sib)
            ++sibInsts_;
    }

    /** Advances time; applies the Fig. 5 update at window boundaries. */
    void
    tick(Cycle now)
    {
        if (now < windowEnd_)
            return;
        applyWindow();
        windowEnd_ = now + cfg_.window;
    }

    Cycle limit() const { return limit_; }

    /** Cycle at which the next window boundary applies. */
    Cycle windowEnd() const { return windowEnd_; }

    /**
     * Replays tick(c) for every cycle c in [from, to] — with no
     * onInstruction() calls in between — in O(1), and returns the sum
     * over those cycles of limit()-after-tick (the contribution an idle
     * gap makes to KernelStats::delayLimitCycleSum).
     *
     * Equivalence with the per-cycle loop: boundaries inside the gap
     * land at windowEnd_, windowEnd_+T, ... The first one applies the
     * counters accumulated before the gap and may change the limit;
     * every later one sees zero counters, which leaves the limit
     * untouched (no increase trigger, no ratio defined, clamps are
     * idempotent) but still overwrites the prev-window counters — so
     * up to two applyWindow() calls replay any number of boundaries.
     *
     * Requires from <= to and windowEnd_ >= from (guaranteed when
     * tick() ran every cycle before the gap).
     */
    std::uint64_t
    fastForward(Cycle from, Cycle to)
    {
        if (windowEnd_ > to)
            return limit_ * (to - from + 1);
        const Cycle boundary = windowEnd_;
        std::uint64_t sum =
            limit_ * (boundary > from ? boundary - from : 0);
        applyWindow();
        const Cycle extra = (to - boundary) / cfg_.window;
        if (extra >= 1)
            applyWindow();
        windowEnd_ = boundary + (extra + 1) * cfg_.window;
        sum += limit_ * (to - boundary + 1);
        return sum;
    }

    /** Exposed for unit tests: force a window boundary. */
    void
    applyWindow()
    {
        if (sibInsts_ > cfg_.frac1 * static_cast<double>(totalInsts_))
            limit_ += cfg_.delayStep;
        if (sibInsts_ > 0 && prevSibInsts_ > 0) {
            double ratio = static_cast<double>(totalInsts_) / sibInsts_;
            double prev =
                static_cast<double>(prevTotalInsts_) / prevSibInsts_;
            if (ratio < cfg_.frac2 * prev) {
                Cycle dec = 2 * cfg_.delayStep;
                limit_ = limit_ > dec ? limit_ - dec : 0;
            }
        }
        if (limit_ > cfg_.maxLimit)
            limit_ = cfg_.maxLimit;
        if (limit_ < cfg_.minLimit)
            limit_ = cfg_.minLimit;
        prevTotalInsts_ = totalInsts_;
        prevSibInsts_ = sibInsts_;
        totalInsts_ = 0;
        sibInsts_ = 0;
    }

  private:
    BowsConfig cfg_;
    Cycle limit_;
    Cycle windowEnd_ = 0;
    std::uint64_t totalInsts_ = 0;
    std::uint64_t sibInsts_ = 0;
    std::uint64_t prevTotalInsts_ = 0;
    std::uint64_t prevSibInsts_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_CORE_BOWS_ADAPTIVE_DELAY_HPP
