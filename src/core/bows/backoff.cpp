#include "src/core/bows/backoff.hpp"

// Header-only; this translation unit anchors the component in the library.
