#include "src/core/bows/adaptive_delay.hpp"

// Header-only; this translation unit anchors the component in the library.
