#ifndef BOWSIM_CORE_DDOS_HASHING_HPP
#define BOWSIM_CORE_DDOS_HASHING_HPP

#include <cstdint>

#include "src/common/config.hpp"

/**
 * @file
 * DDOS history hashing (Section IV-B). Two schemes:
 *
 *  - MODULO: keep the least-significant m (k) bits. Cheap, but loops whose
 *    induction variable advances by a power of two larger than 2^k leave
 *    the hash constant, producing false spin detections (the paper's
 *    Merge Sort / Heart Wall cases, Fig. 14).
 *  - XOR: fold the whole value into m (k) bits by XOR-ing m-bit chunks
 *    (PC[m-1:0] ^ PC[2m-1:m] ^ ...). Higher-order changes stay visible,
 *    eliminating those false detections.
 */

namespace bowsim {

/** Hashes @p value into @p bits bits using scheme @p kind. */
std::uint32_t hashHistory(HashKind kind, unsigned bits,
                          std::uint64_t value);

}  // namespace bowsim

#endif  // BOWSIM_CORE_DDOS_HASHING_HPP
