#ifndef BOWSIM_CORE_DDOS_HISTORY_HPP
#define BOWSIM_CORE_DDOS_HISTORY_HPP

#include <cstdint>
#include <deque>

#include "src/common/config.hpp"

/**
 * @file
 * DDOS per-warp path/value history registers and the spin-detection FSM
 * (Section IV-A, Fig. 7). Each executed `setp` of the profiled thread
 * inserts a hashed PC into the path history and the hashed values of the
 * setp's two source operands into the value history. The match-pointer
 * FSM looks for periodic repetition in *both* histories; sustained
 * repetition means the thread is re-executing the same instructions with
 * the same values — the definition of spinning (Li et al. [17]).
 */

namespace bowsim {

class HistoryRegisters {
  public:
    /** Detection FSM state (the 4-state FSM of Table III). */
    enum class State { Searching, Confirming, Spinning };

    explicit HistoryRegisters(const DdosConfig &cfg);

    /**
     * Records one setp execution by the profiled thread.
     *
     * @param pc_hash     hashed setp PC (path entry)
     * @param value_hash0 hashed first source operand value
     * @param value_hash1 hashed second source operand value
     */
    void insert(std::uint32_t pc_hash, std::uint32_t value_hash0,
                std::uint32_t value_hash1);

    /** True while the profiled thread is classified as spinning. */
    bool spinning() const { return state_ == State::Spinning; }

    State state() const { return state_; }
    unsigned matchPointer() const { return matchPointer_; }
    unsigned remainingMatches() const { return remainingMatches_; }

    /** Clears history and FSM (warp retirement / time-share switch). */
    void reset();

  private:
    struct Entry {
        std::uint32_t path;
        std::uint32_t value0;
        std::uint32_t value1;

        bool
        operator==(const Entry &o) const
        {
            return path == o.path && value0 == o.value0 &&
                   value1 == o.value1;
        }
    };

    unsigned length_;
    /** history_[0] is the most recent insertion. */
    std::deque<Entry> history_;
    State state_ = State::Searching;
    /** While Searching: candidate compare index; afterwards: loop period. */
    unsigned matchPointer_ = 0;
    unsigned remainingMatches_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_CORE_DDOS_HISTORY_HPP
