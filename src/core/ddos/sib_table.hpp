#ifndef BOWSIM_CORE_DDOS_SIB_TABLE_HPP
#define BOWSIM_CORE_DDOS_SIB_TABLE_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/config.hpp"
#include "src/isa/instruction.hpp"

/**
 * @file
 * Spin-Inducing Branch Prediction Table (SIB-PT, Section IV-A). Shared by
 * all warps of one SM. A backward branch taken by a warp whose history
 * FSM says "spinning" gains confidence; taken by a non-spinning warp, it
 * loses confidence (guarding against hash-aliasing noise). At the
 * confidence threshold the branch is confirmed as a SIB and BOWS starts
 * acting on it.
 */

namespace bowsim {

class SibTable {
  public:
    struct Entry {
        unsigned confidence = 0;
        bool confirmed = false;
    };

    explicit SibTable(const DdosConfig &cfg)
        : capacity_(cfg.sibTableEntries),
          threshold_(cfg.confidenceThreshold)
    {
    }

    /**
     * A spinning warp took the backward branch at @p pc. When insertion
     * evicts a candidate entry, the victim's PC is reported through
     * @p evicted (left untouched otherwise — for the SibEvict event).
     */
    void onSpinningBranch(Pc pc, Pc *evicted = nullptr,
                          bool *did_evict = nullptr);

    /** A non-spinning warp took the backward branch at @p pc. */
    void onNonSpinningBranch(Pc pc);

    /** True once @p pc has been confirmed as a spin-inducing branch. */
    bool isConfirmed(Pc pc) const;

    /** All tracked entries, for dumps and tests. */
    const std::map<Pc, Entry> &entries() const { return table_; }

    size_t size() const { return table_.size(); }
    unsigned threshold() const { return threshold_; }
    /** High-water mark of concurrent entries (Section IV-B sizing). */
    size_t peakOccupancy() const { return peak_; }

    /** Total confirmation transitions (candidate -> confirmed SIB). */
    std::uint64_t confirms() const { return confirms_; }
    /** Total entries dropped: capacity evictions + confidence decay. */
    std::uint64_t evicts() const { return evicts_; }

  private:
    unsigned capacity_;
    unsigned threshold_;
    std::map<Pc, Entry> table_;
    size_t peak_ = 0;
    std::uint64_t confirms_ = 0;
    std::uint64_t evicts_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_CORE_DDOS_SIB_TABLE_HPP
