#include "src/core/ddos/sib_table.hpp"

#include <algorithm>

namespace bowsim {

void
SibTable::onSpinningBranch(Pc pc, Pc *evicted, bool *did_evict)
{
    auto it = table_.find(pc);
    if (it == table_.end()) {
        if (table_.size() >= capacity_) {
            // Evict the lowest-confidence unconfirmed entry; if every
            // entry is confirmed the new branch cannot be tracked.
            auto victim = table_.end();
            for (auto jt = table_.begin(); jt != table_.end(); ++jt) {
                if (jt->second.confirmed)
                    continue;
                if (victim == table_.end() ||
                    jt->second.confidence < victim->second.confidence) {
                    victim = jt;
                }
            }
            if (victim == table_.end())
                return;
            if (evicted)
                *evicted = victim->first;
            if (did_evict)
                *did_evict = true;
            ++evicts_;
            table_.erase(victim);
        }
        it = table_.emplace(pc, Entry{}).first;
    }
    Entry &e = it->second;
    if (e.confidence < threshold_)
        ++e.confidence;
    if (e.confidence >= threshold_ && !e.confirmed) {
        e.confirmed = true;
        ++confirms_;
    }
    peak_ = std::max(peak_, table_.size());
}

void
SibTable::onNonSpinningBranch(Pc pc)
{
    auto it = table_.find(pc);
    if (it == table_.end())
        return;
    Entry &e = it->second;
    if (e.confidence > 0)
        --e.confidence;
    if (e.confidence == 0 && !e.confirmed) {
        ++evicts_;
        table_.erase(it);
    }
}

bool
SibTable::isConfirmed(Pc pc) const
{
    auto it = table_.find(pc);
    return it != table_.end() && it->second.confirmed;
}

}  // namespace bowsim
