#include "src/core/ddos/ddos_unit.hpp"

namespace bowsim {

DdosUnit::DdosUnit(const DdosConfig &cfg, unsigned max_warps)
    : cfg_(cfg), table_(cfg), maxWarps_(max_warps)
{
    unsigned sets = cfg.timeShare ? 1 : max_warps;
    histories_.reserve(sets);
    for (unsigned i = 0; i < sets; ++i)
        histories_.emplace_back(cfg);
}

void
DdosUnit::rotateTimeShare(Cycle now)
{
    if (!cfg_.timeShare)
        return;
    if (!timeShareStarted_) {
        // First use: warp 0 owns the registers for a full epoch.
        timeShareStarted_ = true;
        nextRotate_ = now + cfg_.timeShareEpoch;
        return;
    }
    if (now < nextRotate_)
        return;
    sharedOwner_ = (sharedOwner_ + 1) % maxWarps_;
    histories_[0].reset();
    nextRotate_ = now + cfg_.timeShareEpoch;
}

HistoryRegisters *
DdosUnit::historyFor(unsigned warp, Cycle now)
{
    if (!cfg_.timeShare)
        return &histories_[warp];
    rotateTimeShare(now);
    return warp == sharedOwner_ ? &histories_[0] : nullptr;
}

const HistoryRegisters *
DdosUnit::historyFor(unsigned warp) const
{
    if (!cfg_.timeShare)
        return &histories_[warp];
    return warp == sharedOwner_ ? &histories_[0] : nullptr;
}

void
DdosUnit::onSetp(unsigned warp, Pc pc, Word src0, Word src1, Cycle now)
{
    if (!cfg_.enabled)
        return;
    HistoryRegisters *hist = historyFor(warp, now);
    if (!hist)
        return;
    std::uint32_t path = hashHistory(cfg_.hash, cfg_.hashBits,
                                     static_cast<std::uint64_t>(pc));
    std::uint32_t v0 = hashHistory(cfg_.hash, cfg_.hashBits,
                                   static_cast<std::uint64_t>(src0));
    std::uint32_t v1 = hashHistory(cfg_.hash, cfg_.hashBits,
                                   static_cast<std::uint64_t>(src1));
    hist->insert(path, v0, v1);
}

void
DdosUnit::onBackwardBranch(unsigned warp, Pc pc, Cycle now)
{
    if (!cfg_.enabled)
        return;
    accuracy_.onBackwardBranch(pc, now);
    bool was_confirmed = table_.isConfirmed(pc);
    const HistoryRegisters *hist = historyFor(warp);
    if (hist && hist->spinning()) {
        if (!tracer_.enabled()) {
            table_.onSpinningBranch(pc);
        } else {
            Pc evicted_pc = 0;
            bool did_evict = false;
            table_.onSpinningBranch(pc, &evicted_pc, &did_evict);
            if (did_evict) {
                tracer_.emit(now, sm_, static_cast<std::int32_t>(warp),
                             trace::EventKind::SibEvict, evicted_pc);
            }
        }
    } else if (hist) {
        table_.onNonSpinningBranch(pc);
    }
    if (!was_confirmed && table_.isConfirmed(pc)) {
        accuracy_.onConfirmed(pc, now);
        tracer_.emit(now, sm_, static_cast<std::int32_t>(warp),
                     trace::EventKind::SibConfirm, pc);
    }
}

bool
DdosUnit::isSpinning(unsigned warp) const
{
    const HistoryRegisters *hist = historyFor(warp);
    return hist && hist->spinning();
}

void
DdosUnit::resetWarp(unsigned warp)
{
    if (!cfg_.timeShare) {
        histories_[warp].reset();
    } else if (warp == sharedOwner_) {
        histories_[0].reset();
    }
}

}  // namespace bowsim
