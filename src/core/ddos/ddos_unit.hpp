#ifndef BOWSIM_CORE_DDOS_DDOS_UNIT_HPP
#define BOWSIM_CORE_DDOS_DDOS_UNIT_HPP

#include <memory>
#include <vector>

#include "src/common/config.hpp"
#include "src/core/ddos/hashing.hpp"
#include "src/core/ddos/history.hpp"
#include "src/core/ddos/sib_table.hpp"
#include "src/stats/ddos_accuracy.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * Per-SM DDOS unit (Fig. 8): per-warp path/value history registers (or a
 * single time-shared set, Section IV-B), the shared SIB-PT, and the
 * accuracy bookkeeping behind Table I. The SM core calls onSetp() from
 * the ALU execute stage and onBackwardBranch() from the branch unit.
 */

namespace bowsim {

class DdosUnit {
  public:
    DdosUnit(const DdosConfig &cfg, unsigned max_warps);

    /**
     * Records execution of a setp by @p warp's profiled thread.
     *
     * @param pc   instruction index of the setp
     * @param src0 first source operand value (profiled lane)
     * @param src1 second source operand value (profiled lane)
     * @param now  current cycle (drives time-sharing rotation)
     */
    void onSetp(unsigned warp, Pc pc, Word src0, Word src1, Cycle now);

    /**
     * Records a taken backward branch by @p warp; updates the SIB-PT and
     * accuracy records.
     */
    void onBackwardBranch(unsigned warp, Pc pc, Cycle now);

    /** True when the warp's history FSM currently says "spinning". */
    bool isSpinning(unsigned warp) const;

    /** True once @p pc is a confirmed spin-inducing branch. */
    bool isSib(Pc pc) const { return table_.isConfirmed(pc); }

    /** Clears per-warp history when a warp slot is recycled. */
    void resetWarp(unsigned warp);

    /** Attaches the launch's event sink (SibConfirm/SibEvict). */
    void
    setTrace(trace::Tracer t, unsigned sm)
    {
        tracer_ = t;
        sm_ = sm;
    }

    const SibTable &table() const { return table_; }
    const DdosAccuracy &accuracy() const { return accuracy_; }

  private:
    /** History register set index for @p warp (time-sharing aware). */
    HistoryRegisters *historyFor(unsigned warp, Cycle now);
    const HistoryRegisters *historyFor(unsigned warp) const;

    void rotateTimeShare(Cycle now);

    DdosConfig cfg_;
    std::vector<HistoryRegisters> histories_;
    SibTable table_;
    DdosAccuracy accuracy_;
    unsigned maxWarps_;
    trace::Tracer tracer_;
    unsigned sm_ = 0;
    /** Warp currently owning the shared set (time-sharing mode). */
    unsigned sharedOwner_ = 0;
    Cycle nextRotate_ = 0;
    bool timeShareStarted_ = false;
};

}  // namespace bowsim

#endif  // BOWSIM_CORE_DDOS_DDOS_UNIT_HPP
