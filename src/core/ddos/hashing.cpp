#include "src/core/ddos/hashing.hpp"

#include "src/common/log.hpp"

namespace bowsim {

std::uint32_t
hashHistory(HashKind kind, unsigned bits, std::uint64_t value)
{
    if (bits == 0 || bits > 32)
        fatal("hashHistory: width must be in [1, 32], got ", bits);
    const std::uint32_t mask = bits == 32 ? 0xffffffffu
                                          : ((1u << bits) - 1u);
    switch (kind) {
      case HashKind::Modulo:
        return static_cast<std::uint32_t>(value) & mask;
      case HashKind::Xor: {
        std::uint32_t h = 0;
        while (value != 0) {
            h ^= static_cast<std::uint32_t>(value) & mask;
            value >>= bits;
        }
        return h;
      }
    }
    fatal("hashHistory: unknown hash kind");
}

}  // namespace bowsim
