#include "src/core/ddos/history.hpp"

namespace bowsim {

HistoryRegisters::HistoryRegisters(const DdosConfig &cfg)
    : length_(cfg.historyLength)
{
}

void
HistoryRegisters::reset()
{
    history_.clear();
    state_ = State::Searching;
    matchPointer_ = 0;
    remainingMatches_ = 0;
}

void
HistoryRegisters::insert(std::uint32_t pc_hash, std::uint32_t value_hash0,
                         std::uint32_t value_hash1)
{
    const Entry incoming{pc_hash, value_hash0, value_hash1};

    switch (state_) {
      case State::Searching: {
        // Compare the incoming entry against the candidate at index
        // matchPointer_ (0 = previous insertion). A match at distance d
        // means a loop of period d+1 setps.
        if (matchPointer_ < history_.size()) {
            if (history_[matchPointer_] == incoming) {
                const unsigned period = matchPointer_ + 1;
                // The paper initializes Remaining Matches to the (new)
                // match pointer minus one, i.e. period - 1 further matches
                // confirm one full extra loop iteration.
                remainingMatches_ = period - 1;
                matchPointer_ = period;
                state_ = remainingMatches_ == 0 ? State::Spinning
                                                : State::Confirming;
            } else {
                // Advance the candidate; wrap when no loop shorter than
                // the history length exists.
                ++matchPointer_;
                if (matchPointer_ >= length_)
                    matchPointer_ = 0;
            }
        }
        break;
      }
      case State::Confirming:
      case State::Spinning: {
        const unsigned period = matchPointer_;
        if (period >= 1 && period - 1 < history_.size() &&
            history_[period - 1] == incoming) {
            if (state_ == State::Confirming && --remainingMatches_ == 0)
                state_ = State::Spinning;
        } else {
            state_ = State::Searching;
            matchPointer_ = 0;
            remainingMatches_ = 0;
        }
        break;
      }
    }

    history_.push_front(incoming);
    if (history_.size() > length_)
        history_.pop_back();
}

}  // namespace bowsim
