#ifndef BOWSIM_ENERGY_ENERGY_MODEL_HPP
#define BOWSIM_ENERGY_ENERGY_MODEL_HPP

#include <cstdint>

/**
 * @file
 * Event-based dynamic-energy model standing in for GPUWattch. GPUWattch
 * couples per-event activity counts from GPGPU-Sim with McPAT circuit
 * models; this model keeps the activity counting and replaces the circuit
 * models with fixed per-event energies (in pJ, ballpark 40 nm figures).
 * The paper reports *normalized* dynamic energy, which depends on the
 * activity deltas between schedulers — exactly what these counters carry.
 */

namespace bowsim {

/** Activity counters accumulated during one kernel run. */
struct EnergyEvents {
    std::uint64_t warpInstructions = 0;  ///< fetch/decode/issue events
    std::uint64_t laneAluOps = 0;        ///< per-lane execute operations
    std::uint64_t rfReadLanes = 0;       ///< operand reads x active lanes
    std::uint64_t rfWriteLanes = 0;      ///< result writes x active lanes
    std::uint64_t sharedAccesses = 0;    ///< shared-memory transactions
    std::uint64_t l1Accesses = 0;        ///< L1D transactions
    std::uint64_t l2Accesses = 0;        ///< L2 transactions
    std::uint64_t dramAccesses = 0;      ///< DRAM bursts
    std::uint64_t icntPackets = 0;       ///< NoC packets
    std::uint64_t atomicOps = 0;         ///< atomic RMWs at the L2

    EnergyEvents &
    operator+=(const EnergyEvents &o)
    {
        warpInstructions += o.warpInstructions;
        laneAluOps += o.laneAluOps;
        rfReadLanes += o.rfReadLanes;
        rfWriteLanes += o.rfWriteLanes;
        sharedAccesses += o.sharedAccesses;
        l1Accesses += o.l1Accesses;
        l2Accesses += o.l2Accesses;
        dramAccesses += o.dramAccesses;
        icntPackets += o.icntPackets;
        atomicOps += o.atomicOps;
        return *this;
    }
};

/** Per-event energies in picojoules. */
struct EnergyCosts {
    double issuePj = 35.0;     ///< fetch + decode + schedule, per warp inst
    double aluLanePj = 2.2;    ///< one lane-op
    double rfLanePj = 1.1;     ///< one lane-register access
    double sharedPj = 22.0;    ///< one shared-memory transaction
    double l1Pj = 36.0;        ///< one L1D transaction
    double l2Pj = 84.0;        ///< one L2 transaction
    double dramPj = 320.0;     ///< one DRAM burst
    double icntPj = 26.0;      ///< one NoC packet
    double atomicPj = 110.0;   ///< one atomic RMW at an L2 bank
    /**
     * Static/leakage energy per SM-cycle. Unlike the event energies
     * this scales with runtime, so idle (spin-wait) cycles cost energy
     * even when no instruction issues — the effect BOWS targets. Kept
     * out of dynamicEnergyNj() so the paper's normalized-dynamic-energy
     * figures are unchanged; KernelStats reports it separately.
     */
    double staticPerSmCyclePj = 65.0;
};

class EnergyModel {
  public:
    EnergyModel() = default;
    explicit EnergyModel(const EnergyCosts &costs) : costs_(costs) {}

    /** Total dynamic energy for @p ev, in nanojoules. */
    double
    dynamicEnergyNj(const EnergyEvents &ev) const
    {
        double pj = 0.0;
        pj += costs_.issuePj * ev.warpInstructions;
        pj += costs_.aluLanePj * ev.laneAluOps;
        pj += costs_.rfLanePj * (ev.rfReadLanes + ev.rfWriteLanes);
        pj += costs_.sharedPj * ev.sharedAccesses;
        pj += costs_.l1Pj * ev.l1Accesses;
        pj += costs_.l2Pj * ev.l2Accesses;
        pj += costs_.dramPj * ev.dramAccesses;
        pj += costs_.icntPj * ev.icntPackets;
        pj += costs_.atomicPj * ev.atomicOps;
        return pj / 1000.0;
    }

    /**
     * Static energy for @p sm_cycles total SM-cycles (the sum over SMs
     * of cycles spent resident in the launch), in nanojoules. Computed
     * from the aggregate counter, so it is exact under idle-cycle
     * fast-forward, which advances smCycles in bulk.
     */
    double
    staticEnergyNj(std::uint64_t sm_cycles) const
    {
        return costs_.staticPerSmCyclePj * static_cast<double>(sm_cycles) /
               1000.0;
    }

    const EnergyCosts &costs() const { return costs_; }

  private:
    EnergyCosts costs_;
};

}  // namespace bowsim

#endif  // BOWSIM_ENERGY_ENERGY_MODEL_HPP
