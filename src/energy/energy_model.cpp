#include "src/energy/energy_model.hpp"

// Header-only; this translation unit anchors the component in the library.
