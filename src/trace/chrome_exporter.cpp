#include "src/trace/chrome_exporter.hpp"

#include <fstream>
#include <ostream>
#include <set>

#include "src/common/log.hpp"

namespace bowsim::trace {

namespace {

/** Chrome phase for @p kind: duration begin/end, counter, or instant. */
const char *
phaseOf(EventKind kind)
{
    switch (kind) {
      case EventKind::BackoffEnter:
      case EventKind::BarrierEnter:
        return "B";
      case EventKind::BackoffExit:
      case EventKind::BarrierExit:
        return "E";
      case EventKind::BackoffCount:
        return "C";
      default:
        return "i";
    }
}

const char *
chromeCategoryOf(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch:
      case EventKind::Issue:
      case EventKind::Writeback:
      case EventKind::IssueStall:
        return "core";
      case EventKind::L1Miss:
      case EventKind::MshrMerge:
      case EventKind::L2Miss:
      case EventKind::AtomicSerialize:
        return "mem";
      case EventKind::SibConfirm:
      case EventKind::SibEvict:
      case EventKind::DetectTrue:
      case EventKind::DetectFalse:
        return "ddos";
      case EventKind::BackoffEnter:
      case EventKind::BackoffExit:
      case EventKind::BackoffCount:
        return "bows";
      case EventKind::BarrierEnter:
      case EventKind::BarrierExit:
        return "barrier";
      case EventKind::kCount:
        break;
    }
    return "misc";
}

/** Kind-specific argument object (what Perfetto shows on click). */
harness::Json
argsOf(const TraceEvent &ev)
{
    harness::Json args = harness::Json::object();
    switch (ev.kind) {
      case EventKind::Fetch:
      case EventKind::Writeback:
      case EventKind::SibConfirm:
      case EventKind::SibEvict:
      case EventKind::DetectTrue:
      case EventKind::DetectFalse:
      case EventKind::BarrierEnter:
        args.set("pc", ev.a0);
        break;
      case EventKind::Issue:
        args.set("pc", ev.a0);
        args.set("opcode", ev.a1 & 0xff);
        args.set("lanes", ev.a1 >> 8);
        break;
      case EventKind::IssueStall:
        args.set("cause",
                 toString(static_cast<StallCause>(ev.a0)));
        break;
      case EventKind::L1Miss:
      case EventKind::MshrMerge:
      case EventKind::L2Miss:
        args.set("line", ev.a0);
        break;
      case EventKind::AtomicSerialize:
        args.set("addr", ev.a0);
        args.set("wait_cycles", ev.a1);
        break;
      case EventKind::BackoffEnter:
        args.set("seq", ev.a0);
        break;
      case EventKind::BackoffExit:
        args.set("armed_delay", ev.a0);
        break;
      case EventKind::BackoffCount:
        args.set("backed_off", ev.a0);
        break;
      case EventKind::BarrierExit:
      case EventKind::kCount:
        break;
    }
    return args;
}

}  // namespace

harness::Json
chromeEventJson(const TraceEvent &ev)
{
    harness::Json j = harness::Json::object();
    j.set("name", toString(ev.kind));
    j.set("cat", chromeCategoryOf(ev.kind));
    const char *ph = phaseOf(ev.kind);
    j.set("ph", ph);
    j.set("ts", ev.cycle);
    j.set("pid", ev.sm);
    // Counter events are per-process tracks; warp-less instants land on
    // a dedicated scheduler track (tid -1 would be rejected by Perfetto).
    std::int64_t tid = ev.warp >= 0 ? ev.warp : 0xffff;
    j.set("tid", ev.kind == EventKind::BackoffCount ? 0 : tid);
    if (ph[0] == 'i')
        j.set("s", "t");  // instant scope: thread
    if (ph[0] != 'E') {
        harness::Json args = argsOf(ev);
        if (args.size() != 0)
            j.set("args", std::move(args));
    }
    return j;
}

void
exportChromeTrace(const std::vector<TraceEvent> &events, std::ostream &out,
                  const ChromeTraceMeta &meta)
{
    out << "{\"traceEvents\":[";
    bool first = true;
    auto put = [&](const harness::Json &j) {
        if (!first)
            out << ",";
        first = false;
        out << "\n" << j.dump();
    };

    // Name each SM's process track once, up front.
    std::set<std::uint32_t> sms;
    for (const TraceEvent &ev : events)
        sms.insert(ev.sm);
    for (std::uint32_t sm : sms) {
        harness::Json m = harness::Json::object();
        m.set("name", "process_name");
        m.set("ph", "M");
        m.set("pid", sm);
        harness::Json args = harness::Json::object();
        args.set("name", "SM" + std::to_string(sm));
        m.set("args", std::move(args));
        put(m);
    }

    for (const TraceEvent &ev : events)
        put(chromeEventJson(ev));
    out << "\n],\"displayTimeUnit\":\"ms\"";
    if (!meta.label.empty()) {
        harness::Json label(meta.label);
        out << ",\"metadata\":{\"label\":" << label.dump()
            << ",\"dropped_events\":" << meta.dropped << "}";
    } else if (meta.dropped != 0) {
        out << ",\"metadata\":{\"dropped_events\":" << meta.dropped << "}";
    }
    out << "}\n";
}

void
writeChromeTraceFile(const std::vector<TraceEvent> &events,
                     const std::string &path, const ChromeTraceMeta &meta)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '", path, "'");
    exportChromeTrace(events, out, meta);
    out.flush();
    if (!out)
        fatal("error writing trace file '", path, "'");
}

}  // namespace bowsim::trace
