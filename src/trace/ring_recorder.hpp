#ifndef BOWSIM_TRACE_RING_RECORDER_HPP
#define BOWSIM_TRACE_RING_RECORDER_HPP

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "src/trace/trace.hpp"

/**
 * @file
 * Bounded-memory trace recorder: a ring of fixed-size TraceEvent
 * records. When the ring fills, the oldest events are overwritten, so a
 * long run always retains the most recent window — the part that shows
 * why it ended the way it did. events() linearizes the ring back into
 * emission order; saveBinary()/loadBinary() round-trip a recording
 * through a flat binary file (a small header plus raw records).
 */

namespace bowsim::trace {

class RingRecorder : public TraceSink {
  public:
    /** Default capacity: 1M events (32 MiB), ample for scaled-down runs. */
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    explicit RingRecorder(std::size_t capacity = kDefaultCapacity);

    void emit(const TraceEvent &ev) override;

    /**
     * Category filter (--trace-filter): events whose categoryOf() bit
     * is not in @p mask are discarded before they reach the ring, so a
     * filtered recording of a long run retains a deeper window of the
     * categories that matter. 0 (the default) records everything.
     */
    void setFilter(std::uint32_t mask) { filter_ = mask; }
    std::uint32_t filter() const { return filter_; }

    /** Retained events in emission order (oldest first). */
    std::vector<TraceEvent> events() const;

    std::size_t capacity() const { return capacity_; }
    /** Events currently retained (<= capacity()). */
    std::size_t size() const { return count_; }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }
    /** Total events ever emitted into this recorder. */
    std::uint64_t total() const { return dropped_ + count_; }

    void clear();

    /** Writes the retained events as a flat binary stream. */
    void saveBinary(std::ostream &out) const;

    /** Parses a saveBinary() stream back into event order. */
    static std::vector<TraceEvent> loadBinary(std::istream &in);

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t next_ = 0;   ///< slot the next event lands in
    std::size_t count_ = 0;  ///< valid slots
    std::uint64_t dropped_ = 0;
    std::uint32_t filter_ = 0;  ///< category mask; 0 = record all
};

}  // namespace bowsim::trace

#endif  // BOWSIM_TRACE_RING_RECORDER_HPP
