#ifndef BOWSIM_TRACE_CHROME_EXPORTER_HPP
#define BOWSIM_TRACE_CHROME_EXPORTER_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "src/harness/json.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * Chrome trace_event exporter: turns a trace recording into a JSON
 * document loadable by chrome://tracing and Perfetto. SMs map to
 * processes (pid), warp slots to threads (tid); interval kinds
 * (backoff, barrier) become B/E duration pairs on the warp's track,
 * everything else becomes an instant event, and BackoffCount becomes a
 * per-SM counter track. Timestamps are simulated cycles reported in the
 * format's microsecond field, so "1 us" on screen is one core cycle.
 */

namespace bowsim::trace {

/** Optional document metadata recorded alongside the events. */
struct ChromeTraceMeta {
    /** Kernel / bench identifier, recorded as trace-level metadata. */
    std::string label;
    /** Events overwritten by the ring before export (recorded if != 0). */
    std::uint64_t dropped = 0;
};

/** Serializes one event to its Chrome trace_event JSON object. */
harness::Json chromeEventJson(const TraceEvent &ev);

/**
 * Streams the full document ({"traceEvents": [...], ...}) to @p out.
 * Events must be in emission order (RingRecorder::events() order).
 */
void exportChromeTrace(const std::vector<TraceEvent> &events,
                       std::ostream &out,
                       const ChromeTraceMeta &meta = {});

/** exportChromeTrace into a file; throws FatalError when unwritable. */
void writeChromeTraceFile(const std::vector<TraceEvent> &events,
                          const std::string &path,
                          const ChromeTraceMeta &meta = {});

}  // namespace bowsim::trace

#endif  // BOWSIM_TRACE_CHROME_EXPORTER_HPP
