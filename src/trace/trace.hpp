#ifndef BOWSIM_TRACE_TRACE_HPP
#define BOWSIM_TRACE_TRACE_HPP

#include <cstdint>
#include <string>

#include "src/common/types.hpp"

/**
 * @file
 * Cycle-level structured event tracing (see docs/TRACING.md).
 *
 * Every instrumentation site in the simulator funnels through a Tracer,
 * a two-word handle holding a TraceSink pointer. The null Tracer (no
 * sink) is the compiled-in default: each site costs one pointer test, so
 * the hot path stays within noise of the untraced build. Sinks receive
 * fixed-size POD TraceEvent records; the ring-buffered recorder
 * (ring_recorder.hpp) retains the most recent N of them and the Chrome
 * exporter (chrome_exporter.hpp) turns a recording into a
 * `chrome://tracing` / Perfetto-loadable JSON document.
 *
 * Tracing is observational by construction: no simulator component may
 * read anything back from a Tracer, so a traced run and an untraced run
 * of the same configuration are bit-identical (tests/test_differential
 * enforces this).
 */

namespace bowsim::trace {

/** What happened. Interval kinds come in Enter/Exit pairs. */
enum class EventKind : std::uint16_t {
    // --- SM core pipeline ------------------------------------------------
    Fetch,         ///< warp won arbitration; a0 = pc
    Issue,         ///< instruction issued; a0 = pc, a1 = opcode | lanes<<8
    Writeback,     ///< scoreboard release; a0 = pc
    IssueStall,    ///< scheduler unit issued nothing; a0 = StallCause
    // --- memory system ----------------------------------------------------
    L1Miss,        ///< L1D load miss; a0 = line address
    MshrMerge,     ///< load merged into an outstanding fill; a0 = line
    L2Miss,        ///< L2 bank miss (DRAM fetch); a0 = line
    AtomicSerialize, ///< atomic at an L2 bank; a0 = address, a1 = wait cycles
    // --- DDOS -----------------------------------------------------------
    SibConfirm,    ///< SIB-PT confirmed a spin-inducing branch; a0 = pc
    SibEvict,      ///< SIB-PT evicted a candidate entry; a0 = evicted pc
    DetectTrue,    ///< confirmed SIB is a ground-truth spin branch; a0 = pc
    DetectFalse,   ///< confirmed SIB is a false positive; a0 = pc
    // --- BOWS -----------------------------------------------------------
    BackoffEnter,  ///< warp entered the backed-off queue; a0 = FIFO seq
    BackoffExit,   ///< warp left the queue at issue; a0 = armed delay
    BackoffCount,  ///< backed-off warp count after a transition; a0 = count
    // --- barriers ---------------------------------------------------------
    BarrierEnter,  ///< warp arrived at a CTA barrier; a0 = pc
    BarrierExit,   ///< barrier released this warp
    kCount
};

/**
 * Why a warp (or a whole scheduler unit) could not issue this cycle.
 * The order mirrors SmCore::eligible()'s checks; classification picks
 * the first blocking condition.
 */
enum class StallCause : std::uint8_t {
    Issued,        ///< not stalled: the warp issued this cycle
    IbufferEmpty,  ///< scheduler unit has no resident warps at all
    Barrier,       ///< waiting at a CTA barrier
    Backoff,       ///< BOWS back-off delay has not expired
    Scoreboard,    ///< data hazard on a source/destination register
    PipelineBusy,  ///< LD/ST unit cannot accept another instruction
    Arbitration,   ///< eligible, but another warp won the issue slot
    kCount
};

constexpr unsigned kNumStallCauses =
    static_cast<unsigned>(StallCause::kCount);

/** Short stable identifier, e.g. "scoreboard" (JSON/table output). */
const char *toString(StallCause cause);

/** Short stable identifier, e.g. "issue" (Chrome event names). */
const char *toString(EventKind kind);

/**
 * Event categories for --trace-filter (docs/TRACING.md): each EventKind
 * belongs to exactly one category; a filter is a bitmask of them. The
 * "sync" filter token selects Ddos|Bows|Barrier — the spin-detection
 * and back-off machinery plus barriers, i.e. everything synchronization
 * — so sync-focused traces of long litmus runs stay small.
 */
enum class Category : std::uint32_t {
    Pipe = 1u << 0,     ///< Fetch/Issue/Writeback/IssueStall
    Mem = 1u << 1,      ///< L1Miss/MshrMerge/L2Miss/AtomicSerialize
    Ddos = 1u << 2,     ///< SibConfirm/SibEvict/DetectTrue/DetectFalse
    Bows = 1u << 3,     ///< BackoffEnter/BackoffExit/BackoffCount
    Barrier = 1u << 4,  ///< BarrierEnter/BarrierExit
};

/** The category bit of @p kind. */
std::uint32_t categoryOf(EventKind kind);

/**
 * Parses a comma-separated --trace-filter list ("sync,mem", "pipe",
 * ...) into a category bitmask. Tokens: pipe, mem, ddos, bows, barrier,
 * and the alias sync (= ddos|bows|barrier). Returns false on an unknown
 * or empty token; *mask is then unspecified.
 */
bool parseCategoryFilter(const std::string &text, std::uint32_t *mask);

/** One fixed-size trace record (40 bytes; binary-dump friendly). */
struct TraceEvent {
    Cycle cycle = 0;
    std::uint32_t sm = 0;
    /** Warp slot within the SM; -1 when no single warp is involved. */
    std::int32_t warp = -1;
    EventKind kind = EventKind::Issue;
    /** Device that emitted the event (0 on single-device runs). */
    std::uint16_t device = 0;
    /** Explicit padding so the record has no implicit holes. */
    std::uint32_t pad = 0;
    /** Kind-specific payload (see EventKind comments). */
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

static_assert(sizeof(TraceEvent) == 40, "TraceEvent must stay packed");

/** Receives every emitted event. Implementations must not throw. */
class TraceSink {
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceEvent &ev) = 0;
};

/**
 * The handle instrumentation sites hold. Copyable by value; a
 * default-constructed Tracer is the null sink and reduces every emit to
 * one branch.
 */
class Tracer {
  public:
    Tracer() = default;
    explicit Tracer(TraceSink *sink, std::uint16_t device = 0)
        : sink_(sink), device_(device)
    {
    }

    bool enabled() const { return sink_ != nullptr; }

    void
    emit(Cycle cycle, std::uint32_t sm, std::int32_t warp, EventKind kind,
         std::uint64_t a0 = 0, std::uint64_t a1 = 0) const
    {
        if (!sink_)
            return;
        TraceEvent ev;
        ev.cycle = cycle;
        ev.sm = sm;
        ev.warp = warp;
        ev.kind = kind;
        ev.device = device_;
        ev.a0 = a0;
        ev.a1 = a1;
        sink_->emit(ev);
    }

    /** Forwards an already-built event (commit-phase queue drain). */
    void
    record(const TraceEvent &ev) const
    {
        if (sink_)
            sink_->emit(ev);
    }

  private:
    TraceSink *sink_ = nullptr;
    std::uint16_t device_ = 0;
};

}  // namespace bowsim::trace

#endif  // BOWSIM_TRACE_TRACE_HPP
