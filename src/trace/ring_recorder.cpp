#include "src/trace/ring_recorder.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "src/common/log.hpp"

namespace bowsim::trace {

namespace {

/** Binary header: magic, version, record size, record count. */
struct BinaryHeader {
    char magic[8] = {'b', 'o', 'w', 't', 'r', 'a', 'c', 'e'};
    std::uint32_t version = 1;
    std::uint32_t recordBytes = sizeof(TraceEvent);
    std::uint64_t records = 0;
};

}  // namespace

RingRecorder::RingRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.resize(capacity_);
}

void
RingRecorder::emit(const TraceEvent &ev)
{
    if (filter_ != 0 && (categoryOf(ev.kind) & filter_) == 0)
        return;
    ring_[next_] = ev;
    next_ = (next_ + 1) % capacity_;
    if (count_ < capacity_)
        ++count_;
    else
        ++dropped_;
}

std::vector<TraceEvent>
RingRecorder::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    // Oldest event: next_ when the ring has wrapped, slot 0 otherwise.
    std::size_t start = count_ == capacity_ ? next_ : 0;
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) % capacity_]);
    return out;
}

void
RingRecorder::clear()
{
    next_ = 0;
    count_ = 0;
    dropped_ = 0;
}

void
RingRecorder::saveBinary(std::ostream &out) const
{
    std::vector<TraceEvent> evs = events();
    BinaryHeader hdr;
    hdr.records = evs.size();
    out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    if (!evs.empty()) {
        out.write(reinterpret_cast<const char *>(evs.data()),
                  static_cast<std::streamsize>(evs.size() *
                                               sizeof(TraceEvent)));
    }
}

std::vector<TraceEvent>
RingRecorder::loadBinary(std::istream &in)
{
    BinaryHeader hdr;
    in.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!in || std::memcmp(hdr.magic, "bowtrace", 8) != 0)
        fatal("not a bowsim binary trace (bad magic)");
    if (hdr.version != 1 || hdr.recordBytes != sizeof(TraceEvent))
        fatal("unsupported binary trace version ", hdr.version,
              " (record size ", hdr.recordBytes, ")");
    std::vector<TraceEvent> evs(hdr.records);
    if (hdr.records != 0) {
        in.read(reinterpret_cast<char *>(evs.data()),
                static_cast<std::streamsize>(hdr.records *
                                             sizeof(TraceEvent)));
        if (!in)
            fatal("truncated binary trace (expected ", hdr.records,
                  " records)");
    }
    return evs;
}

}  // namespace bowsim::trace
