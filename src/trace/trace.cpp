#include "src/trace/trace.hpp"

namespace bowsim::trace {

const char *
toString(StallCause cause)
{
    switch (cause) {
      case StallCause::Issued: return "issued";
      case StallCause::IbufferEmpty: return "ibuffer_empty";
      case StallCause::Barrier: return "barrier";
      case StallCause::Backoff: return "backoff";
      case StallCause::Scoreboard: return "scoreboard";
      case StallCause::PipelineBusy: return "pipeline_busy";
      case StallCause::Arbitration: return "arbitration";
      case StallCause::kCount: break;
    }
    return "unknown";
}

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch: return "fetch";
      case EventKind::Issue: return "issue";
      case EventKind::Writeback: return "writeback";
      case EventKind::IssueStall: return "issue_stall";
      case EventKind::L1Miss: return "l1_miss";
      case EventKind::MshrMerge: return "mshr_merge";
      case EventKind::L2Miss: return "l2_miss";
      case EventKind::AtomicSerialize: return "atomic_serialize";
      case EventKind::SibConfirm: return "sib_confirm";
      case EventKind::SibEvict: return "sib_evict";
      case EventKind::DetectTrue: return "detect_true";
      case EventKind::DetectFalse: return "detect_false";
      case EventKind::BackoffEnter: return "backoff";
      case EventKind::BackoffExit: return "backoff";
      case EventKind::BackoffCount: return "backed_off_warps";
      case EventKind::BarrierEnter: return "barrier";
      case EventKind::BarrierExit: return "barrier";
      case EventKind::kCount: break;
    }
    return "unknown";
}

}  // namespace bowsim::trace
