#include "src/trace/trace.hpp"

namespace bowsim::trace {

const char *
toString(StallCause cause)
{
    switch (cause) {
      case StallCause::Issued: return "issued";
      case StallCause::IbufferEmpty: return "ibuffer_empty";
      case StallCause::Barrier: return "barrier";
      case StallCause::Backoff: return "backoff";
      case StallCause::Scoreboard: return "scoreboard";
      case StallCause::PipelineBusy: return "pipeline_busy";
      case StallCause::Arbitration: return "arbitration";
      case StallCause::kCount: break;
    }
    return "unknown";
}

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch: return "fetch";
      case EventKind::Issue: return "issue";
      case EventKind::Writeback: return "writeback";
      case EventKind::IssueStall: return "issue_stall";
      case EventKind::L1Miss: return "l1_miss";
      case EventKind::MshrMerge: return "mshr_merge";
      case EventKind::L2Miss: return "l2_miss";
      case EventKind::AtomicSerialize: return "atomic_serialize";
      case EventKind::SibConfirm: return "sib_confirm";
      case EventKind::SibEvict: return "sib_evict";
      case EventKind::DetectTrue: return "detect_true";
      case EventKind::DetectFalse: return "detect_false";
      case EventKind::BackoffEnter: return "backoff";
      case EventKind::BackoffExit: return "backoff";
      case EventKind::BackoffCount: return "backed_off_warps";
      case EventKind::BarrierEnter: return "barrier";
      case EventKind::BarrierExit: return "barrier";
      case EventKind::kCount: break;
    }
    return "unknown";
}

std::uint32_t
categoryOf(EventKind kind)
{
    switch (kind) {
      case EventKind::Fetch:
      case EventKind::Issue:
      case EventKind::Writeback:
      case EventKind::IssueStall:
        return static_cast<std::uint32_t>(Category::Pipe);
      case EventKind::L1Miss:
      case EventKind::MshrMerge:
      case EventKind::L2Miss:
      case EventKind::AtomicSerialize:
        return static_cast<std::uint32_t>(Category::Mem);
      case EventKind::SibConfirm:
      case EventKind::SibEvict:
      case EventKind::DetectTrue:
      case EventKind::DetectFalse:
        return static_cast<std::uint32_t>(Category::Ddos);
      case EventKind::BackoffEnter:
      case EventKind::BackoffExit:
      case EventKind::BackoffCount:
        return static_cast<std::uint32_t>(Category::Bows);
      case EventKind::BarrierEnter:
      case EventKind::BarrierExit:
        return static_cast<std::uint32_t>(Category::Barrier);
      case EventKind::kCount:
        break;
    }
    return 0;
}

bool
parseCategoryFilter(const std::string &text, std::uint32_t *mask)
{
    std::uint32_t m = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string tok = text.substr(pos, comma - pos);
        if (tok == "pipe") {
            m |= static_cast<std::uint32_t>(Category::Pipe);
        } else if (tok == "mem") {
            m |= static_cast<std::uint32_t>(Category::Mem);
        } else if (tok == "ddos") {
            m |= static_cast<std::uint32_t>(Category::Ddos);
        } else if (tok == "bows") {
            m |= static_cast<std::uint32_t>(Category::Bows);
        } else if (tok == "barrier") {
            m |= static_cast<std::uint32_t>(Category::Barrier);
        } else if (tok == "sync") {
            m |= static_cast<std::uint32_t>(Category::Ddos) |
                 static_cast<std::uint32_t>(Category::Bows) |
                 static_cast<std::uint32_t>(Category::Barrier);
        } else {
            return false;
        }
        pos = comma + 1;
    }
    *mask = m;
    return m != 0;
}

}  // namespace bowsim::trace
