#include "src/syncprof/syncprof.hpp"

#include <algorithm>
#include <sstream>

#include "src/harness/json.hpp"

namespace bowsim::syncprof {

unsigned
log2Bucket(std::uint64_t v)
{
    if (v == 0)
        return 0;
    unsigned b = 1;
    while (v > 1 && b < kHistBuckets - 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

double
giniIndex(std::vector<std::uint64_t> counts)
{
    if (counts.size() < 2)
        return 0.0;
    std::sort(counts.begin(), counts.end());
    std::uint64_t sum = 0;
    std::uint64_t weighted = 0;  // sum of rank_i * x_i, ranks 1..n
    for (std::size_t i = 0; i < counts.size(); ++i) {
        sum += counts[i];
        weighted += (i + 1) * counts[i];
    }
    if (sum == 0)
        return 0.0;
    const double n = static_cast<double>(counts.size());
    return (2.0 * static_cast<double>(weighted)) /
               (n * static_cast<double>(sum)) -
           (n + 1.0) / n;
}

namespace {

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

/** Histogram as a JSON array with trailing zero buckets trimmed. */
harness::Json
histJson(const LatencyHist &h)
{
    std::size_t last = kHistBuckets;
    while (last > 0 && h.buckets[last - 1] == 0)
        --last;
    auto arr = harness::Json::array();
    for (std::size_t i = 0; i < last; ++i)
        arr.push(h.buckets[i]);
    return arr;
}

}  // namespace

SyncProfileRegistry::SyncProfileRegistry(unsigned top_n,
                                         unsigned storm_window)
    : topN_(top_n == 0 ? 32 : top_n),
      stormWindow_(storm_window == 0 ? 64 : std::min(storm_window, 64u))
{
}

SyncProfileRegistry::Record &
SyncProfileRegistry::recordFor(Addr addr)
{
    return addrs_[addr];
}

void
SyncProfileRegistry::stepStorm(Record &r, bool failed)
{
    const std::uint64_t mask = stormWindow_ == 64
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << stormWindow_) - 1);
    r.window = ((r.window << 1) | (failed ? 1u : 0u)) & mask;
    if (r.windowFill < stormWindow_)
        ++r.windowFill;
    const auto failures =
        static_cast<std::uint64_t>(__builtin_popcountll(r.window));
    if (!r.inStorm) {
        // Enter: full window and >= 90% of it failed.
        if (r.windowFill == stormWindow_ && failures * 10 >= 9 * stormWindow_) {
            r.inStorm = true;
            r.stormFromAttempt =
                r.casAttempts >= stormWindow_ ? r.casAttempts - stormWindow_
                                              : 0;
            ++r.stormCount;
            ++totalStorms_;
        }
    } else if (failures * 2 < stormWindow_) {
        // Exit: below 50% failed (hysteresis).
        r.inStorm = false;
        if (r.storms.size() < 16)
            r.storms.push_back({r.stormFromAttempt, r.casAttempts});
    }
}

void
SyncProfileRegistry::release(Record &r, Cycle now)
{
    if (r.owner == 0)
        return;
    ++r.releases;
    ++totalReleases_;
    r.holdHist.add(now - r.acquiredAt);
    r.lastReleaser = r.owner;
    r.owner = 0;
    r.releasedAt = now;
    r.pendingHandoff = true;
}

void
SyncProfileRegistry::onAtomic(Addr addr, std::uint64_t warp_key, Cycle now,
                              bool is_cas, bool failed, bool is_acquire,
                              bool is_release)
{
    Record &r = recordFor(addr);
    ++r.atomics;
    ++totalAtomics_;
    if (is_cas) {
        ++r.casAttempts;
        ++totalCasAttempts_;
        if (failed) {
            ++r.casFailures;
            ++totalCasFailures_;
            if (r.casFailures == 1) {
                auto &per_line = contendedPerLine_[lineBase(addr)];
                if (per_line++ == 0)
                    ++contendedLines_;
            }
            lastFailed_[warp_key] = addr;
            if (is_acquire) {
                // Open (or keep open) this warp's acquire session.
                r.sessions.emplace(warp_key, now);
                const auto waiters =
                    static_cast<unsigned>(r.sessions.size());
                r.peakWaiters = std::max(r.peakWaiters, waiters);
                peakWaiters_ = std::max(peakWaiters_, waiters);
            }
        }
        stepStorm(r, failed);
    }
    if (!failed && is_acquire && !is_release) {
        // Successful lock acquire.
        ++r.acquires;
        ++totalAcquires_;
        ++r.acqByWarp[warp_key];
        auto session = r.sessions.find(warp_key);
        if (session != r.sessions.end()) {
            r.acquireHist.add(now - session->second);
            r.sessions.erase(session);
        } else {
            r.acquireHist.add(0);  // uncontended: acquired first try
        }
        if (r.pendingHandoff) {
            if (r.lastReleaser != warp_key)
                r.handoffHist.add(now - r.releasedAt);
            r.pendingHandoff = false;
        }
        r.owner = warp_key;
        r.acquiredAt = now;
    }
    if (is_release && !failed)
        release(r, now);
}

void
SyncProfileRegistry::onWrite(Addr addr, Cycle now)
{
    auto it = addrs_.find(addr);
    if (it != addrs_.end())
        release(it->second, now);
}

void
SyncProfileRegistry::onBackoffEnter(std::uint64_t warp_key, Cycle)
{
    ++totalBackoffEnters_;
    auto it = lastFailed_.find(warp_key);
    if (it != lastFailed_.end())
        ++addrs_[it->second].backoffEnters;
}

void
SyncProfileRegistry::onSibConfirm(std::uint64_t warp_key, Cycle)
{
    ++totalSibConfirms_;
    auto it = lastFailed_.find(warp_key);
    if (it != lastFailed_.end())
        ++addrs_[it->second].sibConfirms;
}

void
SyncProfileRegistry::onTimedAtomic(Addr addr, Cycle waited, bool remote)
{
    Record &r = recordFor(addr);
    ++r.timedAtomics;
    ++totalTimedAtomics_;
    if (remote) {
        ++r.remoteAtomics;
        ++totalRemoteAtomics_;
    }
    r.waitCycles += waited;
    totalWaitCycles_ += waited;
}

std::vector<const std::pair<const Addr, SyncProfileRegistry::Record> *>
SyncProfileRegistry::ranked() const
{
    std::vector<const std::pair<const Addr, Record> *> order;
    order.reserve(addrs_.size());
    for (const auto &entry : addrs_)
        order.push_back(&entry);
    std::sort(order.begin(), order.end(), [](const auto *a, const auto *b) {
        if (a->second.casFailures != b->second.casFailures)
            return a->second.casFailures > b->second.casFailures;
        if (a->second.casAttempts != b->second.casAttempts)
            return a->second.casAttempts > b->second.casAttempts;
        if (a->second.atomics != b->second.atomics)
            return a->second.atomics > b->second.atomics;
        return a->first < b->first;
    });
    return order;
}

std::vector<AddrSummary>
SyncProfileRegistry::hotAddresses(std::size_t n) const
{
    std::vector<AddrSummary> out;
    for (const auto *entry : ranked()) {
        if (out.size() >= n)
            break;
        const Record &r = entry->second;
        AddrSummary s;
        s.addr = entry->first;
        s.atomics = r.atomics;
        s.casAttempts = r.casAttempts;
        s.casFailures = r.casFailures;
        s.acquires = r.acquires;
        s.releases = r.releases;
        s.backoffEnters = r.backoffEnters;
        s.sibConfirms = r.sibConfirms;
        s.stormCount = r.stormCount;
        s.peakWaiters = r.peakWaiters;
        out.push_back(s);
    }
    return out;
}

Fairness
SyncProfileRegistry::fairnessOf(Addr addr) const
{
    Fairness f;
    auto it = addrs_.find(addr);
    if (it == addrs_.end() || it->second.acqByWarp.empty())
        return f;
    std::vector<std::uint64_t> counts;
    counts.reserve(it->second.acqByWarp.size());
    std::uint64_t sum = 0;
    for (const auto &[warp, acq] : it->second.acqByWarp) {
        counts.push_back(acq);
        sum += acq;
        f.maxAcq = std::max(f.maxAcq, acq);
    }
    f.warps = counts.size();
    f.meanAcq = static_cast<double>(sum) / static_cast<double>(counts.size());
    f.gini = giniIndex(std::move(counts));
    return f;
}

std::vector<StormInterval>
SyncProfileRegistry::stormsOf(Addr addr) const
{
    auto it = addrs_.find(addr);
    if (it == addrs_.end())
        return {};
    std::vector<StormInterval> out = it->second.storms;
    if (it->second.inStorm && out.size() < 16)
        out.push_back({it->second.stormFromAttempt, it->second.casAttempts});
    return out;
}

harness::Json
SyncProfileRegistry::reportJson() const
{
    using harness::Json;
    auto doc = Json::object();
    doc.set("version", 1);
    doc.set("top_n", topN_);
    doc.set("storm_window", stormWindow_);

    auto totals = Json::object();
    totals.set("tracked_addresses",
               static_cast<std::uint64_t>(addrs_.size()));
    totals.set("contended_lines", contendedLines_);
    totals.set("atomics", totalAtomics_);
    totals.set("cas_attempts", totalCasAttempts_);
    totals.set("cas_failures", totalCasFailures_);
    totals.set("failed_share",
               totalCasAttempts_ == 0
                   ? 0.0
                   : static_cast<double>(totalCasFailures_) /
                         static_cast<double>(totalCasAttempts_));
    totals.set("acquires", totalAcquires_);
    totals.set("releases", totalReleases_);
    totals.set("backoff_enters", totalBackoffEnters_);
    totals.set("sib_confirms", totalSibConfirms_);
    totals.set("storms", totalStorms_);
    totals.set("peak_waiters", peakWaiters_);
    totals.set("timed_atomics", totalTimedAtomics_);
    totals.set("local_atomics", totalTimedAtomics_ - totalRemoteAtomics_);
    totals.set("remote_atomics", totalRemoteAtomics_);
    totals.set("wait_cycles", totalWaitCycles_);
    doc.set("totals", std::move(totals));

    auto arr = Json::array();
    std::size_t emitted = 0;
    for (const auto *entry : ranked()) {
        if (emitted++ >= topN_)
            break;
        const Addr addr = entry->first;
        const Record &r = entry->second;
        auto a = Json::object();
        a.set("addr", hexAddr(addr));
        a.set("line", hexAddr(lineBase(addr)));
        a.set("atomics", r.atomics);
        a.set("cas_attempts", r.casAttempts);
        a.set("cas_failures", r.casFailures);
        a.set("failed_share",
              r.casAttempts == 0
                  ? 0.0
                  : static_cast<double>(r.casFailures) /
                        static_cast<double>(r.casAttempts));
        a.set("acquires", r.acquires);
        a.set("releases", r.releases);
        a.set("timed_atomics", r.timedAtomics);
        a.set("local_atomics", r.timedAtomics - r.remoteAtomics);
        a.set("remote_atomics", r.remoteAtomics);
        a.set("wait_cycles", r.waitCycles);
        a.set("peak_waiters", r.peakWaiters);
        a.set("backoff_enters", r.backoffEnters);
        a.set("sib_confirms", r.sibConfirms);
        a.set("acquire_latency", histJson(r.acquireHist));
        a.set("hold_cycles", histJson(r.holdHist));
        a.set("handoff_cycles", histJson(r.handoffHist));

        const Fairness f = fairnessOf(addr);
        auto fair = Json::object();
        fair.set("warps", f.warps);
        fair.set("max", f.maxAcq);
        fair.set("mean", f.meanAcq);
        fair.set("gini", f.gini);
        a.set("fairness", std::move(fair));

        a.set("storm_count", r.stormCount);
        auto storms = Json::array();
        for (const StormInterval &s : stormsOf(addr)) {
            auto iv = Json::object();
            iv.set("from", s.fromAttempt);
            iv.set("to", s.toAttempt);
            storms.push(std::move(iv));
        }
        a.set("storms", std::move(storms));
        arr.push(std::move(a));
    }
    doc.set("addresses", std::move(arr));
    return doc;
}

std::string
SyncProfileRegistry::hotReport() const
{
    if (totalAtomics_ == 0)
        return {};
    std::ostringstream os;
    os << "  hot sync objects (top " << std::min<std::size_t>(topN_, 8)
       << " by failed CAS):\n";
    std::size_t emitted = 0;
    for (const auto *entry : ranked()) {
        if (emitted++ >= std::min<std::size_t>(topN_, 8))
            break;
        const Addr addr = entry->first;
        const Record &r = entry->second;
        const double share =
            r.casAttempts == 0 ? 0.0
                               : static_cast<double>(r.casFailures) /
                                     static_cast<double>(r.casAttempts);
        const Fairness f = fairnessOf(addr);
        os << "    " << hexAddr(addr) << "  atomics " << r.atomics
           << "  cas " << r.casFailures << "/" << r.casAttempts
           << " failed";
        os << "  share ";
        os.precision(3);
        os << std::fixed << share;
        os.unsetf(std::ios::floatfield);
        os << "  waiters<=" << r.peakWaiters << "  acq " << r.acquires
           << "  gini ";
        os.precision(3);
        os << std::fixed << f.gini;
        os.unsetf(std::ios::floatfield);
        if (r.stormCount > 0)
            os << "  storms " << r.stormCount;
        if (r.backoffEnters > 0)
            os << "  bows " << r.backoffEnters;
        if (r.sibConfirms > 0)
            os << "  sib " << r.sibConfirms;
        os << "\n";
    }
    return os.str();
}

}  // namespace bowsim::syncprof
