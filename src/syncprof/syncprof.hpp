#ifndef BOWSIM_SYNCPROF_SYNCPROF_HPP
#define BOWSIM_SYNCPROF_SYNCPROF_HPP

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * Sync-contention profiler (docs/SYNC.md, "Sync observability"): a
 * deterministic per-address attribution layer over the committed
 * atomic/load-store path. Where traces count events by hardware
 * structure, the SyncProfileRegistry answers "*which lock* is hot, who
 * is starving on it, and did BOWS/DDOS help *that address*": per
 * byte-address CAS/failed-CAS splits, acquire/hold/hand-off latency
 * histograms, per-warp fairness (Gini), a sliding-window CAS-storm
 * detector, local/remote device splits, and DDOS/BOWS transitions
 * cross-attributed to the address whose failed CAS caused them.
 *
 * Determinism contract (why reports are byte-identical across
 * --sm-threads, --jobs, idle-skip and device count):
 *
 *  - Functional hooks (onAtomic / onWrite) fire on the committed
 *    functional path — at the enqueue point in inline mode, at the
 *    commit-queue drain in phase-split mode. The drain replays the
 *    serial loop's side-effect order exactly (docs/PERF.md), so the
 *    profiler observes the identical (addr, warp, outcome, cycle)
 *    sequence at any thread count. Idle-skip never skips a cycle in
 *    which an atomic commits, so cycle stamps are identical too.
 *  - Ownership/session/storm state is driven *only* by those
 *    functional outcomes, which the differential suites pin as
 *    byte-identical across execution knobs.
 *  - Timed hooks (onTimedAtomic, from the L2 banks) contribute only
 *    commutative per-address sums (packet counts, wait cycles, the
 *    local/remote split), so their interleaving with the functional
 *    stream is irrelevant.
 *  - BOWS/DDOS transition hooks are staged through the same per-SM
 *    commit queues as trace events, preserving each warp's program
 *    order between its failed CAS and the back-off it provoked; the
 *    cross-attribution map is per-warp, so cross-warp interleaving
 *    cannot change it.
 *
 * The null-handle idiom mirrors trace::Tracer: every hook site holds a
 * SyncProf handle and pays exactly one pointer test when no registry is
 * attached.
 */

namespace bowsim::harness {
class Json;
}

namespace bowsim::syncprof {

/** Fixed histogram width: bucket 0 is exactly 0, bucket k >= 1 covers
 *  [2^(k-1), 2^k). Values beyond 2^30 land in the last bucket. */
constexpr unsigned kHistBuckets = 32;

/** Log2 bucket index of @p v (0 -> 0, v -> 1 + floor(log2 v), capped). */
unsigned log2Bucket(std::uint64_t v);

/** Power-of-two histogram for acquire/hold/hand-off latencies. */
struct LatencyHist {
    std::array<std::uint64_t, kHistBuckets> buckets{};
    std::uint64_t count = 0;

    void
    add(std::uint64_t v)
    {
        ++buckets[log2Bucket(v)];
        ++count;
    }
};

/**
 * Gini coefficient of @p counts (0 = perfectly fair, -> 1 = one warp
 * holds everything). Degenerate inputs — empty, single entry, all
 * zeros — report 0 by definition.
 */
double giniIndex(std::vector<std::uint64_t> counts);

/** One closed CAS-storm episode, in per-address CAS-attempt indices. */
struct StormInterval {
    std::uint64_t fromAttempt = 0;
    std::uint64_t toAttempt = 0;
};

/** Per-address fairness summary over the acquiring warps. */
struct Fairness {
    std::uint64_t warps = 0;   ///< distinct acquiring warps
    std::uint64_t maxAcq = 0;  ///< acquisitions by the luckiest warp
    double meanAcq = 0.0;      ///< acquisitions per acquiring warp
    double gini = 0.0;
};

/** Flat per-address summary for tests and litmus evidence. */
struct AddrSummary {
    Addr addr = 0;
    std::uint64_t atomics = 0;
    std::uint64_t casAttempts = 0;
    std::uint64_t casFailures = 0;
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::uint64_t backoffEnters = 0;
    std::uint64_t sibConfirms = 0;
    std::uint64_t stormCount = 0;
    unsigned peakWaiters = 0;

    double
    failedShare() const
    {
        return casAttempts == 0 ? 0.0
                                : static_cast<double>(casFailures) /
                                      static_cast<double>(casAttempts);
    }
};

/**
 * The system-wide profile. One registry serves every device of a launch
 * (lock words live in the shared functional memory, so attribution must
 * be system-wide, exactly like the LockTracker); all hooks run on the
 * coordinator thread — at dispatch/commit or inside MemorySystem::
 * request, which the phase-split contract keeps serial — so the
 * registry is deliberately unsynchronized.
 */
class SyncProfileRegistry {
  public:
    /**
     * @param top_n        addresses emitted by reportJson()/hotReport()
     * @param storm_window CAS-attempt window of the storm detector,
     *                     clamped to [1, 64] (one word of history per
     *                     address). Enter at >= 90% failed with a full
     *                     window; exit below 50% (hysteresis).
     */
    explicit SyncProfileRegistry(unsigned top_n = 32,
                                 unsigned storm_window = 64);

    // --- committed functional path (serial, order-deterministic) -------
    /**
     * One committed atomic lane operation on byte address @p addr by
     * global warp @p warp_key at @p now.
     * @param is_cas     the operation was a compare-and-swap
     * @param failed     CAS only: the compare failed
     * @param is_acquire the PC carries the lock-acquire annotation
     * @param release    the operation released a lock word (an exchange,
     *                   or a successful CAS whose desired value was the
     *                   free sentinel 0)
     */
    void onAtomic(Addr addr, std::uint64_t warp_key, Cycle now,
                  bool is_cas, bool failed, bool is_acquire, bool release);

    /** A committed plain global store to @p addr (release detection:
     *  any write to a held lock word releases it, mirroring the
     *  LockTracker). Cheap no-op for never-atomically-touched addresses. */
    void onWrite(Addr addr, Cycle now);

    /** A warp entered BOWS back-off; attributed to its last failed-CAS
     *  address. */
    void onBackoffEnter(std::uint64_t warp_key, Cycle now);

    /** DDOS newly confirmed a SIB for this warp; attributed to its last
     *  failed-CAS address. */
    void onSibConfirm(std::uint64_t warp_key, Cycle now);

    // --- timed path (commutative sums; any interleaving) ---------------
    /**
     * One atomic packet serviced by an L2 bank: @p waited cycles queued
     * behind the bank's atomic service slot, @p remote when the request
     * crossed the inter-device link to a home bank.
     */
    void onTimedAtomic(Addr addr, Cycle waited, bool remote);

    // --- read side ------------------------------------------------------
    /** Distinct cache lines holding at least one failed-CAS address. */
    std::uint64_t contendedLines() const { return contendedLines_; }
    std::uint64_t casAttempts() const { return totalCasAttempts_; }
    std::uint64_t casFailures() const { return totalCasFailures_; }
    /** Highest concurrent-waiter count seen on any single address. */
    unsigned peakWaiters() const { return peakWaiters_; }
    /** Addresses with at least one atomic operation. */
    std::size_t trackedAddresses() const { return addrs_.size(); }

    /**
     * The @p n hottest addresses — most failed CAS first, ties broken
     * by CAS attempts, then total atomics, then ascending address — so
     * the order is a pure function of the deterministic counters.
     */
    std::vector<AddrSummary> hotAddresses(std::size_t n) const;

    /** Fairness summary of one address (zeros when untracked). */
    Fairness fairnessOf(Addr addr) const;

    /** Closed storm intervals of one address plus, when a storm is
     *  still open, a final interval ending at the last attempt. */
    std::vector<StormInterval> stormsOf(Addr addr) const;

    /**
     * The full --sync-report document (validated by json_check
     * --sync-report): totals, then the top-N hottest addresses with
     * histograms, fairness, the local/remote split, and storm
     * intervals. Deterministic: every field is a pure function of the
     * deterministic counter state.
     */
    harness::Json reportJson() const;

    /** "Hot sync objects" text block for the --profile kernel report;
     *  empty string when no atomics were observed. */
    std::string hotReport() const;

  private:
    struct Record {
        // Functional-path counters (order-deterministic).
        std::uint64_t atomics = 0;
        std::uint64_t casAttempts = 0;
        std::uint64_t casFailures = 0;
        std::uint64_t acquires = 0;
        std::uint64_t releases = 0;
        std::uint64_t backoffEnters = 0;
        std::uint64_t sibConfirms = 0;

        // Lock-session state.
        std::uint64_t owner = 0;  ///< holding warp key; 0 = free
        Cycle acquiredAt = 0;
        std::uint64_t lastReleaser = 0;
        Cycle releasedAt = 0;
        bool pendingHandoff = false;
        /** Contended acquire sessions: warp key -> first-failure cycle. */
        std::map<std::uint64_t, Cycle> sessions;
        unsigned peakWaiters = 0;
        /** Acquisition counts per warp key (fairness). */
        std::map<std::uint64_t, std::uint64_t> acqByWarp;

        LatencyHist acquireHist;  ///< first failed attempt -> success
        LatencyHist holdHist;     ///< acquire -> release
        LatencyHist handoffHist;  ///< release -> next acquire, new owner

        // Storm detector (bit i of window = attempt i failed).
        std::uint64_t window = 0;
        unsigned windowFill = 0;
        bool inStorm = false;
        std::uint64_t stormFromAttempt = 0;
        std::uint64_t stormCount = 0;
        std::vector<StormInterval> storms;

        // Timed-path sums (commutative).
        std::uint64_t timedAtomics = 0;
        std::uint64_t remoteAtomics = 0;
        std::uint64_t waitCycles = 0;
    };

    Record &recordFor(Addr addr);
    void release(Record &r, Cycle now);
    void stepStorm(Record &r, bool failed);
    /** Hottest-first record order (see hotAddresses). */
    std::vector<const std::pair<const Addr, Record> *> ranked() const;

    /** Per byte-address records, address-ordered (deterministic walks). */
    std::map<Addr, Record> addrs_;
    /** Last failed-CAS address per warp key (BOWS/DDOS attribution). */
    std::unordered_map<std::uint64_t, Addr> lastFailed_;
    /** Lines with >= 1 contended address (sampler gauge support). */
    std::map<Addr, std::uint64_t> contendedPerLine_;

    unsigned topN_;
    unsigned stormWindow_;

    std::uint64_t totalAtomics_ = 0;
    std::uint64_t totalCasAttempts_ = 0;
    std::uint64_t totalCasFailures_ = 0;
    std::uint64_t totalAcquires_ = 0;
    std::uint64_t totalReleases_ = 0;
    std::uint64_t totalBackoffEnters_ = 0;
    std::uint64_t totalSibConfirms_ = 0;
    std::uint64_t totalStorms_ = 0;
    std::uint64_t totalTimedAtomics_ = 0;
    std::uint64_t totalRemoteAtomics_ = 0;
    std::uint64_t totalWaitCycles_ = 0;
    std::uint64_t contendedLines_ = 0;
    unsigned peakWaiters_ = 0;
};

/**
 * Null-capable handle over an optional registry — the trace::Tracer
 * idiom. Every hook site costs one pointer test when detached; handles
 * are freely copyable and carried by value in LaunchState, SmCore and
 * MemorySystem.
 */
class SyncProf {
  public:
    SyncProf() = default;
    explicit SyncProf(SyncProfileRegistry *reg) : reg_(reg) {}

    bool enabled() const { return reg_ != nullptr; }
    SyncProfileRegistry *registry() const { return reg_; }

    void
    onAtomic(Addr addr, std::uint64_t warp_key, Cycle now, bool is_cas,
             bool failed, bool is_acquire, bool release) const
    {
        if (reg_) {
            reg_->onAtomic(addr, warp_key, now, is_cas, failed,
                           is_acquire, release);
        }
    }

    void
    onWrite(Addr addr, Cycle now) const
    {
        if (reg_)
            reg_->onWrite(addr, now);
    }

    void
    onBackoffEnter(std::uint64_t warp_key, Cycle now) const
    {
        if (reg_)
            reg_->onBackoffEnter(warp_key, now);
    }

    void
    onSibConfirm(std::uint64_t warp_key, Cycle now) const
    {
        if (reg_)
            reg_->onSibConfirm(warp_key, now);
    }

    void
    onTimedAtomic(Addr addr, Cycle waited, bool remote) const
    {
        if (reg_)
            reg_->onTimedAtomic(addr, waited, remote);
    }

  private:
    SyncProfileRegistry *reg_ = nullptr;
};

}  // namespace bowsim::syncprof

#endif  // BOWSIM_SYNCPROF_SYNCPROF_HPP
