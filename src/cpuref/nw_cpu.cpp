#include "src/cpuref/nw_cpu.hpp"

#include <algorithm>

#include "src/common/log.hpp"

namespace bowsim {

std::vector<Word>
nwReference(const std::vector<Word> &a, const std::vector<Word> &b,
            Word match, Word mismatch, Word gap)
{
    if (a.size() != b.size())
        fatal("nwReference: sequence lengths differ");
    const size_t n = a.size();
    const size_t w = n + 1;
    std::vector<Word> f(w * w, 0);
    for (size_t c = 0; c <= n; ++c)
        f[c] = -static_cast<Word>(c) * gap;
    for (size_t r = 1; r <= n; ++r) {
        f[r * w] = -static_cast<Word>(r) * gap;
        for (size_t c = 1; c <= n; ++c) {
            Word m = a[c - 1] == b[r - 1] ? match : mismatch;
            Word diag = f[(r - 1) * w + (c - 1)] + m;
            Word up = f[(r - 1) * w + c] - gap;
            Word left = f[r * w + (c - 1)] - gap;
            f[r * w + c] = std::max({diag, up, left});
        }
    }
    return f;
}

}  // namespace bowsim
