#ifndef BOWSIM_CPUREF_HASHTABLE_CPU_HPP
#define BOWSIM_CPUREF_HASHTABLE_CPU_HPP

#include <cstdint>
#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * Native serial CPU hashtable insertion, timed with a real clock — the
 * "Intel Core i7, serial implementation" side of Fig. 1b. It runs the
 * same algorithm as the HT kernel (chained buckets, head insertion).
 */

namespace bowsim {

struct CpuHashtableResult {
    double milliseconds = 0.0;
    std::uint64_t inserted = 0;
    /** Longest chain, as a sanity signal for the contention sweep. */
    std::uint64_t maxChain = 0;
};

/** Inserts @p keys into @p buckets chained buckets and times it. */
CpuHashtableResult cpuHashtableInsert(const std::vector<Word> &keys,
                                      unsigned buckets,
                                      unsigned repetitions = 1);

}  // namespace bowsim

#endif  // BOWSIM_CPUREF_HASHTABLE_CPU_HPP
