#ifndef BOWSIM_CPUREF_NW_CPU_HPP
#define BOWSIM_CPUREF_NW_CPU_HPP

#include <vector>

#include "src/common/types.hpp"

/**
 * @file
 * Host reference for Needleman-Wunsch: the plain O(n^2) dynamic program
 * the NW1/NW2 kernels must reproduce exactly.
 */

namespace bowsim {

/**
 * Returns the full (n+1) x (n+1) score matrix, row-major, for aligning
 * @p a against @p b with the given scores.
 */
std::vector<Word> nwReference(const std::vector<Word> &a,
                              const std::vector<Word> &b, Word match,
                              Word mismatch, Word gap);

}  // namespace bowsim

#endif  // BOWSIM_CPUREF_NW_CPU_HPP
