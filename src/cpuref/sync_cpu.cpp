#include "src/cpuref/sync_cpu.hpp"

#include "src/common/log.hpp"

namespace bowsim::cpuref {

LockRef
lockReference(sync::Primitive p, const sync::SyncGeometry &g)
{
    const unsigned warps = g.totalWarps();
    const Word total = static_cast<Word>(g.totalAcquisitions());
    LockRef r;
    r.counter = total;
    r.slots.assign(warps, static_cast<Word>(g.iters));
    r.errors.assign(warps, 0);
    switch (p) {
      case sync::Primitive::TasLock:
      case sync::Primitive::BackoffLock:
        r.lockWord = 0;
        break;
      case sync::Primitive::TicketLock:
        // Every round takes one ticket and advances now-serving by one.
        r.nextTicket = total;
        r.nowServing = total;
        break;
      case sync::Primitive::ArrayLock: {
        // The k-th release opens flag slot (k+1) % slots; after the
        // last one exactly that slot is open. flags[0] starts open.
        r.tail = total;
        r.flags.assign(warps, 0);
        r.flags[static_cast<std::size_t>(total % warps)] = 1;
        break;
      }
      case sync::Primitive::GlobalBarrier:
      case sync::Primitive::SystemBarrier:
        fatal("lockReference: barriers are not lock primitives");
    }
    return r;
}

BarrierRef
barrierReference(const sync::SyncGeometry &g)
{
    BarrierRef r;
    r.count = 0;
    r.release = static_cast<Word>(g.iters);
    r.data.assign(g.ctas, static_cast<Word>(g.iters));
    r.errors.assign(g.ctas, 0);
    return r;
}

}  // namespace bowsim::cpuref
