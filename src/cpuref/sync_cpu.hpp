#ifndef BOWSIM_CPUREF_SYNC_CPU_HPP
#define BOWSIM_CPUREF_SYNC_CPU_HPP

#include <vector>

#include "src/common/types.hpp"
#include "src/sync/primitives.hpp"

/**
 * @file
 * Host references for the src/sync primitives: the exact final device
 * memory a correct lock or barrier run must leave behind, independent
 * of scheduling. The harness validate() methods and the unit tests
 * both compare against these.
 */

namespace bowsim::cpuref {

/** Expected final state of one lock-primitive run. */
struct LockRef {
    /** counter: every acquisition incremented it exactly once. */
    Word counter = 0;
    /** slots[gw]: rounds completed per warp. */
    std::vector<Word> slots;
    /** errors[gw]: CS-overlap witnesses, all zero under mutual exclusion. */
    std::vector<Word> errors;
    /** TAS/backoff lock word after the last release. */
    Word lockWord = 0;
    /** Ticket lock: final next-ticket and now-serving counters. */
    Word nextTicket = 0;
    Word nowServing = 0;
    /** Array lock: final tail counter and flag array (one slot open). */
    Word tail = 0;
    std::vector<Word> flags;
};

/** Reference for @p p (any lock primitive) at geometry @p g. */
LockRef lockReference(sync::Primitive p, const sync::SyncGeometry &g);

/** Expected final state of one global-barrier run. */
struct BarrierRef {
    /** Arrive counter: reset by the last arriver of the last round. */
    Word count = 0;
    /** Release word: the last round's sequence number (== iters). */
    Word release = 0;
    /** data[cta]: each CTA's last published round (== iters). */
    std::vector<Word> data;
    /** errors[cta]: cross-CTA ordering violations, all zero. */
    std::vector<Word> errors;
};

BarrierRef barrierReference(const sync::SyncGeometry &g);

}  // namespace bowsim::cpuref

#endif  // BOWSIM_CPUREF_SYNC_CPU_HPP
