#include "src/cpuref/hashtable_cpu.hpp"

#include <algorithm>
#include <chrono>

namespace bowsim {

namespace {

struct Node {
    Word key;
    std::int64_t next;
};

}  // namespace

CpuHashtableResult
cpuHashtableInsert(const std::vector<Word> &keys, unsigned buckets,
                   unsigned repetitions)
{
    CpuHashtableResult result;
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    std::vector<std::int64_t> heads;
    std::vector<Node> nodes;
    for (unsigned rep = 0; rep < repetitions; ++rep) {
        heads.assign(buckets, -1);
        nodes.clear();
        nodes.reserve(keys.size());
        for (Word k : keys) {
            auto b = static_cast<std::uint64_t>(k) % buckets;
            nodes.push_back(Node{k, heads[b]});
            heads[b] = static_cast<std::int64_t>(nodes.size()) - 1;
        }
    }
    auto end = Clock::now();
    result.milliseconds =
        std::chrono::duration<double, std::milli>(end - start).count() /
        std::max(1u, repetitions);
    result.inserted = keys.size();
    std::vector<std::uint64_t> depth(buckets, 0);
    for (Word k : keys) {
        auto b = static_cast<std::uint64_t>(k) % buckets;
        result.maxChain = std::max(result.maxChain, ++depth[b]);
    }
    return result;
}

}  // namespace bowsim
