#ifndef BOWSIM_SIM_WORKER_POOL_HPP
#define BOWSIM_SIM_WORKER_POOL_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

/**
 * @file
 * Persistent fork/join worker pool for the per-cycle SM compute phase.
 * run() hands each participant (the calling thread included) one
 * contiguous slice of [0, count) and blocks until every slice finishes —
 * one barrier per simulated cycle. Workers spin briefly before falling
 * back to atomic waits (futex), so the pool is cheap at cycle granularity
 * without burning whole time slices when the host is oversubscribed.
 */

namespace bowsim {

class WorkerPool {
  public:
    using Task = std::function<void(std::size_t, std::size_t)>;

    /** Spawns @p threads - 1 workers; the caller is participant 0. */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned threads() const { return nthreads_; }

    /**
     * Runs task(begin, end) over a static partition of [0, count); the
     * calling thread takes slice 0 and returns only after all slices are
     * done. Slices must not touch shared mutable state; anything the
     * task writes is visible to the caller when run() returns.
     */
    void run(std::size_t count, const Task &task);

  private:
    void workerMain(unsigned self);

    std::vector<std::thread> workers_;
    /** Bumped (release) to publish task_/count_ and start a round. */
    std::atomic<std::uint64_t> epoch_{0};
    /** Workers yet to finish the current round. */
    std::atomic<std::uint32_t> pending_{0};
    std::atomic<bool> stop_{false};
    const Task *task_ = nullptr;
    std::size_t count_ = 0;
    unsigned nthreads_;
    /** False when the pool oversubscribes the host (threads > hardware
     *  threads): spinning then only delays the peer being waited on. */
    bool spin_;
};

}  // namespace bowsim

#endif  // BOWSIM_SIM_WORKER_POOL_HPP
