#include "src/sim/gpu.hpp"

#include "src/common/log.hpp"

namespace bowsim {

Gpu::Gpu(GpuConfig cfg) : cfg_(std::move(cfg)) {}

Addr
Gpu::malloc(std::uint64_t bytes)
{
    return mem_.allocate(bytes);
}

void
Gpu::memcpyToDevice(Addr dst, const void *src, std::uint64_t bytes)
{
    mem_.writeBytes(dst, src, bytes);
}

void
Gpu::memcpyFromDevice(void *dst, Addr src, std::uint64_t bytes)
{
    mem_.readBytes(src, dst, bytes);
}

KernelStats
Gpu::launch(const Program &prog, Dim3 grid, Dim3 block,
            const std::vector<Word> &params)
{
    if (prog.code.empty())
        fatal("launch of an empty kernel");
    if (params.size() < prog.numParams)
        fatal("kernel '", prog.name, "' expects ", prog.numParams,
              " params, got ", params.size());
    if (block.count() == 0 || grid.count() == 0)
        fatal("launch with an empty grid or block");

    MemorySystem memsys(cfg_);
    LaunchState launch;
    launch.trace = trace::Tracer(traceSink_);
    memsys.setTrace(launch.trace);
    launch.prog = &prog;
    launch.grid = grid;
    launch.block = block;
    launch.params = params;
    launch.mem = &mem_;
    launch.memsys = &memsys;
    launch.spinDetect = cfg_.spinDetect;
    launch.stats.kernel = prog.name;

    std::vector<std::unique_ptr<SmCore>> cores;
    cores.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        cores.push_back(std::make_unique<SmCore>(c, cfg_, launch));

    // Only busy SMs are cycled. An SM with no resident CTAs once the CTA
    // dispatcher has drained can never become busy again, so it leaves
    // the active list permanently. Its only remaining architectural
    // effect would have been the per-cycle delay-limit accounting (its
    // adaptive estimator sees no instructions, so its limit is constant
    // from then on) — applied analytically below so statistics stay
    // bit-identical with the cycle-everything loop.
    std::vector<SmCore *> active;
    active.reserve(cores.size());
    for (auto &core : cores)
        active.push_back(core.get());

    // Idle-cycle fast-forward (docs/PERF.md): after a cycle in which no
    // SM issued, every remaining state change is a scheduled event, so
    // the clock can jump to the earliest next-event horizon with the
    // skipped cycles' accounting applied in bulk. Disabled while a
    // trace sink is attached: per-cycle IssueStall events cannot be
    // synthesized for cycles that never run.
    const bool skip = cfg_.idleSkip && traceSink_ == nullptr;
    // Clamp jump targets so a deadlocked kernel (horizon at infinity,
    // or beyond the watchdog) still trips the same fatal at the same
    // cycle as the cycle-by-cycle loop.
    const Cycle wd_stop = cfg_.watchdogCycles >= kNeverCycle - 1
                              ? kNeverCycle - 1
                              : cfg_.watchdogCycles + 1;

    Cycle now = 0;
    std::uint64_t idle_cores = 0;
    std::uint64_t idle_delay_sum = 0;
    do {
        ++now;
        if (now > cfg_.watchdogCycles)
            simFatal("kernel '", prog.name, "' exceeded the ",
                     cfg_.watchdogCycles, "-cycle watchdog (deadlock?)");
        launch.stats.delayLimitCycleSum += idle_delay_sum;
        launch.stats.smCycles += idle_cores;
        bool issued = false;
        for (SmCore *core : active)
            issued |= core->cycle(now);
        for (std::size_t i = 0; i < active.size();) {
            if (active[i]->busy()) {
                ++i;
                continue;
            }
            idle_delay_sum += active[i]->backoff().delayLimit();
            ++idle_cores;
            active.erase(active.begin() + i);
        }
        if (skip && !issued && !active.empty()) {
            // nextWorkCycle() never returns <= now, so now+1 is the
            // horizon's floor: once any SM reports it, the gap is empty
            // and the remaining scans can't change that.
            Cycle horizon = kNeverCycle;
            for (SmCore *core : active) {
                horizon = std::min(horizon, core->nextWorkCycle(now));
                if (horizon <= now + 1)
                    break;
            }
            const Cycle target = std::min(horizon, wd_stop);
            if (target > now + 1) {
                // Skip cycles now+1 .. target-1; cycle target runs live.
                const Cycle to = target - 1;
                const std::uint64_t delta = to - now;
                for (SmCore *core : active)
                    core->fastForward(now + 1, to);
                launch.stats.delayLimitCycleSum += idle_delay_sum * delta;
                launch.stats.smCycles += idle_cores * delta;
                now = to;
            }
        }
    } while (!active.empty());

    KernelStats &stats = launch.stats;
    stats.cycles = now;
    stats.mem = memsys.stats();
    stats.energy.l2Accesses = stats.mem.l2Accesses;
    stats.energy.dramAccesses = stats.mem.dramAccesses;
    stats.energy.icntPackets = stats.mem.icntPackets;
    stats.energy.atomicOps = stats.mem.atomics;
    stats.energyNj = energy_.dynamicEnergyNj(stats.energy);
    stats.staticEnergyNj = energy_.staticEnergyNj(stats.smCycles);

    // DDOS accuracy: merge the per-SM collectors and score against the
    // kernel's ground-truth annotations.
    DdosAccuracy merged;
    for (auto &core : cores)
        merged.merge(core->ddos().accuracy());
    stats.ddos = merged.report(prog.sync.spinBranches);

    return stats;
}

}  // namespace bowsim
