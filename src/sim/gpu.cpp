#include "src/sim/gpu.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "src/arch/snapshot.hpp"
#include "src/common/log.hpp"
#include "src/mem/lock_tracker.hpp"
#include "src/mem/system_link.hpp"
#include "src/metrics/sampler.hpp"
#include "src/sim/device.hpp"
#include "src/sim/functional.hpp"

namespace bowsim {

GpuSystem::GpuSystem(GpuConfig cfg) : cfg_(std::move(cfg)) {}

Addr
GpuSystem::malloc(std::uint64_t bytes)
{
    return mem_.allocate(bytes);
}

void
GpuSystem::memcpyToDevice(Addr dst, const void *src, std::uint64_t bytes)
{
    mem_.writeBytes(dst, src, bytes);
}

void
GpuSystem::memcpyFromDevice(void *dst, Addr src, std::uint64_t bytes)
{
    mem_.readBytes(src, dst, bytes);
}

KernelStats
GpuSystem::launch(const Program &prog, Dim3 grid, Dim3 block,
                  const std::vector<Word> &params)
{
    if (prog.code.empty())
        fatal("launch of an empty kernel");
    if (params.size() < prog.numParams)
        fatal("kernel '", prog.name, "' expects ", prog.numParams,
              " params, got ", params.size());
    if (block.count() == 0 || grid.count() == 0)
        fatal("launch with an empty grid or block");

    abort_ = LaunchAbort{};
    switch (cfg_.execMode) {
      case ExecMode::Functional:
        return launchFunctional(prog, grid, block, params);
      case ExecMode::Sampled:
        return launchSampled(prog, grid, block, params);
      case ExecMode::Cycle:
        break;
    }
    return launchCycle(prog, grid, block, params);
}

KernelStats
GpuSystem::launchCycle(const Program &prog, Dim3 grid, Dim3 block,
                       const std::vector<Word> &params)
{
    const unsigned num_devices = std::max(cfg_.numDevices, 1u);
    const unsigned num_cores = cfg_.numCores;
    const unsigned total_cores = num_cores * num_devices;

    // System-level state shared by every device. Lock words live in the
    // one functional memory space, so lock ownership is system-wide:
    // a single tracker classifies a CAS on device 0 against a hold
    // taken from device 1 as an inter-warp (not fresh) failure. Warp
    // keys disambiguate across devices via LaunchState::warpKeyBase.
    SystemLink link(cfg_);
    LockTracker system_locks;

    // CTA sharding: contiguous chunks in device-id order. Device d owns
    // [d*chunk, (d+1)*chunk); %nctaid stays the whole grid, so kernels
    // are oblivious to the split.
    const unsigned grid_ctas = grid.count();
    const unsigned chunk = (grid_ctas + num_devices - 1) / num_devices;

    std::vector<std::unique_ptr<Device>> devices;
    devices.reserve(num_devices);
    for (unsigned d = 0; d < num_devices; ++d) {
        devices.push_back(std::make_unique<Device>(d, cfg_));
        Device &dev = *devices.back();
        LaunchState &dl = dev.launch;
        dl.trace =
            trace::Tracer(traceSink_, static_cast<std::uint16_t>(d));
        dev.memsys.setTrace(dl.trace);
        // One registry serves all devices (like the system lock
        // tracker): lock words live in the shared functional memory, so
        // attribution must be system-wide. The L2 handle feeds the
        // local/remote split per requesting device.
        dl.sync = syncprof::SyncProf(syncProf_);
        dev.memsys.setSyncProf(dl.sync);
        dl.prog = &prog;
        dl.grid = grid;
        dl.block = block;
        dl.params = params;
        dl.mem = &mem_;
        dl.memsys = &dev.memsys;
        dl.spinDetect = cfg_.spinDetect;
        dl.stats.kernel = prog.name;
        dl.deviceId = d;
        dl.tracker = &system_locks;
        if (num_devices > 1) {
            dl.warpKeyBase = static_cast<std::uint64_t>(d) << 48;
            dl.nextCta = std::min(d * chunk, grid_ctas);
            dl.ctaEnd = std::min((d + 1) * chunk, grid_ctas);
        }
    }
    // Peer table for remote routing; with one device request() never
    // consults the link (home == self always), keeping the launch
    // byte-identical to the pre-split simulator.
    std::vector<MemorySystem *> peers(num_devices);
    for (unsigned d = 0; d < num_devices; ++d)
        peers[d] = &devices[d]->memsys;
    if (num_devices > 1) {
        for (unsigned d = 0; d < num_devices; ++d)
            devices[d]->memsys.setSystem(&link, peers.data(), d,
                                         num_devices);
    }

    // Phase-split execution (docs/PERF.md): with sm-threads > 1 each
    // cycle becomes dispatch (serial) -> compute (parallel, SM-private)
    // -> commit (serial, device/SM-id order), with cores staging all
    // globally visible side effects in per-SM commit queues and counting
    // into per-SM stat shards. Byte-identical to the sequential loop by
    // construction; sm-threads = 1 runs the sequential loop itself.
    const unsigned sm_threads =
        std::min(std::max(cfg_.smThreads, 1u), total_cores);
    const bool phased = sm_threads > 1;
    for (auto &dev : devices)
        dev->launch.deferCommit = phased;

    // Cores are flat and device-major (index = device * numCores +
    // local id); shards index identically. SmCore::id() stays the
    // device-local id — it feeds crossbar port indexing and stall-table
    // rows, both per-device concepts.
    std::vector<std::unique_ptr<KernelStats>> shards;
    std::vector<std::unique_ptr<SmCore>> cores;
    cores.reserve(total_cores);
    for (unsigned d = 0; d < num_devices; ++d) {
        for (unsigned c = 0; c < num_cores; ++c) {
            KernelStats *shard = nullptr;
            if (phased) {
                shards.push_back(std::make_unique<KernelStats>());
                shard = shards.back().get();
            }
            cores.push_back(std::make_unique<SmCore>(
                c, cfg_, devices[d]->launch, shard));
        }
    }
    if (phased && !pool_)
        pool_ = std::make_unique<WorkerPool>(sm_threads);

    // Only busy SMs are cycled. An SM with no resident CTAs once its
    // device's CTA dispatcher has drained can never become busy again,
    // so it leaves the active list permanently. Its only remaining
    // architectural effect would have been the per-cycle delay-limit
    // accounting (its adaptive estimator sees no instructions, so its
    // limit is constant from then on) — applied analytically below so
    // statistics stay bit-identical with the cycle-everything loop.
    std::vector<SmCore *> active;
    active.reserve(cores.size());
    for (auto &core : cores)
        active.push_back(core.get());

    // Idle-cycle fast-forward (docs/PERF.md): after a cycle in which no
    // SM issued, every remaining state change is a scheduled event, so
    // the clock can jump to the earliest next-event horizon with the
    // skipped cycles' accounting applied in bulk. The system horizon is
    // the min over every device's SMs; in-flight link traversals are
    // already folded into the requesting SM's reply event, so they need
    // no separate term. Disabled while a trace sink is attached:
    // per-cycle IssueStall events cannot be synthesized for cycles that
    // never run.
    const bool skip = cfg_.idleSkip && traceSink_ == nullptr;

    // Metrics sampling (docs/METRICS.md): samples are pulled at the end
    // of the cycle iteration — after the commit barrier, where per-SM
    // state is settled in every execution mode — whenever the clock has
    // reached the sampler's next grid cycle. kNeverCycle keeps the
    // detached fast path to a single always-false compare per cycle.
    metrics::SampleSources msrc{&cores, {}, &shards, {}, syncProf_};
    for (auto &dev : devices) {
        msrc.launchStats.push_back(&dev->launch.stats);
        msrc.memsys.push_back(&dev->memsys);
    }
    Cycle metricsNext = kNeverCycle;
    if (metrics_) {
        metrics_->beginLaunch(prog.name, total_cores, num_devices,
                              syncProf_ != nullptr);
        metricsNext = metrics_->nextSampleCycle();
    }
    // Clamp jump targets so a deadlocked kernel (horizon at infinity,
    // or beyond the watchdog) still trips the same fatal at the same
    // cycle as the cycle-by-cycle loop.
    const Cycle wd_stop = cfg_.watchdogCycles >= kNeverCycle - 1
                              ? kNeverCycle - 1
                              : cfg_.watchdogCycles + 1;

    Cycle now = 0;
    Cycle last_issue = 0;

    // Parallel-phase scaffolding, allocated once per launch. The slices
    // capture the loop state by reference; per-SM results and exceptions
    // land in position-indexed arrays so the coordinator can reduce them
    // in device/SM order.
    std::vector<std::uint8_t> issued_flags;
    std::vector<std::exception_ptr> errors;
    Cycle phase_now = 0;
    Cycle ff_from = 0;
    Cycle ff_to = 0;
    WorkerPool::Task compute_slice;
    WorkerPool::Task forward_slice;
    if (phased) {
        issued_flags.resize(cores.size(), 0);
        errors.resize(cores.size());
        compute_slice = [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                try {
                    issued_flags[i] = active[i]->compute(phase_now) ? 1 : 0;
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };
        forward_slice = [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                try {
                    active[i]->fastForward(ff_from, ff_to);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };
    }
    // Rethrows the lowest-position pending exception, after committing
    // the queues of every SM up to and including the faulting one —
    // exactly the state the sequential loop leaves behind when SM i
    // throws mid-cycle (earlier SMs finished, later SMs never ran).
    auto rethrow_first_error = [&](bool commit_prefix, Cycle when) {
        for (std::size_t i = 0; i < active.size(); ++i) {
            if (!errors[i])
                continue;
            if (commit_prefix) {
                for (std::size_t k = 0; k <= i; ++k)
                    active[k]->commit(when);
            }
            std::rethrow_exception(errors[i]);
        }
    };

    // One device's stats at clock @p at: its launch aggregate plus its
    // own SM shards, summed in SM-id order, plus its memory system.
    auto device_stats = [&](unsigned d, Cycle at) {
        KernelStats s = devices[d]->launch.stats;
        if (phased) {
            for (unsigned c = 0; c < num_cores; ++c)
                s += *shards[static_cast<std::size_t>(d) * num_cores + c];
        }
        s.cycles = at;
        s.mem = devices[d]->memsys.stats();
        return s;
    };
    // Folds per-device stats into the system aggregate, in device-id
    // order. Single-device launches return the lone shard unchanged —
    // byte-identical to the pre-split merge. Multi-device launches
    // rebuild the per-SM tables by concatenation (operator+= folds them
    // positionally, which would overlay device 1's SM rows onto device
    // 0's; the system-wide tables use global, device-major SM rows) and
    // keep the shards themselves in KernelStats::perDevice.
    auto merge_devices = [&](std::vector<KernelStats> per_dev, Cycle at) {
        KernelStats total = per_dev[0];
        for (std::size_t d = 1; d < per_dev.size(); ++d)
            total += per_dev[d];
        total.cycles = at;
        if (per_dev.size() > 1) {
            total.stallCounts.clear();
            total.unitIssues.clear();
            total.peakResidentPerSm.clear();
            for (const KernelStats &s : per_dev) {
                total.stallCounts.insert(total.stallCounts.end(),
                                         s.stallCounts.begin(),
                                         s.stallCounts.end());
                total.unitIssues.insert(total.unitIssues.end(),
                                        s.unitIssues.begin(),
                                        s.unitIssues.end());
                total.peakResidentPerSm.insert(
                    total.peakResidentPerSm.end(),
                    s.peakResidentPerSm.begin(),
                    s.peakResidentPerSm.end());
            }
            total.perDevice = std::move(per_dev);
        }
        return total;
    };

    // A launch that dies (watchdog, or a SimError out of a core) stashes
    // its partial statistics first, so callers like the litmus harness
    // can classify the abort — per device and system-wide. At the
    // watchdog trip the throw happens at the top of the loop on fully
    // settled end-of-cycle state, so the stash is byte-identical across
    // --sm-threads and idle-skip.
    auto stash_abort = [&](Cycle at) {
        abort_.valid = true;
        std::vector<KernelStats> per_dev;
        per_dev.reserve(num_devices);
        for (unsigned d = 0; d < num_devices; ++d)
            per_dev.push_back(device_stats(d, at));
        if (num_devices > 1) {
            abort_.perDevice.clear();
            for (unsigned d = 0; d < num_devices; ++d) {
                abort_.perDevice.push_back(
                    {d, per_dev[d], devices[d]->lastIssue});
            }
        }
        abort_.stats = merge_devices(std::move(per_dev), at);
        abort_.atCycle = at;
        abort_.lastIssueCycle = last_issue;
    };

    try {
    do {
        ++now;
        if (now > cfg_.watchdogCycles)
            simFatal("kernel '", prog.name, "' exceeded the ",
                     cfg_.watchdogCycles, "-cycle watchdog (deadlock?)");
        for (auto &dev : devices) {
            dev->launch.stats.delayLimitCycleSum += dev->idleDelaySum;
            dev->launch.stats.smCycles += dev->idleCores;
        }
        bool issued = false;
        if (!phased || active.size() <= 1) {
            // Sequential loop (also the tail of a phased run once one
            // SM remains — commit queues still drain inside cycle()).
            for (SmCore *core : active) {
                if (core->cycle(now)) {
                    issued = true;
                    devices[core->device()]->lastIssue = now;
                }
            }
        } else {
            for (SmCore *core : active)
                core->dispatch(now);
            phase_now = now;
            pool_->run(active.size(), compute_slice);
            rethrow_first_error(/*commit_prefix=*/true, now);
            for (std::size_t i = 0; i < active.size(); ++i) {
                if (issued_flags[i] != 0) {
                    issued = true;
                    devices[active[i]->device()]->lastIssue = now;
                }
            }
            for (SmCore *core : active)
                core->commit(now);
        }
        if (issued)
            last_issue = now;
        for (std::size_t i = 0; i < active.size();) {
            if (active[i]->busy()) {
                ++i;
                continue;
            }
            Device &dev = *devices[active[i]->device()];
            dev.idleDelaySum += active[i]->backoff().delayLimit();
            ++dev.idleCores;
            active.erase(active.begin() + i);
        }
        if (skip && !issued && !active.empty()) {
            // nextWorkCycle() never returns <= now, so now+1 is the
            // horizon's floor: once any SM reports it, the gap is empty
            // and the remaining scans can't change that.
            Cycle horizon = kNeverCycle;
            for (SmCore *core : active) {
                horizon = std::min(horizon, core->nextWorkCycle(now));
                if (horizon <= now + 1)
                    break;
            }
            Cycle target = std::min(horizon, wd_stop);
            // Never jump past a sample cycle: clamping to metricsNext+1
            // makes the skip land exactly on the grid cycle (an
            // over-conservative horizon is always safe — docs/PERF.md),
            // so the sampled state is identical with and without skip.
            if (metricsNext != kNeverCycle)
                target = std::min(target, metricsNext + 1);
            if (target > now + 1) {
                // Skip cycles now+1 .. target-1; cycle target runs live.
                const Cycle to = target - 1;
                const std::uint64_t delta = to - now;
                if (phased && active.size() > 1) {
                    // fastForward only touches SM-private accounting, so
                    // the gap replay parallelizes over the same pool.
                    ff_from = now + 1;
                    ff_to = to;
                    pool_->run(active.size(), forward_slice);
                    rethrow_first_error(/*commit_prefix=*/false, now);
                } else {
                    for (SmCore *core : active)
                        core->fastForward(now + 1, to);
                }
                for (auto &dev : devices) {
                    dev->launch.stats.delayLimitCycleSum +=
                        dev->idleDelaySum * delta;
                    dev->launch.stats.smCycles += dev->idleCores * delta;
                }
                now = to;
            }
        }
        if (now >= metricsNext) {
            metrics_->sample(now, msrc);
            metricsNext = metrics_->nextSampleCycle();
        }
    } while (!active.empty());
    } catch (...) {
        stash_abort(now > 0 ? now - 1 : 0);
        throw;
    }

    // The final cycle of the launch is recorded even when it falls off
    // the sample grid, so the series' last row matches the returned
    // KernelStats. Must run before the shard merge below: the sampler
    // folds the device aggregates + shards itself, exactly like the
    // merge.
    if (metrics_)
        metrics_->endLaunch(now, msrc);

    // Per-device finalization: deterministic shard merge (every per-SM
    // counter sums in SM-id order; shards carry no launch-wide fields,
    // so the aggregate matches the inline-mode totals exactly), then
    // energy and DDOS accuracy from the device's own cores.
    std::vector<KernelStats> per_dev;
    per_dev.reserve(num_devices);
    for (unsigned d = 0; d < num_devices; ++d) {
        per_dev.push_back(device_stats(d, now));
        KernelStats &s = per_dev.back();
        s.energy.l2Accesses = s.mem.l2Accesses;
        s.energy.dramAccesses = s.mem.dramAccesses;
        s.energy.icntPackets = s.mem.icntPackets;
        s.energy.atomicOps = s.mem.atomics;
        s.energyNj = energy_.dynamicEnergyNj(s.energy);
        s.staticEnergyNj = energy_.staticEnergyNj(s.smCycles);
        DdosAccuracy acc;
        for (unsigned c = 0; c < num_cores; ++c) {
            acc.merge(cores[static_cast<std::size_t>(d) * num_cores + c]
                          ->ddos()
                          .accuracy());
        }
        s.ddos = acc.report(prog.sync.spinBranches);
    }

    KernelStats stats = merge_devices(std::move(per_dev), now);
    if (num_devices > 1) {
        // System-wide energy and DDOS accuracy are recomputed from the
        // merged events rather than summed: operator+= neither sums
        // staticEnergyNj nor merges the accuracy report, and the DDOS
        // report's rates must score the system-wide confusion counts.
        stats.energyNj = energy_.dynamicEnergyNj(stats.energy);
        stats.staticEnergyNj = energy_.staticEnergyNj(stats.smCycles);
        DdosAccuracy all;
        for (auto &core : cores)
            all.merge(core->ddos().accuracy());
        stats.ddos = all.report(prog.sync.spinBranches);
    }
    return stats;
}

KernelStats
GpuSystem::launchFunctional(const Program &prog, Dim3 grid, Dim3 block,
                            const std::vector<Word> &params)
{
    // Functional mode forces null observability sinks: there are no
    // cycles to trace or sample, so an attached trace sink or metrics
    // sampler is simply not consulted (docs/PERF.md).
    const unsigned num_devices = std::max(cfg_.numDevices, 1u);
    if (num_devices == 1) {
        LaunchState launch;
        launch.prog = &prog;
        launch.grid = grid;
        launch.block = block;
        launch.params = params;
        launch.mem = &mem_;
        launch.spinDetect = cfg_.spinDetect;
        launch.stats.kernel = prog.name;
        FunctionalExecutor fx(cfg_, launch);
        try {
            fx.run();
        } catch (...) {
            // Functional aborts (instruction watchdog, zero-progress
            // check) stash the partial stats like the cycle loop; there
            // is no cycle clock, so the issue-recency signal stays zero.
            abort_.valid = true;
            abort_.stats = launch.stats;
            abort_.atCycle = 0;
            abort_.lastIssueCycle = 0;
            throw;
        }
        return launch.stats;
    }

    // Multi-device functional execution: one executor per device over
    // the device's CTA chunk, interleaved round-robin in fixed slices
    // so cross-device synchronization (e.g. a system barrier) makes
    // forward progress deterministically. Spinning warps execute
    // instructions, so a device stuck on a peer is bounded by its own
    // executor's instruction watchdog; CTA barriers are device-local,
    // so the per-executor zero-progress check keeps its meaning.
    const unsigned grid_ctas = grid.count();
    const unsigned chunk = (grid_ctas + num_devices - 1) / num_devices;
    LockTracker system_locks;
    std::vector<std::unique_ptr<LaunchState>> launches;
    std::vector<std::unique_ptr<FunctionalExecutor>> fxs;
    for (unsigned d = 0; d < num_devices; ++d) {
        launches.push_back(std::make_unique<LaunchState>());
        LaunchState &dl = *launches.back();
        dl.prog = &prog;
        dl.grid = grid;
        dl.block = block;
        dl.params = params;
        dl.mem = &mem_;
        dl.spinDetect = cfg_.spinDetect;
        dl.stats.kernel = prog.name;
        dl.deviceId = d;
        dl.tracker = &system_locks;
        dl.warpKeyBase = static_cast<std::uint64_t>(d) << 48;
        dl.nextCta = std::min(d * chunk, grid_ctas);
        dl.ctaEnd = std::min((d + 1) * chunk, grid_ctas);
        fxs.push_back(std::make_unique<FunctionalExecutor>(cfg_, dl));
    }

    auto stash_abort = [&] {
        abort_.valid = true;
        abort_.perDevice.clear();
        KernelStats total = launches[0]->stats;
        abort_.perDevice.push_back({0, launches[0]->stats, 0});
        for (unsigned d = 1; d < num_devices; ++d) {
            total += launches[d]->stats;
            abort_.perDevice.push_back({d, launches[d]->stats, 0});
        }
        abort_.stats = std::move(total);
        abort_.atCycle = 0;
        abort_.lastIssueCycle = 0;
    };

    // Round-robin slices, device-id order: large enough to amortize the
    // rotation walk, small enough that a device spinning on a peer's
    // store observes it within one pass.
    constexpr std::uint64_t kDeviceSlice = 1024;
    try {
        bool all_done = false;
        while (!all_done) {
            all_done = true;
            for (auto &fx : fxs) {
                if (fx->finished())
                    continue;
                if (!fx->runFor(kDeviceSlice))
                    all_done = false;
            }
        }
    } catch (...) {
        stash_abort();
        throw;
    }

    std::vector<KernelStats> per_dev;
    per_dev.reserve(num_devices);
    for (auto &dl : launches)
        per_dev.push_back(dl->stats);
    KernelStats stats = per_dev[0];
    for (unsigned d = 1; d < num_devices; ++d)
        stats += per_dev[d];
    stats.cycles = 0;
    stats.perDevice = std::move(per_dev);
    return stats;
}

KernelStats
GpuSystem::launchSampled(const Program &prog, Dim3 grid, Dim3 block,
                         const std::vector<Word> &params)
{
    if (cfg_.numDevices > 1) {
        fatal("sampled execution mode supports a single device "
              "(numDevices = ", cfg_.numDevices,
              "); use cycle or functional mode for multi-device runs");
    }
    // SMARTS-style sampling: a functional master fast-forwards the
    // kernel (mutating this Gpu's memory — final contents match
    // functional mode exactly); every samplePeriod warp instructions a
    // detailed cycle-accurate window runs on *copies* of the
    // architectural state, and the per-window post-warm-up IPCs form
    // the timing estimate.
    LaunchState launch;
    launch.prog = &prog;
    launch.grid = grid;
    launch.block = block;
    launch.params = params;
    launch.mem = &mem_;
    launch.spinDetect = cfg_.spinDetect;
    launch.stats.kernel = prog.name;

    // Pre-launch memory, kept for the short-kernel fallback below.
    MemorySpace pristine = mem_;

    FunctionalExecutor fx(cfg_, launch);
    const std::uint64_t period =
        std::max<std::uint64_t>(cfg_.samplePeriod, 1);
    const Cycle window = std::max<Cycle>(cfg_.sampleWindow, 4);
    const Cycle warmup = window / 4;

    std::vector<double> ipcs;
    // The first leg is half a period so windows sit mid-period instead
    // of measuring the launch transient at instruction 0.
    bool done = fx.runFor(std::max<std::uint64_t>(period / 2, 1));
    while (!done) {
        GpuSnapshot snap = fx.snapshot();
        runDetailedWindow(prog, grid, block, params, snap, mem_, warmup,
                          window, ipcs);
        done = fx.runFor(period);
    }

    KernelStats stats = launch.stats;
    if (ipcs.empty()) {
        // The kernel finished inside the first fast-forward leg, so it
        // is at most ~half a sample period long: measure it exactly
        // with one full detailed run from the pre-launch state.
        runDetailedWindow(prog, grid, block, params, GpuSnapshot{},
                          pristine, 0, kNeverCycle - 1, ipcs);
    }

    double sum = 0.0;
    for (double v : ipcs)
        sum += v;
    const double n = static_cast<double>(ipcs.size());
    const double mean = ipcs.empty() ? 0.0 : sum / n;
    double sq = 0.0;
    for (double v : ipcs)
        sq += (v - mean) * (v - mean);
    const double sd =
        ipcs.size() >= 2 ? std::sqrt(sq / (n - 1.0)) : 0.0;
    stats.ipcEst = mean;
    stats.ipcCi95 = ipcs.size() >= 2 ? 1.96 * sd / std::sqrt(n) : 0.0;
    stats.sampledWindows = ipcs.size();
    // Projected run length: instructions over estimated IPC. An
    // estimate, clearly marked as such by sampledWindows != 0.
    stats.cycles =
        mean > 0.0 ? static_cast<Cycle>(std::llround(
                         static_cast<double>(stats.warpInstructions) /
                         mean))
                   : 0;
    return stats;
}

void
GpuSystem::runDetailedWindow(const Program &prog, Dim3 grid, Dim3 block,
                             const std::vector<Word> &params,
                             const GpuSnapshot &snap,
                             const MemorySpace &base_mem, Cycle warmup,
                             Cycle max_cycles, std::vector<double> &ipcs)
{
    MemorySpace wmem = base_mem;
    MemorySystem memsys(cfg_);
    LaunchState wl;
    wl.prog = &prog;
    wl.grid = grid;
    wl.block = block;
    wl.params = params;
    wl.mem = &wmem;
    wl.memsys = &memsys;
    wl.spinDetect = cfg_.spinDetect;
    wl.stats.kernel = prog.name;
    wl.nextCta = snap.nextCta;
    wl.warpAgeCounter = snap.warpAgeCounter;

    std::vector<std::unique_ptr<SmCore>> cores;
    cores.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        cores.push_back(std::make_unique<SmCore>(c, cfg_, wl, nullptr));
        if (c < snap.sms.size() && !snap.sms[c].ctas.empty())
            cores.back()->seed(snap.sms[c]);
    }
    std::vector<SmCore *> active;
    active.reserve(cores.size());
    for (auto &core : cores)
        active.push_back(core.get());

    // Sampled mode samples metrics only inside detailed windows: each
    // window is one sampler launch segment on the global cycle grid.
    const std::vector<std::unique_ptr<KernelStats>> no_shards;
    metrics::SampleSources msrc{&cores, {&wl.stats}, &no_shards,
                                {&memsys}};
    Cycle metricsNext = kNeverCycle;
    if (metrics_) {
        metrics_->beginLaunch(prog.name, cfg_.numCores);
        metricsNext = metrics_->nextSampleCycle();
    }

    const bool skip = cfg_.idleSkip;
    const Cycle wd_stop = cfg_.watchdogCycles >= kNeverCycle - 1
                              ? kNeverCycle - 1
                              : cfg_.watchdogCycles + 1;
    Cycle now = 0;
    std::uint64_t warm_instr = 0;
    bool warm_captured = warmup == 0;
    while (!active.empty() && now < max_cycles) {
        ++now;
        if (now > cfg_.watchdogCycles)
            simFatal("kernel '", prog.name, "' exceeded the ",
                     cfg_.watchdogCycles, "-cycle watchdog (deadlock?)");
        bool issued = false;
        for (SmCore *core : active)
            issued |= core->cycle(now);
        for (std::size_t i = 0; i < active.size();) {
            if (active[i]->busy())
                ++i;
            else
                active.erase(active.begin() + i);
        }
        if (skip && !issued && !active.empty()) {
            Cycle horizon = kNeverCycle;
            for (SmCore *core : active) {
                horizon = std::min(horizon, core->nextWorkCycle(now));
                if (horizon <= now + 1)
                    break;
            }
            Cycle target = std::min(horizon, wd_stop);
            if (max_cycles < kNeverCycle - 1)
                target = std::min(target, max_cycles + 1);
            if (!warm_captured)
                target = std::min(target, warmup + 1);
            if (metricsNext != kNeverCycle)
                target = std::min(target, metricsNext + 1);
            if (target > now + 1) {
                const Cycle to = target - 1;
                for (SmCore *core : active)
                    core->fastForward(now + 1, to);
                now = to;
            }
        }
        if (!warm_captured && now >= warmup) {
            // No instructions issue inside a skipped gap, so capturing
            // at the first cycle >= warmup is exact even when idle-skip
            // jumped over the boundary.
            warm_instr = wl.stats.warpInstructions;
            warm_captured = true;
        }
        if (now >= metricsNext) {
            metrics_->sample(now, msrc);
            metricsNext = metrics_->nextSampleCycle();
        }
    }
    if (metrics_)
        metrics_->endLaunch(now, msrc);

    if (now > warmup) {
        ipcs.push_back(
            static_cast<double>(wl.stats.warpInstructions - warm_instr) /
            static_cast<double>(now - warmup));
    }
}

}  // namespace bowsim
