#include "src/sim/gpu.hpp"

#include "src/common/log.hpp"

namespace bowsim {

Gpu::Gpu(GpuConfig cfg) : cfg_(std::move(cfg)) {}

Addr
Gpu::malloc(std::uint64_t bytes)
{
    return mem_.allocate(bytes);
}

void
Gpu::memcpyToDevice(Addr dst, const void *src, std::uint64_t bytes)
{
    mem_.writeBytes(dst, src, bytes);
}

void
Gpu::memcpyFromDevice(void *dst, Addr src, std::uint64_t bytes)
{
    mem_.readBytes(src, dst, bytes);
}

KernelStats
Gpu::launch(const Program &prog, Dim3 grid, Dim3 block,
            const std::vector<Word> &params)
{
    if (prog.code.empty())
        fatal("launch of an empty kernel");
    if (params.size() < prog.numParams)
        fatal("kernel '", prog.name, "' expects ", prog.numParams,
              " params, got ", params.size());
    if (block.count() == 0 || grid.count() == 0)
        fatal("launch with an empty grid or block");

    MemorySystem memsys(cfg_);
    LaunchState launch;
    launch.prog = &prog;
    launch.grid = grid;
    launch.block = block;
    launch.params = params;
    launch.mem = &mem_;
    launch.memsys = &memsys;
    launch.spinDetect = cfg_.spinDetect;
    launch.stats.kernel = prog.name;

    std::vector<std::unique_ptr<SmCore>> cores;
    cores.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        cores.push_back(std::make_unique<SmCore>(c, cfg_, launch));

    Cycle now = 0;
    bool any_busy = true;
    while (any_busy) {
        ++now;
        if (now > cfg_.watchdogCycles)
            fatal("kernel '", prog.name, "' exceeded the ",
                  cfg_.watchdogCycles, "-cycle watchdog (deadlock?)");
        any_busy = false;
        for (auto &core : cores) {
            core->cycle(now);
            any_busy = any_busy || core->busy();
        }
    }

    KernelStats &stats = launch.stats;
    stats.cycles = now;
    stats.mem = memsys.stats();
    stats.energy.l2Accesses = stats.mem.l2Accesses;
    stats.energy.dramAccesses = stats.mem.dramAccesses;
    stats.energy.icntPackets = stats.mem.icntPackets;
    stats.energy.atomicOps = stats.mem.atomics;
    stats.energyNj = energy_.dynamicEnergyNj(stats.energy);

    // DDOS accuracy: merge the per-SM collectors and score against the
    // kernel's ground-truth annotations.
    DdosAccuracy merged;
    for (auto &core : cores)
        merged.merge(core->ddos().accuracy());
    stats.ddos = merged.report(prog.sync.spinBranches);

    return stats;
}

}  // namespace bowsim
