#ifndef BOWSIM_SIM_GPU_HPP
#define BOWSIM_SIM_GPU_HPP

#include <memory>
#include <vector>

#include "src/common/config.hpp"
#include "src/energy/energy_model.hpp"
#include "src/isa/program.hpp"
#include "src/mem/memory_space.hpp"
#include "src/sim/sm_core.hpp"
#include "src/sim/worker_pool.hpp"
#include "src/stats/stats.hpp"

/**
 * @file
 * Public simulator facade. Typical use:
 *
 *     GpuConfig cfg = makeGtx480Config();
 *     cfg.bows.enabled = true;
 *     Gpu gpu(cfg);
 *     Addr buf = gpu.malloc(bytes);
 *     gpu.memcpyToDevice(buf, host.data(), bytes);
 *     Program prog = assemble(kernel_source);
 *     KernelStats stats = gpu.launch(prog, {grid}, {block}, {buf, n});
 *     gpu.memcpyFromDevice(host.data(), buf, bytes);
 *
 * The facade models a *system*: GpuConfig::numDevices devices, each
 * with its own SMs, L2 and DRAM, sharing one functional memory space
 * and one inter-device link (docs/PERF.md, "Device sharding"). The
 * historical name `Gpu` is an alias for GpuSystem; with the default
 * numDevices = 1 the system degenerates to a single device and every
 * artifact is byte-identical to the pre-split simulator.
 */

namespace bowsim {

namespace metrics {
class MetricsSampler;
}

struct GpuSnapshot;

/**
 * Partial statistics captured when a launch dies on a SimError (the
 * cycle watchdog, or functional mode's progress checks). The litmus
 * harness (src/harness/litmus.*) classifies the abort from these:
 * whether warps were still issuing, and how spin-dominated the
 * instruction stream was. Deterministic across --sm-threads and
 * idle-skip: the watchdog fires at the top of the cycle loop on fully
 * settled state, and the stats are exact by the phase-split and
 * fast-forward contracts (docs/PERF.md).
 */
struct LaunchAbort {
    bool valid = false;
    /** System-wide stats at the abort point (per-SM shards merged in
     *  device/SM-id order, memory-system counters included). */
    KernelStats stats;
    /** Cycle of the last settled simulated cycle (0 in functional). */
    Cycle atCycle = 0;
    /** Last cycle on which any SM of any device issued an instruction. */
    Cycle lastIssueCycle = 0;

    /** One device's share of the abort record. */
    struct DeviceAbort {
        unsigned device = 0;
        /** This device's stats at the abort point (its SMs, its L2). */
        KernelStats stats;
        /** Last cycle on which one of *this device's* SMs issued — a
         *  livelock on device 1 is attributed to device 1, not smeared
         *  over the system aggregate. */
        Cycle lastIssueCycle = 0;
    };
    /** Per-device abort shards in device-id order; populated only on
     *  multi-device launches (numDevices > 1). */
    std::vector<DeviceAbort> perDevice;
};

class GpuSystem {
  public:
    explicit GpuSystem(GpuConfig cfg);

    /** Allocates device memory; contents are zero-initialized. */
    Addr malloc(std::uint64_t bytes);

    void memcpyToDevice(Addr dst, const void *src, std::uint64_t bytes);
    void memcpyFromDevice(void *dst, Addr src, std::uint64_t bytes);

    /** Direct functional-memory access (tests and host-side setup). */
    MemorySpace &mem() { return mem_; }
    const MemorySpace &mem() const { return mem_; }

    /**
     * Runs @p prog to completion and returns its statistics. Timing state
     * (caches, queues) starts cold at each launch; functional memory
     * persists across launches.
     *
     * GpuConfig::execMode selects how (docs/PERF.md, "Execution
     * modes"): full cycle-accurate simulation (the default), fast
     * functional interpretation (cycles = 0, timing skipped), or
     * SMARTS-style sampling (functional fast-forward alternating with
     * detailed windows; KernelStats::ipcEst / ipcCi95 /
     * sampledWindows carry the timing estimate). Functional and
     * sampled modes force the trace sink off; a metrics sampler is
     * consulted only inside sampled mode's detailed windows.
     */
    KernelStats launch(const Program &prog, Dim3 grid, Dim3 block,
                       const std::vector<Word> &params);

    /**
     * Attaches @p sink to every subsequent launch (nullptr detaches).
     * Tracing is purely observational: traced and untraced runs of the
     * same configuration produce bit-identical results. Attaching a sink
     * also turns on the per-warp stall breakdown in KernelStats.
     */
    void setTraceSink(trace::TraceSink *sink) { traceSink_ = sink; }

    /**
     * Attaches a time-series metrics sampler to every subsequent launch
     * (nullptr detaches). Observational like tracing — sampled and
     * unsampled runs produce bit-identical results — but, unlike
     * tracing, compatible with idle-skip and the parallel compute
     * phase: samples are pulled at the commit barrier, where per-SM
     * state is settled regardless of --sm-threads, and skip targets are
     * clamped so the clock always lands exactly on sample cycles (see
     * docs/METRICS.md for the determinism contract).
     */
    void setMetrics(metrics::MetricsSampler *sampler)
    {
        metrics_ = sampler;
    }

    /**
     * Attaches a sync-contention profiler to every subsequent launch
     * (nullptr detaches; see docs/SYNC.md). Observational like tracing
     * and, like the metrics sampler, compatible with idle-skip and the
     * parallel compute phase: the functional hooks fire on the committed
     * atomic/store path (whose order the phase-split contract pins), the
     * timed hooks only accumulate commutative per-address sums, so the
     * registry contents — and a --sync-report dump — are byte-identical
     * across --sm-threads, --jobs, idle-skip and device count. Cycle
     * mode only: functional and sampled launches leave the registry
     * untouched.
     */
    void setSyncProf(syncprof::SyncProfileRegistry *registry)
    {
        syncProf_ = registry;
    }

    /** The attached sync profiler registry (nullptr when detached). */
    syncprof::SyncProfileRegistry *syncProf() const { return syncProf_; }

    const GpuConfig &config() const { return cfg_; }

    /**
     * The abort record of the most recent launch that threw a SimError
     * (valid == false after a successful launch). The stats snapshot is
     * what KernelStats would have reported had the launch ended at the
     * abort cycle.
     */
    const LaunchAbort &lastAbort() const { return abort_; }

  private:
    KernelStats launchCycle(const Program &prog, Dim3 grid, Dim3 block,
                            const std::vector<Word> &params);
    KernelStats launchFunctional(const Program &prog, Dim3 grid,
                                 Dim3 block,
                                 const std::vector<Word> &params);
    KernelStats launchSampled(const Program &prog, Dim3 grid, Dim3 block,
                              const std::vector<Word> &params);
    /**
     * One detailed cycle-accurate window for sampled mode: seeds cores
     * from @p snap against a copy of @p base_mem, simulates at most
     * @p max_cycles cycles, and appends the measured post-warm-up IPC
     * to @p ipcs (nothing is appended when the window ends inside the
     * warm-up prefix).
     */
    void runDetailedWindow(const Program &prog, Dim3 grid, Dim3 block,
                           const std::vector<Word> &params,
                           const GpuSnapshot &snap,
                           const MemorySpace &base_mem, Cycle warmup,
                           Cycle max_cycles, std::vector<double> &ipcs);

    GpuConfig cfg_;
    MemorySpace mem_;
    EnergyModel energy_;
    trace::TraceSink *traceSink_ = nullptr;
    metrics::MetricsSampler *metrics_ = nullptr;
    syncprof::SyncProfileRegistry *syncProf_ = nullptr;
    /** Compute-phase worker pool (cfg_.smThreads > 1); persistent so
     *  repeated launches reuse the same threads. */
    std::unique_ptr<WorkerPool> pool_;
    /** Abort record of the most recent failed launch (lastAbort()). */
    LaunchAbort abort_;
};

/** Historical name; every existing call site keeps compiling. */
using Gpu = GpuSystem;

}  // namespace bowsim

#endif  // BOWSIM_SIM_GPU_HPP
