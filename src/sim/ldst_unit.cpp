#include "src/sim/ldst_unit.hpp"

#include <algorithm>

#include "src/common/log.hpp"
#include "src/mem/coalescer.hpp"

namespace bowsim {

LdstUnit::LdstUnit(const GpuConfig &cfg, unsigned sm_id,
                   MemorySystem &memsys, KernelStats &stats)
    : cfg_(cfg), smId_(sm_id), memsys_(memsys), stats_(stats),
      l1_(cfg.l1d)
{
}

std::uint32_t
LdstUnit::allocOp(Warp *warp, const Instruction &inst, unsigned pending)
{
    std::uint32_t id;
    if (!freeOps_.empty()) {
        id = freeOps_.back();
        freeOps_.pop_back();
    } else {
        id = static_cast<std::uint32_t>(ops_.size());
        ops_.emplace_back();
    }
    ops_[id] = Op{warp, &inst, pending, true};
    ++inflightOps_;
    warp->addLdstOutstanding(1);
    return id;
}

void
LdstUnit::pushEvent(Cycle when, Event::Kind kind, std::uint32_t op,
                    Addr line)
{
    events_.push(Event{when, ++eventSeq_, kind, op, line});
}

void
LdstUnit::pushEventSeq(Cycle when, std::uint64_t seq, Event::Kind kind,
                       std::uint32_t op, Addr line)
{
    events_.push(Event{when, seq, kind, op, line});
}

void
LdstUnit::commitRequest(const MemPortRequest &r, Cycle now)
{
    const Cycle reply = memsys_.request(r.pkt, now);
    switch (r.completion) {
      case MemPortRequest::Completion::None:
        break;  // write: the OpPartDone event was pushed at decision time
      case MemPortRequest::Completion::OpDone:
        pushEventSeq(reply, r.seq, Event::Kind::OpPartDone,
                     static_cast<std::uint32_t>(r.pkt.token), 0);
        break;
      case MemPortRequest::Completion::Fill:
        pushEventSeq(reply, r.seq, Event::Kind::Fill, 0, r.line);
        break;
    }
}

void
LdstUnit::submit(Warp *warp, const Instruction &inst,
                 const std::array<Addr, kWarpSize> &addrs, LaneMask mask,
                 bool sync, Cycle now)
{
    if (!canAccept())
        panic("LdstUnit::submit past capacity");
    if (mask == 0)
        panic("LdstUnit::submit with empty mask");

    if (inst.space == MemSpace::Shared) {
        // Shared memory: fixed latency, no L1/NoC traffic. Bank conflicts
        // are not modeled (none of the paper's kernels stress them).
        std::uint32_t op = allocOp(warp, inst, 1);
        ++stats_.sharedAccesses;
        ++stats_.energy.sharedAccesses;
        pushEvent(now + cfg_.sharedMemLatency, Event::Kind::OpPartDone, op,
                  0);
        return;
    }

    std::vector<Addr> targets;
    if (inst.isAtomic()) {
        // Atomics serialize per distinct address at the L2 banks.
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!((mask >> lane) & 1))
                continue;
            if (std::find(targets.begin(), targets.end(), addrs[lane]) ==
                targets.end()) {
                targets.push_back(addrs[lane]);
            }
        }
    } else {
        targets = coalesce(addrs, mask);
    }

    MemPacket::Type type = inst.isAtomic() ? MemPacket::Type::Atomic
                           : inst.op == Opcode::St ? MemPacket::Type::Write
                                                   : MemPacket::Type::Read;
    std::uint32_t op =
        allocOp(warp, inst, static_cast<unsigned>(targets.size()));
    for (Addr a : targets)
        l1Queue_.push_back(
            Txn{a, op, type, inst.scope, sync, inst.isVolatile});
}

void
LdstUnit::completePart(std::uint32_t op_id, Cycle now,
                       std::vector<MemCompletion> &completed)
{
    (void)now;
    Op &op = ops_[op_id];
    if (!op.live || op.pending == 0)
        panic("LdstUnit: completion on dead op");
    if (--op.pending == 0) {
        completed.push_back(MemCompletion{op.warp, op.inst});
        op.warp->addLdstOutstanding(-1);
        op.live = false;
        freeOps_.push_back(op_id);
        --inflightOps_;
    }
}

void
LdstUnit::cycle(Cycle now, std::vector<MemCompletion> &completed)
{
    // 1. Drain due events.
    while (!events_.empty() && events_.top().when <= now) {
        Event ev = events_.top();
        events_.pop();
        if (ev.kind == Event::Kind::OpPartDone) {
            completePart(ev.op, now, completed);
        } else {
            // Fill: install the line and wake every waiting load.
            bool dirty = false;
            l1_.fill(ev.line, false, &dirty);
            auto it = mshr_.find(ev.line);
            if (it == mshr_.end())
                panic("LdstUnit: fill without MSHR entry");
            for (std::uint32_t waiting : it->second)
                completePart(waiting, now, completed);
            mshr_.erase(it);
        }
    }

    // 2. One transaction per cycle through the L1 port.
    if (l1Queue_.empty())
        return;
    Txn txn = l1Queue_.front();

    ++stats_.l1Accesses;
    ++stats_.energy.l1Accesses;
    if (txn.sync)
        ++stats_.syncMemTransactions;

    switch (txn.type) {
      case MemPacket::Type::Read: {
        Addr line = lineBase(txn.addr);
        if (txn.vol) {
            // Volatile polling loads read through to the L2 every time.
            const std::uint64_t seq = ++eventSeq_;
            const MemPacket pkt{line, MemPacket::Type::Read, smId_,
                                MemScope::Device, txn.op};
            if (queue_) {
                queue_->pushRequest(MemPortRequest{
                    pkt, seq, MemPortRequest::Completion::OpDone, 0});
            } else {
                pushEventSeq(memsys_.request(pkt, now), seq,
                             Event::Kind::OpPartDone, txn.op, 0);
            }
            l1Queue_.pop_front();
            break;
        }
        if (l1_.access(line, false)) {
            ++stats_.l1Hits;
            pushEvent(now + cfg_.l1HitLatency, Event::Kind::OpPartDone,
                      txn.op, 0);
            l1Queue_.pop_front();
            break;
        }
        ++stats_.l1Misses;
        auto it = mshr_.find(line);
        if (it != mshr_.end()) {
            // Merge into the outstanding fill.
            it->second.push_back(txn.op);
            if (tracer_.enabled()) {
                tracer_.emit(now, smId_,
                             static_cast<std::int32_t>(
                                 ops_[txn.op].warp->id()),
                             trace::EventKind::MshrMerge, line);
            }
            l1Queue_.pop_front();
            break;
        }
        if (mshr_.size() >= cfg_.l1d.mshrs) {
            // Structural stall: retry next cycle (the access above still
            // consumed the port, as on hardware replays).
            --stats_.l1Accesses;
            --stats_.energy.l1Accesses;
            if (txn.sync)
                --stats_.syncMemTransactions;
            break;
        }
        if (tracer_.enabled()) {
            tracer_.emit(now, smId_,
                         static_cast<std::int32_t>(ops_[txn.op].warp->id()),
                         trace::EventKind::L1Miss, line);
        }
        const std::uint64_t seq = ++eventSeq_;
        const MemPacket pkt{line, MemPacket::Type::Read, smId_,
                            MemScope::Device, txn.op};
        mshr_.emplace(line, std::vector<std::uint32_t>{txn.op});
        if (queue_) {
            queue_->pushRequest(MemPortRequest{
                pkt, seq, MemPortRequest::Completion::Fill, line});
        } else {
            pushEventSeq(memsys_.request(pkt, now), seq, Event::Kind::Fill,
                         0, line);
        }
        l1Queue_.pop_front();
        break;
      }
      case MemPacket::Type::Write: {
        Addr line = lineBase(txn.addr);
        // Write-through, no-allocate: update the line if present.
        (void)l1_.access(line, true);
        const MemPacket pkt{line, MemPacket::Type::Write, smId_,
                            MemScope::Device, txn.op};
        if (queue_) {
            queue_->pushRequest(MemPortRequest{
                pkt, 0, MemPortRequest::Completion::None, 0});
        } else {
            memsys_.request(pkt, now);
        }
        // Writes get no reply; the op completes next cycle either way.
        pushEvent(now + 1, Event::Kind::OpPartDone, txn.op, 0);
        l1Queue_.pop_front();
        break;
      }
      case MemPacket::Type::Atomic: {
        const std::uint64_t seq = ++eventSeq_;
        const MemPacket pkt{txn.addr, MemPacket::Type::Atomic, smId_,
                            txn.scope, txn.op};
        if (queue_) {
            queue_->pushRequest(MemPortRequest{
                pkt, seq, MemPortRequest::Completion::OpDone, 0});
        } else {
            pushEventSeq(memsys_.request(pkt, now), seq,
                         Event::Kind::OpPartDone, txn.op, 0);
        }
        l1Queue_.pop_front();
        break;
      }
    }
}

}  // namespace bowsim
