#include "src/sim/sm_core.hpp"

#include <algorithm>
#include <bit>

#include "src/arch/snapshot.hpp"
#include "src/common/log.hpp"
#include "src/isa/exec.hpp"

namespace bowsim {

namespace {

unsigned
popcount(LaneMask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

unsigned
firstLane(LaneMask m)
{
    return static_cast<unsigned>(std::countr_zero(m));
}

}  // namespace

unsigned
maxResidentCtasFor(const GpuConfig &cfg, const Program &prog,
                   unsigned threads_per_cta)
{
    if (threads_per_cta == 0)
        fatal("kernel launch with an empty block");
    const unsigned max_warps = cfg.maxWarpsPerCore();
    const unsigned warps_per_cta =
        (threads_per_cta + kWarpSize - 1) / kWarpSize;
    unsigned by_threads = cfg.maxThreadsPerCore / threads_per_cta;
    unsigned regs_per_cta = prog.numRegs * threads_per_cta;
    unsigned by_regs = regs_per_cta == 0
                           ? cfg.maxCtasPerCore
                           : cfg.numRegsPerCore / regs_per_cta;
    unsigned by_shared = prog.sharedBytes == 0
                             ? cfg.maxCtasPerCore
                             : cfg.sharedMemPerCore / prog.sharedBytes;
    unsigned by_warps = max_warps / warps_per_cta;
    unsigned max_ctas = std::min({cfg.maxCtasPerCore, by_threads, by_regs,
                                  by_shared, by_warps});
    if (max_ctas == 0)
        simFatal("kernel '", prog.name, "' does not fit on an SM (",
                 threads_per_cta, " threads/CTA)");
    return max_ctas;
}

SmCore::SmCore(unsigned id, const GpuConfig &cfg, LaunchState &launch,
               KernelStats *shard)
    : id_(id), cfg_(cfg), launch_(launch),
      stats_(shard ? *shard : launch.stats), staging_(queue_),
      deferCommit_(launch.deferCommit),
      ldst_(cfg, id, *launch.memsys, stats_),
      backoff_(cfg.bows), maxWarps_(cfg.maxWarpsPerCore())
{
    for (unsigned s = 0; s < cfg.numSchedulersPerCore; ++s)
        schedulers_.push_back(makeScheduler(cfg));
    unitResident_.resize(schedulers_.size());
    ddos_ = std::make_unique<DdosUnit>(cfg.ddos, maxWarps_);

    // Warp slots are distributed round-robin over the units, so unit u
    // holds at most ceil(maxWarps_/units) warps; the bitmask fast path
    // applies whenever that fits one 64-bit word (always, for the
    // Table II configurations).
    const unsigned units = static_cast<unsigned>(schedulers_.size());
    masksEnabled_ = (maxWarps_ + units - 1) / units <= 64;
    if (masksEnabled_) {
        unitIssuable_.assign(units, 0);
        unitBackedOff_.assign(units, 0);
        unitPosOf_.assign(maxWarps_, 0);
    }

    // ALU latencies are bounded, so writebacks at most max-latency
    // cycles ahead fit in a ring of per-cycle buckets.
    wbRingSize_ =
        std::max({cfg.aluLatency, cfg.mulDivLatency, 1u}) + 1;
    wbRing_.resize(wbRingSize_);

    blockThreads_ = launch_.block.count();
    gridCtas_ = launch_.grid.count();
    ctaEnd_ = launch_.ctaEnd != 0 ? launch_.ctaEnd : gridCtas_;
    code_ = launch_.prog->code.data();
    codeSize_ = static_cast<Pc>(launch_.prog->code.size());
    if (launch_.pcFlags.size() != launch_.prog->code.size())
        launch_.buildPcFlags();  // idempotent; cores are built serially
    cawaAccounting_ = cfg.scheduler == SchedulerKind::CAWA;
    spinAccounting_ = cfg.collectSpinCycles;
    // Sync profiling mirrors tracing: a launch-wide handle, one cached
    // bool on the issue-path branch sites. Registry calls always run on
    // the coordinator thread — the functional hooks fire at the enqueue
    // point in inline mode and at the commit drain in phase-split mode,
    // the BOWS/DDOS transitions are staged as SyncEvent entries.
    sync_ = launch_.sync;
    syncOn_ = sync_.enabled();

    // Tracing and stall attribution ride the same launch-wide handle.
    // Sizing the stall table here (cores are built serially) keeps
    // Gpu::launch() agnostic and covers direct SmCore construction.
    // In deferCommit mode the core's own handle points at the staging
    // sink, so every SM-side emission lands in the commit queue and is
    // forwarded to the real sink in drain order.
    tracer_ = launch_.trace;
    stallAccounting_ = tracer_.enabled() || cfg.collectStallBreakdown;
    if (deferCommit_ && tracer_.enabled())
        tracer_ = trace::Tracer(&staging_);
    if (stallAccounting_) {
        KernelStats &st = stats_;
        st.stallWarpsPerSm = maxWarps_;
        std::size_t need = static_cast<std::size_t>(cfg.numCores) *
                           maxWarps_ * trace::kNumStallCauses;
        if (st.stallCounts.size() < need)
            st.stallCounts.resize(need, 0);
        // Per-scheduler-unit issue distribution (--profile) rides the
        // same gate: one increment per issue, off the default hot path.
        st.unitsPerSm = static_cast<unsigned>(schedulers_.size());
        std::size_t unit_need = static_cast<std::size_t>(cfg.numCores) *
                                schedulers_.size();
        if (st.unitIssues.size() < unit_need)
            st.unitIssues.resize(unit_need, 0);
    }
    // Peak residency is one max per CTA launch — cheap enough to keep
    // always-on (profile reports and metrics need it unconditionally).
    if (stats_.peakResidentPerSm.size() < cfg.numCores)
        stats_.peakResidentPerSm.resize(cfg.numCores, 0);
    if (deferCommit_)
        ldst_.setCommitQueue(&queue_);
    ldst_.setTrace(tracer_);
    ddos_->setTrace(tracer_, id_);
    backoff_.setTrace(tracer_, id_);

    const Program &prog = *launch_.prog;
    unsigned threads_per_cta = blockThreads_;
    warpsPerCta_ = (threads_per_cta + kWarpSize - 1) / kWarpSize;
    maxResidentCtas_ = maxResidentCtasFor(cfg, prog, threads_per_cta);
    ctas_.resize(maxResidentCtas_);
}

bool
SmCore::busy() const
{
    // CTAs are handed out by the device's dispatcher; this SM stays busy
    // while work remains so it can pick CTAs up as slots free.
    return validCtas_ != 0 || launch_.nextCta < ctaEnd_;
}

void
SmCore::tryLaunchCtas()
{
    if (launch_.nextCta >= ctaEnd_ || validCtas_ == maxResidentCtas_)
        return;
    const Program &prog = *launch_.prog;
    unsigned total_ctas = ctaEnd_;
    for (Cta &slot : ctas_) {
        if (slot.valid)
            continue;
        if (launch_.nextCta >= total_ctas)
            return;
        unsigned cta_id = launch_.nextCta++;
        slot.valid = true;
        ++validCtas_;
        slot.id = cta_id;
        slot.shared.assign(prog.sharedBytes, 0);
        slot.warps.clear();
        slot.arrivedAtBarrier = 0;

        unsigned threads = blockThreads_;
        unsigned cta_index =
            static_cast<unsigned>(&slot - ctas_.data());
        const unsigned units = static_cast<unsigned>(schedulers_.size());
        for (unsigned wi = 0; wi < warpsPerCta_; ++wi) {
            unsigned lanes = std::min(kWarpSize, threads - wi * kWarpSize);
            LaneMask mask = lanes == kWarpSize
                                ? kFullMask
                                : ((LaneMask{1} << lanes) - 1);
            unsigned warp_slot = cta_index * warpsPerCta_ + wi;
            auto warp = std::make_unique<Warp>(
                warp_slot, cta_id, wi, launch_.warpAgeCounter++,
                prog.numRegs, prog.numPreds, mask);
            ddos_->resetWarp(warp_slot);
            resident_.push_back(warp.get());
            const unsigned unit_id = warp_slot % units;
            auto &unit = unitResident_[unit_id];
            if (masksEnabled_) {
                const std::uint64_t bit = std::uint64_t{1} << unit.size();
                unitPosOf_[warp_slot] =
                    static_cast<std::uint32_t>(unit.size());
                unitIssuable_[unit_id] |= bit;
                unitBackedOff_[unit_id] &= ~bit;
            }
            unit.push_back(warp.get());
            slot.warps.push_back(std::move(warp));
        }
        slot.liveWarps = warpsPerCta_;
        stats_.peakResidentPerSm[id_] = std::max<std::uint64_t>(
            stats_.peakResidentPerSm[id_], resident_.size());
    }
}

void
SmCore::seed(const SmSnapshot &snap)
{
    if (validCtas_ != 0)
        panic("SmCore::seed on a core that already has resident CTAs");
    const Program &prog = *launch_.prog;
    const unsigned units = static_cast<unsigned>(schedulers_.size());
    if (snap.ctas.size() > maxResidentCtas_)
        fatal("snapshot has more CTAs than fit one SM");
    for (std::size_t c = 0; c < snap.ctas.size(); ++c) {
        const CtaSnapshot &cs = snap.ctas[c];
        Cta &slot = ctas_[c];
        slot.valid = true;
        ++validCtas_;
        slot.id = cs.id;
        slot.shared = cs.shared;
        slot.arrivedAtBarrier = cs.arrivedAtBarrier;
        slot.warps.clear();
        slot.liveWarps = 0;
        for (std::size_t wi = 0; wi < cs.warps.size(); ++wi) {
            const WarpSnapshot &ws = cs.warps[wi];
            const unsigned warp_slot =
                static_cast<unsigned>(c) * warpsPerCta_ +
                static_cast<unsigned>(wi);
            auto warp = std::make_unique<Warp>(warp_slot, cs.id,
                                               ws.warpInCta, ws.age,
                                               prog.numRegs,
                                               prog.numPreds, kFullMask);
            restoreWarp(*warp, ws);
            ddos_->resetWarp(warp_slot);
            if (!warp->done()) {
                ++slot.liveWarps;
                resident_.push_back(warp.get());
                unitResident_[warp_slot % units].push_back(warp.get());
            }
            slot.warps.push_back(std::move(warp));
        }
        if (slot.liveWarps == 0)
            ++drainedCtas_;
    }
    for (unsigned u = 0; u < units; ++u)
        rebuildUnitMask(u);
    stats_.peakResidentPerSm[id_] = std::max<std::uint64_t>(
        stats_.peakResidentPerSm[id_], resident_.size());
}

void
SmCore::retireFinishedCtas()
{
    if (drainedCtas_ == 0)
        return;
    for (Cta &cta : ctas_) {
        if (!cta.valid || cta.liveWarps != 0)
            continue;
        bool drained = true;
        for (const auto &w : cta.warps) {
            if (!w->scoreboard().idle() || w->ldstOutstanding() != 0) {
                drained = false;
                break;
            }
        }
        if (!drained)
            continue;
        for (const auto &w : cta.warps) {
            for (auto &sched : schedulers_)
                sched->notifyFinished(w.get());
        }
        cta.warps.clear();
        cta.valid = false;
        --validCtas_;
        --drainedCtas_;
    }
}

void
SmCore::checkBarrier(Cta &cta)
{
    if (cta.liveWarps == 0 || cta.arrivedAtBarrier < cta.liveWarps)
        return;
    for (auto &w : cta.warps) {
        if (!w->done()) {
            w->setAtBarrier(false);
            refreshWarpMask(*w);
            tracer_.emit(now_, id_, static_cast<std::int32_t>(w->id()),
                         trace::EventKind::BarrierExit);
        }
    }
    cta.arrivedAtBarrier = 0;
}

bool
SmCore::isSib(Pc pc) const
{
    switch (launch_.spinDetect) {
      case SpinDetect::None:
        return false;
      case SpinDetect::Oracle:
        return (launch_.pcFlags[pc] & LaunchState::kPcSpinBranch) != 0;
      case SpinDetect::Ddos:
        return ddos_->isSib(pc);
    }
    return false;
}

bool
SmCore::eligible(Warp &w) const
{
    if (w.done() || w.atBarrier())
        return false;
    if (!backoff_.mayIssue(w, now_))
        return false;
    const Instruction &inst = fetch(w.stack().pc());
    if (!w.scoreboard().canIssue(inst))
        return false;
    if (inst.isMemory() && inst.space != MemSpace::Param &&
        !ldst_.canAccept()) {
        return false;
    }
    return true;
}

unsigned
SmCore::eligibleWarpCount() const
{
    unsigned n = 0;
    for (Warp *w : resident_)
        n += eligible(*w) ? 1 : 0;
    return n;
}

unsigned
SmCore::spinningWarpCount() const
{
    unsigned n = 0;
    for (const Warp *w : resident_)
        n += ddos_->isSpinning(w->id()) ? 1 : 0;
    return n;
}

Word
SmCore::readOperand(Warp &w, const Operand &op, unsigned lane) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return w.regs().read(lane, op.index);
      case Operand::Kind::Imm:
        return op.imm;
      case Operand::Kind::Pred:
        return w.regs().readPred(lane, op.index) ? 1 : 0;
      case Operand::Kind::Special:
        return exec::readSpecial(
            static_cast<SpecialReg>(op.index),
            exec::ThreadCtx{w.warpInCta(), w.cta(), blockThreads_,
                            gridCtas_, id_},
            lane);
      case Operand::Kind::None:
        panic("readOperand on a missing operand");
    }
    return 0;
}

void
SmCore::executeAlu(Warp &w, const Instruction &inst, LaneMask exec,
                   Cycle now)
{
    KernelStats &st = stats_;
    const bool is_setp = inst.op == Opcode::Setp;
    // Per-instruction facts hoisted out of the per-lane loop: the PC (and
    // thus the wait-check set membership) and operand validity cannot
    // change between lanes.
    const bool is_wait_check =
        is_setp && (launch_.pcFlags[w.stack().pc()] &
                    LaunchState::kPcWaitCheck) != 0;

    // DDOS profiles the first active thread of the warp at every setp.
    if (is_setp) {
        LaneMask active = w.stack().activeMask();
        if (active != 0) {
            unsigned lane = firstLane(active);
            Word v0 = readOperand(w, inst.src[0], lane);
            Word v1 = readOperand(w, inst.src[1], lane);
            ddos_->onSetp(w.id(), w.stack().pc(), v0, v1, now);
        }
    }

    // Operand access is resolved once per instruction instead of once
    // per lane: register sources become contiguous row pointers and
    // immediates become constants; only predicate/special sources keep
    // the generic readOperand path. A missing operand reads as 0, as
    // the old per-lane defaulting did.
    struct SrcRef {
        const Word *row = nullptr;
        const Operand *op = nullptr;
        Word imm = 0;
    };
    auto resolve = [&](const Operand &o) {
        SrcRef s;
        switch (o.kind) {
          case Operand::Kind::Reg:
            s.row = w.regs().row(o.index);
            break;
          case Operand::Kind::Imm:
            s.imm = o.imm;
            break;
          case Operand::Kind::None:
            break;
          default:
            s.op = &o;
            break;
        }
        return s;
    };
    auto get = [&](const SrcRef &s, unsigned lane) -> Word {
        if (s.row)
            return s.row[lane];
        if (s.op)
            return readOperand(w, *s.op, lane);
        return s.imm;
    };

    if (exec != 0) {
        switch (inst.op) {
          case Opcode::Setp: {
            const SrcRef a = resolve(inst.src[0]);
            const SrcRef b = resolve(inst.src[1]);
            LaneMask &pred = w.regs().predRow(inst.dst.index);
            for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                const bool r =
                    exec::compare(inst.cmp, get(a, lane), get(b, lane));
                const LaneMask bit = LaneMask{1} << lane;
                pred = r ? (pred | bit) : (pred & ~bit);
                if (is_wait_check) {
                    if (r)
                        ++st.outcomes.waitExitSuccess;
                    else
                        ++st.outcomes.waitExitFail;
                }
            }
            break;
          }
          case Opcode::Selp: {
            const SrcRef a = resolve(inst.src[0]);
            const SrcRef b = resolve(inst.src[1]);
            const LaneMask pbits = w.regs().predBits(inst.src[2].index);
            Word *dst = w.regs().row(inst.dst.index);
            for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                dst[lane] =
                    ((pbits >> lane) & 1) ? get(a, lane) : get(b, lane);
            }
            break;
          }
          case Opcode::Clock: {
            Word *dst = w.regs().row(inst.dst.index);
            for (LaneMask rest = exec; rest != 0; rest &= rest - 1)
                dst[firstLane(rest)] = static_cast<Word>(now);
            break;
          }
          case Opcode::Ld: {
            // ld.param: constant access, ALU-class latency.
            const SrcRef base = resolve(inst.src[0]);
            Word *dst = w.regs().row(inst.dst.index);
            for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                Addr offset =
                    static_cast<Addr>(get(base, lane) + inst.memOffset);
                unsigned index = static_cast<unsigned>(offset / 8);
                if (index >= launch_.params.size())
                    simFatal("ld.param index ", index,
                             " out of range in '", launch_.prog->name,
                             "'");
                dst[lane] = launch_.params[index];
            }
            break;
          }
          default: {
            const SrcRef a = resolve(inst.src[0]);
            const SrcRef b = resolve(inst.src[1]);
            const SrcRef c = resolve(inst.src[2]);
            Word *dst = w.regs().row(inst.dst.index);
            for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                dst[lane] = exec::aluCompute(inst, get(a, lane),
                                             get(b, lane), get(c, lane));
            }
            break;
          }
        }
    }

    if (inst.dst.valid()) {
        w.scoreboard().reserve(inst);
        unsigned latency =
            inst.longLatency() ? cfg_.mulDivLatency : cfg_.aluLatency;
        if (latency == 0)
            latency = 1;  // a zero-latency writeback still lands next cycle
        wbRing_[(now + latency) % wbRingSize_].push_back(WbEvent{&w, &inst});
        ++wbPending_;
    }
}

void
SmCore::executeAtomicLane(Warp &w, const Instruction &inst, unsigned lane,
                          Addr addr, bool is_acquire)
{
    Word operand = readOperand(w, inst.src[1], lane);
    Word desired = inst.atom == AtomOp::Cas
                       ? readOperand(w, inst.src[2], lane)
                       : 0;
    // Warp key: the device-wide age offset by the device's key base —
    // globally unique across devices and nonzero.
    const std::uint64_t warp_key = launch_.warpKeyBase + w.age() + 1;
    exec::AtomicResult r = exec::applyAtomicLane(
        *launch_.mem, launch_.locks(), inst, addr, operand, desired,
        warp_key);
    if (syncOn_) {
        // Release = an exchange (the TAS-family unlock) or a successful
        // CAS that stored the free sentinel 0; plain-store unlocks reach
        // the profiler through execGlobalStore's onWrite hook instead.
        const bool failed = r.isCas && r.cas != CasOutcome::Success;
        const bool releases =
            inst.atom == AtomOp::Exch ||
            (r.isCas && r.cas == CasOutcome::Success && desired == 0);
        sync_.onAtomic(addr, warp_key, now_, r.isCas, failed, is_acquire,
                       releases);
    }
    if (r.isCas && is_acquire) {
        KernelStats &st = stats_;
        switch (r.cas) {
          case CasOutcome::Success:
            ++st.outcomes.lockSuccess;
            break;
          case CasOutcome::InterWarpFail:
            ++st.outcomes.interWarpFail;
            break;
          case CasOutcome::IntraWarpFail:
            ++st.outcomes.intraWarpFail;
            break;
        }
    }
    if (inst.dst.valid())
        w.regs().write(lane, inst.dst.index, r.old);
}

void
SmCore::executeMemory(Warp &w, const Instruction &inst, LaneMask exec,
                      bool sync, Cycle now)
{
    if (exec == 0)
        return;  // fully predicated off: no transaction, no hazard

    std::array<Addr, kWarpSize> addrs{};
    if (inst.src[0].isReg()) {
        // Common case: the address base lives in a register row.
        const Word *base = w.regs().row(inst.src[0].index);
        for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
            const unsigned lane = firstLane(rest);
            addrs[lane] = static_cast<Addr>(base[lane] + inst.memOffset);
        }
    } else {
        for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
            const unsigned lane = firstLane(rest);
            Word base = readOperand(w, inst.src[0], lane);
            addrs[lane] = static_cast<Addr>(base + inst.memOffset);
        }
    }

    if (inst.space == MemSpace::Shared) {
        Cta &cta = ctas_.at(w.id() / warpsPerCta_);
        for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
            const unsigned lane = firstLane(rest);
            Addr a = addrs[lane];
            if (a + inst.size > cta.shared.size())
                simFatal("shared-memory access out of bounds in '",
                         launch_.prog->name, "' (addr ", a, ")");
            if (inst.op == Opcode::Ld) {
                Word v = 0;
                std::memcpy(&v, cta.shared.data() + a, inst.size);
                if (inst.size == 4)
                    v = static_cast<Word>(static_cast<std::int32_t>(v));
                w.regs().write(lane, inst.dst.index, v);
            } else {
                Word v = readOperand(w, inst.src[1], lane);
                std::memcpy(cta.shared.data() + a, &v, inst.size);
            }
        }
    } else if (deferCommit_) {
        // Phase-split mode: stage the functional op for the commit
        // phase. The lock-acquire flag is PC-derived, so it is captured
        // now — the warp's PC advances before the queue drains.
        CommitEntry::Kind kind;
        bool acquire = false;
        switch (inst.op) {
          case Opcode::Ld:
            kind = CommitEntry::Kind::GlobalLoad;
            break;
          case Opcode::St:
            kind = CommitEntry::Kind::GlobalStore;
            break;
          case Opcode::Atom:
            kind = CommitEntry::Kind::GlobalAtomic;
            acquire = (launch_.pcFlags[w.stack().pc()] &
                       LaunchState::kPcLockAcquire) != 0;
            break;
          default:
            panic("executeMemory on non-memory opcode");
        }
        queue_.pushGlobal(kind, &w, &inst, exec, addrs, acquire);
    } else {
        switch (inst.op) {
          case Opcode::Ld:
            execGlobalLoad(w, inst, exec, addrs);
            break;
          case Opcode::St:
            execGlobalStore(w, inst, exec, addrs);
            break;
          case Opcode::Atom:
            execGlobalAtomic(w, inst, exec, addrs,
                             (launch_.pcFlags[w.stack().pc()] &
                              LaunchState::kPcLockAcquire) != 0);
            break;
          default:
            panic("executeMemory on non-memory opcode");
        }
    }

    ldst_.submit(&w, inst, addrs, exec, sync, now);
    if (inst.dst.valid())
        w.scoreboard().reserve(inst);
}

void
SmCore::execGlobalLoad(Warp &w, const Instruction &inst, LaneMask exec,
                       const std::array<Addr, kWarpSize> &addrs)
{
    // Safe to defer to the cycle barrier: the scoreboard reserve at
    // issue prevents any same-cycle read of the destination register.
    MemorySpace &mem = *launch_.mem;
    for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
        const unsigned lane = firstLane(rest);
        w.regs().write(lane, inst.dst.index,
                       mem.read(addrs[lane], inst.size));
    }
}

void
SmCore::execGlobalStore(Warp &w, const Instruction &inst, LaneMask exec,
                        const std::array<Addr, kWarpSize> &addrs)
{
    MemorySpace &mem = *launch_.mem;
    for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
        const unsigned lane = firstLane(rest);
        Word v = readOperand(w, inst.src[1], lane);
        mem.write(addrs[lane], v, inst.size);
        launch_.locks().onWrite(addrs[lane], v);
        if (syncOn_)
            sync_.onWrite(addrs[lane], now_);
    }
}

void
SmCore::execGlobalAtomic(Warp &w, const Instruction &inst, LaneMask exec,
                         const std::array<Addr, kWarpSize> &addrs,
                         bool acquire)
{
    for (LaneMask rest = exec; rest != 0; rest &= rest - 1) {
        const unsigned lane = firstLane(rest);
        executeAtomicLane(w, inst, lane, addrs[lane], acquire);
    }
}

void
SmCore::issue(Warp &w, Cycle now)
{
    const Pc pc = w.stack().pc();
    const Instruction &inst = fetch(pc);
    const LaneMask active = w.stack().activeMask();

    LaneMask exec = active;
    if (inst.guard >= 0) {
        LaneMask pm = w.regs().predMask(inst.guard, active);
        exec = inst.guardNegate ? (active & ~pm) : pm;
    }

    if (tracer_.enabled()) {
        const std::int32_t wid = static_cast<std::int32_t>(w.id());
        tracer_.emit(now, id_, wid, trace::EventKind::Fetch, pc);
        tracer_.emit(now, id_, wid, trace::EventKind::Issue, pc,
                     static_cast<std::uint64_t>(inst.op) |
                         (static_cast<std::uint64_t>(popcount(exec)) << 8));
    }

    // --- accounting ----------------------------------------------------
    KernelStats &st = stats_;
    ++st.warpInstructions;
    ++issuedInstructions_;
    unsigned lanes = popcount(active);
    st.threadInstructions += lanes;
    st.activeLaneSum += lanes;
    const bool sync_pc =
        (launch_.pcFlags[pc] & LaunchState::kPcSyncRegion) != 0;
    if (sync_pc)
        st.syncThreadInstructions += lanes;

    ++st.energy.warpInstructions;
    st.energy.laneAluOps += popcount(exec);
    unsigned reg_srcs = 0;
    for (const Operand &s : inst.src)
        reg_srcs += s.isReg() ? 1 : 0;
    st.energy.rfReadLanes += reg_srcs * lanes;
    if (inst.dst.valid())
        st.energy.rfWriteLanes += lanes;

    // --- BOWS / CAWA state transitions at issue ---------------------------
    backoff_.onIssue(w, now);
    CawaState &cawa = w.cawa();
    ++cawa.issued;
    if (cawa.estRemaining > 0)
        cawa.estRemaining -= 1.0;
    w.setLastIssueCycle(now);

    bool sib_executed = false;

    // --- execute -----------------------------------------------------------
    switch (inst.op) {
      case Opcode::Bra: {
        const LaneMask taken = exec;
        const bool backward = inst.target <= pc;
        if (backward && taken != 0) {
            // The warp will re-run the loop body: grow CAWA's remaining-
            // work estimate (this is the spin-prioritization pathology).
            cawa.estRemaining += static_cast<double>(pc - inst.target + 1);
            if (!tracer_.enabled() && !syncOn_) {
                ddos_->onBackwardBranch(w.id(), pc, now);
            } else {
                // Label newly confirmed SIBs against the kernel's
                // ground-truth annotations for the detection stream, and
                // cross-attribute the confirmation to the sync address
                // whose failed CAS provoked the spin.
                const bool was_sib = ddos_->isSib(pc);
                ddos_->onBackwardBranch(w.id(), pc, now);
                if (!was_sib && ddos_->isSib(pc)) {
                    const bool truth =
                        (launch_.pcFlags[pc] &
                         LaunchState::kPcSpinBranch) != 0;
                    tracer_.emit(now, id_,
                                 static_cast<std::int32_t>(w.id()),
                                 truth ? trace::EventKind::DetectTrue
                                       : trace::EventKind::DetectFalse,
                                 pc);
                    if (syncOn_) {
                        noteSyncTransition(trace::EventKind::SibConfirm,
                                           w, now);
                    }
                }
            }
        }
        if (backward && taken != 0 && isSib(pc)) {
            sib_executed = true;
            ++st.sibInstructions;
            if (!syncOn_) {
                backoff_.onSpinBranch(w, now);
            } else {
                // Catch the not-backed-off -> backed-off edge so the
                // profiler can charge the back-off to its sync address.
                const bool was_off = w.bows().backedOff;
                backoff_.onSpinBranch(w, now);
                if (!was_off && w.bows().backedOff) {
                    noteSyncTransition(trace::EventKind::BackoffEnter, w,
                                       now);
                }
            }
        }
        w.stack().branch(inst, taken);
        break;
      }
      case Opcode::Exit:
        w.stack().exitLanes(exec);
        break;
      case Opcode::Bar: {
        w.stack().advance();
        Cta &cta = ctas_.at(w.id() / warpsPerCta_);
        w.setAtBarrier(true);
        ++cta.arrivedAtBarrier;
        tracer_.emit(now, id_, static_cast<std::int32_t>(w.id()),
                     trace::EventKind::BarrierEnter, pc);
        checkBarrier(cta);
        break;
      }
      case Opcode::Nop:
      case Opcode::Membar:
        // Fences are a timing no-op here: functional memory updates are
        // already globally visible at issue (documented approximation).
        w.stack().advance();
        break;
      case Opcode::Ld:
        if (inst.space == MemSpace::Param) {
            executeAlu(w, inst, exec, now);
        } else {
            executeMemory(w, inst, exec, sync_pc, now);
        }
        w.stack().advance();
        break;
      case Opcode::St:
      case Opcode::Atom:
        executeMemory(w, inst, exec, sync_pc, now);
        w.stack().advance();
        break;
      default:
        executeAlu(w, inst, exec, now);
        w.stack().advance();
        break;
    }

    backoff_.onInstruction(sib_executed);

    if (w.done())
        onWarpFinished(w);
}

void
SmCore::onWarpFinished(Warp &w)
{
    ddos_->resetWarp(w.id());
    for (auto &sched : schedulers_)
        sched->notifyFinished(&w);
    resident_.erase(std::remove(resident_.begin(), resident_.end(), &w),
                    resident_.end());
    const unsigned unit_id =
        w.id() % static_cast<unsigned>(schedulers_.size());
    auto &unit = unitResident_[unit_id];
    unit.erase(std::remove(unit.begin(), unit.end(), &w), unit.end());
    rebuildUnitMask(unit_id);  // positions shifted by the erase
    Cta &cta = ctas_.at(w.id() / warpsPerCta_);
    if (cta.liveWarps == 0)
        panic("warp finished in an already-empty CTA");
    --cta.liveWarps;
    if (cta.liveWarps == 0)
        ++drainedCtas_;  // retirement scan now has a candidate
    checkBarrier(cta);
}

void
SmCore::rebuildUnitMask(unsigned u)
{
    if (!masksEnabled_)
        return;
    std::uint64_t issuable = 0;
    std::uint64_t backed_off = 0;
    const auto &unit = unitResident_[u];
    for (std::size_t k = 0; k < unit.size(); ++k) {
        const Warp &w = *unit[k];
        unitPosOf_[w.id()] = static_cast<std::uint32_t>(k);
        const std::uint64_t bit = std::uint64_t{1} << k;
        if (!w.atBarrier())
            issuable |= bit;
        if (w.bows().backedOff)
            backed_off |= bit;
    }
    unitIssuable_[u] = issuable;
    unitBackedOff_[u] = backed_off;
}

void
SmCore::refreshWarpMask(const Warp &w)
{
    if (!masksEnabled_)
        return;
    const unsigned u =
        w.id() % static_cast<unsigned>(schedulers_.size());
    const std::uint64_t bit = std::uint64_t{1} << unitPosOf_[w.id()];
    if (w.atBarrier())
        unitIssuable_[u] &= ~bit;
    else
        unitIssuable_[u] |= bit;
    if (w.bows().backedOff)
        unitBackedOff_[u] |= bit;
    else
        unitBackedOff_[u] &= ~bit;
}

bool
SmCore::cycle(Cycle now)
{
    dispatch(now);
    const bool issued = compute(now);
    commit(now);
    return issued;
}

void
SmCore::dispatch(Cycle now)
{
    now_ = now;
    tryLaunchCtas();
}

void
SmCore::noteSyncTransition(trace::EventKind kind, Warp &w, Cycle now)
{
    const std::uint64_t key = launch_.warpKeyBase + w.age() + 1;
    if (deferCommit_) {
        trace::TraceEvent ev;
        ev.cycle = now;
        ev.sm = id_;
        ev.warp = static_cast<std::int32_t>(w.id());
        ev.kind = kind;
        ev.a0 = key;
        queue_.pushSyncEvent(ev);
    } else if (kind == trace::EventKind::BackoffEnter) {
        sync_.onBackoffEnter(key, now);
    } else {
        sync_.onSibConfirm(key, now);
    }
}

void
SmCore::commit(Cycle now)
{
    if (!deferCommit_ || queue_.empty())
        return;
    now_ = now;  // executeAtomicLane stamps profiler events with now_
    for (const CommitEntry &e : queue_.entries()) {
        switch (e.kind) {
          case CommitEntry::Kind::Trace:
            launch_.trace.record(e.ev);
            break;
          case CommitEntry::Kind::SyncEvent:
            if (e.ev.kind == trace::EventKind::BackoffEnter)
                sync_.onBackoffEnter(e.ev.a0, e.ev.cycle);
            else
                sync_.onSibConfirm(e.ev.a0, e.ev.cycle);
            break;
          case CommitEntry::Kind::MemRequest:
            ldst_.commitRequest(e.req, now);
            break;
          case CommitEntry::Kind::GlobalLoad:
            execGlobalLoad(*e.warp, *e.inst, e.exec, e.addrs);
            break;
          case CommitEntry::Kind::GlobalStore:
            execGlobalStore(*e.warp, *e.inst, e.exec, e.addrs);
            break;
          case CommitEntry::Kind::GlobalAtomic:
            execGlobalAtomic(*e.warp, *e.inst, e.exec, e.addrs,
                             e.acquire);
            break;
        }
    }
    queue_.clear();
}

bool
SmCore::compute(Cycle now)
{
    now_ = now;

    // 1. Memory and ALU writebacks due this cycle.
    const bool tracing = tracer_.enabled();
    memCompletions_.clear();
    ldst_.cycle(now, memCompletions_);
    for (const MemCompletion &c : memCompletions_) {
        if (c.inst->dst.valid()) {
            c.warp->scoreboard().release(*c.inst);
            if (tracing) {
                tracer_.emit(now, id_,
                             static_cast<std::int32_t>(c.warp->id()),
                             trace::EventKind::Writeback,
                             static_cast<std::uint64_t>(c.inst - code_));
            }
        }
    }
    if (wbPending_ != 0) {
        std::vector<WbEvent> &due = wbRing_[now % wbRingSize_];
        if (!due.empty()) {
            for (const WbEvent &ev : due) {
                ev.warp->scoreboard().release(*ev.inst);
                if (tracing) {
                    tracer_.emit(now, id_,
                                 static_cast<std::int32_t>(ev.warp->id()),
                                 trace::EventKind::Writeback,
                                 static_cast<std::uint64_t>(ev.inst -
                                                            code_));
                }
            }
            wbPending_ -= due.size();
            due.clear();
        }
    }

    // 2. The BOWS adaptive window. (Pending delays are absolute
    //    deadlines on this path, so there are no counters to tick.)
    backoff_.tickWindow(now);
    stats_.delayLimitCycleSum += backoff_.delayLimit();
    ++stats_.smCycles;

    // 3. Issue: one instruction per scheduler unit per cycle (Fig. 8
    //    arbitration: base-policy order over non-backed-off warps, then
    //    the backed-off queue in FIFO order).
    const unsigned units = static_cast<unsigned>(schedulers_.size());
    const bool deprio = backoff_.deprioritizes();
    bool issued_any = false;
    for (unsigned u = 0; u < units; ++u) {
        if (unitResident_[u].empty())
            continue;
        Scheduler &sched = *schedulers_[u];
        UnitMask mask;
        if (masksEnabled_) {
            mask.valid = true;
            mask.issuable = unitIssuable_[u];
            mask.backedOff = unitBackedOff_[u];
        }
        Warp *winner = nullptr;
        if (sched.supportsPick()) {
            // Positional policies (GTO, LRR) can answer "who issues"
            // directly from the age-ordered resident list.
            winner = sched.pick(unitResident_[u], mask, now, deprio,
                                *this);
        } else if (mask.valid && sched.supportsFilteredOrder()) {
            // Element-wise policies (CAWA) order a pre-filtered copy:
            // the masked-out warps could never win (barrier-parked, or
            // behind every non-backed-off warp under deprioritization)
            // and dropping them keeps their relative order intact.
            std::uint64_t cand = mask.issuable;
            if (deprio)
                cand &= ~mask.backedOff;
            unitWarps_.clear();
            for (std::uint64_t bits = cand; bits != 0; bits &= bits - 1) {
                unitWarps_.push_back(
                    unitResident_[u][static_cast<unsigned>(
                        std::countr_zero(bits))]);
            }
            sched.order(unitWarps_, now);
            for (Warp *w : unitWarps_) {
                if (eligible(*w)) {
                    winner = w;
                    break;
                }
            }
            if (!winner && deprio) {
                // Backed-off queue, FIFO by ticket: the eligible warp
                // with the smallest backoffSeq.
                for (std::uint64_t boff = mask.backedOff & mask.issuable;
                     boff != 0; boff &= boff - 1) {
                    Warp *w = unitResident_[u][static_cast<unsigned>(
                        std::countr_zero(boff))];
                    if (winner &&
                        w->bows().backoffSeq >= winner->bows().backoffSeq)
                        continue;
                    if (eligible(*w))
                        winner = w;
                }
            }
        } else {
            unitWarps_ = unitResident_[u];
            sched.order(unitWarps_, now);
            if (deprio) {
                auto mid = std::stable_partition(
                    unitWarps_.begin(), unitWarps_.end(),
                    [](const Warp *w) { return !w->bows().backedOff; });
                std::sort(mid, unitWarps_.end(),
                          [](const Warp *a, const Warp *b) {
                              return a->bows().backoffSeq <
                                     b->bows().backoffSeq;
                          });
            }
            for (Warp *w : unitWarps_) {
                if (eligible(*w)) {
                    winner = w;
                    break;
                }
            }
        }
        if (winner) {
            issue(*winner, now);
            if (stallAccounting_)
                ++stats_.unitIssues[id_ * schedulers_.size() + u];
            // A finished winner left the vectors (masks rebuilt); a
            // live one may have entered a barrier or changed back-off
            // state during execution.
            if (!winner->done())
                refreshWarpMask(*winner);
            sched.notifyIssued(winner, now);
            issued_any = true;
        }
    }

    // 4. Per-cycle warp accounting (CAWA stalls, Fig. 11 occupancy).
    //    The occupancy sums are running counters, so only CAWA — the one
    //    consumer of per-warp active/stall cycles — needs the warp loop.
    KernelStats &st = stats_;
    if (cawaAccounting_) {
        for (Warp *w : resident_) {
            ++w->cawa().activeCycles;
            if (w->lastIssueCycle() != now)
                ++w->cawa().stallCycles;
        }
    }
    if (stallAccounting_)
        recordStallCycle(now);
    st.residentWarpCycles += resident_.size();
    st.backedOffWarpCycles += backoff_.backedOffCount();
    if (spinAccounting_)
        st.spinningWarpCycles += spinningWarpCount();

    retireFinishedCtas();
    return issued_any;
}

Cycle
SmCore::nextWorkCycle(Cycle now) const
{
    // A free CTA slot with grid work left dispatches next cycle (a
    // retirement at the end of cycle(now) may have just opened one).
    if (launch_.nextCta < ctaEnd_ && validCtas_ < maxResidentCtas_)
        return now + 1;
    Cycle horizon = kNeverCycle;
    if (wbPending_ != 0) {
        // The ring covers at most wbRingSize_-1 cycles ahead and the
        // bucket for `now` was drained this cycle, so the first
        // non-empty bucket is the earliest pending writeback.
        for (unsigned k = 1; k < wbRingSize_; ++k) {
            if (!wbRing_[(now + k) % wbRingSize_].empty()) {
                horizon = now + k;
                break;
            }
        }
    }
    horizon = std::min(horizon, ldst_.nextEventCycle(now));
    if (backoff_.enabled()) {
        // Only unexpired deadlines create future work; a backed-off
        // warp whose delay already expired is blocked by something
        // else (or it would have issued this cycle).
        for (const Warp *w : resident_) {
            const BowsState &b = w->bows();
            if (b.backedOff && b.delayUntil > now)
                horizon = std::min(horizon, b.delayUntil);
        }
    }
    return horizon;
}

void
SmCore::fastForward(Cycle from, Cycle to)
{
    // No unit issued at `from - 1` and nothing can issue before
    // nextWorkCycle() > to, so per-warp eligibility — and with it each
    // warp's stall classification — is frozen across the gap; every
    // per-cycle accounting step collapses to one multiplication. The
    // adaptive-window replay is the exception: the delay limit can
    // change at mid-gap boundaries, which fastForwardWindows()
    // integrates exactly.
    now_ = to;
    const std::uint64_t delta = to - from + 1;
    KernelStats &st = stats_;
    st.delayLimitCycleSum += backoff_.fastForwardWindows(from, to);
    st.smCycles += delta;
    if (cawaAccounting_) {
        for (Warp *w : resident_) {
            w->cawa().activeCycles += delta;
            w->cawa().stallCycles += delta;  // nobody issued in the gap
        }
    }
    if (stallAccounting_)
        recordStallGap(delta);
    st.residentWarpCycles += delta * resident_.size();
    st.backedOffWarpCycles +=
        delta * static_cast<std::uint64_t>(backoff_.backedOffCount());
    // Exact under fast-forward: DDOS spin state only changes at issue
    // time, and nothing issues inside an idle gap.
    if (spinAccounting_)
        st.spinningWarpCycles +=
            delta * static_cast<std::uint64_t>(spinningWarpCount());
}

void
SmCore::recordStallGap(std::uint64_t delta)
{
    // recordStallCycle() over unitResident_ visits exactly the resident
    // warps; with no issues and frozen gates each warp keeps one cause
    // for the whole gap, so the per-cycle increment becomes += delta
    // and the grand total still advances by resident_.size() per cycle.
    KernelStats &st = stats_;
    const std::size_t sm_base =
        static_cast<std::size_t>(id_) * st.stallWarpsPerSm;
    for (Warp *w : resident_) {
        const trace::StallCause cause = classifyStall(*w);
        const std::size_t idx =
            (sm_base + w->id()) * trace::kNumStallCauses +
            static_cast<std::size_t>(cause);
        if (idx < st.stallCounts.size())
            st.stallCounts[idx] += delta;
    }
}

trace::StallCause
SmCore::classifyStall(Warp &w) const
{
    if (w.atBarrier())
        return trace::StallCause::Barrier;
    if (!backoff_.mayIssue(w, now_))
        return trace::StallCause::Backoff;
    const Instruction &inst = fetch(w.stack().pc());
    if (!w.scoreboard().canIssue(inst))
        return trace::StallCause::Scoreboard;
    if (inst.isMemory() && inst.space != MemSpace::Param &&
        !ldst_.canAccept()) {
        return trace::StallCause::PipelineBusy;
    }
    return trace::StallCause::Arbitration;
}

void
SmCore::recordStallCycle(Cycle now)
{
    // Every warp still resident after this cycle's issue gets exactly one
    // count (Issued or its first blocking cause), so the table's grand
    // total matches residentWarpCycles. Classification happens after all
    // units issued; issuing only consumes resources, so a warp that looks
    // eligible here genuinely lost arbitration.
    const bool tracing = tracer_.enabled();
    KernelStats &st = stats_;
    const std::size_t sm_base =
        static_cast<std::size_t>(id_) * st.stallWarpsPerSm;
    const unsigned units = static_cast<unsigned>(schedulers_.size());
    for (unsigned u = 0; u < units; ++u) {
        if (unitResident_[u].empty()) {
            if (tracing && validCtas_ != 0) {
                tracer_.emit(now, id_, -1, trace::EventKind::IssueStall,
                             static_cast<std::uint64_t>(
                                 trace::StallCause::IbufferEmpty));
            }
            continue;
        }
        bool unit_issued = false;
        bool have_cause = false;
        trace::StallCause unit_cause = trace::StallCause::Arbitration;
        for (Warp *w : unitResident_[u]) {
            trace::StallCause cause;
            if (w->lastIssueCycle() == now) {
                cause = trace::StallCause::Issued;
                unit_issued = true;
            } else {
                cause = classifyStall(*w);
                if (!have_cause) {
                    unit_cause = cause;
                    have_cause = true;
                }
            }
            std::size_t idx = (sm_base + w->id()) * trace::kNumStallCauses +
                              static_cast<std::size_t>(cause);
            if (idx < st.stallCounts.size())
                ++st.stallCounts[idx];
        }
        if (tracing && !unit_issued) {
            tracer_.emit(now, id_, -1, trace::EventKind::IssueStall,
                         static_cast<std::uint64_t>(unit_cause));
        }
    }
}

}  // namespace bowsim
