#ifndef BOWSIM_SIM_SM_CORE_HPP
#define BOWSIM_SIM_SM_CORE_HPP

#include <memory>
#include <vector>

#include "src/arch/warp.hpp"
#include "src/common/config.hpp"
#include "src/core/bows/backoff.hpp"
#include "src/core/ddos/ddos_unit.hpp"
#include "src/isa/program.hpp"
#include "src/mem/lock_tracker.hpp"
#include "src/mem/mem_port.hpp"
#include "src/mem/memory_space.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/ldst_unit.hpp"
#include "src/stats/stats.hpp"
#include "src/syncprof/syncprof.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * One streaming multiprocessor: resident CTAs/warps, per-unit warp
 * schedulers with BOWS arbitration (Fig. 8), functional execution at
 * issue, the LD/ST unit, and the DDOS unit hooked into setp/branch
 * execution.
 */

namespace bowsim {

/**
 * State shared by all SMs of one device during one kernel launch. On a
 * multi-device system (GpuConfig::numDevices > 1) each device owns one
 * LaunchState: its own CTA dispatch window [nextCta, ctaEnd), warp age
 * counter, statistics shard and memory system — prog/grid/block/params
 * and the functional MemorySpace are shared across devices.
 */
struct LaunchState {
    const Program *prog = nullptr;
    Dim3 grid;
    Dim3 block;
    std::vector<Word> params;
    MemorySpace *mem = nullptr;
    MemorySystem *memsys = nullptr;
    SpinDetect spinDetect = SpinDetect::Ddos;
    LockTracker lockTracker;
    /**
     * System-wide lock tracker shared by every device of a launch
     * (nullptr on a standalone LaunchState — locks() then falls back to
     * the local tracker above). Lock words are functional state in the
     * shared MemorySpace, so ownership must be tracked system-wide;
     * warpKeyBase keeps the owner keys globally unique.
     */
    LockTracker *tracker = nullptr;
    LockTracker &locks() { return tracker ? *tracker : lockTracker; }
    KernelStats stats;
    /** Event sink for this launch; the default Tracer is the null sink. */
    trace::Tracer trace;
    /** Sync-contention profiler handle (docs/SYNC.md); default null. The
     *  registry, like the system lock tracker, is shared by all devices. */
    syncprof::SyncProf sync;
    /** Next CTA index awaiting an SM. */
    unsigned nextCta = 0;
    /**
     * One past the last CTA this device dispatches (0 = unset: the whole
     * grid, the single-device default). GpuSystem assigns each device a
     * contiguous chunk [nextCta, ctaEnd).
     */
    unsigned ctaEnd = 0;
    /** Monotonic warp age counter (GTO's age ordering), device-local. */
    std::uint64_t warpAgeCounter = 0;
    /** This device's id (trace events, %smid stays SM-local). */
    unsigned deviceId = 0;
    /** Folded into lock-owner warp keys so they stay unique across
     *  devices' independent age counters (deviceId << 48). */
    std::uint64_t warpKeyBase = 0;

    /**
     * Phase-split mode (sm-threads > 1): cores stage every globally
     * visible side effect in their CommitQueue during compute() and
     * apply it in commit(), instead of executing inline. Set before
     * cores are constructed; see docs/PERF.md for the contract.
     */
    bool deferCommit = false;

    /** Per-PC sync-annotation flags, bit-packed from Program::sync once
     *  at launch so the issue path avoids std::set lookups. */
    static constexpr std::uint8_t kPcSyncRegion = 1;
    static constexpr std::uint8_t kPcWaitCheck = 2;
    static constexpr std::uint8_t kPcLockAcquire = 4;
    static constexpr std::uint8_t kPcSpinBranch = 8;
    std::vector<std::uint8_t> pcFlags;

    /** Builds pcFlags from prog's annotations (call after prog is set). */
    void
    buildPcFlags()
    {
        pcFlags.assign(prog->code.size(), 0);
        auto mark = [&](const std::set<Pc> &pcs, std::uint8_t bit) {
            for (Pc pc : pcs) {
                if (pc < pcFlags.size())
                    pcFlags[pc] |= bit;
            }
        };
        mark(prog->sync.syncRegion, kPcSyncRegion);
        mark(prog->sync.waitChecks, kPcWaitCheck);
        mark(prog->sync.lockAcquires, kPcLockAcquire);
        mark(prog->sync.spinBranches, kPcSpinBranch);
    }
};

/**
 * CTA residency limit for one SM: the minimum over the CTA cap and the
 * thread, register, shared-memory and warp-slot budgets. Shared by
 * SmCore and the functional executor so both modes dispatch CTAs with
 * identical occupancy. Fatal when the kernel does not fit at all.
 */
unsigned maxResidentCtasFor(const GpuConfig &cfg, const Program &prog,
                            unsigned threads_per_cta);

class SmCore : private IssueGate {
  public:
    /**
     * @param shard per-SM statistics target for the phase-split mode;
     *        nullptr (inline mode) accumulates into launch.stats
     *        directly. Shards are merged by Gpu::launch in SM-id order.
     */
    SmCore(unsigned id, const GpuConfig &cfg, LaunchState &launch,
           KernelStats *shard = nullptr);

    /**
     * Seeds this SM's resident CTAs/warps from an architectural
     * checkpoint (sampled mode's detailed windows; docs/PERF.md). Call
     * once, before the first cycle. Architectural state — SIMT stacks,
     * registers, barrier membership, shared memory, warp ages — is
     * restored exactly; microarchitectural state (scoreboard, LD/ST
     * unit, caches, DDOS, BOWS) starts cold, which is why windows
     * exclude a warm-up prefix from measurement.
     */
    void seed(const struct SmSnapshot &snap);

    /**
     * Advances the SM by one cycle; true when any unit issued.
     * Equivalent to dispatch(now) + compute(now) + commit(now) — the
     * sequential loop's shape.
     */
    bool cycle(Cycle now);

    /**
     * Phase 1 (serial, SM-id order): CTA dispatch. The only per-cycle
     * step that touches launch-shared dispatch state (nextCta,
     * warpAgeCounter), hoisted out of compute() so the latter is
     * SM-private. Hoisting all dispatches ahead of all computes is
     * order-equivalent to the interleaved loop: nothing between two
     * SMs' dispatch points in the sequential order writes nextCta, and
     * an SM's free slots only change in its own cycle.
     */
    void dispatch(Cycle now);

    /**
     * Phase 2 (parallel-safe): fetch, scheduling, scoreboard, SIMT
     * stack, DDOS/BOWS, L1/shared-memory — everything SM-private. In
     * deferCommit mode, globally visible side effects are staged in the
     * commit queue instead of executed. True when any unit issued.
     */
    bool compute(Cycle now);

    /**
     * Phase 3 (serial, SM-id order): drains the commit queue —
     * functional global-memory ops (including atomics),
     * MemorySystem::request calls, staged trace events — in program
     * order. No-op in inline mode, where these ran at the enqueue point.
     */
    void commit(Cycle now);

    /** True while CTAs are resident or still waiting for dispatch. */
    bool busy() const;

    /**
     * Next-event horizon (docs/PERF.md): assuming cycle(now) just ran
     * and issued nothing, the earliest cycle > now at which this SM can
     * make progress — the minimum over pending ALU writebacks, LD/ST
     * events, expiring back-off deadlines, and CTA-dispatch
     * availability; kNeverCycle when none is pending (deadlock). Being
     * early (over-conservative) only shrinks a skip; reporting later
     * than a real event would desynchronize the simulation, so every
     * state change inside (now, horizon) must trace back to one of the
     * enumerated sources.
     */
    Cycle nextWorkCycle(Cycle now) const;

    /**
     * Replays the per-cycle accounting of the idle gap [from, to] in
     * one step: adaptive-window boundaries and the delay-limit sum,
     * smCycles, CAWA active/stall counters, the stall-breakdown table
     * (each warp's blocking cause is frozen through the gap), and the
     * resident/backed-off warp-cycle sums. Callable only when no unit
     * on this SM can issue anywhere in the gap (to < nextWorkCycle).
     */
    void fastForward(Cycle from, Cycle to);

    const DdosUnit &ddos() const { return *ddos_; }
    const BackoffUnit &backoff() const { return backoff_; }
    const LdstUnit &ldst() const { return ldst_; }
    unsigned id() const { return id_; }
    /** Owning device (multi-device stat/idle attribution). */
    unsigned device() const { return launch_.deviceId; }

    // --- metrics-sampler gauges (SM-private, settled at the commit
    // --- barrier; see src/metrics/sampler.cpp) ------------------------
    /** Resident unfinished warps right now. */
    std::size_t residentWarps() const { return resident_.size(); }
    /** Resident warps passing every issue gate this cycle. */
    unsigned eligibleWarpCount() const;
    /** Resident warps the spin-detection mechanism flags as spinning. */
    unsigned spinningWarpCount() const;
    /** Instructions issued by this SM so far (always collected). */
    std::uint64_t issuedInstructions() const { return issuedInstructions_; }

  private:
    struct Cta {
        unsigned id = 0;
        std::vector<std::unique_ptr<Warp>> warps;
        std::vector<std::uint8_t> shared;
        unsigned liveWarps = 0;
        unsigned arrivedAtBarrier = 0;
        bool valid = false;
    };

    /** ALU-pipeline writeback event (bucketed by completion cycle). */
    struct WbEvent {
        Warp *warp;
        const Instruction *inst;
    };

    void tryLaunchCtas();
    void retireFinishedCtas();
    void checkBarrier(Cta &cta);
    /** IssueGate: all core-side per-warp issue checks (side-effect free). */
    bool eligible(Warp &w) const override;
    void issue(Warp &w, Cycle now);
    bool isSib(Pc pc) const;
    /** Routes a BOWS/DDOS transition to the sync profiler: staged as a
     *  SyncEvent commit entry in phase-split mode (keeps the drain-order
     *  determinism contract), applied directly in inline mode. */
    void noteSyncTransition(trace::EventKind kind, Warp &w, Cycle now);

    /**
     * Why @p w cannot issue at now_ (mirrors eligible()'s check order).
     * Only called for resident, not-done warps that did not issue, so
     * it returns Arbitration when every gate passes.
     */
    trace::StallCause classifyStall(Warp &w) const;
    /** Per-cycle stall attribution + unit-level stall events (gated). */
    void recordStallCycle(Cycle now);
    /** Bulk stall attribution for @p delta identical idle cycles. */
    void recordStallGap(std::uint64_t delta);
    /** Recomputes one unit's masks and positions from its vector. */
    void rebuildUnitMask(unsigned u);
    /** Re-derives a resident warp's barrier/backed-off mask bits. */
    void refreshWarpMask(const Warp &w);

    /** Hot-path instruction fetch. Launch-validated programs always have
     *  in-range PCs; anything else falls back to the checked accessor so
     *  malformed hand-built programs fail exactly as before. */
    const Instruction &
    fetch(Pc pc) const
    {
        return pc < codeSize_ ? code_[pc] : launch_.prog->at(pc);
    }

    // Functional execution helpers.
    Word readOperand(Warp &w, const Operand &op, unsigned lane) const;
    void executeAlu(Warp &w, const Instruction &inst, LaneMask exec,
                    Cycle now);
    void executeMemory(Warp &w, const Instruction &inst, LaneMask exec,
                       bool sync, Cycle now);
    void executeAtomicLane(Warp &w, const Instruction &inst, unsigned lane,
                           Addr addr, bool is_acquire);
    /** Functional global-memory ops; run at issue (inline mode) or at
     *  commit (deferCommit mode) — same order either way. */
    void execGlobalLoad(Warp &w, const Instruction &inst, LaneMask exec,
                        const std::array<Addr, kWarpSize> &addrs);
    void execGlobalStore(Warp &w, const Instruction &inst, LaneMask exec,
                         const std::array<Addr, kWarpSize> &addrs);
    void execGlobalAtomic(Warp &w, const Instruction &inst, LaneMask exec,
                          const std::array<Addr, kWarpSize> &addrs,
                          bool acquire);
    void onWarpFinished(Warp &w);

    unsigned id_;
    const GpuConfig &cfg_;
    LaunchState &launch_;
    /** This SM's statistics target: its private shard under the phase-
     *  split contract, or the launch-wide aggregate in inline mode. */
    KernelStats &stats_;
    /** Deferred side effects for the commit phase (deferCommit_ only). */
    CommitQueue queue_;
    /** Trace staging into queue_, so SM-side events keep their order
     *  relative to deferred memory requests. */
    StagingSink staging_;
    bool deferCommit_ = false;
    LdstUnit ldst_;
    std::vector<std::unique_ptr<Scheduler>> schedulers_;
    std::unique_ptr<DdosUnit> ddos_;
    BackoffUnit backoff_;

    std::vector<Cta> ctas_;
    /** Resident unfinished warps (refreshed as CTAs come and go). */
    std::vector<Warp *> resident_;
    /** resident_ filtered by scheduler unit, maintained incrementally. */
    std::vector<std::vector<Warp *>> unitResident_;
    /** Per-warp SM slot for the DDOS history registers. */
    std::vector<int> warpSlotOf_;

    /**
     * Active-warp bitmasks mirroring unitResident_ (bit k = position k
     * of unit u's vector): not-at-barrier and BOWS backed-off. Kept in
     * sync at warp launch/finish, barrier entry/exit, and back-off
     * transitions; only maintained when every unit fits in 64 slots
     * (masksEnabled_), else schedulers fall back to vector scans.
     */
    std::vector<std::uint64_t> unitIssuable_;
    std::vector<std::uint64_t> unitBackedOff_;
    /** Warp slot -> position inside its unit's resident vector. */
    std::vector<std::uint32_t> unitPosOf_;
    bool masksEnabled_ = false;

    /**
     * Calendar queue for ALU writebacks: ring of per-cycle buckets
     * indexed by (cycle % size). ALU latencies are small and bounded,
     * so the ring replaces a per-cycle priority_queue with O(1) push
     * and a bulk pop; within one bucket the vector preserves issue
     * order, matching the old (when, seq) heap order exactly.
     */
    std::vector<std::vector<WbEvent>> wbRing_;
    unsigned wbRingSize_ = 0;
    std::uint64_t wbPending_ = 0;
    std::vector<MemCompletion> memCompletions_;
    /** Scratch buffer for per-unit arbitration (reused every cycle). */
    std::vector<Warp *> unitWarps_;

    unsigned maxWarps_;
    unsigned warpsPerCta_ = 0;
    unsigned maxResidentCtas_ = 0;
    /** Launch geometry cached out of the per-lane/ per-cycle paths. */
    unsigned blockThreads_ = 0;
    unsigned gridCtas_ = 0;
    /** One past this device's last CTA (%nctaid stays gridCtas_). */
    unsigned ctaEnd_ = 0;
    /** Instruction stream cached for the unchecked fetch() fast path. */
    const Instruction *code_ = nullptr;
    Pc codeSize_ = 0;
    /** Occupied CTA slots (busy() and dispatch gating). */
    unsigned validCtas_ = 0;
    /** Valid CTAs with no live warps, awaiting drain + retirement. */
    unsigned drainedCtas_ = 0;
    /** Current cycle, for eligibility checks reached via IssueGate. */
    Cycle now_ = 0;
    /** Lifetime issued-instruction count (metrics gauge source). */
    std::uint64_t issuedInstructions_ = 0;
    /** Per-warp active/stall counters only feed CAWA's criticality. */
    bool cawaAccounting_ = false;
    /** Launch-wide event sink handle (null sink unless a trace is on). */
    trace::Tracer tracer_;
    /** Per-cycle stall attribution into stats.stallCounts (gated). */
    bool stallAccounting_ = false;
    /** Per-cycle spinning-warp attribution (GpuConfig::collectSpinCycles). */
    bool spinAccounting_ = false;
    /** Launch-wide sync-profiler handle (null unless --sync-report or a
     *  litmus evidence pass attached a registry). */
    syncprof::SyncProf sync_;
    /** Cached sync_.enabled() so the issue-path branch sites pay one
     *  bool test, mirroring stallAccounting_. */
    bool syncOn_ = false;
};

}  // namespace bowsim

#endif  // BOWSIM_SIM_SM_CORE_HPP
