#ifndef BOWSIM_SIM_SM_CORE_HPP
#define BOWSIM_SIM_SM_CORE_HPP

#include <memory>
#include <queue>
#include <vector>

#include "src/arch/warp.hpp"
#include "src/common/config.hpp"
#include "src/core/bows/backoff.hpp"
#include "src/core/ddos/ddos_unit.hpp"
#include "src/isa/program.hpp"
#include "src/mem/lock_tracker.hpp"
#include "src/mem/memory_space.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/ldst_unit.hpp"
#include "src/stats/stats.hpp"

/**
 * @file
 * One streaming multiprocessor: resident CTAs/warps, per-unit warp
 * schedulers with BOWS arbitration (Fig. 8), functional execution at
 * issue, the LD/ST unit, and the DDOS unit hooked into setp/branch
 * execution.
 */

namespace bowsim {

/** State shared by all SMs during one kernel launch. */
struct LaunchState {
    const Program *prog = nullptr;
    Dim3 grid;
    Dim3 block;
    std::vector<Word> params;
    MemorySpace *mem = nullptr;
    MemorySystem *memsys = nullptr;
    SpinDetect spinDetect = SpinDetect::Ddos;
    LockTracker lockTracker;
    KernelStats stats;
    /** Next CTA index awaiting an SM. */
    unsigned nextCta = 0;
    /** Monotonic warp age counter (GTO's age ordering). */
    std::uint64_t warpAgeCounter = 0;
};

class SmCore {
  public:
    SmCore(unsigned id, const GpuConfig &cfg, LaunchState &launch);

    /** Advances the SM by one cycle. */
    void cycle(Cycle now);

    /** True while CTAs are resident or still waiting for dispatch. */
    bool busy() const;

    const DdosUnit &ddos() const { return *ddos_; }
    const BackoffUnit &backoff() const { return backoff_; }
    unsigned id() const { return id_; }

  private:
    struct Cta {
        unsigned id = 0;
        std::vector<std::unique_ptr<Warp>> warps;
        std::vector<std::uint8_t> shared;
        unsigned liveWarps = 0;
        unsigned arrivedAtBarrier = 0;
        bool valid = false;
    };

    /** ALU-pipeline writeback event. */
    struct WbEvent {
        Cycle when;
        std::uint64_t seq;
        Warp *warp;
        const Instruction *inst;

        bool
        operator>(const WbEvent &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    void tryLaunchCtas();
    void retireFinishedCtas();
    void checkBarrier(Cta &cta);
    bool eligible(Warp &w) const;
    void issue(Warp &w, Cycle now);
    bool isSib(Pc pc) const;

    // Functional execution helpers.
    Word readOperand(Warp &w, const Operand &op, unsigned lane) const;
    void executeAlu(Warp &w, const Instruction &inst, LaneMask exec,
                    Cycle now);
    void executeMemory(Warp &w, const Instruction &inst, LaneMask exec,
                       bool sync, Cycle now);
    void executeAtomicLane(Warp &w, const Instruction &inst, unsigned lane,
                           Addr addr, bool is_acquire);
    void onWarpFinished(Warp &w);

    unsigned id_;
    const GpuConfig &cfg_;
    LaunchState &launch_;
    LdstUnit ldst_;
    std::vector<std::unique_ptr<Scheduler>> schedulers_;
    std::unique_ptr<DdosUnit> ddos_;
    BackoffUnit backoff_;

    std::vector<Cta> ctas_;
    /** Resident unfinished warps (refreshed as CTAs come and go). */
    std::vector<Warp *> resident_;
    /** Per-warp SM slot for the DDOS history registers. */
    std::vector<int> warpSlotOf_;

    std::priority_queue<WbEvent, std::vector<WbEvent>, std::greater<WbEvent>>
        writebacks_;
    std::uint64_t wbSeq_ = 0;
    std::vector<MemCompletion> memCompletions_;
    /** Scratch buffer for per-unit arbitration (reused every cycle). */
    std::vector<Warp *> unitWarps_;

    unsigned maxWarps_;
    unsigned warpsPerCta_ = 0;
    unsigned maxResidentCtas_ = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_SIM_SM_CORE_HPP
