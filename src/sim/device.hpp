#ifndef BOWSIM_SIM_DEVICE_HPP
#define BOWSIM_SIM_DEVICE_HPP

#include <cstdint>

#include "src/mem/l2_bank.hpp"
#include "src/sim/sm_core.hpp"

/**
 * @file
 * One GPU device of a multi-device system (docs/PERF.md, "Device
 * sharding"). A Device bundles what used to be the whole simulator's
 * per-launch state: the device-local memory system (L2 banks, DRAM,
 * crossbars), the launch-shared state its SMs mutate (CTA dispatch
 * cursor, stat aggregate, tracer), and the coordinator-side accounting
 * for SMs that retired from the active list. GpuSystem::launch owns
 * one Device per GpuConfig::numDevices and the SM cores themselves in
 * a flat device-major vector, so the single-device layout is exactly
 * the pre-split one.
 */

namespace bowsim {

struct Device {
    Device(unsigned id_, const GpuConfig &cfg) : id(id_), memsys(cfg) {}

    unsigned id = 0;
    /** Device-local L2/DRAM; wired to peers via MemorySystem::setSystem
     *  on multi-device launches. */
    MemorySystem memsys;
    /** State shared by this device's SMs (dispatch cursor, stats, ...). */
    LaunchState launch;
    /** Last cycle on which any of this device's SMs issued. */
    Cycle lastIssue = 0;
    /** SMs retired from the active list; their per-cycle delay-limit
     *  accounting is applied analytically by the coordinator. */
    std::uint64_t idleCores = 0;
    /** Sum of retired SMs' (from then on constant) back-off limits. */
    std::uint64_t idleDelaySum = 0;
};

}  // namespace bowsim

#endif  // BOWSIM_SIM_DEVICE_HPP
