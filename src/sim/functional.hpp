#ifndef BOWSIM_SIM_FUNCTIONAL_HPP
#define BOWSIM_SIM_FUNCTIONAL_HPP

#include <memory>
#include <vector>

#include "src/arch/snapshot.hpp"
#include "src/arch/warp.hpp"
#include "src/common/config.hpp"
#include "src/sim/sm_core.hpp"

/**
 * @file
 * Fast-functional execution (ExecMode::Functional): ISA semantics only,
 * interpreted warp-at-a-time against functional memory with IPDOM
 * reconvergence. No scoreboard, pipeline, cache or DRAM state exists;
 * KernelStats::cycles stays 0 and only instruction/outcome counters are
 * collected.
 *
 * Determinism contract (docs/PERF.md, "Execution modes"):
 *  - CTAs dispatch to virtual SMs with exactly the cycle-mode residency
 *    limits (maxResidentCtasFor), greedily in SM-id order.
 *  - Execution proceeds in rotations: SMs in id order, CTA slots and
 *    warp slots in index order. Every memory operation — atomics
 *    included — therefore applies in one fixed SM-id/warp-slot order,
 *    independent of host threading or wall-clock timing.
 *  - Bounded fairness: a warp's turn ends after kSliceInstructions
 *    instructions, or earlier at a barrier, at warp exit, or when it
 *    takes an annotated spin-inducing branch backward. A spinning warp
 *    thus burns at most one slice per rotation while every other
 *    resident warp — in particular the lock holder — gets its own
 *    slice, so spin loops always make forward progress.
 *  - `clock` reads a pseudo-clock that advances by one per warp
 *    instruction, keeping timed back-off loops finite.
 */

namespace bowsim {

class FunctionalExecutor {
  public:
    /** A warp's maximum instructions per rotation turn. */
    static constexpr std::uint64_t kSliceInstructions = 16;

    FunctionalExecutor(const GpuConfig &cfg, LaunchState &launch);

    /** Runs the kernel to completion. */
    void run();

    /**
     * Runs until at least @p max_instr more warp instructions execute
     * (rounded up to whole warp slices) or the kernel finishes.
     * Returns finished().
     */
    bool runFor(std::uint64_t max_instr);

    /** True when every CTA has been dispatched and completed. */
    bool finished() const;

    /** Warp instructions executed so far (the fast-forward odometer). */
    std::uint64_t instructionsExecuted() const { return executed_; }

    /**
     * Architectural checkpoint of the current state (functional memory
     * is snapshotted separately — copy the MemorySpace). Used by
     * sampled mode to seed detailed windows and by checkpoint/restore
     * round-trip tests.
     */
    GpuSnapshot snapshot() const;

    /** Restores a checkpoint previously taken with snapshot(). */
    void restore(const GpuSnapshot &snap);

  private:
    struct FCta {
        unsigned id = 0;
        std::vector<std::unique_ptr<Warp>> warps;
        std::vector<std::uint8_t> shared;
        unsigned liveWarps = 0;
        unsigned arrivedAtBarrier = 0;
        bool valid = false;
    };

    struct FSm {
        std::vector<FCta> ctas;
        unsigned validCtas = 0;
    };

    void tryLaunchCtas(FSm &sm);
    void checkBarrier(FCta &cta);
    void onWarpFinished(FSm &sm, FCta &cta, Warp &w);
    /** Runs one warp turn; returns instructions executed. */
    std::uint64_t runWarpSlice(unsigned sm_id, FCta &cta, Warp &w);
    Word readOperand(const Warp &w, const Operand &op, unsigned lane,
                     unsigned sm_id) const;
    const Instruction &fetch(Pc pc) const;

    const GpuConfig &cfg_;
    LaunchState &launch_;
    std::vector<FSm> sms_;
    unsigned warpsPerCta_ = 0;
    unsigned maxResidentCtas_ = 0;
    unsigned blockThreads_ = 0;
    unsigned gridCtas_ = 0;
    /** One past this device's last CTA (%nctaid stays gridCtas_). */
    unsigned ctaEnd_ = 0;
    const Instruction *code_ = nullptr;
    Pc codeSize_ = 0;
    /** Total warp instructions executed (also the pseudo-clock). */
    std::uint64_t executed_ = 0;
    /** CTAs resident across all virtual SMs (finished() gate). */
    unsigned residentCtas_ = 0;
    /** Rotation cursor (SM, CTA slot, warp slot), persistent across
     *  runFor calls so fast-forward legs pause at slice granularity. */
    std::size_t rotSm_ = 0;
    unsigned rotCta_ = 0;
    unsigned rotWarp_ = 0;
    /** Instructions executed since the last rotation boundary (the
     *  zero-progress deadlock check). */
    std::uint64_t rotationProgress_ = 0;
    bool rotationStarted_ = false;
};

}  // namespace bowsim

#endif  // BOWSIM_SIM_FUNCTIONAL_HPP
