#include "src/sim/worker_pool.hpp"

namespace bowsim {

namespace {

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/** Spin budget before parking on the atomic; short on purpose so an
 *  oversubscribed host degrades to futex waits instead of burning
 *  timeslices. */
constexpr unsigned kCallerSpins = 1024;
constexpr unsigned kWorkerSpins = 4096;

/**
 * Spinning is pointless unless the thread being waited on can run
 * simultaneously: with more pool threads than hardware threads, every
 * spin iteration only delays the peer it is waiting for. Park on the
 * futex immediately in that case.
 */
inline bool
spinWorthwhile(unsigned nthreads)
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 || nthreads <= hw;
}

}  // namespace

WorkerPool::WorkerPool(unsigned threads)
    : nthreads_(threads == 0 ? 1 : threads), spin_(spinWorthwhile(nthreads_))
{
    workers_.reserve(nthreads_ - 1);
    for (unsigned i = 1; i < nthreads_; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

WorkerPool::~WorkerPool()
{
    if (workers_.empty())
        return;
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
WorkerPool::run(std::size_t count, const Task &task)
{
    if (workers_.empty() || count <= 1) {
        if (count != 0)
            task(0, count);
        return;
    }
    task_ = &task;
    count_ = count;
    pending_.store(static_cast<std::uint32_t>(workers_.size()),
                   std::memory_order_relaxed);
    // The release increment publishes task_/count_ to every worker that
    // acquire-loads the new epoch.
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();

    // Participant 0's slice, on the calling thread.
    const std::size_t end0 = count / nthreads_;
    if (end0 != 0)
        task(0, end0);

    std::uint32_t left;
    unsigned spins = 0;
    while ((left = pending_.load(std::memory_order_acquire)) != 0) {
        if (spin_ && ++spins < kCallerSpins) {
            cpuRelax();
            continue;
        }
        pending_.wait(left, std::memory_order_acquire);
    }
    task_ = nullptr;
}

void
WorkerPool::workerMain(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t e;
        unsigned spins = 0;
        while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
            if (spin_ && ++spins < kWorkerSpins) {
                cpuRelax();
                continue;
            }
            epoch_.wait(seen, std::memory_order_acquire);
        }
        seen = e;
        if (stop_.load(std::memory_order_acquire))
            return;
        const std::size_t begin = self * count_ / nthreads_;
        const std::size_t end = (self + 1) * count_ / nthreads_;
        if (begin < end)
            (*task_)(begin, end);
        // The acq_rel decrement orders this worker's writes before the
        // caller's acquire load; waking only matters for the last one.
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            pending_.notify_one();
    }
}

}  // namespace bowsim
