#include "src/sim/functional.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/common/log.hpp"
#include "src/isa/exec.hpp"

namespace bowsim {

namespace {

unsigned
popcount(LaneMask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

unsigned
firstLane(LaneMask m)
{
    return static_cast<unsigned>(std::countr_zero(m));
}

}  // namespace

FunctionalExecutor::FunctionalExecutor(const GpuConfig &cfg,
                                       LaunchState &launch)
    : cfg_(cfg), launch_(launch)
{
    const Program &prog = *launch_.prog;
    blockThreads_ = launch_.block.count();
    gridCtas_ = launch_.grid.count();
    ctaEnd_ = launch_.ctaEnd != 0 ? launch_.ctaEnd : gridCtas_;
    warpsPerCta_ = (blockThreads_ + kWarpSize - 1) / kWarpSize;
    maxResidentCtas_ = maxResidentCtasFor(cfg, prog, blockThreads_);
    code_ = prog.code.data();
    codeSize_ = static_cast<Pc>(prog.code.size());
    if (launch_.pcFlags.size() != prog.code.size())
        launch_.buildPcFlags();
    sms_.resize(cfg.numCores);
    for (FSm &sm : sms_)
        sm.ctas.resize(maxResidentCtas_);
}

const Instruction &
FunctionalExecutor::fetch(Pc pc) const
{
    return pc < codeSize_ ? code_[pc] : launch_.prog->at(pc);
}

bool
FunctionalExecutor::finished() const
{
    return residentCtas_ == 0 && launch_.nextCta >= ctaEnd_;
}

void
FunctionalExecutor::tryLaunchCtas(FSm &sm)
{
    if (launch_.nextCta >= ctaEnd_ || sm.validCtas == maxResidentCtas_)
        return;
    const Program &prog = *launch_.prog;
    for (FCta &slot : sm.ctas) {
        if (slot.valid)
            continue;
        if (launch_.nextCta >= ctaEnd_)
            return;
        unsigned cta_id = launch_.nextCta++;
        slot.valid = true;
        ++sm.validCtas;
        ++residentCtas_;
        slot.id = cta_id;
        slot.shared.assign(prog.sharedBytes, 0);
        slot.warps.clear();
        slot.arrivedAtBarrier = 0;
        for (unsigned wi = 0; wi < warpsPerCta_; ++wi) {
            unsigned lanes =
                std::min(kWarpSize, blockThreads_ - wi * kWarpSize);
            LaneMask mask = lanes == kWarpSize
                                ? kFullMask
                                : ((LaneMask{1} << lanes) - 1);
            unsigned slot_index =
                static_cast<unsigned>(&slot - sm.ctas.data());
            slot.warps.push_back(std::make_unique<Warp>(
                slot_index * warpsPerCta_ + wi, cta_id, wi,
                launch_.warpAgeCounter++, prog.numRegs, prog.numPreds,
                mask));
        }
        slot.liveWarps = warpsPerCta_;
    }
}

void
FunctionalExecutor::checkBarrier(FCta &cta)
{
    if (cta.liveWarps == 0 || cta.arrivedAtBarrier < cta.liveWarps)
        return;
    for (auto &w : cta.warps) {
        if (!w->done())
            w->setAtBarrier(false);
    }
    cta.arrivedAtBarrier = 0;
}

void
FunctionalExecutor::onWarpFinished(FSm &sm, FCta &cta, Warp &w)
{
    (void)w;
    if (cta.liveWarps == 0)
        panic("warp finished in an already-empty CTA");
    --cta.liveWarps;
    checkBarrier(cta);
    if (cta.liveWarps == 0) {
        // No pipeline to drain: retire the CTA immediately so the slot
        // is free for the next dispatch.
        cta.warps.clear();
        cta.valid = false;
        --sm.validCtas;
        --residentCtas_;
    }
}

Word
FunctionalExecutor::readOperand(const Warp &w, const Operand &op,
                                unsigned lane, unsigned sm_id) const
{
    switch (op.kind) {
      case Operand::Kind::Reg:
        return w.regs().read(lane, op.index);
      case Operand::Kind::Imm:
        return op.imm;
      case Operand::Kind::Pred:
        return w.regs().readPred(lane, op.index) ? 1 : 0;
      case Operand::Kind::Special:
        return exec::readSpecial(
            static_cast<SpecialReg>(op.index),
            exec::ThreadCtx{w.warpInCta(), w.cta(), blockThreads_,
                            gridCtas_, sm_id},
            lane);
      case Operand::Kind::None:
        panic("readOperand on a missing operand");
    }
    return 0;
}

std::uint64_t
FunctionalExecutor::runWarpSlice(unsigned sm_id, FCta &cta, Warp &w)
{
    KernelStats &st = launch_.stats;
    std::uint64_t n = 0;

    // Operand resolution mirrors SmCore::executeAlu: register sources
    // become row pointers, immediates constants; only predicate/special
    // sources keep the generic path.
    struct SrcRef {
        const Word *row = nullptr;
        const Operand *op = nullptr;
        Word imm = 0;
    };
    auto resolve = [&](const Operand &o) {
        SrcRef s;
        switch (o.kind) {
          case Operand::Kind::Reg:
            s.row = w.regs().row(o.index);
            break;
          case Operand::Kind::Imm:
            s.imm = o.imm;
            break;
          case Operand::Kind::None:
            break;
          default:
            s.op = &o;
            break;
        }
        return s;
    };
    auto get = [&](const SrcRef &s, unsigned lane) -> Word {
        if (s.row)
            return s.row[lane];
        if (s.op)
            return readOperand(w, *s.op, lane, sm_id);
        return s.imm;
    };

    while (n < kSliceInstructions) {
        const Pc pc = w.stack().pc();
        const Instruction &inst = fetch(pc);
        const LaneMask active = w.stack().activeMask();
        LaneMask exec_mask = active;
        if (inst.guard >= 0) {
            LaneMask pm = w.regs().predMask(inst.guard, active);
            exec_mask = inst.guardNegate ? (active & ~pm) : pm;
        }

        // --- accounting (the cycle-mode issue() counters that remain
        // --- meaningful without timing) -------------------------------
        ++n;
        ++executed_;
        ++st.warpInstructions;
        const unsigned lanes = popcount(active);
        st.threadInstructions += lanes;
        st.activeLaneSum += lanes;
        const std::uint8_t flags = launch_.pcFlags[pc];
        if (flags & LaunchState::kPcSyncRegion)
            st.syncThreadInstructions += lanes;

        bool end_slice = false;
        switch (inst.op) {
          case Opcode::Bra: {
            const LaneMask taken = exec_mask;
            const bool backward = inst.target <= pc;
            if (backward && taken != 0 &&
                (flags & LaunchState::kPcSpinBranch)) {
                // SIBs are counted against the kernel's ground-truth
                // annotations (there is no DDOS unit to predict them),
                // and a spinning warp yields its turn so the warp it
                // waits on can run.
                ++st.sibInstructions;
                end_slice = true;
            }
            w.stack().branch(inst, taken);
            break;
          }
          case Opcode::Exit:
            w.stack().exitLanes(exec_mask);
            break;
          case Opcode::Bar: {
            w.stack().advance();
            w.setAtBarrier(true);
            ++cta.arrivedAtBarrier;
            checkBarrier(cta);
            end_slice = w.atBarrier();
            break;
          }
          case Opcode::Nop:
          case Opcode::Membar:
            // Memory updates are globally visible at execution, so
            // fences are complete no-ops here.
            w.stack().advance();
            break;
          case Opcode::St: {
            MemorySpace &mem = *launch_.mem;
            if (inst.space == MemSpace::Shared) {
                const SrcRef base = resolve(inst.src[0]);
                for (LaneMask rest = exec_mask; rest != 0;
                     rest &= rest - 1) {
                    const unsigned lane = firstLane(rest);
                    Addr a = static_cast<Addr>(get(base, lane) +
                                               inst.memOffset);
                    if (a + inst.size > cta.shared.size())
                        simFatal("shared-memory access out of bounds in"
                                 " '", launch_.prog->name, "' (addr ", a,
                                 ")");
                    Word v = readOperand(w, inst.src[1], lane, sm_id);
                    std::memcpy(cta.shared.data() + a, &v, inst.size);
                }
            } else {
                const SrcRef base = resolve(inst.src[0]);
                const SrcRef val = resolve(inst.src[1]);
                for (LaneMask rest = exec_mask; rest != 0;
                     rest &= rest - 1) {
                    const unsigned lane = firstLane(rest);
                    Addr a = static_cast<Addr>(get(base, lane) +
                                               inst.memOffset);
                    Word v = get(val, lane);
                    mem.write(a, v, inst.size);
                    launch_.locks().onWrite(a, v);
                }
            }
            w.stack().advance();
            break;
          }
          case Opcode::Atom: {
            const bool acquire =
                (flags & LaunchState::kPcLockAcquire) != 0;
            const SrcRef base = resolve(inst.src[0]);
            for (LaneMask rest = exec_mask; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                Addr a = static_cast<Addr>(get(base, lane) +
                                           inst.memOffset);
                Word operand = readOperand(w, inst.src[1], lane, sm_id);
                Word desired =
                    inst.atom == AtomOp::Cas
                        ? readOperand(w, inst.src[2], lane, sm_id)
                        : 0;
                exec::AtomicResult r = exec::applyAtomicLane(
                    *launch_.mem, launch_.locks(), inst, a, operand,
                    desired, launch_.warpKeyBase + w.age() + 1);
                if (r.isCas && acquire) {
                    switch (r.cas) {
                      case CasOutcome::Success:
                        ++st.outcomes.lockSuccess;
                        break;
                      case CasOutcome::InterWarpFail:
                        ++st.outcomes.interWarpFail;
                        break;
                      case CasOutcome::IntraWarpFail:
                        ++st.outcomes.intraWarpFail;
                        break;
                    }
                }
                if (inst.dst.valid())
                    w.regs().write(lane, inst.dst.index, r.old);
            }
            w.stack().advance();
            break;
          }
          case Opcode::Ld: {
            if (inst.space == MemSpace::Param) {
                const SrcRef base = resolve(inst.src[0]);
                Word *dst = w.regs().row(inst.dst.index);
                for (LaneMask rest = exec_mask; rest != 0;
                     rest &= rest - 1) {
                    const unsigned lane = firstLane(rest);
                    Addr offset = static_cast<Addr>(get(base, lane) +
                                                    inst.memOffset);
                    unsigned index = static_cast<unsigned>(offset / 8);
                    if (index >= launch_.params.size())
                        simFatal("ld.param index ", index,
                                 " out of range in '",
                                 launch_.prog->name, "'");
                    dst[lane] = launch_.params[index];
                }
            } else if (inst.space == MemSpace::Shared) {
                const SrcRef base = resolve(inst.src[0]);
                for (LaneMask rest = exec_mask; rest != 0;
                     rest &= rest - 1) {
                    const unsigned lane = firstLane(rest);
                    Addr a = static_cast<Addr>(get(base, lane) +
                                               inst.memOffset);
                    if (a + inst.size > cta.shared.size())
                        simFatal("shared-memory access out of bounds in"
                                 " '", launch_.prog->name, "' (addr ", a,
                                 ")");
                    Word v = 0;
                    std::memcpy(&v, cta.shared.data() + a, inst.size);
                    if (inst.size == 4)
                        v = static_cast<Word>(
                            static_cast<std::int32_t>(v));
                    w.regs().write(lane, inst.dst.index, v);
                }
            } else {
                MemorySpace &mem = *launch_.mem;
                const SrcRef base = resolve(inst.src[0]);
                Word *dst = w.regs().row(inst.dst.index);
                for (LaneMask rest = exec_mask; rest != 0;
                     rest &= rest - 1) {
                    const unsigned lane = firstLane(rest);
                    Addr a = static_cast<Addr>(get(base, lane) +
                                               inst.memOffset);
                    dst[lane] = mem.read(a, inst.size);
                }
            }
            w.stack().advance();
            break;
          }
          case Opcode::Setp: {
            const bool is_wait_check =
                (flags & LaunchState::kPcWaitCheck) != 0;
            const SrcRef a = resolve(inst.src[0]);
            const SrcRef b = resolve(inst.src[1]);
            LaneMask &pred = w.regs().predRow(inst.dst.index);
            for (LaneMask rest = exec_mask; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                const bool r =
                    exec::compare(inst.cmp, get(a, lane), get(b, lane));
                const LaneMask bit = LaneMask{1} << lane;
                pred = r ? (pred | bit) : (pred & ~bit);
                if (is_wait_check) {
                    if (r)
                        ++st.outcomes.waitExitSuccess;
                    else
                        ++st.outcomes.waitExitFail;
                }
            }
            w.stack().advance();
            break;
          }
          case Opcode::Selp: {
            const SrcRef a = resolve(inst.src[0]);
            const SrcRef b = resolve(inst.src[1]);
            const LaneMask pbits = w.regs().predBits(inst.src[2].index);
            Word *dst = w.regs().row(inst.dst.index);
            for (LaneMask rest = exec_mask; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                dst[lane] =
                    ((pbits >> lane) & 1) ? get(a, lane) : get(b, lane);
            }
            w.stack().advance();
            break;
          }
          case Opcode::Clock: {
            // Pseudo-time: one tick per warp instruction, monotonic
            // across the whole device so timed back-off loops observe
            // progress and terminate.
            Word *dst = w.regs().row(inst.dst.index);
            for (LaneMask rest = exec_mask; rest != 0; rest &= rest - 1)
                dst[firstLane(rest)] = static_cast<Word>(executed_);
            w.stack().advance();
            break;
          }
          default: {
            const SrcRef a = resolve(inst.src[0]);
            const SrcRef b = resolve(inst.src[1]);
            const SrcRef c = resolve(inst.src[2]);
            Word *dst = w.regs().row(inst.dst.index);
            for (LaneMask rest = exec_mask; rest != 0; rest &= rest - 1) {
                const unsigned lane = firstLane(rest);
                dst[lane] = exec::aluCompute(inst, get(a, lane),
                                             get(b, lane), get(c, lane));
            }
            w.stack().advance();
            break;
          }
        }

        if (w.done()) {
            onWarpFinished(sms_[sm_id], cta, w);
            break;
        }
        if (end_slice)
            break;
    }
    return n;
}

bool
FunctionalExecutor::runFor(std::uint64_t max_instr)
{
    const std::uint64_t target =
        max_instr > ~std::uint64_t{0} - executed_ ? ~std::uint64_t{0}
                                                  : executed_ + max_instr;
    // The rotation cursor persists across calls so runFor can stop at
    // warp-slice granularity: a full rotation over all resident warps
    // can execute hundreds of slices, far more than one sample period.
    // Rotation order itself stays fixed (SM id, then CTA slot, then
    // warp slot) — only where a call pauses varies, and that is a
    // deterministic function of the runFor call sequence.
    while (!finished() && executed_ < target) {
        if (executed_ >= cfg_.watchdogCycles)
            simFatal("kernel '", launch_.prog->name, "' exceeded the ",
                     cfg_.watchdogCycles,
                     "-instruction functional watchdog (deadlock?)");
        if (rotSm_ == 0 && rotCta_ == 0 && rotWarp_ == 0) {
            // Rotation boundary: every resident warp had a turn since
            // the last one, so zero accumulated progress while CTAs
            // remain is a barrier deadlock, not a spin (spinning warps
            // execute instructions).
            if (rotationStarted_ && rotationProgress_ == 0)
                simFatal("kernel '", launch_.prog->name,
                         "' made no progress in functional mode "
                         "(barrier deadlock?)");
            rotationStarted_ = true;
            rotationProgress_ = 0;
        }
        FSm &sm = sms_[rotSm_];
        if (rotCta_ == 0 && rotWarp_ == 0)
            tryLaunchCtas(sm);
        FCta &cta = sm.ctas[rotCta_];
        if (cta.valid && rotWarp_ < cta.warps.size()) {
            Warp &w = *cta.warps[rotWarp_];
            if (!w.done() && !w.atBarrier())
                rotationProgress_ += runWarpSlice(rotSm_, cta, w);
        }
        // Advance the cursor (runWarpSlice may have retired the CTA,
        // clearing cta.warps — hence the slot-count bounds).
        if (++rotWarp_ >= warpsPerCta_) {
            rotWarp_ = 0;
            if (++rotCta_ >= maxResidentCtas_) {
                rotCta_ = 0;
                if (++rotSm_ >= sms_.size())
                    rotSm_ = 0;
            }
        }
    }
    return finished();
}

void
FunctionalExecutor::run()
{
    runFor(~std::uint64_t{0});
}

GpuSnapshot
FunctionalExecutor::snapshot() const
{
    GpuSnapshot snap;
    snap.device = launch_.deviceId;
    snap.nextCta = launch_.nextCta;
    snap.warpAgeCounter = launch_.warpAgeCounter;
    snap.sms.resize(sms_.size());
    for (std::size_t s = 0; s < sms_.size(); ++s) {
        for (const FCta &cta : sms_[s].ctas) {
            if (!cta.valid)
                continue;
            CtaSnapshot cs;
            cs.id = cta.id;
            cs.arrivedAtBarrier = cta.arrivedAtBarrier;
            cs.shared = cta.shared;
            cs.warps.reserve(cta.warps.size());
            for (const auto &w : cta.warps)
                cs.warps.push_back(snapshotWarp(*w));
            snap.sms[s].ctas.push_back(std::move(cs));
        }
    }
    return snap;
}

void
FunctionalExecutor::restore(const GpuSnapshot &snap)
{
    const Program &prog = *launch_.prog;
    launch_.nextCta = snap.nextCta;
    launch_.warpAgeCounter = snap.warpAgeCounter;
    residentCtas_ = 0;
    // The rotation restarts from SM 0; the cursor is an execution-order
    // detail, not architectural state.
    rotSm_ = 0;
    rotCta_ = 0;
    rotWarp_ = 0;
    rotationProgress_ = 0;
    rotationStarted_ = false;
    sms_.clear();
    sms_.resize(cfg_.numCores);
    for (std::size_t s = 0; s < sms_.size(); ++s) {
        FSm &sm = sms_[s];
        sm.ctas.resize(maxResidentCtas_);
        static const std::vector<CtaSnapshot> kNoCtas;
        const auto &ctas =
            s < snap.sms.size() ? snap.sms[s].ctas : kNoCtas;
        for (std::size_t c = 0; c < ctas.size(); ++c) {
            if (c >= sm.ctas.size())
                fatal("snapshot has more CTAs than fit one SM");
            const CtaSnapshot &cs = ctas[c];
            FCta &slot = sm.ctas[c];
            slot.valid = true;
            slot.id = cs.id;
            slot.shared = cs.shared;
            slot.arrivedAtBarrier = cs.arrivedAtBarrier;
            slot.warps.clear();
            slot.liveWarps = 0;
            for (std::size_t wi = 0; wi < cs.warps.size(); ++wi) {
                const WarpSnapshot &ws = cs.warps[wi];
                auto warp = std::make_unique<Warp>(
                    static_cast<unsigned>(c) * warpsPerCta_ +
                        static_cast<unsigned>(wi),
                    cs.id, ws.warpInCta, ws.age, prog.numRegs,
                    prog.numPreds, kFullMask);
                restoreWarp(*warp, ws);
                if (!warp->done())
                    ++slot.liveWarps;
                slot.warps.push_back(std::move(warp));
            }
            ++sm.validCtas;
            ++residentCtas_;
        }
    }
}

}  // namespace bowsim
