#ifndef BOWSIM_SIM_LDST_UNIT_HPP
#define BOWSIM_SIM_LDST_UNIT_HPP

#include <array>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/arch/warp.hpp"
#include "src/common/config.hpp"
#include "src/mem/cache.hpp"
#include "src/mem/l2_bank.hpp"
#include "src/mem/mem_port.hpp"
#include "src/stats/stats.hpp"

/**
 * @file
 * Per-SM load/store unit. Warp memory instructions are coalesced into
 * per-line transactions (per-address for atomics, which serialize at the
 * L2 banks); one transaction per cycle flows through the L1 port. Loads
 * allocate MSHRs on miss; stores are write-through/no-allocate and
 * fire-and-forget; atomics bypass the L1 entirely. Functional values are
 * handled at issue by the core — this unit models timing and traffic.
 */

namespace bowsim {

/** A warp memory instruction whose timing completed this cycle. */
struct MemCompletion {
    Warp *warp;
    const Instruction *inst;
};

class LdstUnit {
  public:
    LdstUnit(const GpuConfig &cfg, unsigned sm_id, MemorySystem &memsys,
             KernelStats &stats);

    /** True when a new warp memory instruction can be accepted. */
    bool
    canAccept() const
    {
        return inflightOps_ < kMaxInflightOps;
    }

    /**
     * Accepts one warp memory instruction.
     *
     * @param addrs per-lane byte addresses (valid where mask is set)
     * @param mask  lanes participating
     * @param sync  instruction lies in an annotated sync region
     */
    void submit(Warp *warp, const Instruction &inst,
                const std::array<Addr, kWarpSize> &addrs, LaneMask mask,
                bool sync, Cycle now);

    /**
     * Advances one cycle: drains due events and pushes at most one
     * transaction through the L1 port. Finished warp instructions are
     * appended to @p completed.
     */
    void cycle(Cycle now, std::vector<MemCompletion> &completed);

    bool idle() const { return inflightOps_ == 0; }

    /**
     * Next-event horizon: the earliest cycle after @p now at which this
     * unit can make progress — kNeverCycle when nothing is pending.
     * A queued L1 transaction makes every next cycle busy (one txn per
     * cycle through the port); otherwise the earliest scheduled event
     * decides. Every in-flight op is backed by a queue entry or an
     * event, so inflightOps_ > 0 implies a finite horizon.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (!l1Queue_.empty())
            return now + 1;
        if (!events_.empty()) {
            const Cycle when = events_.top().when;
            return when > now ? when : now + 1;
        }
        return kNeverCycle;
    }

    const Cache &l1() const { return l1_; }

    /** Lines currently outstanding in the MSHR file (metrics gauge). */
    std::size_t mshrOccupancy() const { return mshr_.size(); }

    /** Attaches the launch's event sink (L1Miss/MshrMerge). */
    void setTrace(trace::Tracer t) { tracer_ = t; }

    /**
     * Phase-split mode: defer MemorySystem::request calls into @p q for
     * the commit phase instead of issuing them inline (nullptr reverts
     * to inline). Deferred requests carry a pre-reserved event sequence
     * number so completion ordering is identical either way.
     */
    void setCommitQueue(CommitQueue *q) { queue_ = q; }

    /** Commit-phase drain: issues one deferred request and schedules its
     *  completion event at the reply cycle. */
    void commitRequest(const MemPortRequest &r, Cycle now);

  private:
    static constexpr unsigned kMaxInflightOps = 64;

    struct Op {
        Warp *warp = nullptr;
        const Instruction *inst = nullptr;
        unsigned pending = 0;
        bool live = false;
    };

    struct Txn {
        Addr addr;  ///< line base (per-address for atomics)
        std::uint32_t op;
        MemPacket::Type type;
        /** Memory scope (atomics; Device for everything else). */
        MemScope scope;
        bool sync;
        /** Volatile load: bypass the L1 and read through to the L2. */
        bool vol;
    };

    struct Event {
        Cycle when;
        std::uint64_t seq;
        enum class Kind { OpPartDone, Fill } kind;
        std::uint32_t op;
        Addr line;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::uint32_t allocOp(Warp *warp, const Instruction &inst,
                          unsigned pending);
    void completePart(std::uint32_t op_id, Cycle now,
                      std::vector<MemCompletion> &completed);
    void pushEvent(Cycle when, Event::Kind kind, std::uint32_t op,
                   Addr line);
    void pushEventSeq(Cycle when, std::uint64_t seq, Event::Kind kind,
                      std::uint32_t op, Addr line);

    const GpuConfig &cfg_;
    unsigned smId_;
    MemorySystem &memsys_;
    KernelStats &stats_;
    Cache l1_;
    trace::Tracer tracer_;

    std::vector<Op> ops_;
    std::vector<std::uint32_t> freeOps_;
    unsigned inflightOps_ = 0;

    std::deque<Txn> l1Queue_;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    std::uint64_t eventSeq_ = 0;
    /** line -> op ids waiting on an outstanding fill. */
    std::unordered_map<Addr, std::vector<std::uint32_t>> mshr_;
    /** Commit queue for deferred requests; nullptr = inline mode. */
    CommitQueue *queue_ = nullptr;
};

}  // namespace bowsim

#endif  // BOWSIM_SIM_LDST_UNIT_HPP
