#ifndef BOWSIM_STATS_STATS_HPP
#define BOWSIM_STATS_STATS_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/energy/energy_model.hpp"
#include "src/mem/l2_bank.hpp"
#include "src/stats/ddos_accuracy.hpp"
#include "src/trace/trace.hpp"

/**
 * @file
 * Per-kernel statistics: everything the paper's figures report.
 */

namespace bowsim {

/** Lock-acquire / wait-loop outcome counters (Figures 2 and 12). */
struct SyncOutcomes {
    std::uint64_t lockSuccess = 0;
    std::uint64_t interWarpFail = 0;
    std::uint64_t intraWarpFail = 0;
    std::uint64_t waitExitSuccess = 0;
    std::uint64_t waitExitFail = 0;

    std::uint64_t
    total() const
    {
        return lockSuccess + interWarpFail + intraWarpFail +
               waitExitSuccess + waitExitFail;
    }

    SyncOutcomes &
    operator+=(const SyncOutcomes &o)
    {
        lockSuccess += o.lockSuccess;
        interWarpFail += o.interWarpFail;
        intraWarpFail += o.intraWarpFail;
        waitExitSuccess += o.waitExitSuccess;
        waitExitFail += o.waitExitFail;
        return *this;
    }
};

/** Everything measured over one kernel launch. */
struct KernelStats {
    std::string kernel;
    Cycle cycles = 0;

    // --- instruction counts -------------------------------------------
    std::uint64_t warpInstructions = 0;
    std::uint64_t threadInstructions = 0;
    /** Thread instructions inside annotated synchronization regions. */
    std::uint64_t syncThreadInstructions = 0;
    /** Dynamic executions of (ground-truth or predicted) SIBs. */
    std::uint64_t sibInstructions = 0;

    // --- SIMD utilization ----------------------------------------------
    std::uint64_t activeLaneSum = 0;

    // --- memory ----------------------------------------------------------
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t sharedAccesses = 0;
    /** L1D transactions issued from annotated sync-region instructions. */
    std::uint64_t syncMemTransactions = 0;
    MemSystemStats mem;

    // --- synchronization ---------------------------------------------
    SyncOutcomes outcomes;

    // --- scheduler/BOWS occupancy (Fig. 11) ------------------------------
    /** Sum over cycles of resident unfinished warps. */
    std::uint64_t residentWarpCycles = 0;
    /** Sum over cycles of warps in the backed-off state. */
    std::uint64_t backedOffWarpCycles = 0;
    /**
     * Sum over cycles of warps the spin-detection mechanism flags as
     * spinning (GpuConfig::collectSpinCycles; 0 when not collected).
     * The litmus harness reports spinningWarpCycles / residentWarpCycles
     * as the spin-cycle share of a cell.
     */
    std::uint64_t spinningWarpCycles = 0;
    /** Sum over SM-cycles of the (adaptive) back-off delay limit. */
    std::uint64_t delayLimitCycleSum = 0;
    /** SM-cycles accumulated into delayLimitCycleSum. */
    std::uint64_t smCycles = 0;

    /** Mean back-off delay limit over the run (Fig. 5 trajectory). */
    double
    avgDelayLimit() const
    {
        return smCycles == 0
                   ? 0.0
                   : static_cast<double>(delayLimitCycleSum) / smCycles;
    }

    // --- issue-stall attribution (docs/TRACING.md taxonomy) -------------
    /**
     * Per-warp stall breakdown, collected when a trace sink is attached
     * or GpuConfig::collectStallBreakdown is set (empty otherwise —
     * the per-cycle attribution loop is off the default hot path).
     * Flattened as [(sm * stallWarpsPerSm + warp) * kNumStallCauses +
     * cause]; every resident warp contributes exactly one count per
     * SM-cycle, so the table's grand total equals residentWarpCycles.
     */
    std::vector<std::uint64_t> stallCounts;
    /** Warp slots per SM backing the row indexing above. */
    unsigned stallWarpsPerSm = 0;

    bool hasStallBreakdown() const { return !stallCounts.empty(); }

    std::uint64_t
    stallCount(unsigned sm, unsigned warp, trace::StallCause cause) const
    {
        std::size_t idx =
            (static_cast<std::size_t>(sm) * stallWarpsPerSm + warp) *
                trace::kNumStallCauses +
            static_cast<std::size_t>(cause);
        return idx < stallCounts.size() ? stallCounts[idx] : 0;
    }

    /** Per-cause totals over all warps (zeroes when not collected). */
    std::array<std::uint64_t, trace::kNumStallCauses> stallTotals() const;

    // --- profile extras (--profile reports) ----------------------------
    /**
     * Instructions issued per scheduler unit, flattened as
     * [sm * unitsPerSm + unit]. Collected together with stallCounts
     * (same gate) — empty otherwise.
     */
    std::vector<std::uint64_t> unitIssues;
    /** Scheduler units per SM backing the indexing above. */
    unsigned unitsPerSm = 0;

    /**
     * High-water mark of resident warps per SM, always collected (one
     * max per CTA launch, off the per-cycle path). Merged element-wise
     * by max, not sum.
     */
    std::vector<std::uint64_t> peakResidentPerSm;

    // --- energy -----------------------------------------------------------
    EnergyEvents energy;
    double energyNj = 0.0;
    /** Static/leakage energy over smCycles (EnergyCosts::
     *  staticPerSmCyclePj); reported separately from the dynamic
     *  energyNj so normalized-dynamic comparisons are unaffected. */
    double staticEnergyNj = 0.0;

    // --- sampled execution (ExecMode::Sampled; docs/PERF.md) -----------
    /**
     * Per-window IPC estimate: mean over the detailed windows' measured
     * (post-warm-up) IPC. 0 when the launch did not run sampled.
     */
    double ipcEst = 0.0;
    /** 95% confidence half-width: 1.96 * sd / sqrt(n) over the window
     *  IPCs (0 with fewer than two windows). */
    double ipcCi95 = 0.0;
    /** Detailed windows that contributed a measurement. */
    std::uint64_t sampledWindows = 0;

    bool hasSampledIpc() const { return sampledWindows != 0; }

    // --- DDOS accuracy (Table I) --------------------------------------
    DdosAccuracy::Report ddos;

    // --- multi-device shards (docs/PERF.md, "Device sharding") ---------
    /**
     * Per-device stat shards, in device-id order. Populated only on
     * multi-device launches (numDevices > 1): element d holds device
     * d's own counters (its SMs, its L2/DRAM, its link traffic) while
     * the enclosing struct holds the system-wide aggregate. Shard
     * elements never nest further — their own perDevice stays empty.
     */
    std::vector<KernelStats> perDevice;

    // --- derived -----------------------------------------------------------
    double
    simdEfficiency() const
    {
        return warpInstructions == 0
                   ? 0.0
                   : static_cast<double>(activeLaneSum) /
                         (static_cast<double>(warpInstructions) * kWarpSize);
    }

    double
    ipc() const
    {
        return cycles == 0
                   ? 0.0
                   : static_cast<double>(warpInstructions) / cycles;
    }

    /** Fraction of thread instructions that are synchronization overhead. */
    double
    syncInstructionFraction() const
    {
        return threadInstructions == 0
                   ? 0.0
                   : static_cast<double>(syncThreadInstructions) /
                         threadInstructions;
    }

    double
    backedOffFraction() const
    {
        return residentWarpCycles == 0
                   ? 0.0
                   : static_cast<double>(backedOffWarpCycles) /
                         residentWarpCycles;
    }

    /** Simulated wall time at @p clock_mhz. */
    double
    milliseconds(double clock_mhz) const
    {
        return static_cast<double>(cycles) / (clock_mhz * 1e3);
    }

    /** Accumulates another launch (e.g., NW's second kernel). */
    KernelStats &operator+=(const KernelStats &o);
};

/** One-line human-readable summary, for examples and debugging. */
std::string summary(const KernelStats &s);

/**
 * Formatted per-warp stall-breakdown table (one row per warp with any
 * stall cycles, plus a totals row); empty string when not collected.
 */
std::string stallTable(const KernelStats &s);

}  // namespace bowsim

#endif  // BOWSIM_STATS_STATS_HPP
