#ifndef BOWSIM_STATS_DDOS_ACCURACY_HPP
#define BOWSIM_STATS_DDOS_ACCURACY_HPP

#include <map>
#include <set>

#include "src/common/types.hpp"
#include "src/isa/instruction.hpp"

/**
 * @file
 * DDOS detection-accuracy bookkeeping behind Table I:
 *
 *  - TSDR (true spin detection rate): fraction of ground-truth
 *    spin-inducing branches that DDOS confirmed.
 *  - FSDR (false spin detection rate): fraction of non-spin backward
 *    branches DDOS wrongly confirmed.
 *  - DPR (detection phase ratio): cycles from a branch's first dynamic
 *    encounter to its confirmation, relative to the span from its first
 *    to last encounter. Lower = earlier detection.
 */

namespace bowsim {

class DdosAccuracy {
  public:
    /** Records one dynamic execution of a backward branch. */
    void
    onBackwardBranch(Pc pc, Cycle now)
    {
        auto &r = records_[pc];
        if (r.firstSeen == 0 && !r.seen) {
            r.firstSeen = now;
            r.seen = true;
        }
        r.lastSeen = now;
    }

    /** Records the cycle DDOS confirmed @p pc as a SIB. */
    void
    onConfirmed(Pc pc, Cycle now)
    {
        auto &r = records_[pc];
        if (!r.confirmedValid) {
            r.confirmedAt = now;
            r.confirmedValid = true;
        }
    }

    struct Report {
        unsigned trueBranches = 0;      ///< ground-truth SIBs encountered
        unsigned trueDetected = 0;
        unsigned falseBranches = 0;     ///< other backward branches seen
        unsigned falseDetected = 0;
        double dprTrueSum = 0.0;        ///< sum of DPR over true detections
        double dprFalseSum = 0.0;

        double
        tsdr() const
        {
            return trueBranches == 0
                       ? 1.0
                       : static_cast<double>(trueDetected) / trueBranches;
        }
        double
        fsdr() const
        {
            return falseBranches == 0
                       ? 0.0
                       : static_cast<double>(falseDetected) / falseBranches;
        }
        double
        dprTrue() const
        {
            return trueDetected == 0 ? 0.0 : dprTrueSum / trueDetected;
        }
        double
        dprFalse() const
        {
            return falseDetected == 0 ? 0.0 : dprFalseSum / falseDetected;
        }
    };

    /** Scores the recorded branches against @p ground_truth SIB PCs. */
    Report
    report(const std::set<Pc> &ground_truth) const
    {
        Report rep;
        for (const auto &[pc, r] : records_) {
            bool truth = ground_truth.count(pc) != 0;
            double span = r.lastSeen > r.firstSeen
                              ? static_cast<double>(r.lastSeen - r.firstSeen)
                              : 1.0;
            double dpr =
                r.confirmedValid
                    ? static_cast<double>(r.confirmedAt - r.firstSeen) / span
                    : 0.0;
            if (truth) {
                ++rep.trueBranches;
                if (r.confirmedValid) {
                    ++rep.trueDetected;
                    rep.dprTrueSum += dpr;
                }
            } else {
                ++rep.falseBranches;
                if (r.confirmedValid) {
                    ++rep.falseDetected;
                    rep.dprFalseSum += dpr;
                }
            }
        }
        return rep;
    }

    /** Merge another collector (e.g., from a different SM). */
    void
    merge(const DdosAccuracy &other)
    {
        for (const auto &[pc, r] : other.records_) {
            auto &mine = records_[pc];
            if (!mine.seen || (r.seen && r.firstSeen < mine.firstSeen))
                mine.firstSeen = r.firstSeen;
            mine.seen = mine.seen || r.seen;
            if (r.lastSeen > mine.lastSeen)
                mine.lastSeen = r.lastSeen;
            if (r.confirmedValid &&
                (!mine.confirmedValid || r.confirmedAt < mine.confirmedAt)) {
                mine.confirmedValid = true;
                mine.confirmedAt = r.confirmedAt;
            }
        }
    }

  private:
    struct Record {
        bool seen = false;
        Cycle firstSeen = 0;
        Cycle lastSeen = 0;
        bool confirmedValid = false;
        Cycle confirmedAt = 0;
    };

    std::map<Pc, Record> records_;
};

}  // namespace bowsim

#endif  // BOWSIM_STATS_DDOS_ACCURACY_HPP
