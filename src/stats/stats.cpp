#include "src/stats/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace bowsim {

KernelStats &
KernelStats::operator+=(const KernelStats &o)
{
    cycles += o.cycles;
    warpInstructions += o.warpInstructions;
    threadInstructions += o.threadInstructions;
    syncThreadInstructions += o.syncThreadInstructions;
    sibInstructions += o.sibInstructions;
    activeLaneSum += o.activeLaneSum;
    l1Accesses += o.l1Accesses;
    l1Hits += o.l1Hits;
    l1Misses += o.l1Misses;
    sharedAccesses += o.sharedAccesses;
    syncMemTransactions += o.syncMemTransactions;
    mem.l2Accesses += o.mem.l2Accesses;
    mem.l2Hits += o.mem.l2Hits;
    mem.l2Misses += o.mem.l2Misses;
    mem.dramAccesses += o.mem.dramAccesses;
    mem.atomics += o.mem.atomics;
    mem.icntPackets += o.mem.icntPackets;
    outcomes += o.outcomes;
    residentWarpCycles += o.residentWarpCycles;
    backedOffWarpCycles += o.backedOffWarpCycles;
    delayLimitCycleSum += o.delayLimitCycleSum;
    smCycles += o.smCycles;
    energy += o.energy;
    energyNj += o.energyNj;
    // Stall tables from successive launches of one harness share the
    // core geometry, so rows line up; a size mismatch (e.g. different
    // configs summed) still merges positionally over the common prefix.
    if (!o.stallCounts.empty()) {
        if (stallCounts.size() < o.stallCounts.size())
            stallCounts.resize(o.stallCounts.size(), 0);
        for (std::size_t i = 0; i < o.stallCounts.size(); ++i)
            stallCounts[i] += o.stallCounts[i];
        stallWarpsPerSm = std::max(stallWarpsPerSm, o.stallWarpsPerSm);
    }
    return *this;
}

std::array<std::uint64_t, trace::kNumStallCauses>
KernelStats::stallTotals() const
{
    std::array<std::uint64_t, trace::kNumStallCauses> totals{};
    for (std::size_t i = 0; i < stallCounts.size(); ++i)
        totals[i % trace::kNumStallCauses] += stallCounts[i];
    return totals;
}

std::string
stallTable(const KernelStats &s)
{
    if (!s.hasStallBreakdown() || s.stallWarpsPerSm == 0)
        return "";
    constexpr unsigned causes = trace::kNumStallCauses;
    std::ostringstream os;
    os << std::left << std::setw(10) << "warp";
    for (unsigned c = 0; c < causes; ++c) {
        os << std::right << std::setw(14)
           << trace::toString(static_cast<trace::StallCause>(c));
    }
    os << "\n";
    const std::size_t rows = s.stallCounts.size() / causes;
    for (std::size_t row = 0; row < rows; ++row) {
        std::uint64_t row_total = 0;
        for (unsigned c = 0; c < causes; ++c)
            row_total += s.stallCounts[row * causes + c];
        if (row_total == 0)
            continue;
        std::ostringstream label;
        label << "sm" << row / s.stallWarpsPerSm << ".w"
              << row % s.stallWarpsPerSm;
        os << std::left << std::setw(10) << label.str();
        for (unsigned c = 0; c < causes; ++c) {
            os << std::right << std::setw(14)
               << s.stallCounts[row * causes + c];
        }
        os << "\n";
    }
    auto totals = s.stallTotals();
    os << std::left << std::setw(10) << "total";
    for (unsigned c = 0; c < causes; ++c)
        os << std::right << std::setw(14) << totals[c];
    os << "\n";
    return os.str();
}

std::string
summary(const KernelStats &s)
{
    std::ostringstream os;
    os << s.kernel << ": " << s.cycles << " cycles, "
       << s.warpInstructions << " warp insts (IPC "
       << (s.cycles ? static_cast<double>(s.warpInstructions) / s.cycles
                    : 0.0)
       << "), SIMD eff " << s.simdEfficiency() * 100.0 << "%, sync insts "
       << s.syncInstructionFraction() * 100.0 << "%, energy "
       << s.energyNj / 1e6 << " mJ";
    return os.str();
}

}  // namespace bowsim
