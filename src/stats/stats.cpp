#include "src/stats/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "src/common/log.hpp"

namespace bowsim {

KernelStats &
KernelStats::operator+=(const KernelStats &o)
{
    cycles += o.cycles;
    warpInstructions += o.warpInstructions;
    threadInstructions += o.threadInstructions;
    syncThreadInstructions += o.syncThreadInstructions;
    sibInstructions += o.sibInstructions;
    activeLaneSum += o.activeLaneSum;
    l1Accesses += o.l1Accesses;
    l1Hits += o.l1Hits;
    l1Misses += o.l1Misses;
    sharedAccesses += o.sharedAccesses;
    syncMemTransactions += o.syncMemTransactions;
    mem.l2Accesses += o.mem.l2Accesses;
    mem.l2Hits += o.mem.l2Hits;
    mem.l2Misses += o.mem.l2Misses;
    mem.dramAccesses += o.mem.dramAccesses;
    mem.dramRowActivations += o.mem.dramRowActivations;
    mem.atomics += o.mem.atomics;
    mem.atomicWaitCycles += o.mem.atomicWaitCycles;
    mem.icntPackets += o.mem.icntPackets;
    mem.linkPackets += o.mem.linkPackets;
    outcomes += o.outcomes;
    residentWarpCycles += o.residentWarpCycles;
    backedOffWarpCycles += o.backedOffWarpCycles;
    spinningWarpCycles += o.spinningWarpCycles;
    delayLimitCycleSum += o.delayLimitCycleSum;
    smCycles += o.smCycles;
    energy += o.energy;
    energyNj += o.energyNj;
    // Stall tables are indexed (sm * stallWarpsPerSm + warp) * cause, so
    // rows from two tables only line up when both sides agree on warps
    // per SM. Folding tables from different core geometries positionally
    // would silently attribute one run's warp rows to another run's
    // warps, so a mismatch is fatal rather than merged.
    if (!o.stallCounts.empty()) {
        if (!stallCounts.empty() && stallWarpsPerSm != o.stallWarpsPerSm) {
            fatal("KernelStats::operator+=: stall tables disagree on "
                  "warps per SM (", stallWarpsPerSm, " vs ",
                  o.stallWarpsPerSm,
                  ") - refusing to merge mismatched core geometries");
        }
        if (stallCounts.size() < o.stallCounts.size())
            stallCounts.resize(o.stallCounts.size(), 0);
        for (std::size_t i = 0; i < o.stallCounts.size(); ++i)
            stallCounts[i] += o.stallCounts[i];
        stallWarpsPerSm = o.stallWarpsPerSm;
    }
    // Same indexing contract for the per-scheduler-unit issue table.
    if (!o.unitIssues.empty()) {
        if (!unitIssues.empty() && unitsPerSm != o.unitsPerSm) {
            fatal("KernelStats::operator+=: unit-issue tables disagree "
                  "on scheduler units per SM (", unitsPerSm, " vs ",
                  o.unitsPerSm, ")");
        }
        if (unitIssues.size() < o.unitIssues.size())
            unitIssues.resize(o.unitIssues.size(), 0);
        for (std::size_t i = 0; i < o.unitIssues.size(); ++i)
            unitIssues[i] += o.unitIssues[i];
        unitsPerSm = o.unitsPerSm;
    }
    // Sampled-IPC estimates pool across launches (NW's second kernel):
    // window-count-weighted mean, with the half-widths combined as for
    // a weighted mean of independent estimates.
    if (o.sampledWindows != 0) {
        const double n1 = static_cast<double>(sampledWindows);
        const double n2 = static_cast<double>(o.sampledWindows);
        if (sampledWindows == 0) {
            ipcEst = o.ipcEst;
            ipcCi95 = o.ipcCi95;
        } else {
            ipcEst = (n1 * ipcEst + n2 * o.ipcEst) / (n1 + n2);
            ipcCi95 = std::sqrt(n1 * n1 * ipcCi95 * ipcCi95 +
                                n2 * n2 * o.ipcCi95 * o.ipcCi95) /
                      (n1 + n2);
        }
        sampledWindows += o.sampledWindows;
    }
    // Peaks are high-water marks: element-wise max, never summed.
    if (peakResidentPerSm.size() < o.peakResidentPerSm.size())
        peakResidentPerSm.resize(o.peakResidentPerSm.size(), 0);
    for (std::size_t i = 0; i < o.peakResidentPerSm.size(); ++i) {
        peakResidentPerSm[i] =
            std::max(peakResidentPerSm[i], o.peakResidentPerSm[i]);
    }
    // Device shards accumulate shard-by-shard (launch 2's device d
    // folds into launch 1's device d), same as the enclosing aggregate.
    if (!o.perDevice.empty()) {
        if (perDevice.empty()) {
            perDevice = o.perDevice;
        } else if (perDevice.size() != o.perDevice.size()) {
            fatal("KernelStats::operator+=: device shard counts disagree (",
                  perDevice.size(), " vs ", o.perDevice.size(), ")");
        } else {
            for (std::size_t d = 0; d < perDevice.size(); ++d)
                perDevice[d] += o.perDevice[d];
        }
    }
    return *this;
}

std::array<std::uint64_t, trace::kNumStallCauses>
KernelStats::stallTotals() const
{
    std::array<std::uint64_t, trace::kNumStallCauses> totals{};
    for (std::size_t i = 0; i < stallCounts.size(); ++i)
        totals[i % trace::kNumStallCauses] += stallCounts[i];
    return totals;
}

std::string
stallTable(const KernelStats &s)
{
    if (!s.hasStallBreakdown() || s.stallWarpsPerSm == 0)
        return "";
    constexpr unsigned causes = trace::kNumStallCauses;
    std::ostringstream os;
    os << std::left << std::setw(10) << "warp";
    for (unsigned c = 0; c < causes; ++c) {
        os << std::right << std::setw(14)
           << trace::toString(static_cast<trace::StallCause>(c));
    }
    os << "\n";
    const std::size_t rows = s.stallCounts.size() / causes;
    for (std::size_t row = 0; row < rows; ++row) {
        std::uint64_t row_total = 0;
        for (unsigned c = 0; c < causes; ++c)
            row_total += s.stallCounts[row * causes + c];
        if (row_total == 0)
            continue;
        std::ostringstream label;
        label << "sm" << row / s.stallWarpsPerSm << ".w"
              << row % s.stallWarpsPerSm;
        os << std::left << std::setw(10) << label.str();
        for (unsigned c = 0; c < causes; ++c) {
            os << std::right << std::setw(14)
               << s.stallCounts[row * causes + c];
        }
        os << "\n";
    }
    auto totals = s.stallTotals();
    os << std::left << std::setw(10) << "total";
    for (unsigned c = 0; c < causes; ++c)
        os << std::right << std::setw(14) << totals[c];
    os << "\n";
    return os.str();
}

std::string
summary(const KernelStats &s)
{
    std::ostringstream os;
    os << s.kernel << ": " << s.cycles << " cycles, "
       << s.warpInstructions << " warp insts (IPC "
       << (s.cycles ? static_cast<double>(s.warpInstructions) / s.cycles
                    : 0.0)
       << "), SIMD eff " << s.simdEfficiency() * 100.0 << "%, sync insts "
       << s.syncInstructionFraction() * 100.0 << "%, energy "
       << s.energyNj / 1e6 << " mJ";
    return os.str();
}

}  // namespace bowsim
