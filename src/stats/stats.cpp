#include "src/stats/stats.hpp"

#include <sstream>

namespace bowsim {

KernelStats &
KernelStats::operator+=(const KernelStats &o)
{
    cycles += o.cycles;
    warpInstructions += o.warpInstructions;
    threadInstructions += o.threadInstructions;
    syncThreadInstructions += o.syncThreadInstructions;
    sibInstructions += o.sibInstructions;
    activeLaneSum += o.activeLaneSum;
    l1Accesses += o.l1Accesses;
    l1Hits += o.l1Hits;
    l1Misses += o.l1Misses;
    sharedAccesses += o.sharedAccesses;
    syncMemTransactions += o.syncMemTransactions;
    mem.l2Accesses += o.mem.l2Accesses;
    mem.l2Hits += o.mem.l2Hits;
    mem.l2Misses += o.mem.l2Misses;
    mem.dramAccesses += o.mem.dramAccesses;
    mem.atomics += o.mem.atomics;
    mem.icntPackets += o.mem.icntPackets;
    outcomes += o.outcomes;
    residentWarpCycles += o.residentWarpCycles;
    backedOffWarpCycles += o.backedOffWarpCycles;
    delayLimitCycleSum += o.delayLimitCycleSum;
    smCycles += o.smCycles;
    energy += o.energy;
    energyNj += o.energyNj;
    return *this;
}

std::string
summary(const KernelStats &s)
{
    std::ostringstream os;
    os << s.kernel << ": " << s.cycles << " cycles, "
       << s.warpInstructions << " warp insts (IPC "
       << (s.cycles ? static_cast<double>(s.warpInstructions) / s.cycles
                    : 0.0)
       << "), SIMD eff " << s.simdEfficiency() * 100.0 << "%, sync insts "
       << s.syncInstructionFraction() * 100.0 << "%, energy "
       << s.energyNj / 1e6 << " mJ";
    return os.str();
}

}  // namespace bowsim
