#include "src/stats/ddos_accuracy.hpp"

// Header-only; this translation unit anchors the component in the library.
