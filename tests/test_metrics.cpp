#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/log.hpp"
#include "src/harness/json_check.hpp"
#include "src/harness/sweep.hpp"
#include "src/kernels/registry.hpp"
#include "src/metrics/kernel_profile.hpp"
#include "src/metrics/metrics.hpp"
#include "src/metrics/sampler.hpp"
#include "src/sim/gpu.hpp"

/**
 * Metrics layer (docs/METRICS.md): registry semantics, the null-handle
 * observer effect, the sampler's grid/boundary math at kernel end, and
 * the checkMetricsSeries validator. The cross-mode byte-equivalence of
 * whole series (--sm-threads x idle-skip) lives with the other
 * differential properties in test_differential.cpp.
 */

namespace bowsim {
namespace {

using harness::CheckResult;
using harness::Json;
using metrics::Kind;
using metrics::Metrics;
using metrics::MetricsRegistry;
using metrics::MetricsSampler;

TEST(MetricsRegistry, DefinesOrderedSchemaAndStoresRows)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.define("cycle", Kind::Counter), 0u);
    EXPECT_EQ(reg.define("ipc", Kind::Rate), 1u);
    EXPECT_EQ(reg.define("warps", Kind::Gauge), 2u);
    ASSERT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.columns()[0].name, "cycle");
    EXPECT_EQ(reg.columns()[1].kind, Kind::Rate);
    EXPECT_EQ(reg.columns()[2].kind, Kind::Gauge);

    reg.addRow({1000.0, 0.5, 12.0});
    reg.addRow({2000.0, 0.75, 8.0});
    ASSERT_EQ(reg.rows().size(), 2u);
    EXPECT_EQ(reg.rows()[1][0], 2000.0);
    EXPECT_EQ(reg.rows()[0][2], 12.0);
}

TEST(MetricsRegistry, DefineAfterRowsIsFatal)
{
    MetricsRegistry reg;
    reg.define("cycle", Kind::Counter);
    reg.addRow({1000.0});
    EXPECT_THROW(reg.define("late", Kind::Gauge), FatalError);
}

TEST(MetricsRegistry, RowSizeMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.define("cycle", Kind::Counter);
    reg.define("ipc", Kind::Rate);
    EXPECT_THROW(reg.addRow({1000.0}), FatalError);
    EXPECT_THROW(reg.addRow({1000.0, 0.5, 3.0}), FatalError);
}

TEST(MetricsHandle, NullHandleNoOps)
{
    Metrics m;
    EXPECT_FALSE(m.enabled());
    EXPECT_EQ(m.registry(), nullptr);
    EXPECT_EQ(m.define("cycle", Kind::Counter), 0u);
    m.addRow({1.0});  // must not crash, must not store anything

    MetricsRegistry reg;
    Metrics attached(&reg);
    EXPECT_TRUE(attached.enabled());
    EXPECT_EQ(attached.define("cycle", Kind::Counter), 0u);
    attached.addRow({42.0});
    ASSERT_EQ(reg.rows().size(), 1u);
    EXPECT_EQ(reg.rows()[0][0], 42.0);
}

TEST(MetricsKind, ToString)
{
    EXPECT_STREQ(metrics::toString(Kind::Counter), "counter");
    EXPECT_STREQ(metrics::toString(Kind::Gauge), "gauge");
    EXPECT_STREQ(metrics::toString(Kind::Rate), "rate");
}

/* ------------------------------------------------------------------ */

GpuConfig
samplerConfig()
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 2;
    cfg.bows.enabled = true;
    return cfg;
}

struct SampledRun {
    KernelStats stats;
    std::uint64_t digest = 0;
};

SampledRun
runWith(const GpuConfig &cfg, MetricsSampler *sampler)
{
    Gpu gpu(cfg);
    if (sampler)
        gpu.setMetrics(sampler);
    SampledRun r;
    r.stats = makeBenchmark(syncKernelNames().front(), 0.1)->run(gpu);
    r.digest = gpu.mem().digest();
    return r;
}

std::map<std::string, std::size_t>
columnIndex(const MetricsRegistry &reg)
{
    std::map<std::string, std::size_t> idx;
    for (std::size_t c = 0; c < reg.columns().size(); ++c)
        idx.emplace(reg.columns()[c].name, c);
    return idx;
}

TEST(MetricsSamplerTest, AttachingASamplerIsInvisibleToTheSimulation)
{
    const GpuConfig cfg = samplerConfig();
    SampledRun plain = runWith(cfg, nullptr);
    MetricsSampler sampler(500);
    SampledRun sampled = runWith(cfg, &sampler);

    EXPECT_GT(sampler.registry().rows().size(), 1u)
        << "sampler was not attached";
    ASSERT_EQ(sampled.digest, plain.digest)
        << "sampling changed the final memory image";
    EXPECT_EQ(sampled.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(sampled.stats.warpInstructions, plain.stats.warpInstructions);
    EXPECT_EQ(sampled.stats.outcomes.total(), plain.stats.outcomes.total());
}

TEST(MetricsSamplerTest, GridAlignmentAndKernelEndBoundary)
{
    const Cycle interval = 500;
    MetricsSampler sampler(interval);
    SampledRun r = runWith(samplerConfig(), &sampler);

    const MetricsRegistry &reg = sampler.registry();
    const auto idx = columnIndex(reg);
    ASSERT_TRUE(idx.count("cycle"));
    const std::size_t cycle_col = idx.at("cycle");
    const auto &rows = reg.rows();
    ASSERT_GE(rows.size(), 2u);

    // Every row but the last sits exactly on the sample grid, one
    // interval apart; the last row is the kernel-end boundary and pins
    // the final cycle count.
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        const auto cycle = static_cast<std::uint64_t>(rows[i][cycle_col]);
        EXPECT_EQ(cycle, (i + 1) * interval) << "row " << i;
    }
    const auto last =
        static_cast<std::uint64_t>(rows.back()[cycle_col]);
    EXPECT_EQ(last, r.stats.cycles);
    // A boundary row duplicating the final grid sample would break the
    // strictly-increasing cycle contract; the sampler must dedup it.
    if (rows.size() >= 2) {
        EXPECT_GT(last, static_cast<std::uint64_t>(
                            rows[rows.size() - 2][cycle_col]));
    }
}

TEST(MetricsSamplerTest, FinalRowAgreesWithKernelStats)
{
    MetricsSampler sampler(500);
    SampledRun r = runWith(samplerConfig(), &sampler);

    const MetricsRegistry &reg = sampler.registry();
    const auto idx = columnIndex(reg);
    const auto &last = reg.rows().back();
    auto col = [&](const char *name) {
        return static_cast<std::uint64_t>(last[idx.at(name)]);
    };
    EXPECT_EQ(col("cycle"), r.stats.cycles);
    EXPECT_EQ(col("warp_instructions"), r.stats.warpInstructions);
    EXPECT_EQ(col("thread_instructions"), r.stats.threadInstructions);
    EXPECT_EQ(col("l1_accesses"), r.stats.l1Accesses);
    EXPECT_EQ(col("l2_accesses"), r.stats.mem.l2Accesses);
    EXPECT_EQ(col("dram_accesses"), r.stats.mem.dramAccesses);
    EXPECT_EQ(col("dram_row_activations"), r.stats.mem.dramRowActivations);
    EXPECT_EQ(col("icnt_packets"), r.stats.mem.icntPackets);
    EXPECT_EQ(col("atomics"), r.stats.mem.atomics);
    EXPECT_EQ(col("lock_success"), r.stats.outcomes.lockSuccess);
    EXPECT_EQ(col("inter_warp_fail"), r.stats.outcomes.interWarpFail);
    EXPECT_EQ(col("resident_warp_cycles"), r.stats.residentWarpCycles);
    EXPECT_EQ(col("backed_off_warp_cycles"), r.stats.backedOffWarpCycles);
    EXPECT_EQ(col("sm_cycles"), r.stats.smCycles);
    // Per-SM issue counts partition the launch-wide total.
    std::uint64_t per_sm = 0;
    for (unsigned sm = 0; sm < 2; ++sm)
        per_sm += col(("sm" + std::to_string(sm) + ".warp_instructions")
                          .c_str());
    EXPECT_EQ(per_sm, r.stats.warpInstructions);
}

TEST(MetricsSamplerTest, SerializedJsonPassesSeriesAndStatsChecks)
{
    MetricsSampler sampler(500);
    SampledRun r = runWith(samplerConfig(), &sampler);

    const Json doc = Json::parse(sampler.serialize());
    CheckResult series = harness::checkMetricsSeries(doc);
    EXPECT_TRUE(series.ok) << series.message;

    const Json stats = harness::statsToJson(r.stats);
    CheckResult consistent = harness::checkMetricsSeries(doc, &stats);
    EXPECT_TRUE(consistent.ok) << consistent.message;
}

TEST(MetricsSamplerTest, CsvSerializationMatchesSchema)
{
    MetricsSampler sampler(500, "series.csv");
    runWith(samplerConfig(), &sampler);

    std::istringstream csv(sampler.serialize());
    std::string header;
    ASSERT_TRUE(std::getline(csv, header));
    EXPECT_EQ(header.rfind("cycle,launch,ipc,warp_instructions", 0), 0u)
        << header;
    const std::size_t cols = sampler.registry().columns().size();
    std::size_t data_lines = 0;
    for (std::string line; std::getline(csv, line); ++data_lines) {
        std::size_t commas = 0;
        for (char ch : line)
            commas += ch == ',';
        EXPECT_EQ(commas + 1, cols) << "line " << data_lines + 1;
    }
    EXPECT_EQ(data_lines, sampler.registry().rows().size());
}

TEST(MetricsSamplerTest, ProfileReportListsIssueDistribution)
{
    GpuConfig cfg = samplerConfig();
    cfg.collectStallBreakdown = true;
    SampledRun r = runWith(cfg, nullptr);
    const std::string report = metrics::profileReport(r.stats);
    EXPECT_NE(report.find("occupancy"), std::string::npos) << report;
    EXPECT_NE(report.find("sm0"), std::string::npos) << report;
    EXPECT_EQ(report.find("no stall breakdown"), std::string::npos)
        << report;

    // Without stall accounting the report degrades gracefully.
    SampledRun bare = runWith(samplerConfig(), nullptr);
    const std::string sparse = metrics::profileReport(bare.stats);
    EXPECT_NE(sparse.find("no stall breakdown"), std::string::npos)
        << sparse;
}

/* ------------------------------------------------------------------ */

Json
minimalSeries()
{
    Json doc = Json::object();
    doc.set("interval", std::int64_t{100});
    Json columns = Json::array();
    for (const char *name : {"cycle", "launch", "events"}) {
        Json col = Json::object();
        col.set("name", name);
        col.set("kind", "counter");
        columns.push(std::move(col));
    }
    doc.set("columns", std::move(columns));
    Json rows = Json::array();
    for (const auto &r : std::vector<std::vector<std::int64_t>>{
             {100, 0, 5}, {200, 0, 9}, {250, 0, 12}}) {
        Json row = Json::array();
        for (std::int64_t v : r)
            row.push(v);
        rows.push(std::move(row));
    }
    doc.set("rows", std::move(rows));
    return doc;
}

Json
seriesWithRows(const std::vector<std::vector<std::int64_t>> &data)
{
    Json doc = minimalSeries();
    Json rows = Json::array();
    for (const auto &r : data) {
        Json row = Json::array();
        for (std::int64_t v : r)
            row.push(v);
        rows.push(std::move(row));
    }
    doc.set("rows", std::move(rows));
    return doc;
}

TEST(CheckMetricsSeries, AcceptsWellFormedSeries)
{
    const Json doc = minimalSeries();
    CheckResult r = harness::checkMetricsSeries(doc);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(CheckMetricsSeries, RejectsNonMonotoneCycle)
{
    const Json doc = seriesWithRows({{200, 0, 5}, {100, 0, 9}});
    EXPECT_FALSE(harness::checkMetricsSeries(doc).ok);
}

TEST(CheckMetricsSeries, RejectsDecreasingCounter)
{
    const Json doc = seriesWithRows({{100, 0, 9}, {200, 0, 5}});
    CheckResult r = harness::checkMetricsSeries(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("counter"), std::string::npos) << r.message;
}

TEST(CheckMetricsSeries, RejectsOffGridRowThatIsNotABoundary)
{
    const Json doc =
        seriesWithRows({{100, 0, 1}, {150, 0, 2}, {300, 0, 3}});
    CheckResult r = harness::checkMetricsSeries(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("grid"), std::string::npos) << r.message;
}

TEST(CheckMetricsSeries, AcceptsOffGridLaunchBoundary)
{
    const Json doc =
        seriesWithRows({{100, 0, 1}, {150, 0, 2}, {200, 1, 3}});
    CheckResult r = harness::checkMetricsSeries(doc);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(CheckMetricsSeries, RejectsSkippedGridSample)
{
    const Json doc = seriesWithRows({{100, 0, 1}, {300, 0, 2}});
    CheckResult r = harness::checkMetricsSeries(doc);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.message.find("interval"), std::string::npos) << r.message;
}

TEST(CheckMetricsSeries, RejectsBadIntervalAndSchema)
{
    Json doc = minimalSeries();
    doc.set("interval", std::int64_t{0});
    EXPECT_FALSE(harness::checkMetricsSeries(doc).ok);

    Json no_cols = minimalSeries();
    no_cols.set("columns", Json::array());
    EXPECT_FALSE(harness::checkMetricsSeries(no_cols).ok);
}

TEST(CheckMetricsSeries, DetectsFinalRowStatsDisagreement)
{
    MetricsSampler sampler(500);
    SampledRun r = runWith(samplerConfig(), &sampler);
    const Json doc = Json::parse(sampler.serialize());

    KernelStats tampered = r.stats;
    tampered.warpInstructions += 1;
    const Json stats = harness::statsToJson(tampered);
    CheckResult res = harness::checkMetricsSeries(doc, &stats);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.message.find("warp_instructions"), std::string::npos)
        << res.message;
}

}  // namespace
}  // namespace bowsim
