#include <gtest/gtest.h>

#include "src/metrics/progress.hpp"

/**
 * @file
 * ProgressMeter ETA math, driven through the explicit-clock entry point
 * (pointDoneAt) so no wall time is involved. The meter prints to stderr
 * only; these tests assert on etaSeconds().
 */

namespace bowsim::metrics {
namespace {

TEST(ProgressMeter, EtaIsZeroBeforeFirstAndAfterLastPoint)
{
    ProgressMeter m;
    m.start("unit", 3);
    EXPECT_EQ(m.etaSeconds(), 0.0);
    m.pointDoneAt(100, 1.0);
    EXPECT_GT(m.etaSeconds(), 0.0);
    m.pointDoneAt(100, 2.0);
    m.pointDoneAt(100, 3.0);
    EXPECT_EQ(m.etaSeconds(), 0.0);
    m.finish();
}

TEST(ProgressMeter, SteadyPaceProjectsLinearly)
{
    // Points completing exactly 2 s apart: every gap equals the EWMA,
    // so the ETA is 2 s per remaining point, no matter the history.
    ProgressMeter m;
    m.start("unit", 5);
    for (int i = 1; i <= 3; ++i)
        m.pointDoneAt(0, 2.0 * i);
    EXPECT_NEAR(m.etaSeconds(), 2.0 * 2.0, 1e-12);
    m.finish();
}

TEST(ProgressMeter, EwmaTracksSlowdown)
{
    // 1-s gaps followed by 5-s gaps: the EWMA must move toward 5 s —
    // above the overall mean a naive elapsed/done estimate would use —
    // but not all the way on the first slow point.
    ProgressMeter m;
    m.start("unit", 10);
    double now = 0.0;
    for (int i = 0; i < 4; ++i)
        m.pointDoneAt(0, now += 1.0);
    const double before = m.etaSeconds() / 6.0;  // per-point estimate
    EXPECT_NEAR(before, 1.0, 1e-12);
    for (int i = 0; i < 2; ++i)
        m.pointDoneAt(0, now += 5.0);
    const double after = m.etaSeconds() / 4.0;
    // After two 5-s gaps at alpha 0.3: 1 -> 2.2 -> 3.04.
    EXPECT_GT(after, 2.5);
    EXPECT_LT(after, 5.0);
    const double naive = now / 6.0;  // elapsed/done = 14/6 = 2.33
    EXPECT_GT(after, naive) << "EWMA should weight the recent slowdown";
    m.finish();
}

TEST(ProgressMeter, OutOfOrderTimestampsDoNotGoNegative)
{
    ProgressMeter m;
    m.start("unit", 4);
    m.pointDoneAt(0, 2.0);
    // A worker that grabbed its timestamp before a faster peer reports
    // an earlier time; the gap clamps to zero instead of going negative.
    m.pointDoneAt(0, 1.5);
    EXPECT_GE(m.etaSeconds(), 0.0);
    m.finish();
}

TEST(ProgressMeter, IgnoresPointsWhenInactive)
{
    ProgressMeter m;
    m.pointDoneAt(0, 1.0);  // never started: no-op, no crash
    EXPECT_EQ(m.etaSeconds(), 0.0);
}

TEST(ProgressMeter, CountsCacheHitsSeparatelyFromSimulatedPoints)
{
    ProgressMeter m;
    m.start("unit", 4);
    m.enableCacheDisplay();
    m.pointDoneAt(100, 1.0, /*from_cache=*/false);
    m.pointDoneAt(100, 2.0, /*from_cache=*/true);
    m.pointDoneAt(100, 3.0, /*from_cache=*/true);
    m.pointDoneAt(100, 4.0, /*from_cache=*/false);
    EXPECT_EQ(m.cacheHits(), 2u);
    EXPECT_EQ(m.cacheMisses(), 2u);
    m.finish();
}

TEST(ProgressMeter, CachedPointsContributeNoSimulatedThroughput)
{
    // Two meters, same completion times; in one, the second point is a
    // cache hit. The hit's sim_cycles must not enter the cycles/s rate
    // (a warm run simulates nothing), but the ETA math — driven by
    // completion gaps — is unaffected. Since the rate itself is only
    // printed, assert the observable invariant: counters diverge while
    // the ETA stays identical.
    ProgressMeter sim, cached;
    sim.start("unit", 3);
    cached.start("unit", 3);
    sim.pointDoneAt(1000, 1.0);
    cached.pointDoneAt(1000, 1.0);
    sim.pointDoneAt(1000, 2.0, false);
    cached.pointDoneAt(1000, 2.0, true);
    EXPECT_EQ(sim.cacheMisses(), 2u);
    EXPECT_EQ(cached.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(sim.etaSeconds(), cached.etaSeconds());
    sim.finish();
    cached.finish();
}

TEST(ProgressMeter, CacheCountersResetOnStart)
{
    ProgressMeter m;
    m.start("first", 1);
    m.pointDoneAt(10, 1.0, true);
    m.finish();
    EXPECT_EQ(m.cacheHits(), 1u);
    m.start("second", 1);
    EXPECT_EQ(m.cacheHits(), 0u);
    EXPECT_EQ(m.cacheMisses(), 0u);
    m.pointDoneAt(10, 1.0, false);
    m.finish();
    EXPECT_EQ(m.cacheMisses(), 1u);
}

}  // namespace
}  // namespace bowsim::metrics
