#include <gtest/gtest.h>

#include "src/mem/lock_tracker.hpp"

namespace bowsim {
namespace {

TEST(LockTracker, SuccessfulAcquireRecordsOwner)
{
    LockTracker t;
    EXPECT_EQ(t.onCas(0x100, 7, 0, 0, 1), CasOutcome::Success);
    EXPECT_EQ(t.held(), 1u);
}

TEST(LockTracker, FailByOtherWarpIsInterWarp)
{
    LockTracker t;
    t.onCas(0x100, 7, 0, 0, 1);
    EXPECT_EQ(t.onCas(0x100, 9, 1, 0, 1), CasOutcome::InterWarpFail);
}

TEST(LockTracker, FailBySameWarpIsIntraWarp)
{
    LockTracker t;
    t.onCas(0x100, 7, 0, 0, 1);
    EXPECT_EQ(t.onCas(0x100, 7, 1, 0, 1), CasOutcome::IntraWarpFail);
}

TEST(LockTracker, UnknownOwnerDefaultsToInterWarp)
{
    LockTracker t;
    EXPECT_EQ(t.onCas(0x200, 7, 1, 0, 1), CasOutcome::InterWarpFail);
}

TEST(LockTracker, ExchReleaseClearsOwnership)
{
    LockTracker t;
    t.onCas(0x100, 7, 0, 0, 1);
    t.onWrite(0x100, 0);
    EXPECT_EQ(t.held(), 0u);
    EXPECT_EQ(t.onCas(0x100, 9, 0, 0, 1), CasOutcome::Success);
}

TEST(LockTracker, PublishReleaseClearsOwnershipToo)
{
    // BH tree build unlocks by publishing a non-zero value.
    LockTracker t;
    t.onCas(0x300, 7, 0, 0, 1);
    t.onWrite(0x300, 0x1234);
    EXPECT_EQ(t.held(), 0u);
}

TEST(LockTracker, CasReleasePatternClearsOwnership)
{
    LockTracker t;
    t.onCas(0x100, 7, 0, 0, 1);
    // CAS(lock, 1, 0) releases.
    EXPECT_EQ(t.onCas(0x100, 7, 1, 1, 0), CasOutcome::Success);
    EXPECT_EQ(t.held(), 0u);
}

TEST(LockTracker, IndependentLocksTrackIndependently)
{
    LockTracker t;
    t.onCas(0x100, 7, 0, 0, 1);
    t.onCas(0x200, 9, 0, 0, 1);
    EXPECT_EQ(t.onCas(0x100, 9, 1, 0, 1), CasOutcome::InterWarpFail);
    EXPECT_EQ(t.onCas(0x200, 9, 1, 0, 1), CasOutcome::IntraWarpFail);
    EXPECT_EQ(t.held(), 2u);
}

TEST(LockTracker, ReacquireAfterReleaseSwitchesOwner)
{
    LockTracker t;
    t.onCas(0x100, 7, 0, 0, 1);
    t.onWrite(0x100, 0);
    t.onCas(0x100, 9, 0, 0, 1);
    EXPECT_EQ(t.onCas(0x100, 7, 1, 0, 1), CasOutcome::InterWarpFail);
    EXPECT_EQ(t.onCas(0x100, 9, 1, 0, 1), CasOutcome::IntraWarpFail);
}

TEST(LockTracker, CasWithNonLockExpectedValue)
{
    // BH-style CAS(slot, observed, LOCK): success when old == expected.
    LockTracker t;
    EXPECT_EQ(t.onCas(0x400, 7, 0x55, 0x55, 1), CasOutcome::Success);
    EXPECT_EQ(t.onCas(0x400, 9, 1, 0x55, 1), CasOutcome::InterWarpFail);
}

}  // namespace
}  // namespace bowsim
