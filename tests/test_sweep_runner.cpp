#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/log.hpp"
#include "src/harness/json_check.hpp"
#include "src/harness/sweep.hpp"
#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"

/**
 * @file
 * The parallel sweep harness: results must be bit-identical and in
 * submission order regardless of the worker count, and a point that
 * dies (deadlock-watchdog SimError) must be captured per-point without
 * killing the sweep.
 */

namespace bowsim {
namespace {

using harness::Json;
using harness::SweepPoint;
using harness::SweepResult;
using harness::SweepRunner;

/** A small but non-trivial sweep: two kernels x two BOWS modes. */
std::vector<SweepPoint>
smallSweep()
{
    std::vector<SweepPoint> points;
    for (const char *kernel : {"TB", "ATM"}) {
        for (bool bows : {false, true}) {
            SweepPoint p;
            p.id = std::string(kernel) + (bows ? "/BOWS" : "/GTO");
            p.kernel = kernel;
            p.cfg = makeGtx480Config();
            p.cfg.numCores = 2;
            p.cfg.scheduler = SchedulerKind::GTO;
            p.cfg.bows.enabled = bows;
            p.scale = 0.05;
            points.push_back(std::move(p));
        }
    }
    return points;
}

TEST(SweepRunner, ResultsAreDeterministicAcrossWorkerCounts)
{
    const std::vector<SweepPoint> points = smallSweep();
    const std::vector<SweepResult> serial = SweepRunner(1).run(points);
    const std::vector<SweepResult> parallel = SweepRunner(8).run(points);

    ASSERT_EQ(serial.size(), points.size());
    ASSERT_EQ(parallel.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << points[i].id;
        ASSERT_TRUE(parallel[i].ok) << points[i].id;
        // statsToJson covers every reported field; equal dumps mean
        // bit-identical statistics.
        EXPECT_EQ(harness::statsToJson(serial[i].stats).dump(),
                  harness::statsToJson(parallel[i].stats).dump())
            << "point " << points[i].id
            << " differs between jobs=1 and jobs=8";
    }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    const std::vector<SweepPoint> points = smallSweep();
    const std::vector<SweepResult> results = SweepRunner(4).run(points);
    ASSERT_EQ(results.size(), points.size());
    // Each kernel records its own name in its stats; matching names
    // prove results landed at their submission index.
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(results[i].ok);
        EXPECT_EQ(results[i].stats.kernel, points[i].kernel);
    }
}

TEST(SweepRunner, WatchdogErrorIsIsolatedToItsPoint)
{
    std::vector<SweepPoint> points = smallSweep();
    // Make the second point deadlock by watchdog standards: a spinning
    // kernel cannot finish in 10 cycles.
    points[1].cfg.watchdogCycles = 10;

    const std::vector<SweepResult> results = SweepRunner(4).run(points);
    ASSERT_EQ(results.size(), points.size());
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("watchdog"), std::string::npos)
        << "error was: " << results[1].error;
    EXPECT_TRUE(results[2].ok);
    EXPECT_TRUE(results[3].ok);
}

TEST(SweepRunner, WatchdogRaisesCatchableSimError)
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 1;
    cfg.watchdogCycles = 10;
    Gpu gpu(cfg);
    auto bench = makeBenchmark("TB", 0.05);
    EXPECT_THROW(bench->run(gpu), SimError);
}

TEST(SweepRunner, CustomBodyPointsRun)
{
    SweepPoint p;
    p.id = "custom";
    p.cfg = makeGtx480Config();
    p.body = [] {
        KernelStats s;
        s.kernel = "custom";
        s.cycles = 42;
        return s;
    };
    const std::vector<SweepResult> results = SweepRunner(2).run({p});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].stats.cycles, 42u);
}

TEST(SweepRunner, ResolveJobsPrefersExplicitRequest)
{
    EXPECT_EQ(harness::resolveJobs(3), 3u);
    EXPECT_GE(harness::resolveJobs(0), 1u);
}

TEST(SweepToJson, RecordsEveryPointWithStatsOrError)
{
    std::vector<SweepPoint> points = smallSweep();
    points[1].cfg.watchdogCycles = 10;
    const std::vector<SweepResult> results = SweepRunner(2).run(points);

    const Json doc =
        harness::sweepToJson("unit_test", 2, points, results);
    EXPECT_EQ(doc.at("bench").asString(), "unit_test");
    EXPECT_EQ(doc.at("jobs").asInt(), 2);
    const Json &arr = doc.at("points");
    ASSERT_EQ(arr.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Json &p = arr.at(i);
        EXPECT_EQ(p.at("id").asString(), points[i].id);
        EXPECT_EQ(p.at("ok").asBool(), results[i].ok);
        EXPECT_EQ(p.has("stats"), results[i].ok);
        EXPECT_EQ(p.has("error"), !results[i].ok);
    }

    // The artifact must survive a parse round-trip unchanged.
    const std::string text = doc.dump();
    EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(SweepToJson, RecordsIdleSkipAndStaticEnergy)
{
    std::vector<SweepPoint> points = smallSweep();
    points.resize(2);
    points[1].cfg.idleSkip = false;
    const std::vector<SweepResult> results = SweepRunner(1).run(points);

    const Json doc =
        harness::sweepToJson("unit_test", 1, points, results);
    const Json &arr = doc.at("points");
    ASSERT_EQ(arr.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const Json &p = arr.at(i);
        // json_check requires config.idle_skip on every point; the
        // producer must emit it unconditionally.
        ASSERT_TRUE(p.has("config"));
        ASSERT_TRUE(p.at("config").has("idle_skip"));
        EXPECT_EQ(p.at("config").at("idle_skip").asBool(),
                  points[i].cfg.idleSkip);
        // Likewise for the phase-split worker count and the atomic
        // service period (json_check requires both).
        ASSERT_TRUE(p.at("config").has("sm_threads"));
        EXPECT_EQ(p.at("config").at("sm_threads").asInt(),
                  static_cast<std::int64_t>(points[i].cfg.smThreads));
        ASSERT_TRUE(p.at("config").has("atomic_service_period"));
        EXPECT_EQ(p.at("config").at("atomic_service_period").asInt(),
                  static_cast<std::int64_t>(points[i].cfg.atomicServicePeriod));
        ASSERT_TRUE(p.at("stats").has("static_energy_nj"));
        EXPECT_GT(p.at("stats").at("static_energy_nj").asDouble(), 0.0);
    }
}

TEST(SweepToJson, RecordsExecModeAndSampledEstimator)
{
    std::vector<SweepPoint> points = smallSweep();
    points.resize(3);
    points[0].cfg.execMode = ExecMode::Cycle;
    points[1].cfg.execMode = ExecMode::Functional;
    points[2].cfg.execMode = ExecMode::Sampled;
    points[2].cfg.sampleWindow = 500;
    points[2].cfg.samplePeriod = 2000;
    const std::vector<SweepResult> results = SweepRunner(1).run(points);

    const Json doc =
        harness::sweepToJson("unit_test", 1, points, results);
    const Json &arr = doc.at("points");
    ASSERT_EQ(arr.size(), 3u);

    EXPECT_EQ(arr.at(0).at("config").at("exec_mode").asString(), "cycle");
    EXPECT_FALSE(arr.at(0).at("config").has("sample_window"));
    EXPECT_FALSE(arr.at(0).at("stats").has("ipc_est"));
    EXPECT_FALSE(arr.at(0).at("stats").has("ipc_ci95"));

    EXPECT_EQ(arr.at(1).at("config").at("exec_mode").asString(),
              "functional");
    EXPECT_EQ(arr.at(1).at("stats").at("cycles").asInt(), 0);
    EXPECT_FALSE(arr.at(1).at("stats").has("ipc_est"));

    const Json &smp = arr.at(2);
    EXPECT_EQ(smp.at("config").at("exec_mode").asString(), "sampled");
    EXPECT_EQ(smp.at("config").at("sample_window").asInt(), 500);
    EXPECT_EQ(smp.at("config").at("sample_period").asInt(), 2000);
    ASSERT_TRUE(smp.at("stats").has("ipc_est"));
    ASSERT_TRUE(smp.at("stats").has("ipc_ci95"));
    ASSERT_TRUE(smp.at("stats").has("sampled_windows"));
    EXPECT_GT(smp.at("stats").at("ipc_est").asDouble(), 0.0);

    // The full artifact passes the checker...
    EXPECT_TRUE(harness::checkSweepArtifact(doc, 3).ok);

    // ...and the checker enforces the mode contract: exec_mode must be
    // present, and a cycle-mode point must not carry estimator fields.
    auto brokenDoc = [](bool with_mode, bool with_est) {
        Json cfg = Json::object();
        cfg.set("idle_skip", true);
        cfg.set("sm_threads", 1);
        cfg.set("atomic_service_period", 1);
        cfg.set("metrics_interval", 0);
        if (with_mode)
            cfg.set("exec_mode", "cycle");
        Json stats = Json::object();
        stats.set("cycles", 100);
        if (with_est)
            stats.set("ipc_est", 1.0);
        Json p = Json::object();
        p.set("id", "p0");
        p.set("ok", true);
        p.set("config", std::move(cfg));
        p.set("stats", std::move(stats));
        Json arr = Json::array();
        arr.push(std::move(p));
        Json d = Json::object();
        d.set("points", std::move(arr));
        return d;
    };
    EXPECT_TRUE(harness::checkSweepArtifact(brokenDoc(true, false), 1).ok);
    const harness::CheckResult missing =
        harness::checkSweepArtifact(brokenDoc(false, false), 1);
    EXPECT_FALSE(missing.ok);
    EXPECT_NE(missing.message.find("exec_mode"), std::string::npos)
        << missing.message;
    const harness::CheckResult est =
        harness::checkSweepArtifact(brokenDoc(true, true), 1);
    EXPECT_FALSE(est.ok);
    EXPECT_NE(est.message.find("estimator"), std::string::npos)
        << est.message;
}

}  // namespace
}  // namespace bowsim
