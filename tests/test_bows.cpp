#include <gtest/gtest.h>

#include <memory>

#include "src/core/bows/adaptive_delay.hpp"
#include "src/core/bows/backoff.hpp"

namespace bowsim {
namespace {

BowsConfig
fixedCfg(Cycle limit)
{
    BowsConfig cfg;
    cfg.enabled = true;
    cfg.adaptive = false;
    cfg.delayLimit = limit;
    return cfg;
}

std::unique_ptr<Warp>
makeWarp(unsigned id)
{
    return std::make_unique<Warp>(id, 0, id, id, 8, 2, kFullMask);
}

// ---------------------------------------------------------- BackoffUnit

TEST(Backoff, SpinBranchEntersBackedOffState)
{
    BackoffUnit b(fixedCfg(100));
    auto w = makeWarp(0);
    EXPECT_TRUE(b.mayIssue(*w));
    b.onSpinBranch(*w);
    EXPECT_TRUE(w->bows().backedOff);
    // Fresh back-off: pending delay still zero, so it may issue when its
    // turn comes (at the back of the queue).
    EXPECT_TRUE(b.mayIssue(*w));
}

TEST(Backoff, IssueLeavesBackedOffAndArmsDelay)
{
    BackoffUnit b(fixedCfg(100));
    auto w = makeWarp(0);
    b.onSpinBranch(*w);
    b.onIssue(*w);
    EXPECT_FALSE(w->bows().backedOff);
    EXPECT_EQ(w->bows().pendingDelay, 100u);
}

TEST(Backoff, PendingDelayBlocksNextSpinIteration)
{
    BackoffUnit b(fixedCfg(3));
    auto w = makeWarp(0);
    b.onSpinBranch(*w);
    b.onIssue(*w);  // leaves backed-off, arms delay = 3
    b.onSpinBranch(*w);  // hits the SIB again before the delay expired
    EXPECT_FALSE(b.mayIssue(*w));
    std::vector<Warp *> resident{w.get()};
    b.cycle(resident);
    b.cycle(resident);
    EXPECT_FALSE(b.mayIssue(*w));
    b.cycle(resident);  // delay reaches zero
    EXPECT_TRUE(b.mayIssue(*w));
}

TEST(Backoff, FifoTicketsOrderBackedOffWarps)
{
    BackoffUnit b(fixedCfg(0));
    auto w0 = makeWarp(0);
    auto w1 = makeWarp(1);
    b.onSpinBranch(*w1);
    b.onSpinBranch(*w0);
    EXPECT_LT(w1->bows().backoffSeq, w0->bows().backoffSeq);
    // Re-backing-off an already backed-off warp keeps its ticket.
    std::uint64_t ticket = w1->bows().backoffSeq;
    b.onSpinBranch(*w1);
    EXPECT_EQ(w1->bows().backoffSeq, ticket);
}

TEST(Backoff, DisabledUnitIsTransparent)
{
    BowsConfig cfg;
    cfg.enabled = false;
    BackoffUnit b(cfg);
    auto w = makeWarp(0);
    b.onSpinBranch(*w);
    EXPECT_FALSE(w->bows().backedOff);
    EXPECT_TRUE(b.mayIssue(*w));
}

TEST(Backoff, ZeroLimitDeprioritizesWithoutThrottling)
{
    BackoffUnit b(fixedCfg(0));
    auto w = makeWarp(0);
    b.onSpinBranch(*w);
    b.onIssue(*w);
    EXPECT_EQ(w->bows().pendingDelay, 0u);
    b.onSpinBranch(*w);
    EXPECT_TRUE(b.mayIssue(*w));  // queued last, but never delay-blocked
}

// -------------------------------------------------- AdaptiveDelayEstimator

BowsConfig
adaptiveCfg()
{
    BowsConfig cfg;
    cfg.enabled = true;
    cfg.adaptive = true;
    cfg.window = 1000;
    cfg.delayStep = 250;
    cfg.minLimit = 0;
    cfg.maxLimit = 10000;
    cfg.frac1 = 0.1;
    cfg.frac2 = 0.8;
    return cfg;
}

TEST(AdaptiveDelay, GrowsUnderHeavySpinning)
{
    AdaptiveDelayEstimator e(adaptiveCfg());
    for (int w = 0; w < 4; ++w) {
        for (int i = 0; i < 100; ++i)
            e.onInstruction(i % 5 == 0);  // 20% SIBs
        e.applyWindow();
    }
    EXPECT_EQ(e.limit(), 4u * 250u);
}

TEST(AdaptiveDelay, StaysAtZeroWithoutSpinning)
{
    AdaptiveDelayEstimator e(adaptiveCfg());
    for (int w = 0; w < 4; ++w) {
        for (int i = 0; i < 100; ++i)
            e.onInstruction(false);
        e.applyWindow();
    }
    EXPECT_EQ(e.limit(), 0u);
}

TEST(AdaptiveDelay, BacksOffByDoubleStepWhenUsefulRatioDrops)
{
    AdaptiveDelayEstimator e(adaptiveCfg());
    // Window 1: 20% SIBs (ratio total/SIB = 5) -> +step.
    for (int i = 0; i < 100; ++i)
        e.onInstruction(i % 5 == 0);
    e.applyWindow();
    ASSERT_EQ(e.limit(), 250u);
    // Window 2: ratio collapses to 2 (< 0.8 * 5): +step - 2*step.
    for (int i = 0; i < 100; ++i)
        e.onInstruction(i % 2 == 0);
    e.applyWindow();
    EXPECT_EQ(e.limit(), 0u);  // 250 + 250 - 500
}

TEST(AdaptiveDelay, ClampsToMaxLimit)
{
    BowsConfig cfg = adaptiveCfg();
    cfg.maxLimit = 600;
    AdaptiveDelayEstimator e(cfg);
    for (int w = 0; w < 10; ++w) {
        for (int i = 0; i < 100; ++i)
            e.onInstruction(i % 5 == 0);
        e.applyWindow();
    }
    EXPECT_EQ(e.limit(), 600u);
}

TEST(AdaptiveDelay, ClampsToMinLimit)
{
    BowsConfig cfg = adaptiveCfg();
    cfg.minLimit = 500;
    AdaptiveDelayEstimator e(cfg);
    EXPECT_EQ(e.limit(), 500u);
    // Degrading ratios cannot push the limit below the floor.
    for (int i = 0; i < 100; ++i)
        e.onInstruction(i % 5 == 0);
    e.applyWindow();
    for (int i = 0; i < 100; ++i)
        e.onInstruction(i % 2 == 0);
    e.applyWindow();
    EXPECT_GE(e.limit(), 500u);
}

TEST(AdaptiveDelay, TickHonoursWindowBoundaries)
{
    AdaptiveDelayEstimator e(adaptiveCfg());
    for (int i = 0; i < 100; ++i)
        e.onInstruction(true);
    e.tick(10);   // first tick sets the window end
    e.tick(500);  // still inside the window: no update
    EXPECT_EQ(e.limit(), 250u);  // first tick applied one window
    for (int i = 0; i < 100; ++i)
        e.onInstruction(true);
    e.tick(1200);  // past the boundary: apply
    EXPECT_EQ(e.limit(), 500u);
}

TEST(AdaptiveDelay, FastForwardMatchesPerCycleTicks)
{
    // The idle-gap replay must be indistinguishable from calling tick()
    // on every cycle of the gap: same final limit, same window phase,
    // same contribution to delayLimitCycleSum — including across gaps
    // that swallow several window boundaries.
    const Cycle gaps[][2] = {
        {20, 40},      // inside the first window: no boundary
        {900, 1100},   // one boundary (limit may change)
        {1500, 4700},  // three boundaries (prev counters must zero)
    };
    for (const auto &gap : gaps) {
        AdaptiveDelayEstimator fast(adaptiveCfg());
        AdaptiveDelayEstimator ref(adaptiveCfg());
        // Pressure before the gap so the first in-gap boundary moves
        // the limit, then run both estimators to the cycle before it.
        for (int i = 0; i < 100; ++i) {
            fast.onInstruction(i % 4 == 0);
            ref.onInstruction(i % 4 == 0);
        }
        for (Cycle c = 1; c < gap[0]; ++c) {
            fast.tick(c);
            ref.tick(c);
        }
        std::uint64_t ref_sum = 0;
        for (Cycle c = gap[0]; c <= gap[1]; ++c) {
            ref.tick(c);
            ref_sum += ref.limit();
        }
        EXPECT_EQ(fast.fastForward(gap[0], gap[1]), ref_sum);
        EXPECT_EQ(fast.limit(), ref.limit());
        EXPECT_EQ(fast.windowEnd(), ref.windowEnd());
        // The gap must also leave the ratio baseline identical: the
        // next live window's update depends on the prev counters.
        for (int i = 0; i < 60; ++i) {
            fast.onInstruction(i % 2 == 0);
            ref.onInstruction(i % 2 == 0);
        }
        for (Cycle c = gap[1] + 1; c <= gap[1] + 2000; ++c) {
            fast.tick(c);
            ref.tick(c);
        }
        EXPECT_EQ(fast.limit(), ref.limit());
    }
}

TEST(Backoff, FastForwardWindowsSumsStaticLimit)
{
    // Non-adaptive configs contribute limit x gap-length and change no
    // estimator state.
    BackoffUnit b(fixedCfg(300));
    EXPECT_EQ(b.fastForwardWindows(10, 19), 10u * 300u);
    EXPECT_EQ(b.delayLimit(), 300u);
}

TEST(Backoff, AdaptiveLimitFlowsIntoIssuedWarps)
{
    BowsConfig cfg = adaptiveCfg();
    BackoffUnit b(cfg);
    auto w = makeWarp(0);
    // Build up spinning pressure over one window.
    for (int i = 0; i < 100; ++i)
        b.onInstruction(i % 3 == 0);
    b.tickWindow(10);
    b.tickWindow(2000);
    EXPECT_GT(b.delayLimit(), 0u);
    b.onSpinBranch(*w);
    b.onIssue(*w);
    EXPECT_EQ(w->bows().pendingDelay, b.delayLimit());
}

}  // namespace
}  // namespace bowsim
