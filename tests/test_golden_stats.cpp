#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/litmus.hpp"
#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"

/**
 * Golden-stats regression tests (labeled `slow`): cycle counts and
 * synchronization outcomes for HT and ATM pinned at an exact
 * configuration. The simulator is deterministic, so any drift here is a
 * real behavior change — timing model, scheduler, DDOS, or BOWS. When a
 * change is intentional, re-measure and update the constants in the same
 * commit, and say why in the commit message.
 *
 * Config: GTX480 model, 4 SMs, GTO, registry kernels at scale 0.25.
 */

namespace bowsim {
namespace {

struct Golden {
    const char *kernel;
    bool bows;
    Cycle cycles;
    std::uint64_t warpInstructions;
    std::uint64_t lockSuccess;
    std::uint64_t interWarpFail;
    std::uint64_t intraWarpFail;
};

const Golden kGolden[] = {
    {"HT", false, 42912, 27588, 3072, 38725, 352},
    {"HT", true, 52209, 20764, 3072, 33703, 352},
    {"ATM", false, 314299, 169255, 21460, 284005, 1846},
    {"ATM", true, 171181, 84529, 15012, 145520, 916},
};

class GoldenStats : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenStats, PinnedCyclesAndOutcomes)
{
    const Golden &g = GetParam();
    // Both fast-forward modes must land on the same golden values: the
    // skip is an equivalence-preserving transformation (docs/PERF.md),
    // so a divergence here localizes a horizon/accounting bug.
    for (bool idle_skip : {true, false}) {
        GpuConfig cfg = makeGtx480Config();
        cfg.numCores = 4;
        cfg.scheduler = SchedulerKind::GTO;
        cfg.bows.enabled = g.bows;
        cfg.idleSkip = idle_skip;
        Gpu gpu(cfg);
        KernelStats s = makeBenchmark(g.kernel, 0.25)->run(gpu);

        const char *mode = idle_skip ? "idleSkip=on" : "idleSkip=off";
        EXPECT_EQ(s.cycles, g.cycles) << mode;
        EXPECT_EQ(s.warpInstructions, g.warpInstructions) << mode;
        EXPECT_EQ(s.outcomes.lockSuccess, g.lockSuccess) << mode;
        EXPECT_EQ(s.outcomes.interWarpFail, g.interWarpFail) << mode;
        EXPECT_EQ(s.outcomes.intraWarpFail, g.intraWarpFail) << mode;
        // Neither kernel uses wait-style loops at this scale.
        EXPECT_EQ(s.outcomes.waitExitSuccess, 0u) << mode;
        EXPECT_EQ(s.outcomes.waitExitFail, 0u) << mode;
    }
}

INSTANTIATE_TEST_SUITE_P(HtAtm, GoldenStats, ::testing::ValuesIn(kGolden),
                         [](const auto &info) {
                             return std::string(info.param.kernel) +
                                    (info.param.bows ? "_bows" : "_base");
                         });

TEST(GoldenStats, BowsReducesAtmSpinOverhead)
{
    // The paper's headline effect, pinned qualitatively: BOWS cuts
    // failed lock acquires on the contended account array.
    const Golden &base = kGolden[2];
    const Golden &bows = kGolden[3];
    EXPECT_LT(bows.interWarpFail, base.interWarpFail);
    EXPECT_LT(bows.cycles, base.cycles);
}

// --- litmus cells (docs/SYNC.md) --------------------------------------

/** One pinned litmus-matrix cell, run at the default litmus config. */
struct LitmusGolden {
    const char *name;  // test suffix
    sync::Primitive primitive;
    SchedulerKind scheduler;
    bool bows;
    harness::OccupancyLevel occupancy;
    harness::SyncOutcome outcome;
    Cycle cycles;
    std::uint64_t warpInstructions;
    std::uint64_t lockSuccess;
    std::uint64_t interWarpFail;
    std::uint64_t waitExitSuccess;
    std::uint64_t waitExitFail;
    std::uint64_t sibInstructions;
};

const LitmusGolden kLitmusGolden[] = {
    // The known-livelocking cell: over-subscribed TAS under pure GTO
    // with scarce atomic bandwidth — the spinners' CAS storm starves
    // the release; the watchdog kills a spin-dominated stream.
    {"tas_gto_base_over", sync::Primitive::TasLock, SchedulerKind::GTO,
     false, harness::OccupancyLevel::Over,
     harness::SyncOutcome::Livelocked, 3'000'000, 22829, 347, 5182, 0,
     0, 5065},
    // The same cell with BOWS enabled (only change): completes.
    {"tas_gto_bows_over", sync::Primitive::TasLock, SchedulerKind::GTO,
     true, harness::OccupancyLevel::Over,
     harness::SyncOutcome::Completed, 2'246'556, 20562, 512, 3334, 0,
     0, 3231},
    // A known-safe FIFO cell: every acquisition exits its wait exactly
    // once, the rest of the wait checks are counted spin retries.
    {"ticket_lrr_base_exact", sync::Primitive::TicketLock,
     SchedulerKind::LRR, false, harness::OccupancyLevel::Exact,
     harness::SyncOutcome::Completed, 206'073, 28263, 0, 0, 256, 7485,
     7241},
};

class LitmusGoldenStats
    : public ::testing::TestWithParam<LitmusGolden> {};

TEST_P(LitmusGoldenStats, PinnedOutcomeAndCounters)
{
    const LitmusGolden &g = GetParam();
    harness::LitmusOptions opts = harness::defaultLitmusOptions();
    opts.primitives = {g.primitive};
    opts.schedulers = {g.scheduler};
    opts.bowsModes = {g.bows};
    opts.occupancies = {g.occupancy};
    opts.devices = {1};  // the pinned counters are single-device
    const std::vector<harness::LitmusCell> cells =
        harness::buildLitmusCells(opts);
    ASSERT_EQ(cells.size(), 1u);
    // The classification consumes the abort record, which is
    // deterministic across the idle-skip fast-forward by contract.
    for (bool idle_skip : {true, false}) {
        GpuConfig cfg = cells[0].cfg;
        cfg.idleSkip = idle_skip;
        Gpu gpu(cfg);
        const harness::LitmusCellResult r =
            harness::runLitmusCell(cells[0], gpu);
        const char *mode = idle_skip ? "idleSkip=on" : "idleSkip=off";
        EXPECT_EQ(r.outcome, g.outcome) << mode;
        EXPECT_EQ(r.stats.cycles, g.cycles) << mode;
        EXPECT_EQ(r.stats.warpInstructions, g.warpInstructions) << mode;
        EXPECT_EQ(r.stats.outcomes.lockSuccess, g.lockSuccess) << mode;
        EXPECT_EQ(r.stats.outcomes.interWarpFail, g.interWarpFail)
            << mode;
        EXPECT_EQ(r.stats.outcomes.waitExitSuccess, g.waitExitSuccess)
            << mode;
        EXPECT_EQ(r.stats.outcomes.waitExitFail, g.waitExitFail)
            << mode;
        EXPECT_EQ(r.stats.sibInstructions, g.sibInstructions) << mode;
    }
}

INSTANTIATE_TEST_SUITE_P(LitmusCells, LitmusGoldenStats,
                         ::testing::ValuesIn(kLitmusGolden),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

}  // namespace
}  // namespace bowsim
