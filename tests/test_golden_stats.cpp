#include <gtest/gtest.h>

#include "src/kernels/registry.hpp"
#include "src/sim/gpu.hpp"

/**
 * Golden-stats regression tests (labeled `slow`): cycle counts and
 * synchronization outcomes for HT and ATM pinned at an exact
 * configuration. The simulator is deterministic, so any drift here is a
 * real behavior change — timing model, scheduler, DDOS, or BOWS. When a
 * change is intentional, re-measure and update the constants in the same
 * commit, and say why in the commit message.
 *
 * Config: GTX480 model, 4 SMs, GTO, registry kernels at scale 0.25.
 */

namespace bowsim {
namespace {

struct Golden {
    const char *kernel;
    bool bows;
    Cycle cycles;
    std::uint64_t warpInstructions;
    std::uint64_t lockSuccess;
    std::uint64_t interWarpFail;
    std::uint64_t intraWarpFail;
};

const Golden kGolden[] = {
    {"HT", false, 42912, 27588, 3072, 38725, 352},
    {"HT", true, 52209, 20764, 3072, 33703, 352},
    {"ATM", false, 314299, 169255, 21460, 284005, 1846},
    {"ATM", true, 171181, 84529, 15012, 145520, 916},
};

class GoldenStats : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenStats, PinnedCyclesAndOutcomes)
{
    const Golden &g = GetParam();
    // Both fast-forward modes must land on the same golden values: the
    // skip is an equivalence-preserving transformation (docs/PERF.md),
    // so a divergence here localizes a horizon/accounting bug.
    for (bool idle_skip : {true, false}) {
        GpuConfig cfg = makeGtx480Config();
        cfg.numCores = 4;
        cfg.scheduler = SchedulerKind::GTO;
        cfg.bows.enabled = g.bows;
        cfg.idleSkip = idle_skip;
        Gpu gpu(cfg);
        KernelStats s = makeBenchmark(g.kernel, 0.25)->run(gpu);

        const char *mode = idle_skip ? "idleSkip=on" : "idleSkip=off";
        EXPECT_EQ(s.cycles, g.cycles) << mode;
        EXPECT_EQ(s.warpInstructions, g.warpInstructions) << mode;
        EXPECT_EQ(s.outcomes.lockSuccess, g.lockSuccess) << mode;
        EXPECT_EQ(s.outcomes.interWarpFail, g.interWarpFail) << mode;
        EXPECT_EQ(s.outcomes.intraWarpFail, g.intraWarpFail) << mode;
        // Neither kernel uses wait-style loops at this scale.
        EXPECT_EQ(s.outcomes.waitExitSuccess, 0u) << mode;
        EXPECT_EQ(s.outcomes.waitExitFail, 0u) << mode;
    }
}

INSTANTIATE_TEST_SUITE_P(HtAtm, GoldenStats, ::testing::ValuesIn(kGolden),
                         [](const auto &info) {
                             return std::string(info.param.kernel) +
                                    (info.param.bows ? "_bows" : "_base");
                         });

TEST(GoldenStats, BowsReducesAtmSpinOverhead)
{
    // The paper's headline effect, pinned qualitatively: BOWS cuts
    // failed lock acquires on the contended account array.
    const Golden &base = kGolden[2];
    const Golden &bows = kGolden[3];
    EXPECT_LT(bows.interWarpFail, base.interWarpFail);
    EXPECT_LT(bows.cycles, base.cycles);
}

}  // namespace
}  // namespace bowsim
