#include <gtest/gtest.h>

#include "src/isa/assembler.hpp"
#include "src/sim/gpu.hpp"

namespace bowsim {
namespace {

GpuConfig
smallConfig()
{
    GpuConfig cfg = makeGtx480Config();
    cfg.numCores = 4;
    return cfg;
}

TEST(SimBasic, SingleThreadArithmetic)
{
    Gpu gpu(smallConfig());
    Addr out = gpu.malloc(8);
    Program prog = assemble(R"(
.kernel arith
.param 1
  ld.param.u64 %r1, [0];
  mov %r2, 6;
  mul %r2, %r2, 7;
  st.global.u64 [%r1], %r2;
  exit;
)");
    KernelStats s =
        gpu.launch(prog, Dim3{1, 1, 1}, Dim3{1, 1, 1},
                   {static_cast<Word>(out)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, out, 8);
    EXPECT_EQ(v, 42);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GE(s.warpInstructions, 5u);
}

TEST(SimBasic, AllThreadsWriteTheirId)
{
    Gpu gpu(smallConfig());
    const unsigned n = 2048;
    Addr out = gpu.malloc(n * 8);
    Program prog = assemble(R"(
.kernel ids
.param 1
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  ld.param.u64 %r2, [0];
  shl %r3, %r0, 3;
  add %r3, %r2, %r3;
  st.global.u64 [%r3], %r0;
  exit;
)");
    gpu.launch(prog, Dim3{8, 1, 1}, Dim3{256, 1, 1},
               {static_cast<Word>(out)});
    std::vector<Word> host(n);
    gpu.memcpyFromDevice(host.data(), out, n * 8);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(host[i], static_cast<Word>(i)) << "thread " << i;
}

TEST(SimBasic, DivergentBranchBothSidesExecute)
{
    Gpu gpu(smallConfig());
    Addr out = gpu.malloc(64 * 8);
    Program prog = assemble(R"(
.kernel diverge
.param 1
  ld.param.u64 %r1, [0];
  mov %r2, %tid;
  and %r3, %r2, 1;
  setp.eq.s64 %p1, %r3, 0;
  @%p1 bra EVEN;
  mov %r4, 111;
  bra.uni STORE;
EVEN:
  mov %r4, 222;
STORE:
  shl %r5, %r2, 3;
  add %r5, %r1, %r5;
  st.global.u64 [%r5], %r4;
  exit;
)");
    gpu.launch(prog, Dim3{1, 1, 1}, Dim3{64, 1, 1},
               {static_cast<Word>(out)});
    std::vector<Word> host(64);
    gpu.memcpyFromDevice(host.data(), out, 64 * 8);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(host[i], (i % 2 == 0) ? 222 : 111) << "thread " << i;
}

TEST(SimBasic, LoopComputesSum)
{
    Gpu gpu(smallConfig());
    Addr out = gpu.malloc(8);
    Program prog = assemble(R"(
.kernel sumloop
.param 1
  ld.param.u64 %r1, [0];
  mov %r2, 0;
  mov %r3, 0;
LOOP:
  add %r2, %r2, %r3;
  add %r3, %r3, 1;
  setp.lt.s64 %p1, %r3, 100;
  @%p1 bra LOOP;
  st.global.u64 [%r1], %r2;
  exit;
)");
    gpu.launch(prog, Dim3{1, 1, 1}, Dim3{1, 1, 1},
               {static_cast<Word>(out)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, out, 8);
    EXPECT_EQ(v, 4950);
}

TEST(SimBasic, BarrierOrdersSharedMemory)
{
    Gpu gpu(smallConfig());
    const unsigned n = 128;
    Addr out = gpu.malloc(n * 8);
    // Thread i writes tid to shared[tid], barrier, then reads neighbour
    // (tid+1) % n — wrong without the barrier ordering warps.
    Program prog = assemble(R"(
.kernel neighbour
.param 2
.shared 1024
  mov %r0, %tid;
  ld.param.u64 %r1, [0];
  ld.param.u64 %r2, [8];
  shl %r3, %r0, 3;
  st.shared.u64 [%r3], %r0;
  bar.sync;
  add %r4, %r0, 1;
  rem %r4, %r4, %r2;
  shl %r5, %r4, 3;
  ld.shared.u64 %r6, [%r5];
  shl %r7, %r0, 3;
  add %r7, %r1, %r7;
  st.global.u64 [%r7], %r6;
  exit;
)");
    gpu.launch(prog, Dim3{1, 1, 1}, Dim3{n, 1, 1},
               {static_cast<Word>(out), static_cast<Word>(n)});
    std::vector<Word> host(n);
    gpu.memcpyFromDevice(host.data(), out, n * 8);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(host[i], static_cast<Word>((i + 1) % n));
}

TEST(SimBasic, AtomicAddCountsAllThreads)
{
    Gpu gpu(smallConfig());
    Addr counter = gpu.malloc(8);
    Program prog = assemble(R"(
.kernel count
.param 1
  ld.param.u64 %r1, [0];
  atom.global.add.b64 %r2, [%r1], 1;
  exit;
)");
    gpu.launch(prog, Dim3{6, 1, 1}, Dim3{192, 1, 1},
               {static_cast<Word>(counter)});
    Word v = 0;
    gpu.memcpyFromDevice(&v, counter, 8);
    EXPECT_EQ(v, 6 * 192);
}

TEST(SimBasic, GridStrideLoopCoversAllElements)
{
    Gpu gpu(smallConfig());
    const unsigned n = 10000;
    Addr data = gpu.malloc(n * 8);
    Program prog = assemble(R"(
.kernel fill
.param 2
  mov %r0, %ctaid;
  mov %r1, %ntid;
  mad %r0, %r0, %r1, %tid;
  mov %r2, %nctaid;
  mul %r2, %r2, %r1;
  ld.param.u64 %r3, [0];
  ld.param.u64 %r4, [8];
LOOP:
  setp.ge.s64 %p0, %r0, %r4;
  @%p0 exit;
  shl %r5, %r0, 3;
  add %r5, %r3, %r5;
  mul %r6, %r0, 3;
  st.global.u64 [%r5], %r6;
  add %r0, %r0, %r2;
  bra.uni LOOP;
)");
    gpu.launch(prog, Dim3{4, 1, 1}, Dim3{128, 1, 1},
               {static_cast<Word>(data), static_cast<Word>(n)});
    std::vector<Word> host(n);
    gpu.memcpyFromDevice(host.data(), data, n * 8);
    for (unsigned i = 0; i < n; ++i)
        ASSERT_EQ(host[i], static_cast<Word>(i) * 3) << "element " << i;
}

TEST(SimBasic, DeterministicAcrossRuns)
{
    auto once = []() {
        Gpu gpu(smallConfig());
        Addr counter = gpu.malloc(8);
        Program prog = assemble(R"(
.kernel count
.param 1
  ld.param.u64 %r1, [0];
  atom.global.add.b64 %r2, [%r1], 1;
  exit;
)");
        return gpu
            .launch(prog, Dim3{4, 1, 1}, Dim3{256, 1, 1},
                    {static_cast<Word>(counter)})
            .cycles;
    };
    EXPECT_EQ(once(), once());
}

TEST(SimBasic, PartialWarpAndPartialBlock)
{
    Gpu gpu(smallConfig());
    const unsigned n = 77;  // not a multiple of the warp size
    Addr out = gpu.malloc(n * 8);
    Program prog = assemble(R"(
.kernel partial
.param 1
  mov %r0, %tid;
  ld.param.u64 %r1, [0];
  shl %r2, %r0, 3;
  add %r2, %r1, %r2;
  st.global.u64 [%r2], 7;
  exit;
)");
    gpu.launch(prog, Dim3{1, 1, 1}, Dim3{n, 1, 1},
               {static_cast<Word>(out)});
    std::vector<Word> host(n);
    gpu.memcpyFromDevice(host.data(), out, n * 8);
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(host[i], 7);
}

TEST(SimBasic, ClockAdvances)
{
    Gpu gpu(smallConfig());
    Addr out = gpu.malloc(16);
    Program prog = assemble(R"(
.kernel clk
.param 1
  ld.param.u64 %r1, [0];
  clock %r2;
  mov %r4, 0;
LOOP:
  add %r4, %r4, 1;
  setp.lt.s64 %p0, %r4, 50;
  @%p0 bra LOOP;
  clock %r3;
  st.global.u64 [%r1], %r2;
  st.global.u64 [%r1+8], %r3;
  exit;
)");
    gpu.launch(prog, Dim3{1, 1, 1}, Dim3{1, 1, 1},
               {static_cast<Word>(out)});
    Word t[2];
    gpu.memcpyFromDevice(t, out, 16);
    EXPECT_GT(t[1], t[0]);
}

}  // namespace
}  // namespace bowsim
